//! Black-box tests for the `repro` binary: hard usage errors (a flag
//! with a missing or malformed value must never silently fall through to
//! a default) and the end-to-end telemetry loop — a smoke run with
//! `--telemetry` must emit a `TELEMETRY.json` that the binary's own
//! `--validate-telemetry` accepts.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn missing_threads_value_is_a_hard_usage_error() {
    let out = repro().arg("--threads").output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads needs a value"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn non_numeric_threads_value_is_a_hard_usage_error() {
    let out = repro().args(["--threads", "many"]).output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads needs a numeric value"), "{err}");
}

#[test]
fn unknown_flag_is_a_hard_usage_error() {
    let out = repro().arg("--frobnicate").output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"), "{err}");
}

#[test]
fn validating_a_missing_file_fails() {
    let out = repro()
        .args(["--validate-telemetry", "/nonexistent/telemetry.json"])
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn smoke_run_emits_telemetry_the_validator_accepts() {
    let path = std::env::temp_dir().join(format!(
        "dosscope-telemetry-cli-test-{}.json",
        std::process::id()
    ));
    let out = repro()
        .args([
            "--smoke",
            "--threads",
            "8",
            "--quiet",
            "--telemetry",
            "--telemetry-out",
        ])
        .arg(&path)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The ASCII dashboard is appended to the report on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== telemetry"), "dashboard missing from report");

    // The emitted file passes the harness validator, both in-process and
    // through the binary's own --validate-telemetry mode.
    let text = std::fs::read_to_string(&path).expect("telemetry file written");
    dosscope_harness::telemetry::validate(&text).expect("telemetry validates");
    let check = repro()
        .arg("--validate-telemetry")
        .arg(&path)
        .output()
        .expect("spawn repro");
    assert!(
        check.status.success(),
        "--validate-telemetry rejected the file: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let _ = std::fs::remove_file(&path);
}
