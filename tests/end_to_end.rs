//! Workspace integration test: the full pipeline — world synthesis,
//! ground-truth generation, packet rendering, detection, fusion and every
//! report — at a reduced scale.

use dosscope_core::report::{Table1, Table2, Table3, Table4, Table5, Table6, Table7, Table8};
use dosscope_core::{Enricher, JointAnalysis};
use dosscope_harness::{Scenario, ScenarioConfig};
use dosscope_types::{EventSource, SECS_PER_DAY};

fn world() -> dosscope_harness::World {
    Scenario::run(&ScenarioConfig::test_small())
}

#[test]
fn pipeline_produces_events_and_reports() {
    let world = world();

    // Both pipelines produced a sensible number of events for the scale
    // (paper totals / 20 000 ≈ 623 telescope, 421 honeypot).
    let tele = world.store.telescope().len();
    let hp = world.store.honeypot().len();
    assert!((400..1400).contains(&tele), "telescope events: {tele}");
    assert!((250..1000).contains(&hp), "honeypot events: {hp}");

    // Nothing malformed reached the detectors, and the scan filter did
    // real work.
    assert_eq!(world.telescope_stats.malformed, 0);
    assert_eq!(world.fleet_stats.malformed, 0);
    assert!(world.telescope_stats.backscatter_packets > 0);

    // Every event lies within the window and satisfies the published
    // thresholds.
    let horizon = world.days as u64 * SECS_PER_DAY;
    for e in world.store.telescope() {
        assert!(e.when.start.secs() < horizon);
        assert!(e.duration_secs() >= 60, "min duration threshold");
        assert!(e.packets >= 25, "min packet threshold");
        assert!(e.intensity_pps >= 0.5, "min rate threshold");
    }
    for e in world.store.honeypot() {
        assert!(e.packets > 100, "scan filter");
        assert!(e.duration_secs() <= 86_400, "24h cap");
    }

    // All reports build and are internally consistent.
    let fw = world.framework();
    let t1 = Table1::build(&fw);
    let tele_sum = &t1.rows[0].summary;
    let hp_sum = &t1.rows[1].summary;
    let comb = &t1.rows[2].summary;
    assert_eq!(comb.events, tele_sum.events + hp_sum.events);
    assert!(comb.targets <= tele_sum.targets + hp_sum.targets);
    assert!(comb.targets >= tele_sum.targets.max(hp_sum.targets));
    assert!(tele_sum.blocks16 <= tele_sum.blocks24);
    assert!(tele_sum.blocks24 <= tele_sum.targets);

    let t2 = Table2::build(&fw).expect("zone attached");
    let total_sites: u64 = t2.rows.iter().map(|(_, s, _, _)| s).sum();
    assert_eq!(total_sites, ScenarioConfig::test_small().total_sites() as u64);

    let t3 = Table3::build(&fw).expect("dps attached");
    assert_eq!(t3.rows.len(), 10, "ten DPS providers");

    let t4 = Table4::build(&fw);
    assert_eq!(t4.telescope.len(), 6, "top-5 + Other");

    let t5 = Table5::build(&fw);
    assert!((t5.shares.iter().sum::<f64>() - 100.0).abs() < 1e-6);

    let t6 = Table6::build(&fw);
    let sum6: f64 = t6.rows.iter().map(|(_, _, p)| p).sum();
    assert!((sum6 - 100.0).abs() < 1e-6);

    let t7 = Table7::build(&fw);
    assert_eq!(t7.single + t7.multi, tele_sum.events);

    let t8 = Table8::build(&fw);
    assert!(!t8.tcp.is_empty() && !t8.udp.is_empty());
}

#[test]
fn joint_correlation_consistency() {
    let world = world();
    let fw = world.framework();
    let enricher = Enricher::new(fw.geo, fw.asdb);
    let joint = JointAnalysis::run(fw.store, &enricher);
    // Joint targets are a subset of common targets, which are a subset of
    // the smaller data set's target population.
    assert!(joint.joint_targets <= joint.common_targets);
    assert!(joint.joint_pairs >= joint.joint_targets);
    let tele_targets = fw.store.summary(EventSource::Telescope).targets;
    let hp_targets = fw.store.summary(EventSource::Honeypot).targets;
    assert!(joint.common_targets <= tele_targets.min(hp_targets));
    // The scripted joint incidents guarantee a non-trivial population.
    assert!(joint.joint_targets > 0);
    // Shares are probabilities.
    assert!((0.0..=1.0).contains(&joint.single_port_share));
    for (_, share) in &joint.reflection_shares {
        assert!((0.0..=1.0).contains(share));
    }
}

#[test]
fn third_source_coverage() {
    let world = world();
    // The C&C monitor inferred events, and the blind spot is real: a
    // substantial share of botnet targets never appear in the two primary
    // data sets (unspoofed direct attacks are invisible to them).
    assert!(!world.botnet_events.is_empty());
    assert_eq!(world.botmon_stats.orphan_stops, 0);
    let coverage = dosscope_core::coverage::CoverageStats::analyze(
        world.framework().store,
        &world.botnet_events,
    );
    assert_eq!(coverage.botnet_events, world.botnet_events.len() as u64);
    assert!(
        coverage.invisible_share() > 0.3,
        "blind spot: {:.2}",
        coverage.invisible_share()
    );
    assert!(
        coverage.shared_with_telescope + coverage.shared_with_honeypots > 0,
        "some multi-vector overlap exists"
    );
    // Families are plausible: with the small sample at this scale, one of
    // the two heavyweight families leads (DirtJumper dominates at larger
    // scales, per the Wang et al. mix).
    let top = coverage.per_family.first().map(|&(f, _)| f).unwrap();
    assert!(
        matches!(
            top,
            dosscope_botmon::BotFamily::DirtJumper | dosscope_botmon::BotFamily::Yoddos
        ),
        "unexpected leading family {top:?}"
    );
}

#[test]
fn shape_metrics_are_scale_invariant() {
    // The substitution argument: shares/shapes must not depend on the
    // scale denominator. Run two additional scales and compare the key
    // metrics.
    use dosscope_harness::experiments::Experiments;
    // Scales are chosen so every run has ≥ 1000 telescope events: the
    // scripted episodes (marquee days, Wix, eNom, the long-attack
    // sprinkle) are fixed-count by design, so at very small event
    // populations (scale ≳ 40k ⇒ < 400 events) they plus binomial noise
    // dominate the spread and the invariance check loses its power.
    let shares: Vec<_> = [20_000.0, 10_000.0, 5_000.0]
        .into_iter()
        .map(|scale| {
            let w = Scenario::run(&ScenarioConfig {
                scale,
                ..ScenarioConfig::default()
            });
            Experiments::key_shares(&w)
        })
        .collect();
    let spread = |f: fn(&dosscope_harness::experiments::KeyShares) -> f64| {
        let vals: Vec<f64> = shares.iter().map(f).collect();
        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(spread(|k| k.tcp_share) < 0.05, "TCP share varies with scale");
    assert!(spread(|k| k.single_port_share) < 0.06, "single-port share varies");
    assert!(spread(|k| k.tele_le_5min) < 0.08, "duration shape varies");
    assert!(spread(|k| k.tele_le_2pps) < 0.08, "intensity shape varies");
    assert!(spread(|k| k.web_tcp_share) < 0.08, "web TCP share varies");
    // Attacked-namespace coverage is density-coupled (it saturates with
    // event volume relative to the hosting inventory), so it only gets a
    // coarse monotone-ish bound here; the default scale is the calibrated
    // one (EXPERIMENTS.md).
    assert!(
        spread(|k| k.attacked_namespace_share) < 0.30,
        "attacked share varies wildly"
    );
}

#[test]
fn streaming_fusion_matches_batch() {
    // The near-realtime mode must agree with the batch analysis when fed
    // the same events in arrival order.
    let world = world();
    let mut streaming =
        dosscope_core::streaming::StreamingFusion::new(&world.geo, &world.asdb, world.days);
    let mut all: Vec<dosscope_types::AttackEvent> = world
        .store
        .telescope()
        .iter()
        .chain(world.store.honeypot())
        .collect();
    all.sort_by_key(|e| e.when.start);
    for e in &all {
        streaming.push(e);
    }
    let snap = streaming.snapshot();
    let batch_t = world.store.summary(EventSource::Telescope);
    let batch_h = world.store.summary(EventSource::Honeypot);
    assert_eq!(snap.telescope, batch_t);
    assert_eq!(snap.honeypot, batch_h);
    assert_eq!(snap.combined_events, batch_t.events + batch_h.events);
    assert_eq!(snap.common_targets, world.store.common_targets());
    // The live joint correlation agrees with the batch sweep.
    let fw = world.framework();
    let enricher = Enricher::new(fw.geo, fw.asdb);
    let joint = JointAnalysis::run(fw.store, &enricher);
    assert_eq!(snap.joint_targets, joint.joint_targets);
}

#[test]
fn detected_events_match_ground_truth_scale() {
    let world = world();
    // Detection recovers nearly all generated attacks: compare counts.
    let gt_tele = world.truth.telescope_attacks().count();
    let detected = world.store.telescope().len();
    let recall = detected as f64 / gt_tele as f64;
    assert!(
        (0.85..=1.10).contains(&recall),
        "telescope recall {recall} ({detected}/{gt_tele})"
    );
    let gt_hp = world.truth.honeypot_attacks().count();
    let detected_hp = world.store.honeypot().len();
    let recall_hp = detected_hp as f64 / gt_hp as f64;
    assert!(
        (0.80..=1.10).contains(&recall_hp),
        "honeypot recall {recall_hp} ({detected_hp}/{gt_hp})"
    );
}
