//! Row-vs-column differential suite: the columnar [`EventStore`] must be
//! observationally identical to the row-oriented store it replaced.
//!
//! [`RowStore`] below is a faithful test-only replica of the old
//! implementation — two `Vec<AttackEvent>`s kept stably sorted by
//! `(start, target)` — and every analysis the repo runs over the store is
//! recomputed here from the raw rows with the most naive algorithm that
//! is obviously correct. Property tests then drive both stores with
//! arbitrary event sets (random seeds × shard counts) and assert that
//! fusion outputs, Table aggregates and per-victim histories agree
//! exactly; deterministic edge cases (empty store, single event,
//! one-victim pileups, duplicate timestamps) pin the boundaries.

use dosscope_core::report::{Table1, Table5, Table6, Table7};
use dosscope_core::streaming::StreamingFusion;
use dosscope_core::{
    Enricher, EventStore, Framework, JointAnalysis, ShardedEventStore, SourceSummary,
};
use dosscope_geo::{AsDb, GeoDb};
use dosscope_types::{
    AttackEvent, AttackVector, EventSource, FastSet, PortSignature, Prefix16, Prefix24,
    ReflectionProtocol, SimTime, TimeRange, TransportProto,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// The reference: the old row-oriented store, verbatim semantics.
// ---------------------------------------------------------------------------

/// The pre-columnar `EventStore`: plain event vectors, stably re-sorted by
/// `(start, target)` on every ingest.
#[derive(Debug, Default)]
struct RowStore {
    telescope: Vec<AttackEvent>,
    honeypot: Vec<AttackEvent>,
}

impl RowStore {
    fn ingest_telescope(&mut self, events: Vec<AttackEvent>) {
        self.telescope.extend(events);
        self.telescope.sort_by_key(|e| (e.when.start, e.target));
    }

    fn ingest_honeypot(&mut self, events: Vec<AttackEvent>) {
        self.honeypot.extend(events);
        self.honeypot.sort_by_key(|e| (e.when.start, e.target));
    }

    fn of(&self, source: EventSource) -> &[AttackEvent] {
        match source {
            EventSource::Telescope => &self.telescope,
            EventSource::Honeypot => &self.honeypot,
        }
    }

    fn summarize<'a>(events: impl Iterator<Item = &'a AttackEvent>) -> SourceSummary {
        let mut targets: FastSet<Ipv4Addr> = FastSet::default();
        let mut blocks24: FastSet<Prefix24> = FastSet::default();
        let mut blocks16: FastSet<Prefix16> = FastSet::default();
        let mut n = 0u64;
        for e in events {
            n += 1;
            targets.insert(e.target);
            blocks24.insert(Prefix24::of(e.target));
            blocks16.insert(Prefix16::of(e.target));
        }
        SourceSummary {
            events: n,
            targets: targets.len() as u64,
            blocks24: blocks24.len() as u64,
            blocks16: blocks16.len() as u64,
        }
    }

    fn summary(&self, source: EventSource) -> SourceSummary {
        Self::summarize(self.of(source).iter())
    }

    fn summary_combined(&self) -> SourceSummary {
        Self::summarize(self.telescope.iter().chain(self.honeypot.iter()))
    }

    fn common_targets(&self) -> u64 {
        let t: FastSet<Ipv4Addr> = self.telescope.iter().map(|e| e.target).collect();
        self.honeypot
            .iter()
            .map(|e| e.target)
            .collect::<FastSet<_>>()
            .intersection(&t)
            .count() as u64
    }

    /// Per-victim history: both sources merged by start time, telescope
    /// first on ties (a stable sort over telescope-then-honeypot rows).
    fn history(&self, target: Ipv4Addr) -> Vec<AttackEvent> {
        let mut h: Vec<AttackEvent> = self
            .telescope
            .iter()
            .chain(self.honeypot.iter())
            .filter(|e| e.target == target)
            .cloned()
            .collect();
        h.sort_by_key(|e| e.when.start);
        h
    }

    fn distinct_targets(&self, source: EventSource) -> Vec<Ipv4Addr> {
        let mut t: Vec<Ipv4Addr> = self
            .of(source)
            .iter()
            .map(|e| e.target)
            .collect::<FastSet<_>>()
            .into_iter()
            .collect();
        t.sort();
        t
    }
}

/// Row-level reference for the joint correlation's scalar outputs: the
/// quadratic scan the columnar pass replaced.
struct RowJoint {
    common_targets: u64,
    joint_targets: u64,
    joint_pairs: u64,
    single_port_share: f64,
    tcp_http_share: f64,
    udp_27015_share: f64,
    reflection_shares: Vec<(ReflectionProtocol, f64)>,
}

impl RowJoint {
    fn run(rows: &RowStore) -> RowJoint {
        let mut common: FastSet<Ipv4Addr> = FastSet::default();
        let mut joint_targets: FastSet<Ipv4Addr> = FastSet::default();
        let mut joint_pairs = 0u64;
        let mut joint_tele: Vec<&AttackEvent> = Vec::new();
        let mut joint_hp_idx: Vec<usize> = Vec::new();
        let hp_targets: FastSet<Ipv4Addr> = rows.honeypot.iter().map(|e| e.target).collect();
        for t in &rows.telescope {
            if !hp_targets.contains(&t.target) {
                continue;
            }
            common.insert(t.target);
            let mut is_joint = false;
            for (hi, h) in rows.honeypot.iter().enumerate() {
                if h.target == t.target && t.when.overlaps(&h.when) {
                    joint_pairs += 1;
                    joint_targets.insert(t.target);
                    is_joint = true;
                    if !joint_hp_idx.contains(&hi) {
                        joint_hp_idx.push(hi);
                    }
                }
            }
            if is_joint {
                joint_tele.push(t);
            }
        }

        let mut single = 0u64;
        let mut tcp_single = 0u64;
        let mut tcp_http = 0u64;
        let mut udp_single = 0u64;
        let mut udp_steam = 0u64;
        for e in &joint_tele {
            if e.port_signature().is_some_and(|p| p.is_single()) || e.port_signature().is_none() {
                single += 1;
            }
            if let (Some(proto), Some(PortSignature::Single(port))) =
                (e.transport_proto(), e.port_signature())
            {
                if proto == TransportProto::Tcp {
                    tcp_single += 1;
                    tcp_http += u64::from(port == 80);
                } else if proto == TransportProto::Udp {
                    udp_single += 1;
                    udp_steam += u64::from(port == 27015);
                }
            }
        }
        let share = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };

        let mut proto_counts = [0u64; ReflectionProtocol::ALL.len()];
        for &hi in &joint_hp_idx {
            let p = rows.honeypot[hi].reflection_protocol().expect("hp event");
            proto_counts[p as usize] += 1;
        }
        let hp_total: u64 = proto_counts.iter().sum();
        let mut reflection_shares: Vec<(ReflectionProtocol, f64)> = ReflectionProtocol::ALL
            .iter()
            .map(|&p| (p, share(proto_counts[p as usize], hp_total)))
            .collect();
        reflection_shares.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

        RowJoint {
            common_targets: common.len() as u64,
            joint_targets: joint_targets.len() as u64,
            joint_pairs,
            single_port_share: share(single, joint_tele.len() as u64),
            tcp_http_share: share(tcp_http, tcp_single),
            udp_27015_share: share(udp_steam, udp_single),
            reflection_shares,
        }
    }
}

// ---------------------------------------------------------------------------
// Event generation: arbitrary mixed-source streams over a few /16s.
// ---------------------------------------------------------------------------

/// Build one event from raw draws. `a` picks the /16 (the shard key), `b`
/// the host — repeated targets are needed for joint/common populations —
/// and the remaining draws cover every vector shape the kind encoding
/// flattens.
fn build_event((a, b, start, dur, kind): (u8, u8, u64, u64, u8)) -> AttackEvent {
    let target = Ipv4Addr::new(10, a % 19, b % 13, 1 + (a % 3));
    let when = TimeRange::new(SimTime(start), SimTime(start + dur));
    match kind % 5 {
        0 => AttackEvent {
            target,
            when,
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::ALL[(a % 4) as usize],
                ports: PortSignature::Single(if b % 2 == 0 { 80 } else { 27015 }),
            },
            packets: 25 + b as u64,
            bytes: 1000 + a as u64,
            intensity_pps: 0.5 + a as f64,
            distinct_sources: 1 + b as u32,
        },
        1 => AttackEvent {
            target,
            when,
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::ALL[(b % 4) as usize],
                ports: PortSignature::Multi(2 + (b % 5) as u32),
            },
            packets: 30 + a as u64,
            bytes: 900 + b as u64,
            intensity_pps: 1.5 + b as f64,
            distinct_sources: 2 + a as u32,
        },
        2 => AttackEvent {
            target,
            when,
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::ALL[((a ^ b) % 4) as usize],
                ports: PortSignature::None,
            },
            packets: 40,
            bytes: 1600,
            intensity_pps: 2.0,
            distinct_sources: 3,
        },
        _ => AttackEvent {
            target,
            when,
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::ALL[(a % 8) as usize],
            },
            packets: 101 + b as u64,
            bytes: 5000 + a as u64,
            intensity_pps: 1.0 + b as f64,
            distinct_sources: 1 + (a % 24) as u32,
        },
    }
}

fn raw_stream() -> impl Strategy<Value = Vec<(u8, u8, u64, u64, u8)>> {
    proptest::collection::vec(
        (
            any::<u8>(),
            any::<u8>(),
            0u64..700 * 86_400,
            60u64..90_000,
            any::<u8>(),
        ),
        0..180,
    )
}

fn split(events: Vec<AttackEvent>) -> (Vec<AttackEvent>, Vec<AttackEvent>) {
    events
        .into_iter()
        .partition(|e| e.source() == EventSource::Telescope)
}

/// Drive both stores with the same batches and check every observable.
fn assert_equivalent(rows: &RowStore, store: &EventStore) {
    // Raw views decode to the exact row vectors.
    assert!(store.telescope() == rows.telescope.as_slice(), "telescope rows");
    assert!(store.honeypot() == rows.honeypot.as_slice(), "honeypot rows");
    assert_eq!(store.len(), rows.telescope.len() + rows.honeypot.len());

    // Table 1 aggregates (summaries are ingest-time bitset counts in the
    // columnar store; recomputed from scratch in the reference).
    for source in [EventSource::Telescope, EventSource::Honeypot] {
        assert_eq!(store.summary(source), rows.summary(source), "{source:?}");
    }
    assert_eq!(store.summary_combined(), rows.summary_combined());
    assert_eq!(store.common_targets(), rows.common_targets());
    for source in [EventSource::Telescope, EventSource::Honeypot] {
        let mut got: Vec<Ipv4Addr> = store.distinct_targets(source).collect();
        got.sort();
        assert_eq!(got, rows.distinct_targets(source), "{source:?} targets");
    }

    // Per-victim histories, for every victim either source ever saw.
    let mut victims: Vec<Ipv4Addr> = rows
        .telescope
        .iter()
        .chain(rows.honeypot.iter())
        .map(|e| e.target)
        .collect::<FastSet<_>>()
        .into_iter()
        .collect();
    victims.sort();
    for v in victims {
        assert_eq!(store.history(v), rows.history(v), "history of {v}");
    }
    assert_eq!(store.history(Ipv4Addr::new(203, 0, 113, 1)), Vec::new());

    // The joint correlation against the quadratic row reference.
    let geo = GeoDb::new();
    let asdb = AsDb::new();
    let enricher = Enricher::new(&geo, &asdb);
    let joint = JointAnalysis::run(store, &enricher);
    let expect = RowJoint::run(rows);
    assert_eq!(joint.common_targets, expect.common_targets);
    assert_eq!(joint.joint_targets, expect.joint_targets);
    assert_eq!(joint.joint_pairs, expect.joint_pairs);
    assert_eq!(joint.single_port_share, expect.single_port_share);
    assert_eq!(joint.tcp_http_share, expect.tcp_http_share);
    assert_eq!(joint.udp_27015_share, expect.udp_27015_share);
    assert_eq!(joint.reflection_shares, expect.reflection_shares);

    // Index-backed table aggregates against row scans.
    let fw = Framework::new(store, &geo, &asdb, 731);
    let t1 = Table1::build(&fw);
    assert_eq!(t1.rows[0].summary, rows.summary(EventSource::Telescope));
    assert_eq!(t1.rows[1].summary, rows.summary(EventSource::Honeypot));
    assert_eq!(t1.rows[2].summary, rows.summary_combined());

    let t5 = Table5::build(&fw);
    for (i, &proto) in TransportProto::ALL.iter().enumerate() {
        let want = rows
            .telescope
            .iter()
            .filter(|e| e.transport_proto() == Some(proto))
            .count() as u64;
        assert_eq!(t5.counts[i], want, "{proto:?} count");
    }

    let t6 = Table6::build(&fw);
    for p in ReflectionProtocol::ALL {
        let want = rows
            .honeypot
            .iter()
            .filter(|e| e.reflection_protocol() == Some(p))
            .count() as u64;
        assert_eq!(t6.counts.get(&p).copied().unwrap_or(0), want, "{p:?} count");
    }

    let t7 = Table7::build(&fw);
    let single = rows
        .telescope
        .iter()
        .filter(|e| e.port_signature().is_some_and(|p| p.is_single()))
        .count() as u64;
    assert_eq!(t7.single, single);
    assert_eq!(t7.multi, rows.telescope.len() as u64 - single);

    // Fusion outputs: the streaming engine fed from the *row* store must
    // land on the columnar store's aggregates.
    let mut all: Vec<&AttackEvent> =
        rows.telescope.iter().chain(rows.honeypot.iter()).collect();
    all.sort_by_key(|e| e.when.start);
    let mut fusion = StreamingFusion::new(&geo, &asdb, 731);
    for e in all {
        fusion.push(e);
    }
    let snap = fusion.snapshot();
    assert_eq!(snap.telescope, store.summary(EventSource::Telescope));
    assert_eq!(snap.honeypot, store.summary(EventSource::Honeypot));
    assert_eq!(snap.common_targets, store.common_targets());
    assert_eq!(snap.combined_targets, store.summary_combined().targets);
}

fn build_both(
    tele: Vec<AttackEvent>,
    hp: Vec<AttackEvent>,
    batches: usize,
) -> (RowStore, EventStore) {
    let mut rows = RowStore::default();
    let mut store = EventStore::new();
    // Split each source into `batches` interleaved chunks so multi-ingest
    // merge paths (append fast path and two-pointer merge) are exercised,
    // not just the single sorted bulk load.
    let chunk = |v: &[AttackEvent], k: usize| -> Vec<AttackEvent> {
        v.iter().skip(k).step_by(batches).cloned().collect()
    };
    for k in 0..batches {
        rows.ingest_telescope(chunk(&tele, k));
        store.ingest_telescope(chunk(&tele, k));
        rows.ingest_honeypot(chunk(&hp, k));
        store.ingest_honeypot(chunk(&hp, k));
    }
    (rows, store)
}

// ---------------------------------------------------------------------------
// Property tests: arbitrary event sets × batch splits × shard counts.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn columnar_store_matches_row_store(raw in raw_stream(), batches in 1usize..4) {
        let (tele, hp) = split(raw.into_iter().map(build_event).collect());
        let (rows, store) = build_both(tele, hp, batches);
        assert_equivalent(&rows, &store);
    }

    #[test]
    fn sharded_store_matches_row_store(raw in raw_stream(), shards in 1usize..9) {
        let (tele, hp) = split(raw.into_iter().map(build_event).collect());
        let mut rows = RowStore::default();
        rows.ingest_telescope(tele.clone());
        rows.ingest_honeypot(hp.clone());
        let mut sharded = ShardedEventStore::new(shards);
        sharded.ingest_telescope(tele);
        sharded.ingest_honeypot(hp);
        let store = sharded.into_store();
        assert_equivalent(&rows, &store);
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases.
// ---------------------------------------------------------------------------

fn tele_at(ip: &str, start: u64, end: u64) -> AttackEvent {
    AttackEvent {
        target: ip.parse().unwrap(),
        when: TimeRange::new(SimTime(start), SimTime(end)),
        vector: AttackVector::RandomlySpoofed {
            proto: TransportProto::Tcp,
            ports: PortSignature::Single(80),
        },
        packets: 100,
        bytes: 4000,
        intensity_pps: 1.0,
        distinct_sources: 10,
    }
}

fn hp_at(ip: &str, start: u64, end: u64) -> AttackEvent {
    AttackEvent {
        target: ip.parse().unwrap(),
        when: TimeRange::new(SimTime(start), SimTime(end)),
        vector: AttackVector::Reflection {
            protocol: ReflectionProtocol::Ntp,
        },
        packets: 500,
        bytes: 20_000,
        intensity_pps: 10.0,
        distinct_sources: 4,
    }
}

#[test]
fn empty_store_is_equivalent() {
    let (rows, store) = build_both(Vec::new(), Vec::new(), 1);
    assert_equivalent(&rows, &store);
    assert!(store.is_empty());
    assert_eq!(store.summary_combined(), SourceSummary::default());
}

#[test]
fn single_event_is_equivalent() {
    let (rows, store) = build_both(vec![tele_at("10.0.0.1", 100, 400)], Vec::new(), 1);
    assert_equivalent(&rows, &store);
    let (rows, store) = build_both(Vec::new(), vec![hp_at("10.0.0.1", 100, 400)], 1);
    assert_equivalent(&rows, &store);
}

#[test]
fn all_events_on_one_victim_is_equivalent() {
    // Every event hits the same address: one interner entry, maximal
    // posting lists, histories spanning both full blocks.
    let tele: Vec<AttackEvent> = (0..40)
        .map(|i| tele_at("10.1.2.3", i * 50, i * 50 + 600))
        .collect();
    let hp: Vec<AttackEvent> = (0..40)
        .map(|i| hp_at("10.1.2.3", i * 70 + 25, i * 70 + 500))
        .collect();
    for batches in [1, 3] {
        let (rows, store) = build_both(tele.clone(), hp.clone(), batches);
        assert_equivalent(&rows, &store);
        assert_eq!(store.summary_combined().targets, 1);
    }
}

#[test]
fn duplicate_timestamps_are_equivalent() {
    // Equal (start, target) keys across events and batches: the merge
    // tie-break (existing rows before staged rows) must reproduce the
    // stable sort of the row store.
    let mut tele = Vec::new();
    let mut hp = Vec::new();
    for i in 0..30u64 {
        let ip = format!("10.0.{}.1", i % 3);
        tele.push(tele_at(&ip, 1000, 2000 + i)); // same start, same target set
        tele.push(tele_at(&ip, 1000, 5000 - i));
        hp.push(hp_at(&ip, 1000, 3000 + i));
    }
    for batches in [1, 2, 3] {
        let (rows, store) = build_both(tele.clone(), hp.clone(), batches);
        assert_equivalent(&rows, &store);
    }
}

// ---------------------------------------------------------------------------
// Adversarial ingest orderings for the sorted-run layout: batch sequences
// chosen to defeat the in-order fast path so every read goes through the
// k-way consolidation, serial and sharded.
// ---------------------------------------------------------------------------

#[test]
fn reverse_time_batches_are_equivalent() {
    // Batches arrive newest-first: every batch after the first lands
    // entirely before the rows already in the store, so nothing can take
    // the in-order append fast path and sorted runs stack until the first
    // read consolidates them.
    let batch = |b: u64| -> (Vec<AttackEvent>, Vec<AttackEvent>) {
        let tele = (0..20u64)
            .map(|i| {
                let ip = format!("10.0.{}.1", i % 5);
                tele_at(&ip, b * 100_000 + i * 37, b * 100_000 + i * 37 + 600)
            })
            .collect();
        let hp = (0..10u64)
            .map(|i| {
                let ip = format!("10.0.{}.1", i % 5);
                hp_at(&ip, b * 100_000 + i * 53 + 7, b * 100_000 + i * 53 + 500)
            })
            .collect();
        (tele, hp)
    };

    let mut rows = RowStore::default();
    let mut store = EventStore::new();
    let mut sharded = ShardedEventStore::new(3);
    for b in (0..6u64).rev() {
        let (tele, hp) = batch(b);
        rows.ingest_telescope(tele.clone());
        store.ingest_telescope(tele.clone());
        sharded.ingest_telescope(tele);
        rows.ingest_honeypot(hp.clone());
        store.ingest_honeypot(hp.clone());
        sharded.ingest_honeypot(hp);
    }
    assert!(store.pending_runs() > 0, "reverse batches must stack runs");
    assert_equivalent(&rows, &store);
    assert_equivalent(&rows, &sharded.into_store());
}

#[test]
fn sharded_duplicate_timestamp_batches_are_equivalent() {
    // Duplicate (start, target) keys split across interleaved batches: the
    // run tie-break (older run wins) must reproduce the row store's stable
    // sort even when consolidation is forced after every ingest
    // (run_threshold 1) and events are routed across shards.
    let mut tele = Vec::new();
    let mut hp = Vec::new();
    for i in 0..24u64 {
        let ip = format!("10.0.{}.1", i % 2);
        tele.push(tele_at(&ip, 1000, 2000 + i));
        hp.push(hp_at(&ip, 1000, 3000 + i));
    }
    for threshold in [1usize, 16] {
        let mut rows = RowStore::default();
        let mut sharded = ShardedEventStore::new(3);
        sharded.set_run_threshold(threshold);
        for k in 0..3 {
            let tc: Vec<AttackEvent> = tele.iter().skip(k).step_by(3).cloned().collect();
            let hc: Vec<AttackEvent> = hp.iter().skip(k).step_by(3).cloned().collect();
            rows.ingest_telescope(tc.clone());
            sharded.ingest_telescope(tc);
            rows.ingest_honeypot(hc.clone());
            sharded.ingest_honeypot(hc);
        }
        assert_equivalent(&rows, &sharded.into_store());
    }
}

#[test]
fn single_event_batches_are_equivalent() {
    // One event per ingest call, in descending time order: the degenerate
    // worst case for run accumulation (every batch is a new 1-row run
    // until the binary counter folds it).
    let events: Vec<AttackEvent> = (0..60u64)
        .map(|i| {
            let ip = format!("10.{}.{}.1", i % 4, i % 7);
            let start = (60 - i) * 997;
            if i % 3 == 0 {
                hp_at(&ip, start, start + 400)
            } else {
                tele_at(&ip, start, start + 700)
            }
        })
        .collect();
    let mut rows = RowStore::default();
    let mut store = EventStore::new();
    let mut sharded = ShardedEventStore::new(4);
    for e in &events {
        match e.source() {
            EventSource::Telescope => {
                rows.ingest_telescope(vec![e.clone()]);
                store.ingest_telescope(vec![e.clone()]);
                sharded.ingest_telescope(vec![e.clone()]);
            }
            EventSource::Honeypot => {
                rows.ingest_honeypot(vec![e.clone()]);
                store.ingest_honeypot(vec![e.clone()]);
                sharded.ingest_honeypot(vec![e.clone()]);
            }
        }
    }
    assert_equivalent(&rows, &store);
    assert_equivalent(&rows, &sharded.into_store());
}

#[test]
fn run_threshold_matrix_is_equivalent() {
    // Every consolidation cadence — from "collapse after every
    // out-of-order batch" (threshold 1) through the lazy default — must be
    // observationally identical, serial and sharded.
    let (tele, hp) = split(
        (0..150u64)
            .map(|i| {
                build_event((
                    (i as u8) ^ 0x5b,
                    (i * 7) as u8,
                    (9_999 - i * 61) * 60,
                    600 + i,
                    i as u8,
                ))
            })
            .collect(),
    );
    for threshold in [1usize, 2, 5, 16] {
        let mut rows = RowStore::default();
        let mut store = EventStore::new();
        store.set_run_threshold(threshold);
        let mut sharded = ShardedEventStore::new(3);
        sharded.set_run_threshold(threshold);
        for k in 0..4 {
            let tc: Vec<AttackEvent> = tele.iter().skip(k).step_by(4).cloned().collect();
            let hc: Vec<AttackEvent> = hp.iter().skip(k).step_by(4).cloned().collect();
            rows.ingest_telescope(tc.clone());
            store.ingest_telescope(tc.clone());
            sharded.ingest_telescope(tc);
            rows.ingest_honeypot(hc.clone());
            store.ingest_honeypot(hc.clone());
            sharded.ingest_honeypot(hc);
        }
        assert_equivalent(&rows, &store);
        assert_equivalent(&rows, &sharded.into_store());
    }
}

#[test]
fn parallel_consolidation_is_deterministic_across_thread_counts() {
    // Enough rows to cross the parallel-consolidation floor (1 << 16),
    // ingested as two interleaved out-of-order halves so the read-side
    // consolidation has multiple runs to k-way merge. The pivot-split
    // parallel merge must be byte-identical to the serial one for any
    // thread count.
    let total = 70_000u64;
    let mk = |i: u64| {
        let ip = format!("10.{}.{}.{}", i % 13, (i / 13) % 251, 1 + i % 3);
        let start = (total - i) * 7;
        tele_at(&ip, start, start + 900)
    };
    let evens: Vec<AttackEvent> = (0..total).step_by(2).map(mk).collect();
    let odds: Vec<AttackEvent> = (1..total).step_by(2).map(mk).collect();
    let build = |threads: usize| -> EventStore {
        let mut s = EventStore::new();
        s.set_consolidation_threads(threads);
        s.ingest_telescope(evens.clone());
        s.ingest_telescope(odds.clone());
        s
    };
    let base = build(1);
    let base_view = base.telescope();
    for threads in [2usize, 8] {
        let s = build(threads);
        assert!(s.telescope() == base_view, "threads={threads} diverged");
        assert_eq!(s.summary_combined(), base.summary_combined());
    }
}
