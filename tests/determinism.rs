//! Integration test: the whole reproduction is a pure function of the
//! configuration — same seed, same world, same events, same reports.

use dosscope_harness::experiments::Experiments;
use dosscope_harness::{Scenario, ScenarioConfig};

#[test]
fn identical_configs_produce_identical_worlds() {
    let config = ScenarioConfig {
        scale: 50_000.0,
        ..ScenarioConfig::default()
    };
    let a = Scenario::run(&config);
    let b = Scenario::run(&config);

    // Ground truth.
    assert_eq!(a.truth.attacks.len(), b.truth.attacks.len());
    for (x, y) in a.truth.attacks.iter().zip(&b.truth.attacks) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.window, y.window);
        assert_eq!(x.kind, y.kind);
    }

    // Detected events.
    assert_eq!(a.store.telescope(), b.store.telescope());
    assert_eq!(a.store.honeypot(), b.store.honeypot());

    // Migrations.
    assert_eq!(a.migrations.migrations.len(), b.migrations.migrations.len());
    for (x, y) in a.migrations.migrations.iter().zip(&b.migrations.migrations) {
        assert_eq!(x.domain, y.domain);
        assert_eq!(x.day, y.day);
        assert_eq!(x.provider, y.provider);
    }

    // Full rendered reports, byte for byte.
    let ea = Experiments::run(&a, config.scale);
    let eb = Experiments::run(&b, config.scale);
    assert_eq!(ea.render_report(), eb.render_report());
}

#[test]
fn different_seeds_differ() {
    let base = ScenarioConfig {
        scale: 50_000.0,
        ..ScenarioConfig::default()
    };
    let other = ScenarioConfig {
        seed: base.seed ^ 0xFFFF,
        ..base.clone()
    };
    let a = Scenario::run(&base);
    let b = Scenario::run(&other);
    // Same budgets, different realisations.
    let same_targets = a
        .truth
        .attacks
        .iter()
        .zip(&b.truth.attacks)
        .filter(|(x, y)| x.target == y.target)
        .count();
    assert!(
        same_targets < a.truth.attacks.len() / 2,
        "seeds must decorrelate targets ({} of {})",
        same_targets,
        a.truth.attacks.len()
    );
}
