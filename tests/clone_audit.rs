//! Pin for the sharded pipeline's zero-copy handoff: routing events to
//! shard workers and merging the per-shard stores back into one must not
//! clone a single `AttackEvent`. The batch travels behind an `Arc` with
//! per-shard row-index lists, workers encode straight from references
//! into their column blocks, and the snapshot merge copies column cells,
//! not event structs.
//!
//! This lives in its own test binary: the clone counter is a
//! process-global registry (see `dosscope_types::event::clone_audit`),
//! so the before/after comparison needs a process to itself.

// The audit hooks only exist in debug builds (`cfg(debug_assertions)`),
// which is what `cargo test` runs.
#![cfg(debug_assertions)]

use dosscope_core::ShardedEventStore;
use dosscope_types::event::clone_audit;
use dosscope_types::{
    AttackEvent, AttackVector, EventSource, PortSignature, ReflectionProtocol, SimTime,
    TimeRange, TransportProto,
};

fn events() -> (Vec<AttackEvent>, Vec<AttackEvent>) {
    let mut tele = Vec::new();
    let mut hp = Vec::new();
    for i in 0..2_000u64 {
        let target = std::net::Ipv4Addr::from(0x0a00_0000u32 + (i as u32 * 7919) % 50_000);
        let when = TimeRange::new(SimTime(i * 13), SimTime(i * 13 + 600));
        if i % 3 == 0 {
            hp.push(AttackEvent {
                target,
                when,
                vector: AttackVector::Reflection {
                    protocol: ReflectionProtocol::ALL[(i % 8) as usize],
                },
                packets: 101 + i,
                bytes: 5000,
                intensity_pps: 2.0,
                distinct_sources: 4,
            });
        } else {
            tele.push(AttackEvent {
                target,
                when,
                vector: AttackVector::RandomlySpoofed {
                    proto: TransportProto::ALL[(i % 4) as usize],
                    ports: PortSignature::Single(80),
                },
                packets: 25 + i,
                bytes: 1000,
                intensity_pps: 1.0,
                distinct_sources: 10,
            });
        }
    }
    (tele, hp)
}

#[test]
fn sharded_ingest_and_merge_clone_no_events() {
    let (tele, hp) = events();
    let (n_tele, n_hp) = (tele.len(), hp.len());

    let before = clone_audit::event_clones();
    let mut sharded = ShardedEventStore::new(8);
    sharded.ingest_telescope(tele);
    sharded.ingest_honeypot(hp);
    let store = sharded.into_store();
    let after = clone_audit::event_clones();

    assert_eq!(
        after - before,
        0,
        "sharded ingest + snapshot merge must be zero-copy per event"
    );

    // The zero-copy path still delivered every event.
    assert_eq!(store.telescope().len(), n_tele);
    assert_eq!(store.honeypot().len(), n_hp);
    assert!(store.summary(EventSource::Telescope).targets > 0);
}
