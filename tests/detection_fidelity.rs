//! Integration test: the measurement pipelines recover ground-truth
//! attack attributes (target, timing, vector, intensity) from rendered
//! packets — the analyses never see ground truth, so this is the only
//! place the two sides are compared.

use dosscope_attackgen::{GtKind, GtPorts};
use dosscope_harness::{Scenario, ScenarioConfig};
use dosscope_types::{AttackEvent, PortSignature};

fn world() -> dosscope_harness::World {
    Scenario::run(&ScenarioConfig::test_small())
}

/// Find the detected event matching a ground-truth attack: same target,
/// overlapping window, same source kind.
fn find_match(
    events: dosscope_core::EventsView<'_>,
    gt: &dosscope_attackgen::GtAttack,
) -> Option<AttackEvent> {
    events
        .iter()
        .find(|e| e.target == gt.target && e.when.overlaps(&gt.window))
}

#[test]
fn telescope_attributes_recovered() {
    let world = world();
    let mut checked = 0;
    let mut intensity_err = 0.0f64;
    let mut port_mismatches = 0u32;
    let mut proto_mismatches = 0u32;
    let mut intensity_outliers = 0u32;
    for gt in world.truth.telescope_attacks() {
        let GtKind::RandomSpoofed {
            proto,
            ports,
            peak_pps,
        } = &gt.kind
        else {
            unreachable!("telescope_attacks filters by kind");
        };
        let Some(e) = find_match(world.store.telescope(), gt) else {
            continue; // events merged into an overlapping flow
        };
        checked += 1;

        // Protocol attribution. Overlapping same-target attacks can merge
        // flows with mixed protocols; the dominant proto wins, so only
        // require equality when the match is clean (tight duration).
        let clean = (e.duration_secs() as i64 - gt.window.duration_secs() as i64).abs() <= 120;
        if clean {
            // Tight duration does not fully exclude flow merges; protocol
            // mismatches are tallied and bounded like ports below.
            if e.transport_proto() != Some(*proto) {
                proto_mismatches += 1;
                continue;
            }
            // Port recovery.
            match (ports, e.port_signature().expect("telescope event")) {
                (GtPorts::Single(p), PortSignature::Single(q)) => {
                    assert_eq!(*p, q, "port mismatch at {}", gt.target)
                }
                (GtPorts::Multi(list), PortSignature::Multi(n)) => {
                    // Same-victim flow merges can add ports on top of the
                    // generated list, so only the lower bound is strict.
                    assert!(n >= 2, "multi-port attack observed as {n} ports");
                    let _ = list;
                }
                (GtPorts::None, PortSignature::None) => {}
                // A tight duration does not fully rule out flow merges
                // (two same-victim attacks can coincide), so remaining
                // mismatches are tallied and bounded below instead of
                // failing outright.
                _ => port_mismatches += 1,
            }
            // Intensity: the peak minute realises the generated rate;
            // overlapping same-victim attacks can add rates, so outliers
            // are tallied and bounded in aggregate.
            let rel = (e.intensity_pps - peak_pps).abs() / peak_pps.max(0.5);
            intensity_err += rel;
            if rel > 0.75 {
                intensity_outliers += 1;
            }
        }
    }
    assert!(checked > 300, "enough matches checked: {checked}");
    assert!(
        (port_mismatches as f64) < 0.03 * checked as f64,
        "port mismatches {port_mismatches} of {checked}"
    );
    assert!(
        (proto_mismatches as f64) < 0.02 * checked as f64,
        "proto mismatches {proto_mismatches} of {checked}"
    );
    let mean_err = intensity_err / checked as f64;
    assert!(mean_err < 0.15, "mean intensity error {mean_err}");
    assert!(
        (intensity_outliers as f64) < 0.03 * checked as f64,
        "intensity outliers {intensity_outliers} of {checked}"
    );
}

#[test]
fn honeypot_attributes_recovered() {
    let world = world();
    let mut checked = 0;
    for gt in world.truth.honeypot_attacks() {
        let GtKind::Reflection {
            protocol,
            fleet_rate,
            pots,
        } = &gt.kind
        else {
            unreachable!("honeypot_attacks filters by kind");
        };
        let Some(e) = find_match(world.store.honeypot(), gt) else {
            continue;
        };
        // Same-target same-protocol events merge; only clean matches are
        // strictly checked.
        let clean = (e.duration_secs() as i64 - gt.window.duration_secs() as i64).abs() <= 120;
        if !clean {
            continue;
        }
        checked += 1;
        assert_eq!(
            e.reflection_protocol(),
            Some(*protocol),
            "protocol mismatch at {}",
            gt.target
        );
        // Requests ≈ rate × duration.
        let expected = fleet_rate * gt.window.duration_secs() as f64;
        let rel = (e.packets as f64 - expected).abs() / expected.max(100.0);
        assert!(
            rel < 0.5,
            "requests {} vs expected {expected:.0} at {}",
            e.packets,
            gt.target
        );
        // The honeypots involved are bounded by the fleet size; merged
        // same-victim events can union two attackers' reflector lists, so
        // the generated list is only a lower-bound hint.
        assert!(e.distinct_sources >= 1 && e.distinct_sources <= 24);
        let _ = pots;
    }
    assert!(checked > 150, "enough clean matches: {checked}");
}

#[test]
fn joint_incidents_recovered_by_correlation() {
    let world = world();
    let fw = world.framework();
    let enricher = dosscope_core::Enricher::new(fw.geo, fw.asdb);
    let joint = dosscope_core::JointAnalysis::run(fw.store, &enricher);

    // Every scripted joint incident (same target, overlapping windows,
    // one attack per infrastructure) must be visible to the correlation.
    let mut scripted_targets = std::collections::HashSet::new();
    for a in &world.truth.attacks {
        if a.joint_id.is_some() {
            scripted_targets.insert(a.target);
        }
    }
    assert!(
        joint.joint_targets as usize >= scripted_targets.len() * 9 / 10,
        "correlation found {} joint targets, {} scripted",
        joint.joint_targets,
        scripted_targets.len()
    );
}
