//! Golden-file regression tests: the Table 1 and Table 2 aggregates and
//! the complete ASCII reproduction report for the standard test
//! configuration are pinned to checked-in snapshots under `tests/golden/`.
//!
//! Any intentional change to the pipeline or the renderers regenerates
//! them with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p dosscope-harness --test golden_reports
//! ```

use dosscope_core::report::{Table1, Table2};
use dosscope_harness::experiments::Experiments;
use dosscope_harness::{Scenario, ScenarioConfig};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare `actual` to the checked-in snapshot, or rewrite the snapshot
/// when `GOLDEN_UPDATE` is set and this is the regenerating pass.
fn check_at(name: &str, actual: &str, allow_update: bool) {
    let path = golden_dir().join(name);
    if allow_update && std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            want,
            got,
            "{name}: first difference at line {} (regenerate with GOLDEN_UPDATE=1 if intended)",
            i + 1
        );
    }
    panic!(
        "{name}: line counts differ — golden {} vs actual {} (regenerate with GOLDEN_UPDATE=1 if intended)",
        expected.lines().count(),
        actual.lines().count()
    );
}

#[test]
fn golden_tables_and_report() {
    // The same goldens must hold at every thread count: the sharded
    // pipeline and the columnar snapshot merge promise byte-identical
    // output, so the serial run and an 8-way run check against the very
    // same files. Regeneration happens on the serial pass only; the
    // 8-way pass reads the fresh files back, so an update still proves
    // thread-count invariance.
    for threads in [1, 8] {
        let config = ScenarioConfig {
            threads,
            ..ScenarioConfig::test_small()
        };
        let world = Scenario::run(&config);
        let fw = world.framework();
        let allow_update = threads == 1;
        check_at("table1.txt", &Table1::build(&fw).render(), allow_update);
        check_at(
            "table2.txt",
            &Table2::build(&fw).expect("scenario attaches the zone").render(),
            allow_update,
        );
        check_at(
            "report.txt",
            &Experiments::run(&world, config.scale).render_report(),
            allow_update,
        );
    }
}
