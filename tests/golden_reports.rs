//! Golden-file regression tests: the Table 1 and Table 2 aggregates and
//! the complete ASCII reproduction report for the standard test
//! configuration are pinned to checked-in snapshots under `tests/golden/`.
//!
//! Any intentional change to the pipeline or the renderers regenerates
//! them with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p dosscope-harness --test golden_reports
//! ```

use dosscope_core::report::{Table1, Table2};
use dosscope_harness::experiments::Experiments;
use dosscope_harness::{Scenario, ScenarioConfig};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare `actual` to the checked-in snapshot, or rewrite the snapshot
/// when `GOLDEN_UPDATE` is set.
fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            want,
            got,
            "{name}: first difference at line {} (regenerate with GOLDEN_UPDATE=1 if intended)",
            i + 1
        );
    }
    panic!(
        "{name}: line counts differ — golden {} vs actual {} (regenerate with GOLDEN_UPDATE=1 if intended)",
        expected.lines().count(),
        actual.lines().count()
    );
}

#[test]
fn golden_tables_and_report() {
    let config = ScenarioConfig::test_small();
    let world = Scenario::run(&config);
    let fw = world.framework();
    check("table1.txt", &Table1::build(&fw).render());
    check(
        "table2.txt",
        &Table2::build(&fw).expect("scenario attaches the zone").render(),
    );
    check(
        "report.txt",
        &Experiments::run(&world, config.scale).render_report(),
    );
}
