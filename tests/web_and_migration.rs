//! Integration test: the Section 5/6 analyses — Web association and DPS
//! migration — recover the behavioural ground truth from measurement data
//! alone.

use dosscope_attackgen::migrate::MigrationTrigger;
use dosscope_core::migration::MigrationAnalysis;
use dosscope_core::webimpact::WebImpact;
use dosscope_harness::{Scenario, ScenarioConfig};

fn world() -> dosscope_harness::World {
    Scenario::run(&ScenarioConfig::test_small())
}

#[test]
fn web_impact_consistency() {
    let world = world();
    let fw = world.framework();
    let web = WebImpact::analyze(&fw).expect("zone attached");

    assert_eq!(web.total_sites, world.synth.zone.domain_count() as u64);
    assert!(web.affected_total <= web.total_sites);
    assert!(web.affected_total as usize == web.site_records.len());
    assert!(web.web_ip_count <= web.target_ip_count);

    // Daily series bounded by totals; the medium+ series is a subset.
    for d in 0..world.days {
        let day = dosscope_types::DayIndex(d);
        assert!(web.daily_sites.get(day) <= web.total_sites as f64);
        assert!(web.daily_sites_medium.get(day) <= web.daily_sites.get(day));
    }

    // Co-hosting histogram counts unique web-hosting target IPs.
    assert_eq!(web.cohosting.total(), web.web_ip_count);

    // Shares are probabilities.
    for share in [web.web_tcp_share, web.web_port_share, web.web_ntp_share] {
        assert!((0.0..=1.0).contains(&share));
    }
}

#[test]
fn biggest_cohost_is_dosarrest_and_tld_shapes_match() {
    // Paper footnote 13: the maximum co-hosting group sits on an IP routed
    // by DOSarrest; and the per-TLD co-hosting distributions share the
    // combined shape.
    let world = world();
    let fw = world.framework();
    let web = WebImpact::analyze(&fw).unwrap();
    let (ip, n) = web.biggest_cohost.expect("some attacked IP hosts sites");
    assert!(n > 100, "biggest group is big: {n}");
    let dosarrest = world.synth.catalog.by_name("DOSarrest").unwrap().id;
    let ops: Vec<_> = world
        .synth
        .zone
        .placements_on_ip(ip, dosscope_types::DayIndex(365))
        .map(|p| p.cname.unwrap_or(p.ns))
        .collect();
    assert!(
        ops.iter().all(|&o| o == dosarrest),
        "biggest co-host operated by DOSarrest"
    );
    // The full Figure 6 shape (small bins dominating the unique-IP count)
    // needs the default scale's tail-pick volume and is validated by the
    // repro harness; at this reduced scale we check structure only: both
    // ends of the spectrum are populated, and the per-TLD histograms are
    // consistent slices of the combined one.
    let bins = web.cohosting.bins();
    assert!(bins[0] > 0, "single-site IPs attacked");
    assert!(bins[2] + bins[3] + bins[4] > 0, "heavily co-hosted IPs attacked");
    for (_tld, hist) in &web.cohosting_by_tld {
        assert!(hist.total() <= web.cohosting.total());
    }
}

#[test]
fn taxonomy_partitions_namespace() {
    let world = world();
    let fw = world.framework();
    let web = WebImpact::analyze(&fw).unwrap();
    let m = MigrationAnalysis::analyze(&fw, &web).expect("dps attached");
    let t = &m.taxonomy;

    assert_eq!(t.attacked + t.unattacked, t.total);
    assert_eq!(
        t.attacked_preexisting + t.attacked_migrating + t.attacked_non_migrating,
        t.attacked
    );
    assert_eq!(
        t.unattacked_preexisting + t.unattacked_migrating + t.unattacked_non_migrating,
        t.unattacked
    );
    // The paper's core qualitative findings hold at any scale:
    let (pre_a, pre_u) = t.preexisting_shares();
    assert!(
        pre_a > pre_u,
        "preexisting customers are far more common among attacked sites"
    );
    let (prot_a, prot_u) = t.protected_shares();
    assert!(prot_a > prot_u, "attacked sites end up protected more often");
}

#[test]
fn measured_migrations_match_ground_truth() {
    let world = world();
    let fw = world.framework();

    // Every applied ground-truth migration must be observable in the DPS
    // data set with the same first-use day.
    let mut checked = 0;
    for gt in world.migrations.migrations.iter().take(500) {
        let measured = world.dps.migration_day(gt.domain, &world.synth.zone);
        // Preexisting-classified domains can't appear (the model skips
        // them), so a measured day must exist and match.
        assert_eq!(
            measured,
            Some(gt.day),
            "domain {:?} ({:?})",
            gt.domain,
            gt.trigger
        );
        checked += 1;
    }
    assert!(checked > 50, "enough migrations to check: {checked}");
    let _ = fw;
}

#[test]
fn migration_delay_analyses_are_sound() {
    let world = world();
    let fw = world.framework();
    let web = WebImpact::analyze(&fw).unwrap();
    let m = MigrationAnalysis::analyze(&fw, &web).unwrap();

    // Delays are positive and CDFs are monotone.
    for ecdf in [&m.delay_all, &m.delay_top5, &m.delay_top1, &m.delay_top01, &m.delay_long4h] {
        assert!(ecdf.samples().iter().all(|&d| d >= 0.0));
        let mut prev = 0.0;
        for t in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 512.0] {
            let c = ecdf.cdf(t);
            assert!(c >= prev);
            prev = c;
        }
    }
    // Intensity correlates with urgency (the paper's core Section 6
    // finding): the top class migrates faster than the overall population.
    if m.delay_top01.len() >= 10 {
        assert!(
            m.delay_top01.cdf(6.0) > m.delay_all.cdf(6.0),
            "top 0.1% are faster"
        );
    }
    // Table 9 rows are a CDF.
    let rows = m.table9_row();
    assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
    assert!((rows.last().unwrap().1 - 100.0).abs() < 1e-9);
}

#[test]
fn boundary_misclassification_is_negligible() {
    // The paper's own robustness check: shortening the attack observation
    // window by a month on either end must leave the Web-site class
    // distribution essentially unchanged.
    let world = world();
    let (full, trimmed) =
        dosscope_harness::experiments::Experiments::boundary_sensitivity(&world, 30);
    let share = |t: &dosscope_core::migration::Taxonomy| {
        (
            t.attacked_share(),
            t.preexisting_shares().0,
            t.migrating_shares().0,
        )
    };
    let (a1, p1, m1) = share(&full);
    let (a2, p2, m2) = share(&trimmed);
    // Fewer observed attacks naturally shrink the attacked set at a
    // 1/20000 scale (coverage is far from saturated); what must stay
    // stable is the *class distribution within* the attacked/unattacked
    // branches — the misclassification the paper worried about.
    assert!((a1 - a2).abs() < 0.15, "attacked share moved: {a1} vs {a2}");
    assert!((p1 - p2).abs() < 0.08, "preexisting share moved: {p1} vs {p2}");
    assert!((m1 - m2).abs() < 0.02, "migrating share moved: {m1} vs {m2}");
}

#[test]
fn infrastructure_impact_runs_in_scenario() {
    let world = world();
    let fw = world.framework();
    let impact = dosscope_core::mailimpact::InfrastructureImpact::analyze(&fw)
        .expect("dns attached");
    // Infrastructure exists and the generator aims some attacks at it.
    assert!(!world.synth.zone.infra().is_empty());
    assert!(impact.mail.events + impact.dns.events > 0, "infra attacked");
    // Affected domains are bounded by the namespace.
    assert!(impact.mail.affected_domains <= world.synth.zone.domain_count() as u64);
    assert!(impact.dns.affected_domains <= world.synth.zone.domain_count() as u64);
}

#[test]
fn platform_moves_visible_in_dns() {
    let world = world();
    // The Wix platform move: migrations with the PlatformMove trigger
    // exist and land on Incapsula or Verisign.
    let platform: Vec<_> = world
        .migrations
        .migrations
        .iter()
        .filter(|m| m.trigger == MigrationTrigger::PlatformMove)
        .collect();
    assert!(!platform.is_empty(), "platform moves happen");
    let incapsula = world.synth.catalog.by_name("Incapsula").unwrap().id;
    let verisign = world.synth.catalog.by_name("Verisign").unwrap().id;
    for m in &platform {
        assert!(
            m.provider == incapsula || m.provider == verisign,
            "unexpected platform destination"
        );
    }
    // And the day after the Wix attack is the modal Wix destination day.
    let wix_day = world.truth.episodes.wix_attack_day;
    assert!(platform
        .iter()
        .any(|m| m.provider == incapsula && m.day.0 == wix_day.0 + 1));
}
