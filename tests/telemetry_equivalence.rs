//! Telemetry counters are part of the serial-equivalence guarantee: the
//! engine counters (`telescope.*`, `fleet.*`, `fusion.*`) count domain
//! facts — batches ingested, flows expired, events emitted — at sites
//! the serial and sharded paths share byte for byte, so for a fixed seed
//! the whole counter map must be identical for any thread count.
//!
//! This lives in its own test binary on purpose: the counter registry is
//! process-global, so the comparison needs a process where no concurrent
//! test is pushing events while collection is enabled. (Pool gauges and
//! span timings are topology- and wall-clock-dependent by design and are
//! excluded — only `counters` carries the determinism contract.)

use dosscope_harness::{Scenario, ScenarioConfig};

#[test]
fn telemetry_counters_are_identical_across_thread_counts() {
    let _telemetry = dosscope_obs::testing::scoped_enable();
    let config = ScenarioConfig {
        scale: 50_000.0,
        ..ScenarioConfig::default()
    };

    let run_counters = |threads: usize| -> Vec<(String, u64)> {
        dosscope_obs::reset();
        let _world = Scenario::run(&ScenarioConfig {
            threads,
            ..config.clone()
        });
        dosscope_obs::registry::counters_snapshot()
    };

    let serial = run_counters(1);
    for required in ["telescope.events", "telescope.flows_expired", "fleet.events"] {
        assert!(
            serial.iter().any(|(n, v)| n == required && *v > 0),
            "serial run recorded {required}: {serial:?}"
        );
    }
    for threads in [2, 8] {
        let threaded = run_counters(threads);
        assert_eq!(
            threaded, serial,
            "{threads} threads: counter map differs from serial"
        );
    }
}
