//! Serial-equivalence harness for the sharded parallel pipeline: the
//! headline guarantee is that for any seed and any thread count the
//! pipeline produces *byte-identical* results.
//!
//! Three layers of evidence:
//!
//! 1. property tests over random synthetic event streams: snapshots,
//!    store aggregates and the joint correlation are invariant to the
//!    shard count;
//! 2. the streaming fusion over real scenario events (exercising the ASN
//!    set-union merge against real enrichment data);
//! 3. full scenario runs for three seeds and threads ∈ {1, 2, 8},
//!    comparing the complete rendered reproduction report byte for byte.

use dosscope_core::streaming::StreamingFusion;
use dosscope_core::{
    Enricher, EventStore, JointAnalysis, ShardedEventStore, ShardedFusion,
};
use dosscope_geo::{AsDb, GeoDb};
use dosscope_harness::experiments::Experiments;
use dosscope_harness::{Scenario, ScenarioConfig};
use dosscope_types::{
    AttackEvent, AttackVector, EventSource, PortSignature, ReflectionProtocol, SimTime,
    TimeRange, TransportProto,
};
use proptest::prelude::*;

/// Build one synthetic event from raw draws. `a` selects the /16 (the
/// shard key), `b` the host, so streams cover many shards with repeated
/// targets (needed for common/joint populations).
fn build_event((a, b, start, dur, is_tele): (u8, u8, u64, u64, bool)) -> AttackEvent {
    let target = std::net::Ipv4Addr::new(10, a % 23, b % 11, 7);
    let when = TimeRange::new(SimTime(start), SimTime(start + dur));
    if is_tele {
        AttackEvent {
            target,
            when,
            vector: AttackVector::RandomlySpoofed {
                proto: if b % 3 == 0 {
                    TransportProto::Udp
                } else {
                    TransportProto::Tcp
                },
                ports: if b % 2 == 0 {
                    PortSignature::Single(80)
                } else {
                    PortSignature::Multi(2 + (b % 5) as u32)
                },
            },
            packets: 25 + b as u64,
            bytes: 1000 + a as u64,
            intensity_pps: 0.5 + a as f64,
            distinct_sources: 1 + b as u32,
        }
    } else {
        AttackEvent {
            target,
            when,
            vector: AttackVector::Reflection {
                protocol: match a % 3 {
                    0 => ReflectionProtocol::Ntp,
                    1 => ReflectionProtocol::Dns,
                    _ => ReflectionProtocol::CharGen,
                },
            },
            packets: 101 + b as u64,
            bytes: 5000 + a as u64,
            intensity_pps: 1.0 + b as f64,
            distinct_sources: 1 + (a % 24) as u32,
        }
    }
}

fn raw_stream() -> impl Strategy<Value = Vec<(u8, u8, u64, u64, bool)>> {
    proptest::collection::vec(
        (
            any::<u8>(),
            any::<u8>(),
            0u64..700 * 86_400,
            60u64..90_000,
            any::<bool>(),
        ),
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fusion_snapshot_is_shard_count_invariant(raw in raw_stream(), shards in 1usize..9) {
        let mut events: Vec<AttackEvent> = raw.into_iter().map(build_event).collect();
        events.sort_by_key(|e| (e.when.start, e.target));
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let mut serial = StreamingFusion::new(&geo, &asdb, 731);
        for e in &events {
            serial.push(e);
        }
        let expect = serial.snapshot();
        let mut sharded = ShardedFusion::new(std::sync::Arc::new(asdb.clone()), 731, shards);
        sharded.push_all(&events);
        let snap = sharded.snapshot();
        prop_assert_eq!(snap.telescope, expect.telescope);
        prop_assert_eq!(snap.honeypot, expect.honeypot);
        prop_assert_eq!(snap.combined_targets, expect.combined_targets);
        prop_assert_eq!(snap.combined_events, expect.combined_events);
        prop_assert_eq!(snap.common_targets, expect.common_targets);
        prop_assert_eq!(snap.joint_targets, expect.joint_targets);
        prop_assert_eq!(snap.asns, expect.asns);
        prop_assert_eq!(snap.last_day, expect.last_day);
        let merged_daily = sharded.daily_attacks();
        prop_assert_eq!(merged_daily.values(), serial.daily_attacks().values());
    }

    #[test]
    fn store_aggregates_are_shard_count_invariant(raw in raw_stream(), shards in 1usize..9) {
        let events: Vec<AttackEvent> = raw.into_iter().map(build_event).collect();
        let tele: Vec<AttackEvent> = events
            .iter()
            .filter(|e| e.source() == EventSource::Telescope)
            .cloned()
            .collect();
        let hp: Vec<AttackEvent> = events
            .iter()
            .filter(|e| e.source() == EventSource::Honeypot)
            .cloned()
            .collect();

        let mut serial = EventStore::new();
        serial.ingest_telescope(tele.clone());
        serial.ingest_honeypot(hp.clone());

        let mut sharded = ShardedEventStore::new(shards);
        sharded.ingest_telescope(tele);
        sharded.ingest_honeypot(hp);

        prop_assert_eq!(sharded.len(), serial.len());
        prop_assert_eq!(
            sharded.summary(EventSource::Telescope),
            serial.summary(EventSource::Telescope)
        );
        prop_assert_eq!(
            sharded.summary(EventSource::Honeypot),
            serial.summary(EventSource::Honeypot)
        );
        prop_assert_eq!(sharded.summary_combined(), serial.summary_combined());
        prop_assert_eq!(sharded.common_targets(), serial.common_targets());

        // The merged store is the serial store, element for element — so
        // the joint correlation agrees on every statistic.
        let merged = sharded.into_store();
        prop_assert_eq!(merged.telescope(), serial.telescope());
        prop_assert_eq!(merged.honeypot(), serial.honeypot());
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let enricher = Enricher::new(&geo, &asdb);
        let a = JointAnalysis::run(&serial, &enricher);
        let b = JointAnalysis::run(&merged, &enricher);
        prop_assert_eq!(a.common_targets, b.common_targets);
        prop_assert_eq!(a.joint_targets, b.joint_targets);
        prop_assert_eq!(a.joint_pairs, b.joint_pairs);
        prop_assert_eq!(a.single_port_share, b.single_port_share);
        prop_assert_eq!(a.tcp_http_share, b.tcp_http_share);
        prop_assert_eq!(a.udp_27015_share, b.udp_27015_share);
        prop_assert_eq!(a.reflection_shares, b.reflection_shares);
    }
}

/// The fusion merge against *real* enrichment data: scenario events have
/// real ASNs, so this is the test that distinguishes the (correct) ASN
/// set union from the (incorrect) per-shard sum — an AS spans /16s.
#[test]
fn sharded_fusion_matches_serial_on_scenario_events() {
    let world = Scenario::run(&ScenarioConfig {
        scale: 50_000.0,
        ..ScenarioConfig::default()
    });
    let mut all: Vec<AttackEvent> = world
        .store
        .telescope()
        .iter()
        .chain(world.store.honeypot())
        .collect();
    all.sort_by_key(|e| (e.when.start, e.target));

    let asdb = std::sync::Arc::new(world.asdb.clone());
    let mut serial = StreamingFusion::new(&world.geo, &world.asdb, world.days);
    for e in &all {
        serial.push(e);
    }
    let expect = serial.snapshot();
    assert!(expect.asns > 1, "scenario events map to real ASNs");

    for shards in [1, 2, 8] {
        let mut sharded = ShardedFusion::new(asdb.clone(), world.days, shards);
        sharded.push_all(&all);
        let snap = sharded.snapshot();
        assert_eq!(snap.telescope, expect.telescope, "{shards} shards");
        assert_eq!(snap.honeypot, expect.honeypot);
        assert_eq!(snap.combined_targets, expect.combined_targets);
        assert_eq!(snap.combined_events, expect.combined_events);
        assert_eq!(snap.common_targets, expect.common_targets);
        assert_eq!(snap.joint_targets, expect.joint_targets);
        assert_eq!(snap.asns, expect.asns, "{shards} shards: ASN union");
        assert_eq!(snap.last_day, expect.last_day);
    }
}

/// The acceptance check: full scenario runs for three seeds, rendered to
/// the complete reproduction report, must be byte-identical for
/// threads ∈ {1, 2, 8}. (The telemetry half of the guarantee — the
/// engine counter map is identical across thread counts — lives in
/// `telemetry_equivalence.rs`, its own test binary: counters are a
/// process-global registry, so the comparison needs a process to itself.)
#[test]
fn reports_are_byte_identical_across_thread_counts() {
    for seed in [0xD05C09Eu64, 0x5EED_0001, 0xBEEF_CAFE] {
        let base = ScenarioConfig {
            seed,
            scale: 50_000.0,
            ..ScenarioConfig::default()
        };
        let serial_world = Scenario::run(&base);
        let serial_report = Experiments::run(&serial_world, base.scale).render_report();
        for threads in [2, 8] {
            let world = Scenario::run(&ScenarioConfig {
                threads,
                ..base.clone()
            });
            let report = Experiments::run(&world, base.scale).render_report();
            assert!(
                report == serial_report,
                "seed {seed:#x}, {threads} threads: report differs from serial"
            );
        }
    }
}
