//! # dosscope-dps
//!
//! The DDoS-Protection-Service data set (Section 3.3 of the paper): which
//! Web sites outsource protection to which of ten providers, and since
//! when, inferred from DNS and BGP indicators using the methodology of
//! Jonker et al. ("Measuring the Adoption of DDoS Protection Services",
//! IMC 2016).
//!
//! A site uses a DPS on a given day when its `www` placement shows one of
//! the provider's fingerprints:
//!
//! * **DNS diversion** — the `www` label expands through the provider's
//!   CNAME (reverse-proxy fronting), or the provider operates the
//!   authoritative name servers;
//! * **BGP diversion** — the A record's address is originated by the
//!   provider's AS (customer prefix announced by the DPS).
//!
//! The inference runs over the measured zone only; it never reads the
//! generator's ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dosscope_dns::{DomainId, OrgCatalog, OrgId, OrgRole, ZoneStore};
use dosscope_geo::AsDb;
use dosscope_types::DayIndex;
use std::collections::HashMap;

/// Index of a provider within the DPS catalog (0..10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProviderId(pub u8);

/// How traffic is diverted to the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Diversion {
    /// DNS-based diversion (CNAME fronting / provider name servers).
    Dns,
    /// BGP-based diversion (provider announces the customer prefix).
    Bgp,
}

/// One provider of the ten the paper considers.
#[derive(Debug, Clone)]
pub struct Provider {
    /// Catalog index.
    pub id: ProviderId,
    /// Display name (matches Table 3).
    pub name: String,
    /// The provider's organisation entry in the DNS catalog.
    pub org: OrgId,
}

/// One observed protection interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UseInterval {
    /// Protecting provider.
    pub provider: ProviderId,
    /// First day protection is visible.
    pub from: DayIndex,
    /// One past the last protected day.
    pub until: DayIndex,
    /// Diversion mechanism observed.
    pub diversion: Diversion,
}

/// The measured adoption data set.
#[derive(Debug, Default)]
pub struct DpsDataset {
    providers: Vec<Provider>,
    per_domain: HashMap<DomainId, Vec<UseInterval>>,
}

impl DpsDataset {
    /// Infer the data set from a zone, a catalog and the routing table.
    ///
    /// Every placement of every domain is checked against all provider
    /// fingerprints, exactly like the daily OpenINTEL scan of [5] — the
    /// interval encoding just avoids re-deriving identical days.
    pub fn infer(zone: &ZoneStore, catalog: &OrgCatalog, asdb: &AsDb) -> DpsDataset {
        let providers: Vec<Provider> = catalog
            .by_role(OrgRole::Dps)
            .enumerate()
            .map(|(i, o)| Provider {
                id: ProviderId(i as u8),
                name: o.name.clone(),
                org: o.id,
            })
            .collect();
        let by_org: HashMap<OrgId, ProviderId> =
            providers.iter().map(|p| (p.org, p.id)).collect();
        let by_asn: HashMap<_, ProviderId> = providers
            .iter()
            .filter_map(|p| catalog.get(p.org).asn.map(|a| (a, p.id)))
            .collect();

        let mut per_domain: HashMap<DomainId, Vec<UseInterval>> = HashMap::new();
        for domain in zone.domain_ids() {
            for placement in zone.placements_of(domain) {
                if placement.days.is_empty() {
                    continue;
                }
                // DNS indicators first: CNAME fronting, then provider NS.
                let dns_hit = placement
                    .cname
                    .and_then(|c| by_org.get(&c))
                    .or_else(|| by_org.get(&placement.ns));
                let (provider, diversion) = match dns_hit {
                    Some(&p) => (Some(p), Diversion::Dns),
                    None => {
                        // BGP indicator: the A record routes to the
                        // provider's AS.
                        let hit = asdb
                            .asn_of(placement.ip)
                            .and_then(|asn| by_asn.get(&asn).copied());
                        (hit, Diversion::Bgp)
                    }
                };
                if let Some(provider) = provider {
                    per_domain.entry(domain).or_default().push(UseInterval {
                        provider,
                        from: placement.days.start,
                        until: placement.days.end,
                        diversion,
                    });
                }
            }
        }
        for intervals in per_domain.values_mut() {
            intervals.sort_by_key(|u| u.from);
        }
        DpsDataset {
            providers,
            per_domain,
        }
    }

    /// The providers, in catalog order.
    pub fn providers(&self) -> &[Provider] {
        &self.providers
    }

    /// Provider by name.
    pub fn provider_by_name(&self, name: &str) -> Option<&Provider> {
        self.providers.iter().find(|p| p.name == name)
    }

    /// All protection intervals of a domain (sorted by start day).
    pub fn intervals_of(&self, domain: DomainId) -> &[UseInterval] {
        self.per_domain
            .get(&domain)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// First day the domain is seen using any DPS, with the provider.
    pub fn first_use(&self, domain: DomainId) -> Option<(DayIndex, ProviderId)> {
        self.intervals_of(domain).first().map(|u| (u.from, u.provider))
    }

    /// The provider protecting the domain on `day`, if any.
    pub fn provider_on(&self, domain: DomainId, day: DayIndex) -> Option<ProviderId> {
        self.intervals_of(domain)
            .iter()
            .find(|u| day >= u.from && day < u.until)
            .map(|u| u.provider)
    }

    /// Whether the domain already used a DPS when it first appeared in the
    /// DNS — the paper's "preexisting customer" class.
    pub fn is_preexisting(&self, domain: DomainId, zone: &ZoneStore) -> bool {
        self.first_use(domain)
            .is_some_and(|(day, _)| day <= zone.first_seen(domain))
    }

    /// The day the domain *migrated* to a DPS (first use strictly after
    /// first appearance), if any.
    pub fn migration_day(&self, domain: DomainId, zone: &ZoneStore) -> Option<DayIndex> {
        self.first_use(domain)
            .filter(|(day, _)| *day > zone.first_seen(domain))
            .map(|(day, _)| day)
    }

    /// Number of domains ever protected by `provider` (Table 3's
    /// "#Web sites" per provider).
    pub fn customer_count(&self, provider: ProviderId) -> u64 {
        self.per_domain
            .values()
            .filter(|intervals| intervals.iter().any(|u| u.provider == provider))
            .count() as u64
    }

    /// Number of domains with any DPS use.
    pub fn protected_count(&self) -> u64 {
        self.per_domain.len() as u64
    }

    /// Protected domains per day — the adoption trend of Jonker et al.
    /// (IMC 2016), which found DPS use growing steadily. Each day counts
    /// the domains with an active protection interval.
    pub fn adoption_series(&self, days: u32) -> dosscope_types::TimeSeries {
        let mut ts = dosscope_types::TimeSeries::zeros(days);
        for intervals in self.per_domain.values() {
            for u in intervals {
                for d in u.from.0..u.until.0.min(days) {
                    ts.add(DayIndex(d), 1.0);
                }
            }
        }
        ts
    }

    /// Share of protection intervals using each diversion mechanism —
    /// the DNS-vs-BGP split of Section 2.2 (single sites divert via DNS,
    /// hosters with whole infrastructures via BGP).
    pub fn diversion_split(&self) -> (u64, u64) {
        let mut dns = 0;
        let mut bgp = 0;
        for intervals in self.per_domain.values() {
            for u in intervals {
                match u.diversion {
                    Diversion::Dns => dns += 1,
                    Diversion::Bgp => bgp += 1,
                }
            }
        }
        (dns, bgp)
    }

    /// Adoption trend per provider: `(provider, first-day count, last-day
    /// count)` — growth at a glance.
    pub fn adoption_growth(&self, days: u32) -> Vec<(ProviderId, u64, u64)> {
        let last = DayIndex(days.saturating_sub(1));
        self.providers
            .iter()
            .map(|p| {
                let mut first_day = 0u64;
                let mut last_day = 0u64;
                for intervals in self.per_domain.values() {
                    for u in intervals.iter().filter(|u| u.provider == p.id) {
                        if u.from.0 == 0 {
                            first_day += 1;
                        }
                        if u.from <= last && last < u.until {
                            last_day += 1;
                        }
                    }
                }
                (p.id, first_day, last_day)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_dns::{DayRange, Placement, Tld};
    use dosscope_types::Asn;
    use std::net::Ipv4Addr;

    /// A minimal world: one hoster, two DPS providers (one CNAME-fronting,
    /// one BGP-diverting).
    struct World {
        zone: ZoneStore,
        catalog: OrgCatalog,
        asdb: AsDb,
        hoster: OrgId,
        cloudflare: OrgId,
        level3: OrgId,
    }

    fn world() -> World {
        let mut catalog = OrgCatalog::new();
        let hoster = catalog.add("SomeHost", Some(Asn(64500)), OrgRole::Hoster, false);
        let cloudflare = catalog.add("CloudFlare", Some(Asn(13335)), OrgRole::Dps, true);
        let level3 = catalog.add("Level 3", Some(Asn(3356)), OrgRole::Dps, false);
        let mut asdb = AsDb::new();
        asdb.insert("203.0.113.0/24".parse().unwrap(), Asn(64500));
        asdb.insert("104.16.0.0/16".parse().unwrap(), Asn(13335));
        asdb.insert("4.0.0.0/16".parse().unwrap(), Asn(3356));
        World {
            zone: ZoneStore::new(),
            catalog,
            asdb,
            hoster,
            cloudflare,
            level3,
        }
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn detects_cname_fronted_migration() {
        let mut w = world();
        let d = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(200)));
        w.zone.place(Placement {
            domain: d,
            ip: ip("203.0.113.5"),
            days: DayRange::new(DayIndex(0), DayIndex(100)),
            ns: w.hoster,
            cname: None,
        });
        // Migrates to CloudFlare (CNAME + their address space) on day 100.
        w.zone.place(Placement {
            domain: d,
            ip: ip("104.16.1.1"),
            days: DayRange::new(DayIndex(100), DayIndex(200)),
            ns: w.hoster,
            cname: Some(w.cloudflare),
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let (day, provider) = ds.first_use(d).expect("use detected");
        assert_eq!(day, DayIndex(100));
        assert_eq!(ds.providers()[provider.0 as usize].name, "CloudFlare");
        assert!(!ds.is_preexisting(d, &w.zone));
        assert_eq!(ds.migration_day(d, &w.zone), Some(DayIndex(100)));
        assert_eq!(ds.provider_on(d, DayIndex(50)), None);
        assert_eq!(ds.provider_on(d, DayIndex(150)), Some(provider));
        let iv = ds.intervals_of(d)[0];
        assert_eq!(iv.diversion, Diversion::Dns);
    }

    #[test]
    fn detects_bgp_diversion_without_dns_indicators() {
        let mut w = world();
        let d = w.zone.add_domain(Tld::Net, DayRange::new(DayIndex(0), DayIndex(100)));
        // The site's own hoster runs DNS, but the prefix routes to Level 3
        // (scrubbing-centre announcement).
        w.zone.place(Placement {
            domain: d,
            ip: ip("4.0.7.7"),
            days: DayRange::new(DayIndex(20), DayIndex(100)),
            ns: w.hoster,
            cname: None,
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let iv = ds.intervals_of(d)[0];
        assert_eq!(iv.diversion, Diversion::Bgp);
        assert_eq!(ds.providers()[iv.provider.0 as usize].name, "Level 3");
        let _ = w.level3;
    }

    #[test]
    fn preexisting_customer_classified() {
        let mut w = world();
        let d = w
            .zone
            .add_domain(Tld::Org, DayRange::new(DayIndex(30), DayIndex(100)));
        w.zone.place(Placement {
            domain: d,
            ip: ip("104.16.2.2"),
            days: DayRange::new(DayIndex(30), DayIndex(100)),
            ns: w.hoster,
            cname: Some(w.cloudflare),
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        assert!(ds.is_preexisting(d, &w.zone));
        assert_eq!(ds.migration_day(d, &w.zone), None);
    }

    #[test]
    fn unprotected_domain_has_no_entries() {
        let mut w = world();
        let d = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(50)));
        w.zone.place(Placement {
            domain: d,
            ip: ip("203.0.113.9"),
            days: DayRange::new(DayIndex(0), DayIndex(50)),
            ns: w.hoster,
            cname: None,
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        assert!(ds.first_use(d).is_none());
        assert!(!ds.is_preexisting(d, &w.zone));
        assert_eq!(ds.protected_count(), 0);
    }

    #[test]
    fn customer_counts_per_provider() {
        let mut w = world();
        for i in 0..5u32 {
            let d = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(50)));
            w.zone.place(Placement {
                domain: d,
                ip: ip(&format!("104.16.3.{i}")),
                days: DayRange::new(DayIndex(0), DayIndex(50)),
                ns: w.hoster,
                cname: Some(w.cloudflare),
            });
        }
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let cf = ds.provider_by_name("CloudFlare").unwrap().id;
        let l3 = ds.provider_by_name("Level 3").unwrap().id;
        assert_eq!(ds.customer_count(cf), 5);
        assert_eq!(ds.customer_count(l3), 0);
        assert_eq!(ds.protected_count(), 5);
    }

    #[test]
    fn diversion_split_counts_both_mechanisms() {
        let mut w = world();
        let d0 = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(10)));
        w.zone.place(Placement {
            domain: d0,
            ip: ip("104.16.0.1"),
            days: DayRange::new(DayIndex(0), DayIndex(10)),
            ns: w.hoster,
            cname: Some(w.cloudflare), // DNS diversion
        });
        let d1 = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(10)));
        w.zone.place(Placement {
            domain: d1,
            ip: ip("4.0.1.1"), // Level 3 space, no DNS indicator: BGP
            days: DayRange::new(DayIndex(0), DayIndex(10)),
            ns: w.hoster,
            cname: None,
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        assert_eq!(ds.diversion_split(), (1, 1));
    }

    #[test]
    fn adoption_series_counts_active_protection() {
        let mut w = world();
        // One preexisting customer, one migrating on day 50.
        let d0 = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(100)));
        w.zone.place(Placement {
            domain: d0,
            ip: ip("104.16.0.1"),
            days: DayRange::new(DayIndex(0), DayIndex(100)),
            ns: w.hoster,
            cname: Some(w.cloudflare),
        });
        let d1 = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(100)));
        w.zone.place(Placement {
            domain: d1,
            ip: ip("203.0.113.4"),
            days: DayRange::new(DayIndex(0), DayIndex(50)),
            ns: w.hoster,
            cname: None,
        });
        w.zone.place(Placement {
            domain: d1,
            ip: ip("104.16.0.2"),
            days: DayRange::new(DayIndex(50), DayIndex(100)),
            ns: w.hoster,
            cname: Some(w.cloudflare),
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let ts = ds.adoption_series(100);
        assert_eq!(ts.get(DayIndex(0)), 1.0);
        assert_eq!(ts.get(DayIndex(49)), 1.0);
        assert_eq!(ts.get(DayIndex(50)), 2.0, "adoption grows after migration");
        assert_eq!(ts.get(DayIndex(99)), 2.0);
        let growth = ds.adoption_growth(100);
        let cf = ds.provider_by_name("CloudFlare").unwrap().id;
        let row = growth.iter().find(|(p, _, _)| *p == cf).unwrap();
        assert_eq!((row.1, row.2), (1, 2));
    }

    #[test]
    fn empty_placement_intervals_ignored() {
        let mut w = world();
        let d = w.zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(50)));
        w.zone.place(Placement {
            domain: d,
            ip: ip("203.0.113.1"),
            days: DayRange::new(DayIndex(0), DayIndex(50)),
            ns: w.hoster,
            cname: None,
        });
        // Truncating at day 0 leaves an empty interval behind.
        w.zone.truncate_at(d, DayIndex(0));
        w.zone.place(Placement {
            domain: d,
            ip: ip("104.16.9.9"),
            days: DayRange::new(DayIndex(0), DayIndex(50)),
            ns: w.hoster,
            cname: Some(w.cloudflare),
        });
        let ds = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        assert!(ds.is_preexisting(d, &w.zone));
        assert_eq!(ds.intervals_of(d).len(), 1);
    }
}
