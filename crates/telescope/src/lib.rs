//! # dosscope-telescope
//!
//! The network-telescope side of the reproduction: a darknet model
//! ([`Telescope`]), the backscatter classifier, a victim-keyed flow table
//! with the conservative 300-second timeout, and the Moore et al.
//! randomly-spoofed-DoS detector with its published thresholds — packaged
//! in a Corsaro-plugin-like processing architecture ([`plugin`]).
//!
//! The paper (Section 3.1.1) implements the detection and classification
//! methodology of Moore et al. as a Corsaro plugin in three steps:
//!
//! 1. **identify and extract backscatter packets** — [`classify`]: TCP
//!    SYN/ACK and RST, plus the nine ICMP response types;
//! 2. **combine related packets into attack flows on the victim IP** —
//!    [`flow`]: the victim is the *source* of backscatter; flows expire
//!    after 300 s of inactivity;
//! 3. **attack classification and filtering** — [`detector`]: compute
//!    unique spoofed sources, distinct ports, packet/byte totals, duration
//!    and the maximum packet rate per second in any minute, then discard
//!    flows with fewer than 25 packets, shorter than 60 s, or with a
//!    maximum rate under 0.5 pps.
//!
//! ```
//! use dosscope_telescope::{run_rsdos, PacketBatch, RsdosDetector, Telescope};
//! use dosscope_types::SimTime;
//! use dosscope_wire::builder;
//!
//! // 90 seconds of SYN-flood backscatter at 2 pps observed.
//! let victim: std::net::Ipv4Addr = "203.0.113.80".parse().unwrap();
//! let batches = (0..90u64).map(|s| {
//!     let spoofed = std::net::Ipv4Addr::new(44, 0, (s % 200) as u8, 1);
//!     let pkt = builder::tcp_syn_ack(victim, 80, spoofed, 40_000, s as u32);
//!     PacketBatch::repeated(SimTime(s), 2, pkt)
//! });
//! let detector = RsdosDetector::with_defaults(Telescope::default_slash8());
//! let (events, _) = run_rsdos(detector, batches, 60);
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].target, victim);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod detector;
pub mod flow;
pub mod packet;
pub mod plugin;
pub mod sharded;

pub use classify::{classify, classify_batch, Backscatter, BatchClass};
pub use detector::{DetectorConfig, RsdosDetector};
pub use packet::PacketBatch;
pub use plugin::{drive_plugin, run_rsdos, Corsaro, RsdosPlugin, StatsPlugin, TelescopePlugin};
pub use sharded::{route_batches, victim_shard, ShardedRsdos};

use dosscope_types::Ipv4Cidr;
use std::net::Ipv4Addr;

/// The darknet itself: an unused address block that passively collects
/// unsolicited traffic.
///
/// The UCSD telescope is a /8 — roughly 1/256 of the IPv4 address space —
/// so a victim's backscatter rate observed here must be multiplied by
/// [`Telescope::scaling_factor`] to estimate the rate at the victim.
#[derive(Debug, Clone, Copy)]
pub struct Telescope {
    prefix: Ipv4Cidr,
}

impl Telescope {
    /// A telescope observing `prefix`.
    pub fn new(prefix: Ipv4Cidr) -> Telescope {
        Telescope { prefix }
    }

    /// The default UCSD-like /8 darknet used across the workspace.
    pub fn default_slash8() -> Telescope {
        Telescope::new(Ipv4Cidr::new(Ipv4Addr::new(44, 0, 0, 0), 8))
    }

    /// The observed prefix.
    pub fn prefix(&self) -> Ipv4Cidr {
        self.prefix
    }

    /// Whether a destination address falls inside the darknet (i.e. the
    /// packet would be captured).
    pub fn observes(&self, dst: Ipv4Addr) -> bool {
        self.prefix.contains(dst)
    }

    /// The fraction of uniformly spoofed addresses that land in the
    /// darknet, as `1/f` — 256 for a /8. Estimated victim-side packet
    /// rates are observed rates times this factor.
    pub fn scaling_factor(&self) -> f64 {
        (1u64 << self.prefix.len()) as f64
    }

    /// The probability that a uniformly random IPv4 address falls inside
    /// the darknet.
    pub fn coverage(&self) -> f64 {
        1.0 / self.scaling_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slash8_scaling() {
        let t = Telescope::default_slash8();
        assert_eq!(t.scaling_factor(), 256.0);
        assert!((t.coverage() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn observes_only_darknet() {
        let t = Telescope::default_slash8();
        assert!(t.observes("44.1.2.3".parse().unwrap()));
        assert!(!t.observes("45.1.2.3".parse().unwrap()));
    }

    #[test]
    fn custom_prefix() {
        let t = Telescope::new("198.18.0.0/15".parse().unwrap());
        assert_eq!(t.scaling_factor(), 32768.0);
        assert!(t.observes("198.19.255.255".parse().unwrap()));
    }
}
