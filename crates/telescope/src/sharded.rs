//! Sharded parallel variant of the RSDoS pipeline.
//!
//! Batches are partitioned by the *victim's* /16 shard (backscatter is
//! sent by the victim, so the victim is the packet source) and each shard
//! runs an independent [`RsdosPlugin`] on its own thread. The flow table,
//! the classifier and the filter are all victim-local state, so a shard
//! sees every packet of every flow it owns, in the original order — the
//! merged result is byte-identical to a serial run:
//!
//! * flow splits happen on per-flow idle gaps (in `offer`) regardless of
//!   when `interval_end` fires, so per-shard interval cadence cannot
//!   change event content;
//! * the final ordering is the canonical `(start, target)` sort the serial
//!   detector already produces;
//! * every [`DetectorStats`] counter is a per-batch or per-flow sum.

use crate::detector::{DetectorConfig, DetectorStats, RsdosDetector};
use crate::packet::PacketBatch;
use crate::plugin::{RsdosPlugin, TelescopePlugin};
use crate::Telescope;
use dosscope_types::{shard_of, AttackEvent, SimTime};
use dosscope_wire::Ipv4Packet;

/// The shard owning a raw packet, by victim (= source) address. Batches
/// that fail IPv4 parsing go to shard 0, whose detector counts them as
/// malformed exactly as the serial detector would.
pub fn victim_shard(bytes: &[u8], shards: usize) -> usize {
    match Ipv4Packet::new_checked(bytes) {
        Ok(ip) => shard_of(ip.src(), shards),
        Err(_) => 0,
    }
}

/// Split a time-ordered batch stream into per-shard streams. Relative
/// order within each shard is preserved, which is all the per-victim flow
/// logic needs.
pub fn partition_batches(batches: Vec<PacketBatch>, shards: usize) -> Vec<Vec<PacketBatch>> {
    let shards = shards.max(1);
    let mut parts: Vec<Vec<PacketBatch>> = (0..shards).map(|_| Vec::new()).collect();
    for b in batches {
        let s = victim_shard(&b.bytes, shards);
        parts[s].push(b);
    }
    parts
}

/// One shard: a detector plugin plus its own interval tracker (interval
/// boundaries are derived from the shard's batch stream, mirroring what a
/// per-shard Corsaro driver would do).
struct ShardLane {
    plugin: RsdosPlugin,
    current_interval: Option<u64>,
}

fn drive_lane(lane: &mut ShardLane, batches: &[PacketBatch], interval_secs: u64) {
    for b in batches {
        let interval = b.ts.secs() / interval_secs;
        match lane.current_interval {
            None => lane.current_interval = Some(interval),
            Some(cur) if interval > cur => {
                lane.plugin.interval_end(SimTime(interval * interval_secs));
                lane.current_interval = Some(interval);
            }
            _ => {}
        }
        lane.plugin.process_batch(b);
    }
}

/// The parallel RSDoS engine: N independent detectors over victim shards.
pub struct ShardedRsdos {
    lanes: Vec<ShardLane>,
    interval_secs: u64,
}

impl ShardedRsdos {
    /// An engine with `shards` detector shards (0 is treated as 1), all
    /// observing the same darknet with the same thresholds.
    pub fn new(
        telescope: Telescope,
        config: DetectorConfig,
        interval_secs: u64,
        shards: usize,
    ) -> ShardedRsdos {
        let shards = shards.max(1);
        ShardedRsdos {
            lanes: (0..shards)
                .map(|_| ShardLane {
                    plugin: RsdosPlugin::new(RsdosDetector::new(telescope, config)),
                    current_interval: None,
                })
                .collect(),
            interval_secs: interval_secs.max(1),
        }
    }

    /// An engine with the published default thresholds and a 60 s interval.
    pub fn with_defaults(telescope: Telescope, shards: usize) -> ShardedRsdos {
        ShardedRsdos::new(telescope, DetectorConfig::default(), 60, shards)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Ingest one pre-partitioned chunk of the stream (one entry per
    /// shard, as produced by [`partition_batches`]), one worker thread per
    /// shard. Chunks must arrive in time order, like the serial stream.
    pub fn ingest_partitioned(&mut self, parts: &[Vec<PacketBatch>]) {
        assert_eq!(
            parts.len(),
            self.lanes.len(),
            "partition count must match shard count"
        );
        let interval_secs = self.interval_secs;
        if self.lanes.len() == 1 {
            drive_lane(&mut self.lanes[0], &parts[0], interval_secs);
            return;
        }
        std::thread::scope(|s| {
            for (lane, batches) in self.lanes.iter_mut().zip(parts) {
                s.spawn(move || drive_lane(lane, batches, interval_secs));
            }
        });
    }

    /// Partition and ingest one time-ordered chunk of the stream.
    pub fn ingest(&mut self, batches: Vec<PacketBatch>) {
        let parts = partition_batches(batches, self.lanes.len());
        self.ingest_partitioned(&parts);
    }

    /// End of trace: finish every shard (in parallel), merge events into
    /// the canonical `(start, target)` order and sum the statistics.
    pub fn finish(self) -> (Vec<AttackEvent>, DetectorStats) {
        let parallel = self.lanes.len() > 1;
        let results: Vec<(Vec<AttackEvent>, DetectorStats)> = if parallel {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .lanes
                    .into_iter()
                    .map(|mut lane| {
                        s.spawn(move || {
                            lane.plugin.finish();
                            lane.plugin.into_results()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("telescope shard worker panicked"))
                    .collect()
            })
        } else {
            self.lanes
                .into_iter()
                .map(|mut lane| {
                    lane.plugin.finish();
                    lane.plugin.into_results()
                })
                .collect()
        };

        let mut events = Vec::new();
        let mut stats = DetectorStats::default();
        for (ev, st) in results {
            events.extend(ev);
            stats.malformed += st.malformed;
            stats.non_backscatter += st.non_backscatter;
            stats.backscatter_packets += st.backscatter_packets;
            stats.flows_finalized += st.flows_finalized;
            stats.flows_filtered += st.flows_filtered;
            stats.events += st.events;
        }
        events.sort_by_key(|e| (e.when.start, e.target));
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::run_rsdos;
    use dosscope_wire::builder;
    use std::net::Ipv4Addr;

    /// Interleaved backscatter from victims spread across many /16s, plus
    /// sub-threshold noise and a malformed batch.
    fn mixed_stream() -> Vec<PacketBatch> {
        let victims: Vec<Ipv4Addr> = (0..12u32)
            .map(|i| Ipv4Addr::from(0xCB00_0000 | (i << 16) | 0x50))
            .collect();
        let mut batches = Vec::new();
        for s in 0..600u64 {
            for (vi, v) in victims.iter().enumerate() {
                if (s + vi as u64).is_multiple_of(3) {
                    let spoofed = Ipv4Addr::new(44, (s % 250) as u8, vi as u8, 7);
                    let pkt = builder::tcp_syn_ack(*v, 80, spoofed, 40_000, s as u32);
                    batches.push(PacketBatch::repeated(SimTime(s), 2, pkt));
                }
            }
        }
        // A victim that never clears the packet threshold.
        let weak: Ipv4Addr = "198.51.100.9".parse().unwrap();
        for s in 0..5u64 {
            let pkt = builder::tcp_syn_ack(weak, 443, Ipv4Addr::new(44, 9, 9, 9), 1, s as u32);
            batches.push(PacketBatch::single(SimTime(s * 120), pkt));
        }
        batches.push(PacketBatch::repeated(SimTime(10), 1, vec![0xEE; 7]));
        batches.sort_by_key(|b| b.ts);
        batches
    }

    #[test]
    fn sharded_matches_serial() {
        let telescope = Telescope::default_slash8();
        let (serial_events, serial_stats) =
            run_rsdos(RsdosDetector::with_defaults(telescope), mixed_stream(), 60);
        assert!(!serial_events.is_empty());
        for shards in [1, 2, 3, 8] {
            let mut engine = ShardedRsdos::with_defaults(telescope, shards);
            engine.ingest(mixed_stream());
            let (events, stats) = engine.finish();
            assert_eq!(events, serial_events, "{shards} shards: events differ");
            assert_eq!(stats.malformed, serial_stats.malformed);
            assert_eq!(stats.non_backscatter, serial_stats.non_backscatter);
            assert_eq!(stats.backscatter_packets, serial_stats.backscatter_packets);
            assert_eq!(stats.flows_filtered, serial_stats.flows_filtered);
            assert_eq!(stats.events, serial_stats.events);
        }
    }

    #[test]
    fn chunked_ingestion_matches_single_shot() {
        let telescope = Telescope::default_slash8();
        let stream = mixed_stream();
        let mut whole = ShardedRsdos::with_defaults(telescope, 4);
        whole.ingest(stream.clone());
        let (a, _) = whole.finish();

        let mut chunked = ShardedRsdos::with_defaults(telescope, 4);
        for chunk in stream.chunks(97) {
            chunked.ingest(chunk.to_vec());
        }
        let (b, _) = chunked.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_batches_go_to_shard_zero() {
        assert_eq!(victim_shard(&[0xAB; 3], 8), 0);
        let parts = partition_batches(
            vec![PacketBatch::repeated(SimTime(0), 1, vec![0xAB; 3])],
            8,
        );
        assert_eq!(parts[0].len(), 1);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
