//! Sharded parallel variant of the RSDoS pipeline, on the persistent
//! worker pool.
//!
//! Batches are routed by the *victim's* address (backscatter is sent by
//! the victim, so the victim is the packet source) and each shard's
//! [`RsdosPlugin`] lives on a long-lived [`ShardPool`] worker for the
//! whole run — no thread spawn per chunk, no per-chunk re-partitioning.
//! A chunk is shared with every worker as one [`Routed`] view (`Arc`'d
//! batch vector plus per-shard index lists); workers read their batches
//! in place. The flow table, the classifier and the filter are all
//! victim-local state, so a shard sees every packet of every flow it
//! owns, in the original order — the single merge at [`ShardedRsdos::
//! finish`] is byte-identical to a serial run:
//!
//! * flow splits happen on per-flow idle gaps (in `offer`) regardless of
//!   when `interval_end` fires, so per-shard interval cadence cannot
//!   change event content;
//! * the final ordering is the canonical `(start, target)` sort the serial
//!   detector already produces;
//! * every [`DetectorStats`] counter is a per-batch or per-flow sum.

use crate::detector::{DetectorConfig, DetectorStats, RsdosDetector};
use crate::packet::PacketBatch;
use crate::plugin::{RsdosPlugin, TelescopePlugin};
use crate::Telescope;
use dosscope_types::{shard_of_addr, AttackEvent, Routed, ShardPool, SimTime};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Bounded per-worker queue depth: one chunk in flight, a few queued —
/// enough to overlap rendering with detection without unbounded growth.
const QUEUE_DEPTH: usize = 4;

/// The shard owning a raw packet, by victim (= source) address. Routing
/// sits on the producer's critical path, so it reads the source address
/// straight from the fixed header offset instead of fully validating the
/// packet — correctness only needs a deterministic, victim-local
/// assignment, and the shard's detector re-validates and counts malformed
/// batches exactly as the serial detector would. Detector state is keyed
/// by the complete victim address and the merge only sums counters, so
/// the full-address key ([`shard_of_addr`]) is safe here and spreads a
/// hot hosting /16 across all shards instead of serialising it on one.
/// Batches too short to carry an IPv4 source go to shard 0.
pub fn victim_shard(bytes: &[u8], shards: usize) -> usize {
    match bytes.get(12..16) {
        Some(src) if bytes[0] >> 4 == 4 => {
            shard_of_addr(Ipv4Addr::new(src[0], src[1], src[2], src[3]), shards)
        }
        _ => 0,
    }
}

/// Route a time-ordered chunk of the stream by victim shard, without
/// copying any batch. Relative order within each shard is preserved,
/// which is all the per-victim flow logic needs.
pub fn route_batches(batches: Arc<Vec<PacketBatch>>, shards: usize) -> Routed<PacketBatch> {
    let shards = shards.max(1);
    Routed::build(batches, shards, |b| victim_shard(&b.bytes, shards))
}

/// One shard: a detector plugin plus its own interval tracker (interval
/// boundaries are derived from the shard's batch stream, mirroring what a
/// per-shard Corsaro driver would do) and a peak working-set sample.
struct ShardLane {
    plugin: RsdosPlugin,
    current_interval: Option<u64>,
    peak_live_flows: usize,
}

impl ShardLane {
    fn drive<'a>(&mut self, batches: impl Iterator<Item = &'a PacketBatch>, interval_secs: u64) {
        for b in batches {
            let interval = b.ts.secs() / interval_secs;
            match self.current_interval {
                None => self.current_interval = Some(interval),
                Some(cur) if interval > cur => {
                    self.plugin.interval_end(SimTime(interval * interval_secs));
                    self.current_interval = Some(interval);
                }
                _ => {}
            }
            self.plugin.process_batch(b);
        }
        self.peak_live_flows = self.peak_live_flows.max(self.plugin.live_flows());
    }
}

/// Per-shard result: events, statistics, and the shard's peak live-flow
/// count (sampled once per ingested chunk).
type LaneOutput = (Vec<AttackEvent>, DetectorStats, u64);

/// The parallel RSDoS engine: N independent detectors over victim shards,
/// each living on a persistent pool worker.
pub struct ShardedRsdos {
    pool: ShardPool<Routed<PacketBatch>, ShardLane, LaneOutput>,
    shards: usize,
}

impl ShardedRsdos {
    /// An engine with `shards` detector shards (0 is treated as 1), all
    /// observing the same darknet with the same thresholds, one pool
    /// worker per shard.
    pub fn new(
        telescope: Telescope,
        config: DetectorConfig,
        interval_secs: u64,
        shards: usize,
    ) -> ShardedRsdos {
        let shards = shards.max(1);
        let interval_secs = interval_secs.max(1);
        let pool = ShardPool::new(
            "telescope",
            shards,
            shards,
            QUEUE_DEPTH,
            |_| ShardLane {
                plugin: RsdosPlugin::new(RsdosDetector::new(telescope, config)),
                current_interval: None,
                peak_live_flows: 0,
            },
            move |lane: &mut ShardLane, shard, _shards, routed: &Routed<PacketBatch>| {
                lane.drive(routed.owned(shard), interval_secs);
            },
            |mut lane: ShardLane| {
                lane.plugin.finish();
                let (events, stats) = lane.plugin.into_results();
                (events, stats, lane.peak_live_flows as u64)
            },
        );
        ShardedRsdos { pool, shards }
    }

    /// An engine with the published default thresholds and a 60 s interval.
    pub fn with_defaults(telescope: Telescope, shards: usize) -> ShardedRsdos {
        ShardedRsdos::new(telescope, DetectorConfig::default(), 60, shards)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingest one pre-routed chunk of the stream (as produced by
    /// [`route_batches`] for this engine's shard count). Chunks must
    /// arrive in time order, like the serial stream.
    pub fn ingest_routed(&mut self, routed: Routed<PacketBatch>) {
        assert_eq!(
            routed.shards(),
            self.shards,
            "chunk routed for a different shard count"
        );
        self.pool
            .dispatch(routed)
            .expect("ingest on a finished engine");
    }

    /// Route and ingest one time-ordered chunk of the stream.
    pub fn ingest(&mut self, batches: Vec<PacketBatch>) {
        self.ingest_routed(route_batches(Arc::new(batches), self.shards));
    }

    /// End of trace: drain and finish every shard on its own worker, then
    /// merge once — events into the canonical `(start, target)` order,
    /// statistics summed, and the peak live-flow working set summed over
    /// shards (the shards run concurrently, so the sum bounds the
    /// process-wide peak).
    pub fn finish(mut self) -> (Vec<AttackEvent>, DetectorStats, u64) {
        let results = self
            .pool
            .shutdown()
            .expect("finish on a finished engine");
        let mut events = Vec::new();
        let mut stats = DetectorStats::default();
        let mut peak = 0u64;
        for (ev, st, pk) in results {
            events.extend(ev);
            stats.malformed += st.malformed;
            stats.non_backscatter += st.non_backscatter;
            stats.backscatter_packets += st.backscatter_packets;
            stats.flows_finalized += st.flows_finalized;
            stats.flows_filtered += st.flows_filtered;
            stats.events += st.events;
            peak += pk;
        }
        events.sort_by_key(|e| (e.when.start, e.target));
        // Peak working set: summed per-shard maxima of live flows (each
        // shard's pool gauges carry the per-worker detail).
        dosscope_obs::gauge!("telescope.peak_live_flows").raise(peak);
        (events, stats, peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::run_rsdos;
    use dosscope_wire::builder;
    use std::net::Ipv4Addr;

    /// Interleaved backscatter from victims spread across many /16s, plus
    /// sub-threshold noise and a malformed batch.
    fn mixed_stream() -> Vec<PacketBatch> {
        let victims: Vec<Ipv4Addr> = (0..12u32)
            .map(|i| Ipv4Addr::from(0xCB00_0000 | (i << 16) | 0x50))
            .collect();
        let mut batches = Vec::new();
        for s in 0..600u64 {
            for (vi, v) in victims.iter().enumerate() {
                if (s + vi as u64).is_multiple_of(3) {
                    let spoofed = Ipv4Addr::new(44, (s % 250) as u8, vi as u8, 7);
                    let pkt = builder::tcp_syn_ack(*v, 80, spoofed, 40_000, s as u32);
                    batches.push(PacketBatch::repeated(SimTime(s), 2, pkt));
                }
            }
        }
        // A victim that never clears the packet threshold.
        let weak: Ipv4Addr = "198.51.100.9".parse().unwrap();
        for s in 0..5u64 {
            let pkt = builder::tcp_syn_ack(weak, 443, Ipv4Addr::new(44, 9, 9, 9), 1, s as u32);
            batches.push(PacketBatch::single(SimTime(s * 120), pkt));
        }
        batches.push(PacketBatch::repeated(SimTime(10), 1, vec![0xEE; 7]));
        batches.sort_by_key(|b| b.ts);
        batches
    }

    #[test]
    fn sharded_matches_serial() {
        let telescope = Telescope::default_slash8();
        let (serial_events, serial_stats) =
            run_rsdos(RsdosDetector::with_defaults(telescope), mixed_stream(), 60);
        assert!(!serial_events.is_empty());
        for shards in [1, 2, 3, 8] {
            let mut engine = ShardedRsdos::with_defaults(telescope, shards);
            engine.ingest(mixed_stream());
            let (events, stats, peak) = engine.finish();
            assert_eq!(events, serial_events, "{shards} shards: events differ");
            assert_eq!(stats.malformed, serial_stats.malformed);
            assert_eq!(stats.non_backscatter, serial_stats.non_backscatter);
            assert_eq!(stats.backscatter_packets, serial_stats.backscatter_packets);
            assert_eq!(stats.flows_filtered, serial_stats.flows_filtered);
            assert_eq!(stats.events, serial_stats.events);
            assert!(peak > 0, "{shards} shards: peak working set sampled");
        }
    }

    #[test]
    fn chunked_ingestion_matches_single_shot() {
        let telescope = Telescope::default_slash8();
        let stream = mixed_stream();
        let mut whole = ShardedRsdos::with_defaults(telescope, 4);
        whole.ingest(stream.clone());
        let (a, _, _) = whole.finish();

        // The same persistent workers (and their flow state) must carry
        // over across consecutive chunks.
        let mut chunked = ShardedRsdos::with_defaults(telescope, 4);
        for chunk in stream.chunks(97) {
            chunked.ingest(chunk.to_vec());
        }
        let (b, _, _) = chunked.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_batches_route_to_shard_zero() {
        assert_eq!(victim_shard(&[0xAB; 3], 8), 0);
        let routed = route_batches(
            Arc::new(vec![PacketBatch::repeated(SimTime(0), 1, vec![0xAB; 3])]),
            8,
        );
        assert_eq!(routed.owned_len(0), 1);
        assert_eq!(
            (0..8).map(|s| routed.owned_len(s)).sum::<usize>(),
            1,
            "routed exactly once"
        );
    }

    #[test]
    fn routing_is_zero_copy() {
        let stream = Arc::new(mixed_stream());
        let routed = route_batches(stream.clone(), 8);
        assert_eq!(
            routed.items().as_ptr(),
            stream.as_ptr(),
            "routing shares the chunk, no re-partition copies"
        );
        assert_eq!(
            (0..8).map(|s| routed.owned_len(s)).sum::<usize>(),
            stream.len()
        );
    }
}
