//! A Corsaro-like processing architecture: time-ordered capture batches are
//! fed to a set of plugins, with interval-end callbacks at fixed boundaries
//! (Corsaro's interval model), which is where the RSDoS plugin expires idle
//! flows.
//!
//! The paper implements its detector as a plugin of CAIDA's Corsaro darknet
//! processing framework; this module mirrors that structure so the detector
//! code stays a faithful "plugin" rather than a bespoke loop.

use crate::detector::{DetectorStats, RsdosDetector};
use crate::packet::PacketBatch;
use dosscope_types::{AttackEvent, SimTime};

/// A processing plugin fed by the [`Corsaro`] driver.
pub trait TelescopePlugin {
    /// Human-readable plugin name (for reports/diagnostics).
    fn name(&self) -> &'static str;

    /// Process one capture batch. Batches arrive in non-decreasing time
    /// order.
    fn process_batch(&mut self, batch: &PacketBatch);

    /// Called when an interval boundary passes; `now` is the start of the
    /// new interval.
    fn interval_end(&mut self, now: SimTime);

    /// Called once at end of trace.
    fn finish(&mut self);
}

/// The driver: dispatches batches to plugins and fires interval callbacks.
pub struct Corsaro {
    plugins: Vec<Box<dyn TelescopePlugin>>,
    interval_secs: u64,
    current_interval: Option<u64>,
    batches: u64,
}

impl Corsaro {
    /// A driver with the given interval length (Corsaro commonly uses 60 s).
    pub fn new(interval_secs: u64) -> Corsaro {
        Corsaro {
            plugins: Vec::new(),
            interval_secs: interval_secs.max(1),
            current_interval: None,
            batches: 0,
        }
    }

    /// Attach a plugin.
    pub fn attach(&mut self, plugin: Box<dyn TelescopePlugin>) {
        self.plugins.push(plugin);
    }

    /// Feed one batch (must be in non-decreasing time order).
    pub fn feed(&mut self, batch: &PacketBatch) {
        let interval = batch.ts.secs() / self.interval_secs;
        match self.current_interval {
            None => self.current_interval = Some(interval),
            Some(cur) if interval > cur => {
                let boundary = SimTime(interval * self.interval_secs);
                for p in &mut self.plugins {
                    p.interval_end(boundary);
                }
                self.current_interval = Some(interval);
            }
            _ => {}
        }
        for p in &mut self.plugins {
            p.process_batch(batch);
        }
        self.batches += 1;
    }

    /// End of trace: notify all plugins and return them for result
    /// extraction.
    pub fn finish(mut self) -> Vec<Box<dyn TelescopePlugin>> {
        for p in &mut self.plugins {
            p.finish();
        }
        self.plugins
    }

    /// Number of batches fed so far.
    pub fn batches_fed(&self) -> u64 {
        self.batches
    }
}

/// The RSDoS detector wrapped as a plugin (the shape the paper describes:
/// "we implemented the detection and classification methodology described
/// by Moore et al. as a Corsaro plugin").
pub struct RsdosPlugin {
    detector: Option<RsdosDetector>,
    results: Option<(Vec<AttackEvent>, DetectorStats)>,
}

impl RsdosPlugin {
    /// Wrap a detector.
    pub fn new(detector: RsdosDetector) -> RsdosPlugin {
        RsdosPlugin {
            detector: Some(detector),
            results: None,
        }
    }

    /// Extract the detection results after the driver has finished.
    pub fn into_results(self) -> (Vec<AttackEvent>, DetectorStats) {
        self.results
            .expect("into_results called before the driver finished")
    }

    /// Number of currently live flows in the wrapped detector (0 after
    /// `finish`); the working-set sample the sharded pipeline and the
    /// bench record.
    pub fn live_flows(&self) -> usize {
        self.detector.as_ref().map_or(0, RsdosDetector::live_flows)
    }
}

impl TelescopePlugin for RsdosPlugin {
    fn name(&self) -> &'static str {
        "rsdos"
    }

    fn process_batch(&mut self, batch: &PacketBatch) {
        if let Some(d) = self.detector.as_mut() {
            d.ingest(batch);
        }
    }

    fn interval_end(&mut self, now: SimTime) {
        if let Some(d) = self.detector.as_mut() {
            d.advance(now);
        }
    }

    fn finish(&mut self) {
        if let Some(d) = self.detector.take() {
            self.results = Some(d.finish());
        }
    }
}

/// A simple traffic-accounting plugin (packets/bytes per interval), in the
/// spirit of Corsaro's flowtuple statistics; useful for sanity checks and
/// the component benchmarks.
#[derive(Debug, Default)]
pub struct StatsPlugin {
    /// Total packets seen (batch counts expanded).
    pub packets: u64,
    /// Total bytes seen.
    pub bytes: u64,
    /// Number of interval boundaries observed.
    pub intervals: u64,
}

impl StatsPlugin {
    /// New zeroed plugin.
    pub fn new() -> StatsPlugin {
        StatsPlugin::default()
    }
}

impl TelescopePlugin for StatsPlugin {
    fn name(&self) -> &'static str {
        "stats"
    }

    fn process_batch(&mut self, batch: &PacketBatch) {
        self.packets += batch.count as u64;
        self.bytes += batch.total_bytes();
    }

    fn interval_end(&mut self, _now: SimTime) {
        self.intervals += 1;
    }

    fn finish(&mut self) {}
}

/// Convenience: drive a single typed plugin over a batch stream with
/// interval callbacks, without the `dyn` driver (which is for mixed plugin
/// sets).
pub fn drive_plugin<P: TelescopePlugin>(
    plugin: &mut P,
    batches: impl IntoIterator<Item = PacketBatch>,
    interval_secs: u64,
) {
    let interval_secs = interval_secs.max(1);
    let mut current: Option<u64> = None;
    for batch in batches {
        let interval = batch.ts.secs() / interval_secs;
        match current {
            None => current = Some(interval),
            Some(cur) if interval > cur => {
                plugin.interval_end(SimTime(interval * interval_secs));
                current = Some(interval);
            }
            _ => {}
        }
        plugin.process_batch(&batch);
    }
    plugin.finish();
}

/// Convenience: run a full batch stream through an RSDoS plugin and return
/// the detected events plus stats.
pub fn run_rsdos(
    detector: RsdosDetector,
    batches: impl IntoIterator<Item = PacketBatch>,
    interval_secs: u64,
) -> (Vec<AttackEvent>, DetectorStats) {
    let mut plugin = RsdosPlugin::new(detector);
    drive_plugin(&mut plugin, batches, interval_secs);
    plugin.into_results()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telescope;
    use dosscope_wire::builder;
    use std::net::Ipv4Addr;

    fn victim() -> Ipv4Addr {
        "203.0.113.1".parse().unwrap()
    }

    fn flood_batches(start: u64, secs: u64, pps: u32) -> Vec<PacketBatch> {
        (0..secs)
            .map(|s| {
                let pkt = builder::tcp_syn_ack(
                    victim(),
                    80,
                    Ipv4Addr::new(44, 0, 0, (s % 200) as u8),
                    40000,
                    s as u32,
                );
                PacketBatch::repeated(SimTime(start + s), pps, pkt)
            })
            .collect()
    }

    #[test]
    fn driver_fires_interval_ends() {
        let mut driver = Corsaro::new(60);
        driver.attach(Box::new(StatsPlugin::new()));
        for b in flood_batches(0, 180, 1) {
            driver.feed(&b);
        }
        let plugins = driver.finish();
        let _ = plugins; // StatsPlugin checked via the typed test below
    }

    #[test]
    fn stats_plugin_counts() {
        let mut s = StatsPlugin::new();
        for b in flood_batches(0, 120, 2) {
            s.process_batch(&b);
        }
        assert_eq!(s.packets, 240);
        assert!(s.bytes > 0);
    }

    #[test]
    fn rsdos_plugin_end_to_end() {
        let detector = RsdosDetector::with_defaults(Telescope::default_slash8());
        let mut plugin = RsdosPlugin::new(detector);
        let mut driver_time = SimTime(0);
        for b in flood_batches(0, 120, 2) {
            plugin.process_batch(&b);
            driver_time = b.ts;
        }
        plugin.interval_end(SimTime(driver_time.secs() + 600));
        plugin.finish();
        let (events, stats) = plugin.into_results();
        assert_eq!(events.len(), 1);
        assert_eq!(stats.events, 1);
    }

    #[test]
    #[should_panic(expected = "before the driver finished")]
    fn into_results_requires_finish() {
        let detector = RsdosDetector::with_defaults(Telescope::default_slash8());
        let plugin = RsdosPlugin::new(detector);
        let _ = plugin.into_results();
    }
}
