//! Step 1 of the Moore et al. pipeline: identify backscatter packets and
//! extract the victim and attack attribution from them.
//!
//! A packet is backscatter iff it is a *response*: TCP SYN/ACK, TCP RST,
//! or one of the nine ICMP response types (echo reply, destination
//! unreachable, source quench, redirect, time exceeded, parameter problem,
//! timestamp reply, information reply, address mask reply). The victim is
//! the source address of the response. For ICMP error messages, the attack
//! protocol is taken from the quoted packet — e.g. a destination
//! unreachable quoting a UDP packet registers a UDP attack (Section 4,
//! Table 5 discussion).

use dosscope_types::TransportProto;
use dosscope_wire::{Icmpv4Packet, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use std::net::Ipv4Addr;

/// The extracted facts about one backscatter packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backscatter {
    /// The inferred victim: source address of the response packet.
    pub victim: Ipv4Addr,
    /// The telescope-side address the response was sent to (one of the
    /// attacker's spoofed sources).
    pub spoofed_source: Ipv4Addr,
    /// The attributed IP protocol of the *attack* (not of the backscatter
    /// packet itself — an ICMP unreachable quoting UDP attributes UDP).
    pub attack_proto: TransportProto,
    /// The attacked port on the victim, when recoverable: the TCP source
    /// port of SYN/ACK-RST backscatter, or the quoted destination port in
    /// ICMP errors.
    pub victim_port: Option<u16>,
}

/// Classify a captured packet; `None` means "not backscatter" (scans,
/// requests, malformed packets, ...).
pub fn classify(packet: &Ipv4Packet<&[u8]>) -> Option<Backscatter> {
    match packet.protocol() {
        IpProtocol::Tcp => classify_tcp(packet),
        IpProtocol::Icmp => classify_icmp(packet),
        // UDP and anything else arriving at a darknet is scanning or
        // misconfiguration, not backscatter.
        _ => None,
    }
}

fn classify_tcp(packet: &Ipv4Packet<&[u8]>) -> Option<Backscatter> {
    let seg = TcpSegment::new_checked(packet.payload()).ok()?;
    let flags = seg.flags();
    if !(flags.is_syn_ack() || flags.is_rst()) {
        return None; // a bare SYN is a scan, not backscatter
    }
    Some(Backscatter {
        victim: packet.src(),
        spoofed_source: packet.dst(),
        attack_proto: TransportProto::Tcp,
        // The victim responds *from* the attacked port.
        victim_port: Some(seg.src_port()),
    })
}

fn classify_icmp(packet: &Ipv4Packet<&[u8]>) -> Option<Backscatter> {
    let icmp = Icmpv4Packet::new_checked(packet.payload()).ok()?;
    let msg = icmp.message();
    if !msg.is_response() {
        return None;
    }
    let (attack_proto, victim_port) = match icmp.quoted_packet() {
        Some(quoted) => {
            // The quoted packet is the flood packet that triggered the
            // error: its protocol is the attack protocol and its
            // destination port (for TCP/UDP) is the attacked port.
            let port = match quoted.protocol() {
                IpProtocol::Udp => UdpDatagram::new_checked(quoted.payload())
                    .ok()
                    .map(|u| u.dst_port()),
                IpProtocol::Tcp => TcpSegment::new_checked(quoted.payload())
                    .ok()
                    .map(|t| t.dst_port())
                    .or_else(|| {
                        // RFC 792 only guarantees 8 quoted bytes — enough
                        // for the port fields even if the full TCP header
                        // is truncated.
                        let p = quoted.payload();
                        (p.len() >= 4).then(|| u16::from_be_bytes([p[2], p[3]]))
                    }),
                _ => None,
            };
            let proto = match quoted.protocol() {
                IpProtocol::Udp => TransportProto::Udp,
                IpProtocol::Tcp => TransportProto::Tcp,
                IpProtocol::Icmp => TransportProto::Icmp,
                IpProtocol::Igmp | IpProtocol::Unknown(_) => TransportProto::Other,
            };
            (proto, port)
        }
        // Non-quoting responses (echo reply & friends) attribute an ICMP
        // flood.
        None => (TransportProto::Icmp, None),
    };
    Some(Backscatter {
        victim: packet.src(),
        spoofed_source: packet.dst(),
        attack_proto,
        victim_port,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_wire::builder;

    fn victim() -> Ipv4Addr {
        "203.0.113.50".parse().unwrap()
    }
    fn dark() -> Ipv4Addr {
        "44.7.7.7".parse().unwrap()
    }

    fn classify_bytes(bytes: &[u8]) -> Option<Backscatter> {
        let ip = Ipv4Packet::new_checked(bytes).unwrap();
        classify(&ip)
    }

    #[test]
    fn syn_ack_is_backscatter() {
        let pkt = builder::tcp_syn_ack(victim(), 80, dark(), 40000, 1);
        let b = classify_bytes(&pkt).expect("SYN/ACK is backscatter");
        assert_eq!(b.victim, victim());
        assert_eq!(b.spoofed_source, dark());
        assert_eq!(b.attack_proto, TransportProto::Tcp);
        assert_eq!(b.victim_port, Some(80));
    }

    #[test]
    fn rst_is_backscatter() {
        let pkt = builder::tcp_rst(victim(), 443, dark(), 40000, 1);
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Tcp);
        assert_eq!(b.victim_port, Some(443));
    }

    #[test]
    fn bare_syn_is_not_backscatter() {
        // Hand-build a SYN-only segment (a scan hitting the darknet).
        let mut pkt = builder::tcp_syn_ack(victim(), 80, dark(), 40000, 1);
        // Flip flags to SYN-only; recompute checksums for a valid packet.
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[..]);
            let (src, dst) = (ip.src(), ip.dst());
            let mut seg = TcpSegment::new_unchecked(ip.payload_mut());
            seg.set_flags(dosscope_wire::TcpFlags::SYN);
            seg.fill_checksum(src, dst);
            ip.fill_checksum();
        }
        assert!(classify_bytes(&pkt).is_none());
    }

    #[test]
    fn echo_reply_attributes_icmp_flood() {
        let pkt = builder::icmp_echo_reply(victim(), dark(), 1, 2);
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Icmp);
        assert_eq!(b.victim_port, None);
    }

    #[test]
    fn unreachable_quoting_udp_attributes_udp_flood() {
        let pkt = builder::icmp_dest_unreachable(
            victim(),
            dark(),
            IpProtocol::Udp,
            5555,
            27015,
            3,
        );
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Udp);
        assert_eq!(b.victim_port, Some(27015));
    }

    #[test]
    fn unreachable_quoting_igmp_attributes_other() {
        let pkt = builder::icmp_dest_unreachable(victim(), dark(), IpProtocol::Igmp, 0, 0, 2);
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Other);
        assert_eq!(b.victim_port, None);
    }

    #[test]
    fn udp_to_darknet_is_not_backscatter() {
        // A UDP probe (e.g. a scanner) arriving at the telescope.
        let pkt = builder::reflection_request(
            victim(),
            9999,
            dark(),
            dosscope_types::ReflectionProtocol::Dns,
        );
        assert!(classify_bytes(&pkt).is_none());
    }

    #[test]
    fn truncated_tcp_is_ignored() {
        let mut pkt = builder::tcp_syn_ack(victim(), 80, dark(), 40000, 1);
        // Claim a TCP payload shorter than a TCP header.
        pkt.truncate(24);
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[..]);
            ip.set_total_len(24);
            ip.fill_checksum();
        }
        assert!(classify_bytes(&pkt).is_none());
    }
}
