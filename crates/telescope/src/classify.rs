//! Step 1 of the Moore et al. pipeline: identify backscatter packets and
//! extract the victim and attack attribution from them.
//!
//! A packet is backscatter iff it is a *response*: TCP SYN/ACK, TCP RST,
//! or one of the nine ICMP response types (echo reply, destination
//! unreachable, source quench, redirect, time exceeded, parameter problem,
//! timestamp reply, information reply, address mask reply). The victim is
//! the source address of the response. For ICMP error messages, the attack
//! protocol is taken from the quoted packet — e.g. a destination
//! unreachable quoting a UDP packet registers a UDP attack (Section 4,
//! Table 5 discussion).

use dosscope_types::TransportProto;
use dosscope_wire::{Icmpv4Packet, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use std::net::Ipv4Addr;

/// The extracted facts about one backscatter packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backscatter {
    /// The inferred victim: source address of the response packet.
    pub victim: Ipv4Addr,
    /// The telescope-side address the response was sent to (one of the
    /// attacker's spoofed sources).
    pub spoofed_source: Ipv4Addr,
    /// The attributed IP protocol of the *attack* (not of the backscatter
    /// packet itself — an ICMP unreachable quoting UDP attributes UDP).
    pub attack_proto: TransportProto,
    /// The attacked port on the victim, when recoverable: the TCP source
    /// port of SYN/ACK-RST backscatter, or the quoted destination port in
    /// ICMP errors.
    pub victim_port: Option<u16>,
}

/// Outcome of [`classify_batch`]: IPv4 validation, destination extraction
/// and backscatter classification fused into one result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClass {
    /// The bytes are not a structurally valid IPv4 packet.
    Malformed,
    /// Valid IPv4 but not backscatter (scan, request, unknown transport).
    Other,
    /// A backscatter response packet.
    Backscatter {
        /// The capture-side destination address (one of the attacker's
        /// spoofed sources; must fall inside the darknet to count).
        dst: Ipv4Addr,
        /// The extracted attribution facts.
        facts: Backscatter,
    },
}

/// Classify one representative packet in a single pass over the bytes.
///
/// Produces exactly the outcome of the layered path —
/// `Ipv4Packet::new_checked` followed by [`classify`] — without
/// constructing the intermediate typed views: the IPv4 header is
/// validated once up front and every later field read indexes the same
/// slice directly. This is the per-batch fast path of
/// [`crate::RsdosDetector::ingest`]; the layered functions remain the
/// reference implementation, and `tests/proptests.rs` checks the two
/// agree on arbitrary (including corrupted and truncated) byte strings.
pub fn classify_batch(bytes: &[u8]) -> BatchClass {
    // IPv4 structural validation, mirroring `Ipv4Packet::new_checked`:
    // room for the fixed header, consistent IHL/total-length, version 4.
    // The fixed header is read through a `&[u8; 20]` so the per-field
    // reads below compile without bounds checks.
    let Some(hdr) = bytes.first_chunk::<20>() else {
        return BatchClass::Malformed;
    };
    let hl = ((hdr[0] & 0x0F) as usize) * 4;
    let total = u16::from_be_bytes([hdr[2], hdr[3]]) as usize;
    if hl < 20 || hl > bytes.len() || total < hl || total > bytes.len() || hdr[0] >> 4 != 4 {
        return BatchClass::Malformed;
    }
    let payload = &bytes[hl..total];
    let (attack_proto, victim_port) = match hdr[9] {
        // TCP: backscatter iff SYN/ACK (without RST) or RST, with a
        // structurally valid header (`TcpSegment::new_checked`).
        6 => {
            let Some(tcp) = payload.first_chunk::<20>() else {
                return BatchClass::Other;
            };
            let off = ((tcp[12] >> 4) as usize) * 4;
            if off < 20 || off > payload.len() {
                return BatchClass::Other;
            }
            let flags = tcp[13] & 0x3F;
            let syn_ack = flags & 0x12 == 0x12 && flags & 0x04 == 0;
            if !(syn_ack || flags & 0x04 != 0) {
                return BatchClass::Other;
            }
            // The victim responds *from* the attacked port.
            (
                TransportProto::Tcp,
                Some(u16::from_be_bytes([tcp[0], tcp[1]])),
            )
        }
        // ICMP: backscatter iff the type is one of the nine response
        // messages; error messages attribute the quoted packet.
        1 => {
            if payload.len() < 8 {
                return BatchClass::Other;
            }
            let ty = payload[0];
            if !matches!(ty, 0 | 3 | 4 | 5 | 11 | 12 | 14 | 16 | 18) {
                return BatchClass::Other;
            }
            match quoted_attribution(ty, &payload[8..]) {
                Some(pair) => pair,
                // Non-quoting responses (echo reply & friends) and error
                // messages whose quote fails to validate attribute an
                // ICMP flood.
                None => (TransportProto::Icmp, None),
            }
        }
        // UDP and anything else arriving at a darknet is scanning or
        // misconfiguration, not backscatter.
        _ => return BatchClass::Other,
    };
    BatchClass::Backscatter {
        dst: Ipv4Addr::new(hdr[16], hdr[17], hdr[18], hdr[19]),
        facts: Backscatter {
            victim: Ipv4Addr::new(hdr[12], hdr[13], hdr[14], hdr[15]),
            spoofed_source: Ipv4Addr::new(hdr[16], hdr[17], hdr[18], hdr[19]),
            attack_proto,
            victim_port,
        },
    }
}

/// Attribution from the quoted inner packet of an ICMP error message
/// (`quoted` is the ICMP payload after the 8-byte header). `None` when the
/// message type does not quote or the quote fails IPv4 validation.
fn quoted_attribution(ty: u8, quoted: &[u8]) -> Option<(TransportProto, Option<u16>)> {
    if !matches!(ty, 3 | 4 | 5 | 11 | 12) {
        return None;
    }
    // The quote must itself be a valid IPv4 header (RFC 792 only
    // guarantees a prefix; `Ipv4Packet::new_checked` semantics).
    let qh = quoted.first_chunk::<20>()?;
    let qhl = ((qh[0] & 0x0F) as usize) * 4;
    let qtotal = u16::from_be_bytes([qh[2], qh[3]]) as usize;
    if qhl < 20 || qhl > quoted.len() || qtotal < qhl || qtotal > quoted.len() || qh[0] >> 4 != 4 {
        return None;
    }
    let qp = &quoted[qhl..qtotal];
    Some(match qh[9] {
        // Quoted UDP: destination port when the UDP header validates.
        17 => {
            let port = (qp.len() >= 8 && {
                let ulen = u16::from_be_bytes([qp[4], qp[5]]) as usize;
                (8..=qp.len()).contains(&ulen)
            })
            .then(|| u16::from_be_bytes([qp[2], qp[3]]));
            (TransportProto::Udp, port)
        }
        // Quoted TCP: RFC 792 only guarantees 8 quoted bytes, so the
        // ports are read whenever present even if the full header is
        // truncated (the layered path's checked-parse-then-fallback
        // reads the same two bytes in both branches).
        6 => (
            TransportProto::Tcp,
            (qp.len() >= 4).then(|| u16::from_be_bytes([qp[2], qp[3]])),
        ),
        1 => (TransportProto::Icmp, None),
        _ => (TransportProto::Other, None),
    })
}

/// Classify a captured packet; `None` means "not backscatter" (scans,
/// requests, malformed packets, ...).
pub fn classify(packet: &Ipv4Packet<&[u8]>) -> Option<Backscatter> {
    match packet.protocol() {
        IpProtocol::Tcp => classify_tcp(packet),
        IpProtocol::Icmp => classify_icmp(packet),
        // UDP and anything else arriving at a darknet is scanning or
        // misconfiguration, not backscatter.
        _ => None,
    }
}

fn classify_tcp(packet: &Ipv4Packet<&[u8]>) -> Option<Backscatter> {
    let seg = TcpSegment::new_checked(packet.payload()).ok()?;
    let flags = seg.flags();
    if !(flags.is_syn_ack() || flags.is_rst()) {
        return None; // a bare SYN is a scan, not backscatter
    }
    Some(Backscatter {
        victim: packet.src(),
        spoofed_source: packet.dst(),
        attack_proto: TransportProto::Tcp,
        // The victim responds *from* the attacked port.
        victim_port: Some(seg.src_port()),
    })
}

fn classify_icmp(packet: &Ipv4Packet<&[u8]>) -> Option<Backscatter> {
    let icmp = Icmpv4Packet::new_checked(packet.payload()).ok()?;
    let msg = icmp.message();
    if !msg.is_response() {
        return None;
    }
    let (attack_proto, victim_port) = match icmp.quoted_packet() {
        Some(quoted) => {
            // The quoted packet is the flood packet that triggered the
            // error: its protocol is the attack protocol and its
            // destination port (for TCP/UDP) is the attacked port.
            let port = match quoted.protocol() {
                IpProtocol::Udp => UdpDatagram::new_checked(quoted.payload())
                    .ok()
                    .map(|u| u.dst_port()),
                IpProtocol::Tcp => TcpSegment::new_checked(quoted.payload())
                    .ok()
                    .map(|t| t.dst_port())
                    .or_else(|| {
                        // RFC 792 only guarantees 8 quoted bytes — enough
                        // for the port fields even if the full TCP header
                        // is truncated.
                        let p = quoted.payload();
                        (p.len() >= 4).then(|| u16::from_be_bytes([p[2], p[3]]))
                    }),
                _ => None,
            };
            let proto = match quoted.protocol() {
                IpProtocol::Udp => TransportProto::Udp,
                IpProtocol::Tcp => TransportProto::Tcp,
                IpProtocol::Icmp => TransportProto::Icmp,
                IpProtocol::Igmp | IpProtocol::Unknown(_) => TransportProto::Other,
            };
            (proto, port)
        }
        // Non-quoting responses (echo reply & friends) attribute an ICMP
        // flood.
        None => (TransportProto::Icmp, None),
    };
    Some(Backscatter {
        victim: packet.src(),
        spoofed_source: packet.dst(),
        attack_proto,
        victim_port,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_wire::builder;

    fn victim() -> Ipv4Addr {
        "203.0.113.50".parse().unwrap()
    }
    fn dark() -> Ipv4Addr {
        "44.7.7.7".parse().unwrap()
    }

    fn classify_bytes(bytes: &[u8]) -> Option<Backscatter> {
        let ip = Ipv4Packet::new_checked(bytes).unwrap();
        classify(&ip)
    }

    #[test]
    fn syn_ack_is_backscatter() {
        let pkt = builder::tcp_syn_ack(victim(), 80, dark(), 40000, 1);
        let b = classify_bytes(&pkt).expect("SYN/ACK is backscatter");
        assert_eq!(b.victim, victim());
        assert_eq!(b.spoofed_source, dark());
        assert_eq!(b.attack_proto, TransportProto::Tcp);
        assert_eq!(b.victim_port, Some(80));
    }

    #[test]
    fn rst_is_backscatter() {
        let pkt = builder::tcp_rst(victim(), 443, dark(), 40000, 1);
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Tcp);
        assert_eq!(b.victim_port, Some(443));
    }

    #[test]
    fn bare_syn_is_not_backscatter() {
        // Hand-build a SYN-only segment (a scan hitting the darknet).
        let mut pkt = builder::tcp_syn_ack(victim(), 80, dark(), 40000, 1);
        // Flip flags to SYN-only; recompute checksums for a valid packet.
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[..]);
            let (src, dst) = (ip.src(), ip.dst());
            let mut seg = TcpSegment::new_unchecked(ip.payload_mut());
            seg.set_flags(dosscope_wire::TcpFlags::SYN);
            seg.fill_checksum(src, dst);
            ip.fill_checksum();
        }
        assert!(classify_bytes(&pkt).is_none());
    }

    #[test]
    fn echo_reply_attributes_icmp_flood() {
        let pkt = builder::icmp_echo_reply(victim(), dark(), 1, 2);
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Icmp);
        assert_eq!(b.victim_port, None);
    }

    #[test]
    fn unreachable_quoting_udp_attributes_udp_flood() {
        let pkt = builder::icmp_dest_unreachable(
            victim(),
            dark(),
            IpProtocol::Udp,
            5555,
            27015,
            3,
        );
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Udp);
        assert_eq!(b.victim_port, Some(27015));
    }

    #[test]
    fn unreachable_quoting_igmp_attributes_other() {
        let pkt = builder::icmp_dest_unreachable(victim(), dark(), IpProtocol::Igmp, 0, 0, 2);
        let b = classify_bytes(&pkt).unwrap();
        assert_eq!(b.attack_proto, TransportProto::Other);
        assert_eq!(b.victim_port, None);
    }

    #[test]
    fn udp_to_darknet_is_not_backscatter() {
        // A UDP probe (e.g. a scanner) arriving at the telescope.
        let pkt = builder::reflection_request(
            victim(),
            9999,
            dark(),
            dosscope_types::ReflectionProtocol::Dns,
        );
        assert!(classify_bytes(&pkt).is_none());
    }

    #[test]
    fn truncated_tcp_is_ignored() {
        let mut pkt = builder::tcp_syn_ack(victim(), 80, dark(), 40000, 1);
        // Claim a TCP payload shorter than a TCP header.
        pkt.truncate(24);
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[..]);
            ip.set_total_len(24);
            ip.fill_checksum();
        }
        assert!(classify_bytes(&pkt).is_none());
    }
}
