//! The capture record the telescope pipeline consumes.
//!
//! Real darknet processing reads pcap; simulating every packet of a
//! 100 kpps flood is infeasible, so the renderers emit [`PacketBatch`]es —
//! one representative wire-format packet plus a repeat count within a
//! one-second bucket, the same compression a pcap aggregator would apply.
//! Every batch's bytes are parsed through `dosscope-wire`'s checked
//! parsers, so the byte-level decode path is exercised on every batch.

use dosscope_types::SimTime;

/// A batch of `count` identical packets captured at `ts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketBatch {
    /// Capture timestamp (second granularity; all packets of the batch
    /// fall within this second).
    pub ts: SimTime,
    /// How many identical packets the batch stands for (≥ 1).
    pub count: u32,
    /// One representative packet, starting at the IPv4 header.
    pub bytes: Vec<u8>,
}

impl PacketBatch {
    /// A batch of one packet.
    pub fn single(ts: SimTime, bytes: Vec<u8>) -> PacketBatch {
        PacketBatch { ts, count: 1, bytes }
    }

    /// A batch of `count` identical packets.
    pub fn repeated(ts: SimTime, count: u32, bytes: Vec<u8>) -> PacketBatch {
        debug_assert!(count >= 1, "batch must stand for at least one packet");
        PacketBatch {
            ts,
            count: count.max(1),
            bytes,
        }
    }

    /// Total bytes on the wire this batch stands for.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let b = PacketBatch::repeated(SimTime(5), 10, vec![0u8; 40]);
        assert_eq!(b.total_bytes(), 400);
        let s = PacketBatch::single(SimTime(5), vec![0u8; 40]);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_bytes(), 40);
    }
}
