//! The capture record the telescope pipeline consumes.
//!
//! Real darknet processing reads pcap; simulating every packet of a
//! 100 kpps flood is infeasible, so the renderers emit [`PacketBatch`]es —
//! one representative wire-format packet plus a repeat count within a
//! one-second bucket, the same compression a pcap aggregator would apply.
//! Every batch's bytes are parsed through `dosscope-wire`'s checked
//! parsers, so the byte-level decode path is exercised on every batch.
//!
//! The representative bytes are [`SharedBytes`]: cloning a batch (stream
//! partitioning, replayed test streams, bench workloads) bumps a
//! reference count instead of copying the packet.

use dosscope_types::{SharedBytes, SimTime};

/// A batch of `count` identical packets captured at `ts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketBatch {
    /// Capture timestamp (second granularity; all packets of the batch
    /// fall within this second).
    pub ts: SimTime,
    /// How many identical packets the batch stands for (≥ 1).
    pub count: u32,
    /// One representative packet, starting at the IPv4 header.
    pub bytes: SharedBytes,
}

impl PacketBatch {
    /// A batch of one packet.
    pub fn single(ts: SimTime, bytes: impl Into<SharedBytes>) -> PacketBatch {
        PacketBatch {
            ts,
            count: 1,
            bytes: bytes.into(),
        }
    }

    /// A batch of `count` identical packets.
    pub fn repeated(ts: SimTime, count: u32, bytes: impl Into<SharedBytes>) -> PacketBatch {
        debug_assert!(count >= 1, "batch must stand for at least one packet");
        PacketBatch {
            ts,
            count: count.max(1),
            bytes: bytes.into(),
        }
    }

    /// Total bytes on the wire this batch stands for.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let b = PacketBatch::repeated(SimTime(5), 10, vec![0u8; 40]);
        assert_eq!(b.total_bytes(), 400);
        let s = PacketBatch::single(SimTime(5), vec![0u8; 40]);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_bytes(), 40);
    }

    #[test]
    fn clone_shares_representative_bytes() {
        let b = PacketBatch::repeated(SimTime(5), 10, vec![0u8; 40]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.bytes.as_slice().as_ptr(), c.bytes.as_slice().as_ptr());
    }
}
