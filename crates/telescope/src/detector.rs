//! Step 3 of the Moore et al. pipeline: attack classification and
//! filtering, producing [`AttackEvent`]s from finished flows.
//!
//! The filter thresholds are exactly the paper's (Section 3.1.1): discard
//! flows with (i) fewer than 25 packets, (ii) a duration shorter than 60
//! seconds, or (iii) a maximum packet rate below 0.5 packets per second
//! (in any given minute). The event intensity is the maximum per-minute
//! packet rate, which estimates a victim-side rate when multiplied by the
//! telescope scaling factor (×256 for a /8).

use crate::classify::{classify_batch, BatchClass};
use crate::flow::{Flow, FlowTable};
use crate::packet::PacketBatch;
use crate::Telescope;
use dosscope_types::{
    AttackEvent, AttackVector, PortSignature, SimTime, TimeRange, TransportProto,
};

/// Detector thresholds and parameters; defaults are the published values.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Flow inactivity timeout in seconds (300).
    pub flow_timeout_secs: u64,
    /// Minimum backscatter packets per event (25).
    pub min_packets: u64,
    /// Minimum event duration in seconds (60).
    pub min_duration_secs: u64,
    /// Minimum maximum-packet-rate in pps (0.5, i.e. an estimated 128 pps
    /// at the victim through a /8 telescope).
    pub min_max_pps: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            flow_timeout_secs: 300,
            min_packets: 25,
            min_duration_secs: 60,
            min_max_pps: 0.5,
        }
    }
}

/// Counters describing what the detector saw and dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Batches whose bytes failed IPv4 parsing.
    pub malformed: u64,
    /// Batches parsed but not classified as backscatter.
    pub non_backscatter: u64,
    /// Backscatter packets accepted into flows.
    pub backscatter_packets: u64,
    /// Flows finalized in total.
    pub flows_finalized: u64,
    /// Flows dropped by the packet/duration/rate filters.
    pub flows_filtered: u64,
    /// Attack events emitted.
    pub events: u64,
}

/// The randomly-spoofed-DoS detector: classifier + flow table + filter.
#[derive(Debug)]
pub struct RsdosDetector {
    config: DetectorConfig,
    telescope: Telescope,
    flows: FlowTable,
    events: Vec<AttackEvent>,
    stats: DetectorStats,
}

impl RsdosDetector {
    /// A detector for the given darknet with the given thresholds.
    pub fn new(telescope: Telescope, config: DetectorConfig) -> RsdosDetector {
        RsdosDetector {
            config,
            telescope,
            flows: FlowTable::new(config.flow_timeout_secs),
            events: Vec::new(),
            stats: DetectorStats::default(),
        }
    }

    /// A detector with the published default thresholds.
    pub fn with_defaults(telescope: Telescope) -> RsdosDetector {
        RsdosDetector::new(telescope, DetectorConfig::default())
    }

    /// The telescope this detector observes.
    pub fn telescope(&self) -> &Telescope {
        &self.telescope
    }

    /// Processing statistics so far.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Number of currently live (unexpired) flows — the flow table's
    /// working-set size, sampled by the pipeline benchmark.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Ingest one captured batch (batches must arrive in time order).
    pub fn ingest(&mut self, batch: &PacketBatch) {
        // One fused pass over the bytes (validation + classification);
        // equivalent to checked parse + `classify`, see `classify_batch`.
        let (dst, bs) = match classify_batch(batch.bytes.as_slice()) {
            BatchClass::Malformed => {
                self.stats.malformed += 1;
                return;
            }
            BatchClass::Other => {
                self.stats.non_backscatter += 1;
                return;
            }
            BatchClass::Backscatter { dst, facts } => (dst, facts),
        };
        // Ignore stray packets not destined to the darknet; the capture in
        // front of a real telescope guarantees this, the simulator may not.
        if !self.telescope.observes(dst) {
            self.stats.non_backscatter += 1;
            return;
        }
        self.stats.backscatter_packets += batch.count as u64;
        // Telemetry mirrors of the per-detector stats: incremented at
        // the same sites on both the serial and the sharded path, so
        // their totals are identical for a fixed seed at any thread
        // count.
        dosscope_obs::counter!("telescope.batches").inc();
        dosscope_obs::counter!("telescope.backscatter_packets").add(batch.count as u64);
        if let Some(expired) = self
            .flows
            .offer(&bs, batch.ts, batch.count, batch.total_bytes())
        {
            self.finalize(expired);
        }
    }

    /// Expire idle flows at `now` — the driver calls this at interval
    /// boundaries (Corsaro-style).
    pub fn advance(&mut self, now: SimTime) {
        for flow in self.flows.sweep(now) {
            self.finalize(flow);
        }
    }

    /// `advance` through the reference full-scan sweep
    /// ([`FlowTable::sweep_scan`]); finalizes the identical flow set. Kept
    /// for the pipeline benchmark's pre-wheel baseline lane.
    pub fn advance_scan(&mut self, now: SimTime) {
        for flow in self.flows.sweep_scan(now) {
            self.finalize(flow);
        }
    }

    /// End of trace: finalize everything and return all events, sorted by
    /// start time.
    pub fn finish(mut self) -> (Vec<AttackEvent>, DetectorStats) {
        for flow in self.flows.drain() {
            self.finalize(flow);
        }
        self.events.sort_by_key(|e| (e.when.start, e.target));
        (self.events, self.stats)
    }

    /// Events emitted so far (finalized flows only).
    pub fn events(&self) -> &[AttackEvent] {
        &self.events
    }

    fn finalize(&mut self, flow: Flow) {
        self.stats.flows_finalized += 1;
        // Flow expiry is decided per flow by its own idle gap, never by
        // the sweep cadence, so this count is thread-count invariant.
        dosscope_obs::counter!("telescope.flows_expired").inc();
        let duration = flow.duration_secs();
        let max_pps = flow.max_pps();
        if flow.packets < self.config.min_packets
            || duration < self.config.min_duration_secs
            || max_pps < self.config.min_max_pps
        {
            self.stats.flows_filtered += 1;
            return;
        }
        let proto = flow.dominant_proto();
        let ports = match (proto, flow.distinct_ports()) {
            // ICMP/Other floods carry no port information.
            (TransportProto::Icmp | TransportProto::Other, _) | (_, 0) => PortSignature::None,
            (_, 1) => PortSignature::Single(flow.single_port().expect("exactly one port")),
            (_, n) => PortSignature::Multi(n),
        };
        self.events.push(AttackEvent {
            target: flow.victim,
            when: TimeRange::new(flow.first, flow.last),
            vector: AttackVector::RandomlySpoofed { proto, ports },
            packets: flow.packets,
            bytes: flow.bytes,
            intensity_pps: max_pps,
            distinct_sources: flow.distinct_sources(),
        });
        self.stats.events += 1;
        dosscope_obs::counter!("telescope.events").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_types::SECS_PER_MINUTE;
    use dosscope_wire::builder;
    use std::net::Ipv4Addr;

    fn victim() -> Ipv4Addr {
        "203.0.113.77".parse().unwrap()
    }

    fn dark(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(44, 1, 2, i)
    }

    fn detector() -> RsdosDetector {
        RsdosDetector::with_defaults(Telescope::default_slash8())
    }

    /// Feed a SYN-flood backscatter pattern: `pps` packets per second for
    /// `secs` seconds.
    fn feed_syn_flood(d: &mut RsdosDetector, start: u64, secs: u64, pps: u32, port: u16) {
        for s in 0..secs {
            let pkt = builder::tcp_syn_ack(victim(), port, dark((s % 200) as u8), 40000, s as u32);
            d.ingest(&PacketBatch::repeated(SimTime(start + s), pps, pkt));
        }
    }

    #[test]
    fn detects_simple_syn_flood() {
        let mut d = detector();
        feed_syn_flood(&mut d, 100, 120, 2, 80);
        let (events, stats) = d.finish();
        assert_eq!(events.len(), 1, "one attack event");
        let e = &events[0];
        assert_eq!(e.target, victim());
        assert_eq!(e.transport_proto(), Some(TransportProto::Tcp));
        assert_eq!(e.port_signature(), Some(PortSignature::Single(80)));
        assert_eq!(e.packets, 240);
        assert!((e.intensity_pps - 2.0).abs() < 1e-9);
        assert_eq!(e.duration_secs(), 119);
        assert_eq!(stats.events, 1);
        assert_eq!(stats.flows_filtered, 0);
    }

    #[test]
    fn filters_short_flow() {
        let mut d = detector();
        // 30 packets over 30 seconds: fails the 60 s minimum duration.
        feed_syn_flood(&mut d, 0, 30, 1, 80);
        let (events, stats) = d.finish();
        assert!(events.is_empty());
        assert_eq!(stats.flows_filtered, 1);
    }

    #[test]
    fn filters_few_packets() {
        let mut d = detector();
        // 1 packet every 6 seconds for 120 s: 20 packets < 25 minimum.
        for s in (0..120).step_by(6) {
            let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, s as u32);
            d.ingest(&PacketBatch::single(SimTime(s), pkt));
        }
        let (events, _) = d.finish();
        assert!(events.is_empty());
    }

    #[test]
    fn filters_low_rate() {
        let mut d = detector();
        // 25 packets spread over 5 minutes: max ~5-6/minute < 30 (0.5 pps).
        for i in 0..25u64 {
            let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, i as u32);
            d.ingest(&PacketBatch::single(SimTime(i * 12), pkt));
        }
        let (events, stats) = d.finish();
        assert!(events.is_empty());
        assert_eq!(stats.flows_filtered, 1);
    }

    #[test]
    fn rate_threshold_is_per_minute_max() {
        let mut d = detector();
        // One hot minute (60 packets = 1 pps) then a quiet minute; total
        // duration 100 s, 70 packets: passes all thresholds.
        feed_syn_flood(&mut d, 0, 60, 1, 80);
        for s in 60..100 {
            if s % 4 == 0 {
                let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, s as u32);
                d.ingest(&PacketBatch::single(SimTime(s), pkt));
            }
        }
        let (events, _) = d.finish();
        assert_eq!(events.len(), 1);
        assert!((events[0].intensity_pps - 1.0).abs() < 1e-9);
    }

    #[test]
    fn separate_attacks_after_timeout() {
        let mut d = detector();
        feed_syn_flood(&mut d, 0, 90, 1, 80);
        // > 300 s gap.
        feed_syn_flood(&mut d, 90 + 400, 90, 1, 80);
        let (events, _) = d.finish();
        assert_eq!(events.len(), 2, "timeout splits into two events");
    }

    #[test]
    fn advance_flushes_idle_flows() {
        let mut d = detector();
        feed_syn_flood(&mut d, 0, 90, 1, 80);
        assert!(d.events().is_empty());
        d.advance(SimTime(90 + 301));
        assert_eq!(d.events().len(), 1, "advance() finalizes idle flows");
    }

    #[test]
    fn udp_flood_via_unreachables() {
        let mut d = detector();
        for s in 0..90u64 {
            let pkt = builder::icmp_dest_unreachable(
                victim(),
                dark((s % 100) as u8),
                dosscope_wire::IpProtocol::Udp,
                5555,
                27015,
                3,
            );
            d.ingest(&PacketBatch::repeated(SimTime(s), 2, pkt));
        }
        let (events, _) = d.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].transport_proto(), Some(TransportProto::Udp));
        assert_eq!(
            events[0].port_signature(),
            Some(PortSignature::Single(27015))
        );
    }

    #[test]
    fn icmp_flood_has_no_ports() {
        let mut d = detector();
        for s in 0..90u64 {
            let pkt = builder::icmp_echo_reply(victim(), dark((s % 100) as u8), 1, s as u16);
            d.ingest(&PacketBatch::repeated(SimTime(s), 2, pkt));
        }
        let (events, _) = d.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].transport_proto(), Some(TransportProto::Icmp));
        assert_eq!(events[0].port_signature(), Some(PortSignature::None));
        assert!(events[0].port_signature().unwrap().is_single());
    }

    #[test]
    fn multi_port_attack() {
        let mut d = detector();
        for s in 0..90u64 {
            let port = 1000 + (s % 5) as u16;
            let pkt = builder::tcp_syn_ack(victim(), port, dark(1), 40000, s as u32);
            d.ingest(&PacketBatch::repeated(SimTime(s), 1, pkt));
        }
        let (events, _) = d.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].port_signature(), Some(PortSignature::Multi(5)));
    }

    #[test]
    fn ignores_scans_and_malformed() {
        let mut d = detector();
        // A UDP scan packet to the darknet.
        let scan = builder::reflection_request(
            victim(),
            1234,
            dark(9),
            dosscope_types::ReflectionProtocol::Dns,
        );
        d.ingest(&PacketBatch::single(SimTime(0), scan));
        // Garbage bytes.
        d.ingest(&PacketBatch::single(SimTime(1), vec![0xFF; 10]));
        // A packet not destined to the darknet at all.
        let stray = builder::tcp_syn_ack(victim(), 80, "9.9.9.9".parse().unwrap(), 1, 1);
        d.ingest(&PacketBatch::single(SimTime(2), stray));
        let (events, stats) = d.finish();
        assert!(events.is_empty());
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.non_backscatter, 2);
        assert_eq!(stats.backscatter_packets, 0);
    }

    #[test]
    fn distinct_sources_counted() {
        let mut d = detector();
        for s in 0..90u64 {
            let pkt = builder::tcp_syn_ack(victim(), 80, dark((s % 50) as u8), 40000, s as u32);
            d.ingest(&PacketBatch::single(SimTime(s), pkt));
        }
        let (events, _) = d.finish();
        assert_eq!(events[0].distinct_sources, 50);
    }

    #[test]
    fn estimated_victim_rate_scales_by_256() {
        let d = detector();
        let scale = d.telescope().scaling_factor();
        assert_eq!(scale, 256.0);
        // 0.5 pps at the telescope ≈ 128 pps at the victim (footnote 1).
        assert!((0.5 * scale - 128.0).abs() < 1e-9);
    }

    #[test]
    fn interleaved_victims_tracked_independently() {
        let mut d = detector();
        let v2: Ipv4Addr = "198.51.100.9".parse().unwrap();
        for s in 0..90u64 {
            let a = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, s as u32);
            let b = builder::tcp_syn_ack(v2, 443, dark(2), 40001, s as u32);
            d.ingest(&PacketBatch::repeated(SimTime(s), 1, a));
            d.ingest(&PacketBatch::repeated(SimTime(s), 1, b));
        }
        let (events, _) = d.finish();
        assert_eq!(events.len(), 2);
        let targets: Vec<_> = events.iter().map(|e| e.target).collect();
        assert!(targets.contains(&victim()) && targets.contains(&v2));
    }

    #[test]
    fn exactly_at_thresholds_passes() {
        let mut d = detector();
        // 30 packets in one minute (0.5 pps), duration exactly 60 s.
        for s in 0..=60u64 {
            if s % 2 == 0 {
                let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, s as u32);
                d.ingest(&PacketBatch::single(SimTime(s), pkt));
            }
        }
        let (events, _) = d.finish();
        assert_eq!(events.len(), 1, "boundary values are inclusive");
        assert!(events[0].intensity_pps >= 0.5);
        assert!(events[0].duration_secs() >= SECS_PER_MINUTE);
        assert!(events[0].packets >= 25);
    }

    /// Feed `n` packets at one per second from t=0, then finish.
    fn events_for_n_packets(config: DetectorConfig, n: u64) -> Vec<AttackEvent> {
        let mut d = RsdosDetector::new(Telescope::default_slash8(), config);
        for s in 0..n {
            let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, s as u32);
            d.ingest(&PacketBatch::single(SimTime(s), pkt));
        }
        d.finish().0
    }

    #[test]
    fn packet_threshold_edge() {
        // With the default thresholds 25 packets can never reach the
        // 0.5 pps minimum (25/60 < 0.5), so isolate the packet filter by
        // relaxing the rate. 25 one-per-second packets last 24 s, so relax
        // the duration too: exactly 25 passes, 24 is filtered.
        let config = DetectorConfig {
            min_duration_secs: 0,
            min_max_pps: 0.0,
            ..DetectorConfig::default()
        };
        assert_eq!(events_for_n_packets(config, 25).len(), 1, "25 >= 25");
        assert!(events_for_n_packets(config, 24).is_empty(), "24 < 25");
    }

    #[test]
    fn duration_threshold_edge() {
        // 30 packets at t=0 satisfy count and rate; the final single
        // packet sets the duration to exactly 60 s (pass) or 59 s (fail).
        for (last, expect) in [(60u64, 1usize), (59, 0)] {
            let mut d = detector();
            let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, 0);
            d.ingest(&PacketBatch::repeated(SimTime(0), 30, pkt.clone()));
            d.ingest(&PacketBatch::single(SimTime(last), pkt));
            let (events, stats) = d.finish();
            assert_eq!(events.len(), expect, "duration {last} s");
            assert_eq!(stats.flows_filtered, 1 - expect as u64);
            if let [e] = events.as_slice() {
                assert_eq!(e.duration_secs(), SECS_PER_MINUTE);
            }
        }
    }

    #[test]
    fn max_pps_threshold_edge() {
        // Two minutes of traffic, duration 90 s. A 30-packet peak minute
        // is exactly 0.5 pps (pass); a 29-packet peak is just under
        // (fail), even though the flow totals 58 packets over 90 s.
        for (peak, expect) in [(30u32, 1usize), (29, 0)] {
            let mut d = detector();
            let pkt = builder::tcp_syn_ack(victim(), 80, dark(1), 40000, 0);
            d.ingest(&PacketBatch::repeated(SimTime(0), peak, pkt.clone()));
            d.ingest(&PacketBatch::repeated(SimTime(90), peak - 1, pkt));
            let (events, stats) = d.finish();
            assert_eq!(events.len(), expect, "peak minute {peak} packets");
            assert_eq!(stats.flows_filtered, 1 - expect as u64);
            if let [e] = events.as_slice() {
                assert!((e.intensity_pps - 0.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flow_timeout_boundary() {
        // The timeout splits a flow only when the gap *exceeds*
        // `flow_timeout_secs`: a second burst exactly 300 s after the last
        // packet continues the flow, 301 s starts a new one.
        for (gap, expect) in [(300u64, 1usize), (301, 2)] {
            let mut d = detector();
            feed_syn_flood(&mut d, 0, 90, 1, 80); // last packet at t=89
            feed_syn_flood(&mut d, 89 + gap, 90, 1, 80);
            let (events, stats) = d.finish();
            assert_eq!(events.len(), expect, "gap of {gap} s");
            assert_eq!(stats.flows_finalized, expect as u64);
            assert_eq!(stats.flows_filtered, 0);
        }
    }
}
