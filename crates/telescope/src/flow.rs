//! Step 2 of the Moore et al. pipeline: aggregate backscatter packets into
//! attack flows keyed by the victim IP, expiring flows after 300 seconds of
//! inactivity (the paper's conservative timeout).

use crate::classify::Backscatter;
use dosscope_types::{SimTime, TransportProto, SECS_PER_MINUTE};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Cap on the exact distinct-port set; beyond this the count saturates
/// (an attack on 256+ ports is deep into "multi-port" territory anyway).
const MAX_TRACKED_PORTS: usize = 256;

/// Cap on the exact distinct-source set, after which the count saturates.
const MAX_TRACKED_SOURCES: usize = 65_536;

/// An in-progress attack flow against one victim.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The victim IP (flow key).
    pub victim: Ipv4Addr,
    /// Timestamp of the first packet.
    pub first: SimTime,
    /// Timestamp of the most recent packet.
    pub last: SimTime,
    /// Total backscatter packets.
    pub packets: u64,
    /// Total backscatter bytes.
    pub bytes: u64,
    /// Packets per attributed attack protocol, indexed by
    /// [`TransportProto::ALL`] order.
    pub proto_packets: [u64; 4],
    /// Distinct victim-side ports observed (exact up to the cap).
    ports: BTreeSet<u16>,
    ports_saturated: bool,
    /// Distinct telescope-side addresses (the attack's spoofed sources
    /// that happened to fall in the darknet), exact up to the cap.
    sources: std::collections::HashSet<u32>,
    sources_overflow: u32,
    /// Packet count in the current minute bucket.
    cur_minute: u64,
    cur_minute_count: u64,
    /// Highest per-minute packet count seen.
    max_minute_count: u64,
}

impl Flow {
    fn new(victim: Ipv4Addr, ts: SimTime) -> Flow {
        Flow {
            victim,
            first: ts,
            last: ts,
            packets: 0,
            bytes: 0,
            proto_packets: [0; 4],
            ports: BTreeSet::new(),
            ports_saturated: false,
            sources: std::collections::HashSet::new(),
            sources_overflow: 0,
            cur_minute: ts.minute(),
            cur_minute_count: 0,
            max_minute_count: 0,
        }
    }

    fn add(&mut self, b: &Backscatter, ts: SimTime, count: u32, bytes: u64) {
        debug_assert!(ts >= self.last, "flows must be fed in time order");
        self.last = self.last.max(ts);
        self.packets += count as u64;
        self.bytes += bytes;
        let proto_idx = TransportProto::ALL
            .iter()
            .position(|p| *p == b.attack_proto)
            .expect("ALL covers every variant");
        self.proto_packets[proto_idx] += count as u64;
        if let Some(port) = b.victim_port {
            if self.ports.len() < MAX_TRACKED_PORTS {
                self.ports.insert(port);
            } else if !self.ports.contains(&port) {
                self.ports_saturated = true;
            }
        }
        let src = u32::from(b.spoofed_source);
        if self.sources.len() < MAX_TRACKED_SOURCES {
            self.sources.insert(src);
        } else if !self.sources.contains(&src) {
            self.sources_overflow = self.sources_overflow.saturating_add(1);
        }
        // Per-minute rate tracking.
        let minute = ts.minute();
        if minute != self.cur_minute {
            self.max_minute_count = self.max_minute_count.max(self.cur_minute_count);
            self.cur_minute = minute;
            self.cur_minute_count = 0;
        }
        self.cur_minute_count += count as u64;
    }

    /// Flow duration in seconds (last - first).
    pub fn duration_secs(&self) -> u64 {
        self.last.secs() - self.first.secs()
    }

    /// The maximum packets-per-second rate in any minute: the statistic
    /// the paper uses as attack intensity (and as the 0.5 pps filter).
    pub fn max_pps(&self) -> f64 {
        self.max_minute_count.max(self.cur_minute_count) as f64 / SECS_PER_MINUTE as f64
    }

    /// Number of distinct victim ports observed (saturating).
    pub fn distinct_ports(&self) -> u32 {
        self.ports.len() as u32 + u32::from(self.ports_saturated)
    }

    /// The single observed port, if exactly one.
    pub fn single_port(&self) -> Option<u16> {
        if self.distinct_ports() == 1 {
            self.ports.iter().next().copied()
        } else {
            None
        }
    }

    /// Estimated number of distinct spoofed sources (saturating above the
    /// tracking cap).
    pub fn distinct_sources(&self) -> u32 {
        self.sources.len() as u32 + self.sources_overflow
    }

    /// The dominant attributed attack protocol by packet count.
    pub fn dominant_proto(&self) -> TransportProto {
        let (idx, _) = self
            .proto_packets
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("array non-empty");
        TransportProto::ALL[idx]
    }
}

/// The victim-keyed flow table with inactivity expiry.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<Ipv4Addr, Flow>,
    timeout_secs: u64,
}

impl FlowTable {
    /// A table with the given inactivity timeout (the paper uses 300 s).
    pub fn new(timeout_secs: u64) -> FlowTable {
        FlowTable {
            flows: HashMap::new(),
            timeout_secs,
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are live.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Feed one classified backscatter batch. If the victim's previous
    /// flow had already expired relative to `ts`, it is finalized and
    /// returned while a fresh flow starts.
    pub fn offer(
        &mut self,
        b: &Backscatter,
        ts: SimTime,
        count: u32,
        bytes: u64,
    ) -> Option<Flow> {
        let mut expired = None;
        let flow = self
            .flows
            .entry(b.victim)
            .or_insert_with(|| Flow::new(b.victim, ts));
        if ts.secs() > flow.last.secs() + self.timeout_secs {
            expired = Some(std::mem::replace(flow, Flow::new(b.victim, ts)));
        }
        flow.add(b, ts, count, bytes);
        expired
    }

    /// Expire and return every flow idle at `now` (last activity more than
    /// the timeout ago). Called by the driver at interval boundaries.
    pub fn sweep(&mut self, now: SimTime) -> Vec<Flow> {
        let timeout = self.timeout_secs;
        let expired_keys: Vec<Ipv4Addr> = self
            .flows
            .iter()
            .filter(|(_, f)| now.secs() > f.last.secs() + timeout)
            .map(|(k, _)| *k)
            .collect();
        expired_keys
            .into_iter()
            .map(|k| self.flows.remove(&k).expect("key collected above"))
            .collect()
    }

    /// Finalize and return all remaining flows (end of trace).
    pub fn drain(&mut self) -> Vec<Flow> {
        self.flows.drain().map(|(_, f)| f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(victim: &str, port: Option<u16>, spoofed: &str) -> Backscatter {
        Backscatter {
            victim: victim.parse().unwrap(),
            spoofed_source: spoofed.parse().unwrap(),
            attack_proto: TransportProto::Tcp,
            victim_port: port,
        }
    }

    #[test]
    fn flow_accumulates() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        assert!(t.offer(&b, SimTime(10), 5, 200).is_none());
        assert!(t.offer(&b, SimTime(40), 5, 200).is_none());
        assert_eq!(t.len(), 1);
        let flows = t.drain();
        assert_eq!(flows[0].packets, 10);
        assert_eq!(flows[0].bytes, 400);
        assert_eq!(flows[0].duration_secs(), 30);
        assert_eq!(flows[0].distinct_ports(), 1);
        assert_eq!(flows[0].single_port(), Some(80));
    }

    #[test]
    fn timeout_splits_flows() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        assert!(t.offer(&b, SimTime(0), 1, 40).is_none());
        // 301 seconds of silence: the next packet starts a new flow.
        let old = t.offer(&b, SimTime(302), 1, 40).expect("old flow expires");
        assert_eq!(old.packets, 1);
        assert_eq!(t.len(), 1);
        let new = t.drain().pop().unwrap();
        assert_eq!(new.first, SimTime(302));
    }

    #[test]
    fn boundary_exactly_timeout_keeps_flow() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(0), 1, 40);
        // Exactly 300 s later is still within the flow (> is required).
        assert!(t.offer(&b, SimTime(300), 1, 40).is_none());
        assert_eq!(t.drain()[0].packets, 2);
    }

    #[test]
    fn sweep_expires_idle_flows() {
        let mut t = FlowTable::new(300);
        t.offer(&bs("203.0.113.1", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        t.offer(&bs("203.0.113.2", Some(80), "44.0.0.2"), SimTime(290), 1, 40);
        let expired = t.sweep(SimTime(301));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].victim, "203.0.113.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn max_pps_per_minute() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        // Minute 0: 120 packets => 2 pps; minute 1: 60 packets => 1 pps.
        t.offer(&b, SimTime(10), 120, 4800);
        t.offer(&b, SimTime(70), 60, 2400);
        let f = t.drain().pop().unwrap();
        assert!((f.max_pps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_pps_single_bucket_in_progress() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(10), 30, 1200);
        let f = t.drain().pop().unwrap();
        assert!((f.max_pps() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_ports_and_sources() {
        let mut t = FlowTable::new(300);
        for (i, port) in [80u16, 443, 80, 8080].iter().enumerate() {
            let b = bs("203.0.113.1", Some(*port), &format!("44.0.0.{}", i + 1));
            t.offer(&b, SimTime(i as u64), 1, 40);
        }
        let f = t.drain().pop().unwrap();
        assert_eq!(f.distinct_ports(), 3);
        assert_eq!(f.single_port(), None);
        assert_eq!(f.distinct_sources(), 4);
    }

    #[test]
    fn dominant_proto() {
        let mut t = FlowTable::new(300);
        let mut b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(0), 10, 400);
        b.attack_proto = TransportProto::Udp;
        t.offer(&b, SimTime(1), 3, 120);
        let f = t.drain().pop().unwrap();
        assert_eq!(f.dominant_proto(), TransportProto::Tcp);
    }

    #[test]
    fn flows_keyed_by_victim() {
        let mut t = FlowTable::new(300);
        t.offer(&bs("203.0.113.1", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        t.offer(&bs("203.0.113.2", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        assert_eq!(t.len(), 2);
    }
}
