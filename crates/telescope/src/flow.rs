//! Step 2 of the Moore et al. pipeline: aggregate backscatter packets into
//! attack flows keyed by the victim IP, expiring flows after 300 seconds of
//! inactivity (the paper's conservative timeout).

use crate::classify::Backscatter;
use dosscope_types::{FastMap, FastSet, SimTime, TransportProto, SECS_PER_MINUTE};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Cap on the exact distinct-port set; beyond this the count saturates
/// (an attack on 256+ ports is deep into "multi-port" territory anyway).
const MAX_TRACKED_PORTS: usize = 256;

/// Cap on the exact distinct-source set, after which the count saturates.
const MAX_TRACKED_SOURCES: usize = 65_536;

/// Initial capacity of a flow's distinct-source set. Every backscatter
/// packet carries a fresh spoofed source, so the set grows with the flow;
/// starting at a realistic size skips the worst of the realloc/rehash
/// chain on the per-packet path (the dominant cost of `Flow::add` for
/// short flows) at ~1 KiB per live flow.
const SOURCES_INITIAL_CAPACITY: usize = 128;

/// An in-progress attack flow against one victim.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The victim IP (flow key).
    pub victim: Ipv4Addr,
    /// Timestamp of the first packet.
    pub first: SimTime,
    /// Timestamp of the most recent packet.
    pub last: SimTime,
    /// Total backscatter packets.
    pub packets: u64,
    /// Total backscatter bytes.
    pub bytes: u64,
    /// Packets per attributed attack protocol, indexed by
    /// [`TransportProto::ALL`] order.
    pub proto_packets: [u64; 4],
    /// Distinct victim-side ports observed (exact up to the cap), kept
    /// sorted. A flow rarely sees more than a handful of ports, so a
    /// sorted vec beats a tree node walk on the per-packet path.
    ports: Vec<u16>,
    ports_saturated: bool,
    /// Distinct telescope-side addresses (the attack's spoofed sources
    /// that happened to fall in the darknet), exact up to the cap.
    sources: FastSet<u32>,
    sources_overflow: u32,
    /// Packet count in the current minute bucket.
    cur_minute: u64,
    cur_minute_count: u64,
    /// Highest per-minute packet count seen.
    max_minute_count: u64,
    /// The expiry-wheel bucket this flow is registered in (`u64::MAX`
    /// until first registered). Entries in older wheel buckets are stale
    /// and skipped by `sweep`.
    bucket: u64,
}

impl Flow {
    fn new(victim: Ipv4Addr, ts: SimTime) -> Flow {
        Flow {
            victim,
            first: ts,
            last: ts,
            packets: 0,
            bytes: 0,
            proto_packets: [0; 4],
            ports: Vec::new(),
            ports_saturated: false,
            sources: FastSet::with_capacity_and_hasher(
                SOURCES_INITIAL_CAPACITY,
                Default::default(),
            ),
            sources_overflow: 0,
            cur_minute: ts.minute(),
            cur_minute_count: 0,
            max_minute_count: 0,
            bucket: u64::MAX,
        }
    }

    fn add(&mut self, b: &Backscatter, ts: SimTime, count: u32, bytes: u64) {
        debug_assert!(ts >= self.last, "flows must be fed in time order");
        self.last = self.last.max(ts);
        self.packets += count as u64;
        self.bytes += bytes;
        self.proto_packets[b.attack_proto.index()] += count as u64;
        if let Some(port) = b.victim_port {
            if let Err(at) = self.ports.binary_search(&port) {
                if self.ports.len() < MAX_TRACKED_PORTS {
                    self.ports.insert(at, port);
                } else {
                    self.ports_saturated = true;
                }
            }
        }
        let src = u32::from(b.spoofed_source);
        if self.sources.len() < MAX_TRACKED_SOURCES {
            self.sources.insert(src);
        } else if !self.sources.contains(&src) {
            self.sources_overflow = self.sources_overflow.saturating_add(1);
        }
        // Per-minute rate tracking.
        let minute = ts.minute();
        if minute != self.cur_minute {
            self.max_minute_count = self.max_minute_count.max(self.cur_minute_count);
            self.cur_minute = minute;
            self.cur_minute_count = 0;
        }
        self.cur_minute_count += count as u64;
    }

    /// Flow duration in seconds (last - first).
    pub fn duration_secs(&self) -> u64 {
        self.last.secs() - self.first.secs()
    }

    /// The maximum packets-per-second rate in any minute: the statistic
    /// the paper uses as attack intensity (and as the 0.5 pps filter).
    pub fn max_pps(&self) -> f64 {
        self.max_minute_count.max(self.cur_minute_count) as f64 / SECS_PER_MINUTE as f64
    }

    /// Number of distinct victim ports observed (saturating).
    pub fn distinct_ports(&self) -> u32 {
        self.ports.len() as u32 + u32::from(self.ports_saturated)
    }

    /// The single observed port, if exactly one.
    pub fn single_port(&self) -> Option<u16> {
        if self.distinct_ports() == 1 {
            self.ports.first().copied()
        } else {
            None
        }
    }

    /// Estimated number of distinct spoofed sources (saturating above the
    /// tracking cap).
    pub fn distinct_sources(&self) -> u32 {
        self.sources.len() as u32 + self.sources_overflow
    }

    /// The dominant attributed attack protocol by packet count.
    pub fn dominant_proto(&self) -> TransportProto {
        let (idx, _) = self
            .proto_packets
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("array non-empty");
        TransportProto::ALL[idx]
    }
}

/// The victim-keyed flow table with inactivity expiry.
///
/// Expiry uses a coarse, lazily-maintained time wheel: a flow registers in
/// a bucket (width ≤ 60 s) once when it starts, and [`FlowTable::sweep`]
/// visits only buckets old enough to possibly hold expired flows. A flow
/// found live there is re-filed under its current activity bucket, so the
/// wheel costs nothing on the per-packet path and each flow is touched at
/// most once per timeout window by sweeps — an interval boundary is
/// O(expired + revisited), never O(live flows). Entries left behind by a
/// replaced or re-filed flow are recognised as stale (the flow's own
/// `bucket` field is authoritative) and dropped for free.
#[derive(Debug)]
pub struct FlowTable {
    flows: FastMap<Ipv4Addr, Flow>,
    timeout_secs: u64,
    /// Wheel bucket width in seconds.
    granularity: u64,
    /// Last-activity buckets: bucket index → victims whose flows last saw
    /// traffic in `[index * granularity, (index + 1) * granularity)`.
    /// Entries may be stale; a `BTreeMap` keeps the oldest bucket first.
    buckets: BTreeMap<u64, Vec<Ipv4Addr>>,
}

impl FlowTable {
    /// A table with the given inactivity timeout (the paper uses 300 s).
    pub fn new(timeout_secs: u64) -> FlowTable {
        FlowTable {
            flows: FastMap::default(),
            timeout_secs,
            granularity: timeout_secs.clamp(1, 60),
            buckets: BTreeMap::new(),
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows are live.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Feed one classified backscatter batch. If the victim's previous
    /// flow had already expired relative to `ts`, it is finalized and
    /// returned while a fresh flow starts.
    pub fn offer(
        &mut self,
        b: &Backscatter,
        ts: SimTime,
        count: u32,
        bytes: u64,
    ) -> Option<Flow> {
        let mut expired = None;
        let flow = self
            .flows
            .entry(b.victim)
            .or_insert_with(|| Flow::new(b.victim, ts));
        if ts.secs() > flow.last.secs() + self.timeout_secs {
            expired = Some(std::mem::replace(flow, Flow::new(b.victim, ts)));
        }
        flow.add(b, ts, count, bytes);
        // Register fresh flows once; `sweep` re-registers a flow that is
        // still live when its bucket comes up, so the per-packet wheel
        // cost is a single comparison. (A replacement flow starts with
        // `bucket == u64::MAX` again; the entry left in the old flow's
        // bucket is recognised as stale via the authoritative field.)
        if flow.bucket == u64::MAX {
            let bucket = flow.last.secs() / self.granularity;
            flow.bucket = bucket;
            self.buckets.entry(bucket).or_default().push(b.victim);
        }
        expired
    }

    /// Expire and return every flow idle at `now` (last activity more than
    /// the timeout ago), sorted by victim. Called by the driver at
    /// interval boundaries. Only wheel buckets old enough to contain
    /// expired flows are visited, so the cost is O(expired + stale), not
    /// O(live flows).
    pub fn sweep(&mut self, now: SimTime) -> Vec<Flow> {
        let mut out = Vec::new();
        // Live flows found in a visited bucket are re-filed under their
        // *true* current-activity bucket — possibly at or below the visit
        // frontier. The insertion is deferred until after the loop so a
        // bucket cannot be popped twice within one sweep.
        let mut refile: Vec<(u64, Ipv4Addr)> = Vec::new();
        while let Some((&bucket, _)) = self.buckets.first_key_value() {
            // The earliest possible last-activity in this bucket is
            // `bucket * granularity`; if even that is within the timeout,
            // no flow here or in any later bucket can be expired.
            if now.secs() <= bucket.saturating_mul(self.granularity) + self.timeout_secs {
                break;
            }
            let victims = self.buckets.pop_first().expect("checked non-empty").1;
            for v in victims {
                match self.flows.get_mut(&v) {
                    Some(f) if f.bucket == bucket => {
                        if now.secs() > f.last.secs() + self.timeout_secs {
                            out.push(self.flows.remove(&v).expect("present above"));
                        } else {
                            // Live flow whose activity moved on since it
                            // was registered: re-file it under its current
                            // activity bucket. Filing later than the true
                            // bucket would delay its expiry past the scan's
                            // (the visit condition assumes last activity
                            // >= bucket start), so the bucket is exact and
                            // the insert is deferred.
                            let fwd = f.last.secs() / self.granularity;
                            f.bucket = fwd;
                            refile.push((fwd, v));
                        }
                    }
                    // Stale entry: the flow was replaced or re-filed.
                    _ => {}
                }
            }
        }
        for (bucket, v) in refile {
            self.buckets.entry(bucket).or_default().push(v);
        }
        out.sort_by_key(|f| f.victim);
        out
    }

    /// The pre-wheel full-table sweep, kept as the reference
    /// implementation: scans every live flow. Used by the equivalence
    /// property test and the pipeline benchmark's baseline lane; `sweep`
    /// returns exactly the same flow set, in the same victim order.
    pub fn sweep_scan(&mut self, now: SimTime) -> Vec<Flow> {
        let timeout = self.timeout_secs;
        let expired_keys: Vec<Ipv4Addr> = self
            .flows
            .iter()
            .filter(|(_, f)| now.secs() > f.last.secs() + timeout)
            .map(|(k, _)| *k)
            .collect();
        let mut out: Vec<Flow> = expired_keys
            .into_iter()
            .map(|k| self.flows.remove(&k).expect("key collected above"))
            .collect();
        out.sort_by_key(|f| f.victim);
        out
    }

    /// Finalize and return all remaining flows (end of trace), sorted by
    /// victim.
    pub fn drain(&mut self) -> Vec<Flow> {
        self.buckets.clear();
        let mut out: Vec<Flow> = self.flows.drain().map(|(_, f)| f).collect();
        out.sort_by_key(|f| f.victim);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(victim: &str, port: Option<u16>, spoofed: &str) -> Backscatter {
        Backscatter {
            victim: victim.parse().unwrap(),
            spoofed_source: spoofed.parse().unwrap(),
            attack_proto: TransportProto::Tcp,
            victim_port: port,
        }
    }

    #[test]
    fn flow_accumulates() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        assert!(t.offer(&b, SimTime(10), 5, 200).is_none());
        assert!(t.offer(&b, SimTime(40), 5, 200).is_none());
        assert_eq!(t.len(), 1);
        let flows = t.drain();
        assert_eq!(flows[0].packets, 10);
        assert_eq!(flows[0].bytes, 400);
        assert_eq!(flows[0].duration_secs(), 30);
        assert_eq!(flows[0].distinct_ports(), 1);
        assert_eq!(flows[0].single_port(), Some(80));
    }

    #[test]
    fn timeout_splits_flows() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        assert!(t.offer(&b, SimTime(0), 1, 40).is_none());
        // 301 seconds of silence: the next packet starts a new flow.
        let old = t.offer(&b, SimTime(302), 1, 40).expect("old flow expires");
        assert_eq!(old.packets, 1);
        assert_eq!(t.len(), 1);
        let new = t.drain().pop().unwrap();
        assert_eq!(new.first, SimTime(302));
    }

    #[test]
    fn boundary_exactly_timeout_keeps_flow() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(0), 1, 40);
        // Exactly 300 s later is still within the flow (> is required).
        assert!(t.offer(&b, SimTime(300), 1, 40).is_none());
        assert_eq!(t.drain()[0].packets, 2);
    }

    #[test]
    fn sweep_expires_idle_flows() {
        let mut t = FlowTable::new(300);
        t.offer(&bs("203.0.113.1", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        t.offer(&bs("203.0.113.2", Some(80), "44.0.0.2"), SimTime(290), 1, 40);
        let expired = t.sweep(SimTime(301));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].victim, "203.0.113.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn max_pps_per_minute() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        // Minute 0: 120 packets => 2 pps; minute 1: 60 packets => 1 pps.
        t.offer(&b, SimTime(10), 120, 4800);
        t.offer(&b, SimTime(70), 60, 2400);
        let f = t.drain().pop().unwrap();
        assert!((f.max_pps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_pps_single_bucket_in_progress() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(10), 30, 1200);
        let f = t.drain().pop().unwrap();
        assert!((f.max_pps() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_ports_and_sources() {
        let mut t = FlowTable::new(300);
        for (i, port) in [80u16, 443, 80, 8080].iter().enumerate() {
            let b = bs("203.0.113.1", Some(*port), &format!("44.0.0.{}", i + 1));
            t.offer(&b, SimTime(i as u64), 1, 40);
        }
        let f = t.drain().pop().unwrap();
        assert_eq!(f.distinct_ports(), 3);
        assert_eq!(f.single_port(), None);
        assert_eq!(f.distinct_sources(), 4);
    }

    #[test]
    fn dominant_proto() {
        let mut t = FlowTable::new(300);
        let mut b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(0), 10, 400);
        b.attack_proto = TransportProto::Udp;
        t.offer(&b, SimTime(1), 3, 120);
        let f = t.drain().pop().unwrap();
        assert_eq!(f.dominant_proto(), TransportProto::Tcp);
    }

    /// Satellite: drain/sweep output order is canonical (sorted by
    /// victim), never hash-map iteration order, regardless of hasher.
    #[test]
    fn drain_and_sweep_order_is_sorted_by_victim() {
        let mut t = FlowTable::new(300);
        // Insert in a scrambled order.
        for last_octet in [9u8, 1, 200, 73, 42, 128, 3] {
            let v = format!("203.0.113.{last_octet}");
            t.offer(&bs(&v, Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        }
        let drained = t.drain();
        let victims: Vec<Ipv4Addr> = drained.iter().map(|f| f.victim).collect();
        let mut sorted = victims.clone();
        sorted.sort();
        assert_eq!(victims, sorted, "drain output must be victim-sorted");

        let mut t = FlowTable::new(300);
        for last_octet in [9u8, 1, 200, 73, 42, 128, 3] {
            let v = format!("203.0.113.{last_octet}");
            t.offer(&bs(&v, Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        }
        let swept = t.sweep(SimTime(1000));
        assert_eq!(swept.len(), 7);
        let victims: Vec<Ipv4Addr> = swept.iter().map(|f| f.victim).collect();
        let mut sorted = victims.clone();
        sorted.sort();
        assert_eq!(victims, sorted, "sweep output must be victim-sorted");
    }

    /// The bucketed sweep matches the reference full-scan sweep exactly,
    /// including flows that moved buckets (stale wheel entries).
    #[test]
    fn bucketed_sweep_matches_scan_sweep() {
        let mut a = FlowTable::new(300);
        let mut b = FlowTable::new(300);
        let feed = |t: &mut FlowTable| {
            t.offer(&bs("203.0.113.1", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
            t.offer(&bs("203.0.113.2", Some(80), "44.0.0.2"), SimTime(30), 1, 40);
            // Victim 1 stays active (moves wheel buckets), victim 2 idles.
            t.offer(&bs("203.0.113.1", Some(80), "44.0.0.1"), SimTime(250), 1, 40);
        };
        feed(&mut a);
        feed(&mut b);
        for now in [100u64, 331, 400, 551, 552, 900] {
            let x: Vec<Ipv4Addr> = a.sweep(SimTime(now)).iter().map(|f| f.victim).collect();
            let y: Vec<Ipv4Addr> = b.sweep_scan(SimTime(now)).iter().map(|f| f.victim).collect();
            assert_eq!(x, y, "sweep at t={now}");
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn sweep_after_flow_replacement_ignores_stale_entries() {
        let mut t = FlowTable::new(300);
        let b = bs("203.0.113.1", Some(80), "44.0.0.1");
        t.offer(&b, SimTime(0), 1, 40);
        // Replacement in offer leaves the old flow's wheel entry behind.
        let old = t.offer(&b, SimTime(400), 1, 40);
        assert!(old.is_some());
        // Sweeping past the old bucket must not expire the fresh flow.
        assert!(t.sweep(SimTime(420)).is_empty());
        assert_eq!(t.len(), 1);
        // And the fresh flow still expires on schedule.
        assert_eq!(t.sweep(SimTime(701)).len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn flows_keyed_by_victim() {
        let mut t = FlowTable::new(300);
        t.offer(&bs("203.0.113.1", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        t.offer(&bs("203.0.113.2", Some(80), "44.0.0.1"), SimTime(0), 1, 40);
        assert_eq!(t.len(), 2);
    }
}
