//! Property-based tests for the detection pipeline: conservation laws of
//! the flow table and filter monotonicity of the detector.

use dosscope_telescope::{DetectorConfig, PacketBatch, RsdosDetector, Telescope};
use dosscope_types::SimTime;
use dosscope_wire::builder;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// An arbitrary attack script: (victim octet, start, duration, pps, port).
fn arb_attack() -> impl Strategy<Value = (u8, u64, u64, u32, u16)> {
    (1u8..40, 0u64..50_000, 30u64..2_000, 1u32..20, 1u16..1024)
}

fn render(attacks: &[(u8, u64, u64, u32, u16)]) -> Vec<PacketBatch> {
    let mut batches = Vec::new();
    for &(v, start, dur, pps, port) in attacks {
        let victim = Ipv4Addr::new(203, 0, 113, v);
        for s in 0..dur {
            let spoofed = Ipv4Addr::new(44, (s % 250) as u8, ((s / 250) % 250) as u8, 1);
            let pkt = builder::tcp_syn_ack(victim, port, spoofed, 40_000, s as u32);
            batches.push(PacketBatch::repeated(SimTime(start + s), pps, pkt));
        }
    }
    batches.sort_by_key(|b| b.ts);
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every backscatter packet is attributed to exactly one
    /// flow; events plus filtered flows equals finalized flows; event
    /// packet totals never exceed ingested backscatter.
    #[test]
    fn conservation_laws(attacks in proptest::collection::vec(arb_attack(), 1..6)) {
        let batches = render(&attacks);
        let total_packets: u64 = batches.iter().map(|b| b.count as u64).sum();
        let mut d = RsdosDetector::with_defaults(Telescope::default_slash8());
        for b in &batches {
            d.ingest(b);
        }
        let (events, stats) = d.finish();
        prop_assert_eq!(stats.backscatter_packets, total_packets);
        prop_assert_eq!(stats.events as usize, events.len());
        prop_assert_eq!(stats.events + stats.flows_filtered, stats.flows_finalized);
        let event_packets: u64 = events.iter().map(|e| e.packets).sum();
        prop_assert!(event_packets <= total_packets);
        // Every event satisfies the published thresholds.
        for e in &events {
            prop_assert!(e.packets >= 25);
            prop_assert!(e.duration_secs() >= 60);
            prop_assert!(e.intensity_pps >= 0.5);
        }
    }

    /// Filter monotonicity: loosening every threshold can only produce at
    /// least as many events, and the published-threshold events are a
    /// subset of the loose ones (by victim and start).
    #[test]
    fn filters_are_monotone(attacks in proptest::collection::vec(arb_attack(), 1..5)) {
        let batches = render(&attacks);
        let run = |config: DetectorConfig| {
            let mut d = RsdosDetector::new(Telescope::default_slash8(), config);
            for b in &batches {
                d.ingest(b);
            }
            d.finish().0
        };
        let published = run(DetectorConfig::default());
        let loose = run(DetectorConfig {
            min_packets: 0,
            min_duration_secs: 0,
            min_max_pps: 0.0,
            ..DetectorConfig::default()
        });
        prop_assert!(loose.len() >= published.len());
        for e in &published {
            prop_assert!(
                loose.iter().any(|l| l.target == e.target && l.when == e.when),
                "published event missing from loose run"
            );
        }
    }

    /// Flow splitting: the same script with a shorter flow timeout never
    /// yields fewer finalized flows.
    #[test]
    fn shorter_timeout_never_merges(attacks in proptest::collection::vec(arb_attack(), 1..5)) {
        let batches = render(&attacks);
        let finalized = |timeout: u64| {
            let mut d = RsdosDetector::new(
                Telescope::default_slash8(),
                DetectorConfig {
                    flow_timeout_secs: timeout,
                    min_packets: 0,
                    min_duration_secs: 0,
                    min_max_pps: 0.0,
                },
            );
            for b in &batches {
                d.ingest(b);
            }
            d.finish().1.flows_finalized
        };
        prop_assert!(finalized(30) >= finalized(300));
        prop_assert!(finalized(300) >= finalized(100_000));
    }
}
