//! Property-based tests for the detection pipeline: conservation laws of
//! the flow table and filter monotonicity of the detector.

use dosscope_telescope::{
    classify, classify_batch, BatchClass, DetectorConfig, PacketBatch, RsdosDetector, Telescope,
};
use dosscope_wire::Ipv4Packet;
use dosscope_types::SimTime;
use dosscope_wire::builder;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// An arbitrary attack script: (victim octet, start, duration, pps, port).
fn arb_attack() -> impl Strategy<Value = (u8, u64, u64, u32, u16)> {
    (1u8..40, 0u64..50_000, 30u64..2_000, 1u32..20, 1u16..1024)
}

fn render(attacks: &[(u8, u64, u64, u32, u16)]) -> Vec<PacketBatch> {
    let mut batches = Vec::new();
    for &(v, start, dur, pps, port) in attacks {
        let victim = Ipv4Addr::new(203, 0, 113, v);
        for s in 0..dur {
            let spoofed = Ipv4Addr::new(44, (s % 250) as u8, ((s / 250) % 250) as u8, 1);
            let pkt = builder::tcp_syn_ack(victim, port, spoofed, 40_000, s as u32);
            batches.push(PacketBatch::repeated(SimTime(start + s), pps, pkt));
        }
    }
    batches.sort_by_key(|b| b.ts);
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every backscatter packet is attributed to exactly one
    /// flow; events plus filtered flows equals finalized flows; event
    /// packet totals never exceed ingested backscatter.
    #[test]
    fn conservation_laws(attacks in proptest::collection::vec(arb_attack(), 1..6)) {
        let batches = render(&attacks);
        let total_packets: u64 = batches.iter().map(|b| b.count as u64).sum();
        let mut d = RsdosDetector::with_defaults(Telescope::default_slash8());
        for b in &batches {
            d.ingest(b);
        }
        let (events, stats) = d.finish();
        prop_assert_eq!(stats.backscatter_packets, total_packets);
        prop_assert_eq!(stats.events as usize, events.len());
        prop_assert_eq!(stats.events + stats.flows_filtered, stats.flows_finalized);
        let event_packets: u64 = events.iter().map(|e| e.packets).sum();
        prop_assert!(event_packets <= total_packets);
        // Every event satisfies the published thresholds.
        for e in &events {
            prop_assert!(e.packets >= 25);
            prop_assert!(e.duration_secs() >= 60);
            prop_assert!(e.intensity_pps >= 0.5);
        }
    }

    /// Filter monotonicity: loosening every threshold can only produce at
    /// least as many events, and the published-threshold events are a
    /// subset of the loose ones (by victim and start).
    #[test]
    fn filters_are_monotone(attacks in proptest::collection::vec(arb_attack(), 1..5)) {
        let batches = render(&attacks);
        let run = |config: DetectorConfig| {
            let mut d = RsdosDetector::new(Telescope::default_slash8(), config);
            for b in &batches {
                d.ingest(b);
            }
            d.finish().0
        };
        let published = run(DetectorConfig::default());
        let loose = run(DetectorConfig {
            min_packets: 0,
            min_duration_secs: 0,
            min_max_pps: 0.0,
            ..DetectorConfig::default()
        });
        prop_assert!(loose.len() >= published.len());
        for e in &published {
            prop_assert!(
                loose.iter().any(|l| l.target == e.target && l.when == e.when),
                "published event missing from loose run"
            );
        }
    }

    /// Expiry equivalence: the bucketed time-wheel sweep finalizes exactly
    /// the same flow set as the retained full-table scan, for arbitrary
    /// batch timelines, timeouts, and mid-stream sweep schedules.
    #[test]
    fn bucketed_sweep_matches_full_scan(
        attacks in proptest::collection::vec(arb_attack(), 1..6),
        timeout in 1u64..400,
        sweep_every in 1usize..24,
        jitter in 0u64..3_000,
    ) {
        let batches = render(&attacks);
        let config = DetectorConfig {
            flow_timeout_secs: timeout,
            min_packets: 0,
            min_duration_secs: 0,
            min_max_pps: 0.0,
        };
        let mut wheel = RsdosDetector::new(Telescope::default_slash8(), config);
        let mut scan = RsdosDetector::new(Telescope::default_slash8(), config);
        for (i, b) in batches.iter().enumerate() {
            wheel.ingest(b);
            scan.ingest(b);
            if i % sweep_every == sweep_every - 1 {
                let now = SimTime(b.ts.secs() + jitter);
                wheel.advance(now);
                scan.advance_scan(now);
                prop_assert_eq!(wheel.live_flows(), scan.live_flows());
                prop_assert_eq!(wheel.events().len(), scan.events().len());
            }
        }
        let (we, ws) = wheel.finish();
        let (se, ss) = scan.finish();
        prop_assert_eq!(we, se);
        prop_assert_eq!(ws, ss);
    }

    /// Flow splitting: the same script with a shorter flow timeout never
    /// yields fewer finalized flows.
    #[test]
    fn shorter_timeout_never_merges(attacks in proptest::collection::vec(arb_attack(), 1..5)) {
        let batches = render(&attacks);
        let finalized = |timeout: u64| {
            let mut d = RsdosDetector::new(
                Telescope::default_slash8(),
                DetectorConfig {
                    flow_timeout_secs: timeout,
                    min_packets: 0,
                    min_duration_secs: 0,
                    min_max_pps: 0.0,
                },
            );
            for b in &batches {
                d.ingest(b);
            }
            d.finish().1.flows_finalized
        };
        prop_assert!(finalized(30) >= finalized(300));
        prop_assert!(finalized(300) >= finalized(100_000));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fused one-pass `classify_batch` agrees with the layered
    /// reference (checked IPv4 parse + `classify`) on valid, corrupted
    /// and truncated packets alike.
    #[test]
    fn fused_classify_matches_layered(
        kind in 0usize..5,
        a in 1u8..255,
        b in 0u8..255,
        port in 0u16..u16::MAX,
        code in 0u8..16,
        flips in proptest::collection::vec((0usize..4096, 0u8..=255u8), 0..8),
        cut in 0usize..4096,
        raw in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        use dosscope_wire::IpProtocol;
        let victim = Ipv4Addr::new(203, 0, 113, a);
        let dark = Ipv4Addr::new(44, b, 1, 2);
        let mut bytes = match kind {
            0 => builder::tcp_syn_ack(victim, port, dark, 40_000, 7),
            1 => builder::tcp_rst(victim, port, dark, 40_000, 7),
            2 => builder::icmp_echo_reply(victim, dark, 7, 9),
            3 => builder::icmp_dest_unreachable(
                victim,
                dark,
                match code % 4 {
                    0 => IpProtocol::Udp,
                    1 => IpProtocol::Tcp,
                    2 => IpProtocol::Icmp,
                    _ => IpProtocol::Igmp,
                },
                port,
                port ^ 0x5555,
                code % 6,
            ),
            _ => raw.clone(),
        };
        for (i, v) in flips {
            if !bytes.is_empty() {
                let n = bytes.len();
                bytes[i % n] = v;
            }
        }
        if !bytes.is_empty() {
            let n = bytes.len();
            bytes.truncate(1 + cut % n);
        }
        let fused = classify_batch(&bytes);
        let layered = match Ipv4Packet::new_checked(bytes.as_slice()) {
            Err(_) => BatchClass::Malformed,
            Ok(ip) => match classify(&ip) {
                None => BatchClass::Other,
                Some(facts) => BatchClass::Backscatter { dst: ip.dst(), facts },
            },
        };
        prop_assert_eq!(fused, layered);
    }
}
