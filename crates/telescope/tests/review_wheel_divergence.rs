//! Review scratch test: does the bucketed sweep match the full scan when a
//! live flow is re-filed with the safe_bucket clamp?

use dosscope_telescope::classify::Backscatter;
use dosscope_telescope::flow::FlowTable;
use dosscope_types::{SimTime, TransportProto};

fn bs(victim: &str, spoofed: &str) -> Backscatter {
    Backscatter {
        victim: victim.parse().unwrap(),
        spoofed_source: spoofed.parse().unwrap(),
        attack_proto: TransportProto::Tcp,
        victim_port: Some(80),
    }
}

#[test]
fn wheel_vs_scan_after_clamped_refile() {
    // timeout=100 -> granularity = 60
    let mut wheel = FlowTable::new(100);
    let mut scan = FlowTable::new(100);
    let b = bs("203.0.113.1", "44.0.0.1");
    for t in [0u64, 58] {
        wheel.offer(&b, SimTime(t), 1, 40);
        scan.offer(&b, SimTime(t), 1, 40);
    }
    // First sweep at 157: flow is live (157 <= 58+100), gets re-filed.
    let w1 = wheel.sweep(SimTime(157));
    let s1 = scan.sweep_scan(SimTime(157));
    assert_eq!(w1.len(), s1.len(), "sweep 1 diverged");
    // Second sweep at 159: flow expired (159 > 158).
    let w2 = wheel.sweep(SimTime(159));
    let s2 = scan.sweep_scan(SimTime(159));
    assert_eq!(
        w2.len(),
        s2.len(),
        "sweep 2 diverged: wheel={} scan={}",
        w2.len(),
        s2.len()
    );
}
