//! End-to-end pipeline benchmark: times every stage of the scenario
//! (world build, rendering, telescope detection, honeypot fleet, event
//! fusion, report assembly) at 1, 2 and 8 measurement threads, plus a
//! baseline lane that re-runs the single-threaded measurement stages
//! through the pre-overhaul replicas ([`dosscope_bench::baseline`]) in the
//! same process. Writes the machine-readable trajectory to
//! `BENCH_pipeline.json`.
//!
//! Usage:
//!
//! ```text
//! pipeline [--smoke] [--scale F] [--days N] [--out PATH] [--check PATH]
//! ```
//!
//! `--smoke` runs the reduced test scale (for CI). `--check PATH` compares
//! the freshly-measured baseline speedups against a committed
//! `BENCH_pipeline.json` and exits non-zero when the file is malformed or
//! any measured speedup regressed to less than half the committed value
//! (speedups are in-run ratios, so the gate is machine-independent).

use dosscope_amppot::{partition_requests, AmpPotFleet, RequestBatch, ShardedFleet};
use dosscope_attackgen::config::Calibration;
use dosscope_attackgen::{GenConfig, Generator, MigrationModel, Renderer};
use dosscope_bench::baseline::{
    baseline_packets, baseline_requests, BaselineFleet, BaselinePacketBatch,
    BaselineRequestBatch, BaselineRsdos,
};
use dosscope_core::report::{Table1, Table2, Table3};
use dosscope_core::{EventStore, Framework};
use dosscope_dns::synth::{synthesize, SynthConfig};
use dosscope_dps::DpsDataset;
use dosscope_geo::{AsRegistry, RegistryConfig};
use dosscope_telescope::{partition_batches, PacketBatch, RsdosDetector, ShardedRsdos, Telescope};
use dosscope_types::{DayIndex, SimTime};
use std::fmt::Write as _;
use std::time::Instant;

/// Thread counts every measurement stage is timed at.
const THREADS: [usize; 3] = [1, 2, 8];

/// Interval length the serial telescope driver uses (matches the harness).
const INTERVAL_SECS: u64 = 60;

/// Repetitions for the single-threaded lanes (current and baseline). The
/// two lanes' reps are interleaved (see [`time_pair`]) and each records
/// its minimum wall time, so the current-vs-baseline speedup is a
/// warm-cache comparison with ambient machine noise landing on both
/// lanes alike.
const SERIAL_REPS: usize = 5;

struct Stage {
    name: &'static str,
    threads: usize,
    wall_secs: f64,
    /// Batches processed by the stage (0 when not batch-shaped).
    items: u64,
    /// Peak working-set size (live flows / open events; 0 when unsampled).
    peak: u64,
}

impl Stage {
    fn items_per_sec(&self) -> f64 {
        if self.items == 0 || self.wall_secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / self.wall_secs
        }
    }
}

struct Options {
    scale: f64,
    days: u32,
    seed: u64,
    out: String,
    check: Option<String>,
    smoke: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: 2_000.0,
        days: 731,
        seed: 0xD05C09E,
        out: "BENCH_pipeline.json".to_string(),
        check: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match a.as_str() {
            "--smoke" => {
                opts.smoke = true;
                opts.scale = 20_000.0;
            }
            "--scale" => opts.scale = value("--scale").parse().expect("--scale takes a float"),
            "--days" => opts.days = value("--days").parse().expect("--days takes an integer"),
            "--out" => opts.out = value("--out"),
            "--check" => opts.check = Some(value("--check")),
            other => panic!("unknown argument: {other}"),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let mut stages: Vec<Stage> = Vec::new();

    // ---- Stage: world ---------------------------------------------------
    let t0 = Instant::now();
    let registry = AsRegistry::build(&RegistryConfig {
        seed: opts.seed ^ 0x9E0,
        ..RegistryConfig::default()
    });
    let geo = registry.build_geodb();
    let asdb = registry.build_asdb();
    let total_sites =
        ((dosscope_attackgen::config::paper::WEB_SITES / opts.scale).round() as u32).max(500);
    let mut synth = synthesize(
        &SynthConfig {
            seed: opts.seed ^ 0xD45,
            total_sites,
            days: opts.days,
            ..SynthConfig::default()
        },
        &registry,
    );
    let gen_config = GenConfig {
        seed: opts.seed ^ 0xA77,
        days: opts.days,
        scale: opts.scale,
        ..GenConfig::default()
    };
    let cal = Calibration::default();
    let truth =
        Generator::new(gen_config.clone(), Calibration::default(), &registry, &synth).generate();
    let _migrations = MigrationModel::apply(&gen_config, &cal, &truth, &mut synth);
    let dps = DpsDataset::infer(&synth.zone, &synth.catalog, &asdb);
    stages.push(Stage {
        name: "world",
        threads: 1,
        wall_secs: t0.elapsed().as_secs_f64(),
        items: 0,
        peak: 0,
    });

    // ---- Stage: render --------------------------------------------------
    let telescope = Telescope::default_slash8();
    let pot_addrs: Vec<std::net::Ipv4Addr> = AmpPotFleet::standard()
        .honeypots()
        .iter()
        .map(|h| h.addr)
        .collect();
    let renderer = Renderer::new(&truth, telescope, pot_addrs, opts.seed ^ 0x8E4, opts.days);
    let t0 = Instant::now();
    let days_data: Vec<(Vec<PacketBatch>, Vec<RequestBatch>)> = (0..opts.days)
        .map(|d| {
            let day = DayIndex(d);
            (renderer.telescope_day(day), renderer.honeypot_day(day))
        })
        .collect();
    let render_secs = t0.elapsed().as_secs_f64();
    let tele_batches: u64 = days_data.iter().map(|(t, _)| t.len() as u64).sum();
    let hp_batches: u64 = days_data.iter().map(|(_, h)| h.len() as u64).sum();
    stages.push(Stage {
        name: "render",
        threads: 1,
        wall_secs: render_secs,
        items: tele_batches + hp_batches,
        peak: 0,
    });

    // ---- Serial measurement lanes: current vs pre-overhaul baseline -----
    // The baseline replicas consume the pre-overhaul `Arc<Vec<u8>>` batch
    // layout; the conversion happens outside the timed region because it
    // is an artifact of keeping both implementations in one process, not
    // work the old pipeline ever did.
    let base_tele_days: Vec<Vec<BaselinePacketBatch>> =
        days_data.iter().map(|(t, _)| baseline_packets(t)).collect();
    let (
        ((serial_tele, tele1_peak), tele1_secs),
        ((base_tele_events, base_tele_peak), base_tele_secs),
    ) = time_pair(
        SERIAL_REPS,
        || {
            let mut detector = RsdosDetector::with_defaults(telescope);
            let mut interval: Option<u64> = None;
            let mut peak = 0usize;
            for (tele, _) in &days_data {
                for b in tele {
                    let iv = b.ts.secs() / INTERVAL_SECS;
                    match interval {
                        None => interval = Some(iv),
                        Some(cur) if iv > cur => {
                            detector.advance(SimTime(iv * INTERVAL_SECS));
                            interval = Some(iv);
                        }
                        _ => {}
                    }
                    detector.ingest(b);
                }
                peak = peak.max(detector.live_flows());
            }
            let (events, _) = detector.finish();
            (events, peak)
        },
        || {
            let mut detector = BaselineRsdos::with_defaults(telescope);
            let mut interval: Option<u64> = None;
            let mut peak = 0usize;
            for tele in &base_tele_days {
                for b in tele {
                    let iv = b.ts.secs() / INTERVAL_SECS;
                    match interval {
                        None => interval = Some(iv),
                        Some(cur) if iv > cur => {
                            detector.advance(SimTime(iv * INTERVAL_SECS));
                            interval = Some(iv);
                        }
                        _ => {}
                    }
                    detector.ingest(b);
                }
                peak = peak.max(detector.live_flows());
            }
            let (events, _) = detector.finish();
            (events, peak)
        },
    );
    drop(base_tele_days);

    let base_hp_days: Vec<Vec<BaselineRequestBatch>> =
        days_data.iter().map(|(_, h)| baseline_requests(h)).collect();
    let (
        ((serial_hp, fleet1_peak), fleet1_secs),
        ((base_hp_events, base_fleet_peak), base_fleet_secs),
    ) = time_pair(
        SERIAL_REPS,
        || {
            let mut fleet = AmpPotFleet::standard();
            let mut peak = 0usize;
            for (_, hp) in &days_data {
                for b in hp {
                    fleet.ingest(b);
                }
                peak = peak.max(fleet.open_events());
            }
            let (events, _) = fleet.finish();
            (events, peak)
        },
        || {
            let mut fleet = BaselineFleet::standard();
            let mut peak = 0usize;
            for hp in &base_hp_days {
                for b in hp {
                    fleet.ingest(b);
                }
                peak = peak.max(fleet.open_events());
            }
            let (events, _) = fleet.finish();
            (events, peak)
        },
    );
    drop(base_hp_days);

    // ---- Measurement stages at each thread count ------------------------
    for &threads in &THREADS {
        // Telescope detection.
        let (tele_events, tele_secs, tele_peak) = if threads == 1 {
            (serial_tele.clone(), tele1_secs, tele1_peak as u64)
        } else {
            let lane: Vec<Vec<PacketBatch>> =
                days_data.iter().map(|(t, _)| t.clone()).collect();
            let mut rsdos = ShardedRsdos::with_defaults(telescope, threads);
            let t0 = Instant::now();
            for day in lane {
                let parts = partition_batches(day, threads);
                rsdos.ingest_partitioned(&parts);
            }
            let (events, _) = rsdos.finish();
            (events, t0.elapsed().as_secs_f64(), 0)
        };
        stages.push(Stage {
            name: "telescope",
            threads,
            wall_secs: tele_secs,
            items: tele_batches,
            peak: tele_peak,
        });

        // Honeypot fleet.
        let (hp_events, fleet_secs, fleet_peak) = if threads == 1 {
            (serial_hp.clone(), fleet1_secs, fleet1_peak as u64)
        } else {
            let lane: Vec<Vec<RequestBatch>> =
                days_data.iter().map(|(_, h)| h.clone()).collect();
            let mut fleet = ShardedFleet::standard(threads);
            let t0 = Instant::now();
            for day in lane {
                let parts = partition_requests(day, threads);
                fleet.ingest_partitioned(&parts);
            }
            let (events, _) = fleet.finish();
            (events, t0.elapsed().as_secs_f64(), 0)
        };
        stages.push(Stage {
            name: "fleet",
            threads,
            wall_secs: fleet_secs,
            items: hp_batches,
            peak: fleet_peak,
        });

        // Event fusion into the store.
        let t0 = Instant::now();
        let mut store = EventStore::new();
        store.ingest_telescope(tele_events.clone());
        store.ingest_honeypot(hp_events.clone());
        let combined = store.summary_combined();
        let common = store.common_targets();
        stages.push(Stage {
            name: "fusion",
            threads,
            wall_secs: t0.elapsed().as_secs_f64(),
            items: combined.events,
            peak: common,
        });

        // Report assembly over the fused store.
        let t0 = Instant::now();
        let fw = Framework::new(&store, &geo, &asdb, opts.days)
            .with_dns(&synth.zone, &synth.catalog)
            .with_dps(&dps);
        let t1 = Table1::build(&fw);
        let t2 = Table2::build(&fw);
        let t3 = Table3::build(&fw);
        let report_items =
            t1.rows.len() as u64 + t2.is_some() as u64 + t3.is_some() as u64;
        stages.push(Stage {
            name: "report",
            threads,
            wall_secs: t0.elapsed().as_secs_f64(),
            items: report_items,
            peak: 0,
        });

        if threads > 1 {
            // Sharding must not change the output (also covered by the
            // harness tests; cheap cross-check here).
            assert_eq!(
                serial_tele.len(),
                tele_events.len(),
                "sharded telescope diverged"
            );
            assert_eq!(serial_hp.len(), hp_events.len(), "sharded fleet diverged");
        }
    }

    // ---- Baseline stage records (timed in the serial lanes above) -------
    stages.push(Stage {
        name: "telescope_baseline",
        threads: 1,
        wall_secs: base_tele_secs,
        items: tele_batches,
        peak: base_tele_peak as u64,
    });
    stages.push(Stage {
        name: "fleet_baseline",
        threads: 1,
        wall_secs: base_fleet_secs,
        items: hp_batches,
        peak: base_fleet_peak as u64,
    });

    // The speedup is only meaningful if both lanes did the same work.
    assert_eq!(
        serial_tele, base_tele_events,
        "baseline telescope lane produced different events"
    );
    assert_eq!(
        serial_hp, base_hp_events,
        "baseline fleet lane produced different events"
    );

    let speedup_tele = ratio(base_tele_secs, tele1_secs);
    let speedup_fleet = ratio(base_fleet_secs, fleet1_secs);
    let speedup_measurement = ratio(base_tele_secs + base_fleet_secs, tele1_secs + fleet1_secs);

    // ---- Emit JSON ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"dosscope-bench-pipeline-v1\",");
    let _ = writeln!(json, "  \"scale\": {},", opts.scale);
    let _ = writeln!(json, "  \"days\": {},", opts.days);
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"threads\": [1, 2, 8],");
    json.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let sep = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"wall_secs\": {:.6}, \"items\": {}, \"items_per_sec\": {:.1}, \"peak\": {}}}{}",
            s.name, s.threads, s.wall_secs, s.items, s.items_per_sec(), s.peak, sep
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"telescope\": {:.3}, \"fleet\": {:.3}, \"measurement\": {:.3}}},",
        speedup_tele, speedup_fleet, speedup_measurement
    );
    let _ = writeln!(
        json,
        "  \"events\": {{\"telescope\": {}, \"honeypot\": {}}}",
        serial_tele.len(),
        serial_hp.len()
    );
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).expect("write bench output");

    println!("wrote {}", opts.out);
    for s in &stages {
        println!(
            "  {:<20} threads={} {:>9.3}s  {:>12.0} items/s  peak={}",
            s.name,
            s.threads,
            s.wall_secs,
            s.items_per_sec(),
            s.peak
        );
    }
    println!(
        "  speedup vs pre-overhaul baseline: telescope {speedup_tele:.2}x, fleet {speedup_fleet:.2}x, measurement {speedup_measurement:.2}x"
    );

    // ---- Optional regression gate ---------------------------------------
    if let Some(path) = &opts.check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let c = parse_committed(&committed)
            .unwrap_or_else(|e| fail(&format!("{path} is malformed: {e}")));
        let gates = [
            ("telescope", c.speedup_tele, speedup_tele),
            ("fleet", c.speedup_fleet, speedup_fleet),
            ("measurement", c.speedup_measurement, speedup_measurement),
        ];
        for (name, committed_x, current_x) in gates {
            if current_x < committed_x / 2.0 {
                fail(&format!(
                    "{name} speedup regressed more than 2x: committed {committed_x:.2}x, current {current_x:.2}x"
                ));
            }
        }
        println!("  check against {path}: ok");
    }
}

/// Run two implementations of the same stage `reps` times each, with the
/// reps interleaved A, B, A, B, … so ambient machine noise (scheduler,
/// frequency scaling, co-tenants) lands on both alike rather than on
/// whichever lane happened to run during the bad stretch. Returns each
/// side's (first) result with its minimum wall time.
fn time_pair<A, B>(
    reps: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> ((A, f64), (B, f64)) {
    let (mut out_a, mut best_a) = (None, f64::INFINITY);
    let (mut out_b, mut best_b) = (None, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        out_a.get_or_insert(r);
        let t0 = Instant::now();
        let r = b();
        best_b = best_b.min(t0.elapsed().as_secs_f64());
        out_b.get_or_insert(r);
    }
    (
        (out_a.expect("at least one rep"), best_a),
        (out_b.expect("at least one rep"), best_b),
    )
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("pipeline bench check FAILED: {msg}");
    std::process::exit(1);
}

/// What the checker needs from a committed `BENCH_pipeline.json`.
struct Committed {
    speedup_tele: f64,
    speedup_fleet: f64,
    speedup_measurement: f64,
}

/// Minimal structural validation + value extraction for the writer's own
/// one-stage-per-line format. Not a general JSON parser on purpose: the
/// file is produced by this binary, and a format drift should fail loudly.
fn parse_committed(text: &str) -> Result<Committed, String> {
    if !text.contains("\"schema\": \"dosscope-bench-pipeline-v1\"") {
        return Err("missing or unknown schema marker".to_string());
    }
    // Every (stage, threads) pair must be present with a finite wall time.
    let mut required: Vec<(String, usize)> = vec![
        ("world".to_string(), 1),
        ("render".to_string(), 1),
        ("telescope_baseline".to_string(), 1),
        ("fleet_baseline".to_string(), 1),
    ];
    for t in THREADS {
        for name in ["telescope", "fleet", "fusion", "report"] {
            required.push((name.to_string(), t));
        }
    }
    for line in text.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let threads = extract_num(line, "threads")
            .ok_or_else(|| format!("stage {name} has no threads field"))?
            as usize;
        let wall = extract_num(line, "wall_secs")
            .ok_or_else(|| format!("stage {name} has no wall_secs field"))?;
        if !wall.is_finite() || wall < 0.0 {
            return Err(format!("stage {name} has invalid wall_secs {wall}"));
        }
        required.retain(|(n, t)| !(*n == name && *t == threads));
    }
    if !required.is_empty() {
        return Err(format!("missing stages: {required:?}"));
    }
    let speedup_line = text
        .lines()
        .find(|l| l.contains("\"speedup\""))
        .ok_or("missing speedup record")?;
    let get = |key: &str| {
        extract_num(speedup_line, key).ok_or_else(|| format!("speedup record lacks {key}"))
    };
    Ok(Committed {
        speedup_tele: get("telescope")?,
        speedup_fleet: get("fleet")?,
        speedup_measurement: get("measurement")?,
    })
}

/// Extract `"key": "value"` from a single line.
fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extract `"key": <number>` from a single line.
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
