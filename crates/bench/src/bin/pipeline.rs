//! End-to-end pipeline benchmark: times every stage of the scenario
//! (world build, rendering, telescope detection, honeypot fleet, event
//! fusion, report assembly) at 1, 2 and 8 measurement threads, plus a
//! baseline lane that re-runs the single-threaded measurement stages
//! through the pre-overhaul replicas ([`dosscope_bench::baseline`]) in the
//! same process, plus a telemetry lane that re-times the serial
//! measurement with `dosscope-obs` collection off and on (interleaved, so
//! ambient noise lands on both alike), plus a columnar-store scale sweep
//! (see below). Writes the machine-readable trajectory to
//! `BENCH_pipeline.json` (schema `dosscope-bench-pipeline-v5`).
//!
//! Usage:
//!
//! ```text
//! pipeline [--smoke] [--scale F] [--days N] [--out PATH] [--check PATH]
//!          [--telemetry]
//! ```
//!
//! ## The store scale sweep
//!
//! The detector stages produce tens of thousands of events at bench
//! scale, but the columnar [`EventStore`] is sized for the paper's
//! millions — and 100x beyond. The sweep lane replicates the serial
//! detectors' events with deterministic perturbations (each replica
//! shifts every start by 31 s and every target by one address, so
//! victims, /24s and timestamps all stay diverse) up to scale ∈
//! {1, 5, 20, 50, 100} × ~1.045 M events (full runs; smoke sweeps
//! {1, 5} × 25 k). Each stream is stride-split into
//! [`SWEEP_BATCHES`] interleaved batches — every batch spans the full
//! time range, so all but the first arrive out of order and land in the
//! store's sorted-run machinery — and the ingest timer covers every
//! batch *plus* the final consolidation, i.e. the full cost of reaching
//! a query-ready store. The fusion timer then streams every stored
//! event (both sources merged by start) through the incremental
//! [`StreamingFusion`] engine, enrichment lookups included — honest
//! per-event fusion work, not the O(1) bitset summaries the store
//! answers aggregate queries from — and the report timer assembles
//! Tables 1–3 over the same store. Scale 100 is the headline claim:
//! ≈ 104.5 M events ingested, fused and reported in one in-memory
//! store, with ingest cost per event flat across the sweep (the
//! sorted-run design's amortized-linear guarantee).
//!
//! `--smoke` runs the reduced test scale and times the measurement stages
//! at threads {1, 8} only (for CI); its sweep lanes keep the best of
//! [`SMOKE_SWEEP_REPS`] repetitions, since millisecond lanes are
//! scheduler-noise-bound. `--telemetry` (or
//! `DOSSCOPE_TELEMETRY=1`) additionally collects spans/counters/pool
//! profiles over the pool lanes and writes `TELEMETRY.json` plus the
//! ASCII dashboard (note: collection adds clock reads inside the timed
//! lanes, so gated runs should leave it off). `--check PATH` compares the
//! freshly-measured speedups against a committed `BENCH_pipeline.json`
//! and exits non-zero when the file is malformed, any in-run speedup
//! regressed to less than half the committed value, the committed
//! parallel speedup is below the 4x floor, the fresh threads=8 wall
//! time regressed past threads=1 by more than the dispatch-overhead
//! budget, the committed sweep breaks its scaling gates (below), or the
//! fresh sweep lacks its largest scheduled lane (speedups and the sweep
//! gates are in-run ratios, so every gate is machine-independent). The
//! committed sweep must carry a scale=100 lane with ≥ 100 M events and
//! a finite peak working set, its scale-normalized ingest wall
//! (`ingest_secs / scale`) within [`SWEEP_NORMALIZED_INGEST_BUDGET`] of
//! the scale=1 lane's, and a scale=20 ingest within
//! [`SWEEP_SCALE20_BUDGET`] of 20x the scale=1 wall — the committed
//! proof that ingest stays amortized-linear to 100x paper scale. Fresh
//! smoke runs additionally gate their scale=5/scale=1 ingest ratio at
//! [`SWEEP_SMOKE_INGEST_RATIO`] (5x the work, plus headroom for
//! millisecond-lane noise). On a full-scale run whose scale/days match
//! the committed file, `--check` also gates the disabled-telemetry
//! serial measurement wall at [`DISABLED_TELEMETRY_BUDGET`] of the
//! committed trajectory — proof that instrumentation-off costs stay
//! within noise of the pre-instrumentation pipeline.
//!
//! Full-run memory note: the scale=100 lane's working set (event
//! vectors, batch splits, columns and merge transients) peaks around
//! 25–30 GiB. Before the sweep the bench pre-faults an arena of that
//! size once, outside every timer, so lazily-populated VM memory (some
//! hypervisors charge tens of microseconds per first-touched page) is
//! paid up front rather than inside whichever lane happens to touch a
//! page first. On hosts whose allocator returns large freed blocks to
//! the OS immediately (glibc mmap'd chunks), run full regenerations
//! with `MALLOC_MMAP_MAX_=0 MALLOC_TRIM_THRESHOLD_=-1` so the
//! pre-faulted pages stay in the heap and the lanes actually reuse
//! them; the gates are in-run ratios either way.
//!
//! ## How the parallel speedup is measured
//!
//! The threaded lanes run the real persistent-pool engines and record
//! honest wall time (`parallel_wall_speedup`). On a many-core host that
//! ratio approaches the core count; on a single-CPU container the workers
//! merely interleave, so wall time alone cannot show the available
//! parallelism. `parallel_speedup` therefore reports the pipelined
//! steady-state bound: in the deployed pipeline the producer thread
//! routes chunk N+1 while the workers drain chunk N, so throughput is
//! limited by max(routing wall, slowest shard's wall) — each component
//! timed contention-free on one thread here. That is the speedup an
//! unloaded host with > `threads` cores realises, measured identically on
//! any machine; the `parallel_speedup_basis` field records this. The
//! raw decomposition is written to the `parallel_lanes` record.

use dosscope_amppot::{route_requests, AmpPotFleet, RequestBatch, ShardedFleet};
use dosscope_attackgen::config::Calibration;
use dosscope_attackgen::{GenConfig, Generator, MigrationModel, Renderer};
use dosscope_bench::baseline::{
    baseline_packets, baseline_requests, BaselineFleet, BaselinePacketBatch,
    BaselineRequestBatch, BaselineRsdos,
};
use dosscope_core::report::{Table1, Table2, Table3};
use dosscope_core::{EventStore, Framework, ShardedEventStore, StreamingFusion};
use dosscope_dns::synth::{synthesize, SynthConfig};
use dosscope_dps::DpsDataset;
use dosscope_geo::{AsRegistry, RegistryConfig};
use dosscope_telescope::{route_batches, PacketBatch, RsdosDetector, ShardedRsdos, Telescope};
use dosscope_types::{DayIndex, SimTime};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread counts every measurement stage is timed at (smoke runs {1, 8}).
const THREADS: [usize; 3] = [1, 2, 8];

/// Interval length the serial telescope driver uses (matches the harness).
const INTERVAL_SECS: u64 = 60;

/// Repetitions for the single-threaded lanes (current and baseline). The
/// two lanes' reps are interleaved (see [`time_pair`]) and each records
/// its minimum wall time, so the current-vs-baseline speedup is a
/// warm-cache comparison with ambient machine noise landing on both
/// lanes alike.
const SERIAL_REPS: usize = 5;

/// Repetitions for the threaded pool lanes (min wall time is kept).
const PARALLEL_REPS: usize = 3;

/// Repetitions for the contention-free pipelined-bound decomposition.
/// These components are small (milliseconds at smoke scale) and feed the
/// gated `parallel_speedup`, so they take more reps than the wall lanes
/// to shake scheduler noise out of the minima.
const DECOMP_REPS: usize = 5;

/// Days concatenated into one dispatched chunk. Large chunks amortize the
/// per-dispatch channel wakeups; the concatenation happens outside every
/// timed region.
const DISPATCH_DAYS: usize = 16;

/// Wall-regression budget for the threads=8 vs threads=1 gate when the
/// host actually has the cores (see the check section): routing is extra
/// work the serial lane does not do, so a small allowance covers the
/// pipeline's fill/drain phases where it cannot yet overlap shard work.
const WALL_TOLERANCE: f64 = 1.10;

/// Cores the threads=8 wall gate needs before wall time can reflect
/// parallelism at all; below this the decomposed bound is gated instead.
const WALL_GATE_CPUS: usize = 8;

/// Budget for the disabled-telemetry serial measurement against the
/// committed trajectory: instrumentation with collection off must cost
/// at most 2%. Only gated on full-scale runs whose scale/days match the
/// committed file (wall times are not comparable across scales).
const DISABLED_TELEMETRY_BUDGET: f64 = 1.02;

/// Store scale-sweep multipliers for full runs. Scale 100 is the
/// headline claim: 100x the paper's event population in one in-memory
/// store, ingested through the sorted-run path at flat per-event cost.
const SWEEP_SCALES: [u64; 5] = [1, 5, 20, 50, 100];

/// Sweep multipliers for `--smoke` (CI gates the scale=5 lane).
const SWEEP_SCALES_SMOKE: [u64; 2] = [1, 5];

/// Events per sweep unit on full runs: the paper's combined event
/// population (≈ 1.045 M), so scale 100 lands at ≈ 104.5 M events.
const SWEEP_UNIT_EVENTS: u64 = 1_045_000;

/// Events per sweep unit at smoke scale.
const SWEEP_UNIT_EVENTS_SMOKE: u64 = 25_000;

/// Interleaved batches each sweep stream is stride-split into: batch j
/// takes rows j, j+B, j+2B, …, so every batch spans the full time range
/// and all but the first arrive out of order (the sorted-run worst-ish
/// case the ingest gates are about).
const SWEEP_BATCHES: usize = 8;

/// Sweep repetitions at smoke scale (best kept per timer): the smoke
/// lanes are milliseconds, so single shots are scheduler-noise-bound.
const SMOKE_SWEEP_REPS: usize = 3;

/// Committed-file floor for the scale=100 sweep lane's event count.
const SWEEP_FULL_FLOOR: u64 = 100_000_000;

/// Committed budget for scale-normalized ingest: the scale=100 lane's
/// `ingest_secs / 100` must stay within this factor of the scale=1
/// lane's `ingest_secs`. This is the amortized-linearity gate — the
/// retired merge-per-batch ingest was ~10x over it at scale 20 alone.
const SWEEP_NORMALIZED_INGEST_BUDGET: f64 = 2.0;

/// Committed budget for the scale=20 lane: `ingest_secs` within this
/// factor of 20x the scale=1 wall (a second, mid-sweep linearity pin).
const SWEEP_SCALE20_BUDGET: f64 = 3.0;

/// Fresh smoke-run ceiling on the scale=5 / scale=1 ingest-wall ratio
/// (5x the work, with headroom because both lanes are milliseconds).
const SWEEP_SMOKE_INGEST_RATIO: f64 = 7.0;

/// Working-set bytes pre-faulted per scheduled sweep event on full runs
/// (see the module docs' memory note): covers the event vectors, the
/// stride-split batches, the store columns and the merge transients.
const PREFAULT_BYTES_PER_EVENT: usize = 256;

struct Stage {
    name: &'static str,
    threads: usize,
    wall_secs: f64,
    /// Batches processed by the stage (0 when not batch-shaped).
    items: u64,
    /// Peak working-set size (live flows / open events; 0 when unsampled).
    peak: u64,
}

impl Stage {
    fn items_per_sec(&self) -> f64 {
        if self.items == 0 || self.wall_secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / self.wall_secs
        }
    }
}

/// One threaded measurement lane's results: honest pool wall time plus
/// the contention-free critical-path decomposition (see module docs).
struct ParallelLane {
    wall_secs: f64,
    peak: u64,
    route_secs: f64,
    max_shard_secs: f64,
}

impl ParallelLane {
    /// Steady-state wall bound of the pipelined run: routing (producer
    /// thread) overlaps shard work (workers), so the slower of the two
    /// limits throughput.
    fn pipelined_secs(&self) -> f64 {
        self.route_secs.max(self.max_shard_secs)
    }
}

/// One store scale-sweep lane: a replicated event population pushed
/// through interleaved-batch ingest, streaming fusion and report over a
/// single columnar store.
struct SweepLane {
    scale: u64,
    events: u64,
    /// Wall covering every stride-split batch plus the final
    /// consolidation — the full cost of a query-ready store.
    ingest_secs: f64,
    /// Wall of the per-event streaming-fusion pass (both sources merged
    /// by start, enrichment lookups included) plus the aggregate reads.
    fusion_secs: f64,
    report_secs: f64,
    /// The store's own byte accounting after ingest: interner + columns
    /// + indexes + aggregate bitsets.
    peak_bytes: u64,
}

impl SweepLane {
    /// Fusion + report throughput (events per second through the
    /// streaming fusion and columnar report scans, the number the
    /// 100x claim is about).
    fn fusion_report_events_per_sec(&self) -> f64 {
        ratio(self.events as f64, self.fusion_secs + self.report_secs)
    }

    fn ingest_events_per_sec(&self) -> f64 {
        ratio(self.events as f64, self.ingest_secs)
    }
}

/// Split `events` into [`SWEEP_BATCHES`] stride batches: batch j takes
/// rows j, j+B, j+2B, … Relative order within a batch stays ascending
/// when the input was, but every batch covers the whole time range, so
/// batches 2..B arrive out of order at the store.
fn stride_split(
    events: Vec<dosscope_types::AttackEvent>,
    batches: usize,
) -> Vec<Vec<dosscope_types::AttackEvent>> {
    let mut out: Vec<Vec<dosscope_types::AttackEvent>> = (0..batches)
        .map(|_| Vec::with_capacity(events.len() / batches + 1))
        .collect();
    for (i, e) in events.into_iter().enumerate() {
        out[i % batches].push(e);
    }
    out
}

/// Replicate a detector event set `factor` times with deterministic
/// per-replica perturbations: replica k shifts every window by `k * 31`
/// seconds and every target by `k` addresses, so the blow-up scales the
/// victim, block and timestamp populations instead of piling duplicates
/// onto one key.
fn replicate(events: &[dosscope_types::AttackEvent], factor: u64) -> Vec<dosscope_types::AttackEvent> {
    let mut out = Vec::with_capacity(events.len() * factor as usize);
    for k in 0..factor {
        let shift = k * 31;
        for e in events {
            let mut e = e.clone();
            e.target = std::net::Ipv4Addr::from(u32::from(e.target).wrapping_add(k as u32));
            e.when = dosscope_types::TimeRange::new(
                SimTime(e.when.start.0 + shift),
                SimTime(e.when.end.0 + shift),
            );
            out.push(e);
        }
    }
    out
}

struct Options {
    scale: f64,
    days: u32,
    seed: u64,
    out: String,
    check: Option<String>,
    smoke: bool,
    telemetry: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: 500.0,
        days: 731,
        seed: 0xD05C09E,
        out: "BENCH_pipeline.json".to_string(),
        check: None,
        smoke: false,
        telemetry: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match a.as_str() {
            "--smoke" => {
                opts.smoke = true;
                opts.scale = 20_000.0;
            }
            "--scale" => opts.scale = value("--scale").parse().expect("--scale takes a float"),
            "--days" => opts.days = value("--days").parse().expect("--days takes an integer"),
            "--out" => opts.out = value("--out"),
            "--check" => opts.check = Some(value("--check")),
            "--telemetry" => opts.telemetry = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    opts
}

/// The current serial telescope measurement pass (the shipping
/// single-thread path): returns the finished events and the peak live
/// flow count. Shared by the serial lane and the telemetry overhead
/// lane so both time exactly the same work.
fn run_serial_telescope(
    telescope: Telescope,
    days_data: &[(Vec<PacketBatch>, Vec<RequestBatch>)],
) -> (Vec<dosscope_types::AttackEvent>, usize) {
    let mut detector = RsdosDetector::with_defaults(telescope);
    let mut interval: Option<u64> = None;
    let mut peak = 0usize;
    for (tele, _) in days_data {
        for b in tele {
            let iv = b.ts.secs() / INTERVAL_SECS;
            match interval {
                None => interval = Some(iv),
                Some(cur) if iv > cur => {
                    detector.advance(SimTime(iv * INTERVAL_SECS));
                    interval = Some(iv);
                }
                _ => {}
            }
            detector.ingest(b);
        }
        peak = peak.max(detector.live_flows());
    }
    let (events, _) = detector.finish();
    (events, peak)
}

/// Serial fleet twin of [`run_serial_telescope`].
fn run_serial_fleet(
    days_data: &[(Vec<PacketBatch>, Vec<RequestBatch>)],
) -> (Vec<dosscope_types::AttackEvent>, usize) {
    let mut fleet = AmpPotFleet::standard();
    let mut peak = 0usize;
    for (_, hp) in days_data {
        for b in hp {
            fleet.ingest(b);
        }
        peak = peak.max(fleet.open_events());
    }
    let (events, _) = fleet.finish();
    (events, peak)
}

fn main() {
    let opts = parse_args();
    let thread_list: Vec<usize> = if opts.smoke {
        vec![1, 8]
    } else {
        THREADS.to_vec()
    };
    let mut stages: Vec<Stage> = Vec::new();

    // ---- Stage: world ---------------------------------------------------
    let t0 = Instant::now();
    let registry = AsRegistry::build(&RegistryConfig {
        seed: opts.seed ^ 0x9E0,
        ..RegistryConfig::default()
    });
    let geo = registry.build_geodb();
    let asdb = registry.build_asdb();
    let total_sites =
        ((dosscope_attackgen::config::paper::WEB_SITES / opts.scale).round() as u32).max(500);
    let mut synth = synthesize(
        &SynthConfig {
            seed: opts.seed ^ 0xD45,
            total_sites,
            days: opts.days,
            ..SynthConfig::default()
        },
        &registry,
    );
    let gen_config = GenConfig {
        seed: opts.seed ^ 0xA77,
        days: opts.days,
        scale: opts.scale,
        ..GenConfig::default()
    };
    let cal = Calibration::default();
    let truth =
        Generator::new(gen_config.clone(), Calibration::default(), &registry, &synth).generate();
    let _migrations = MigrationModel::apply(&gen_config, &cal, &truth, &mut synth);
    let dps = DpsDataset::infer(&synth.zone, &synth.catalog, &asdb);
    stages.push(Stage {
        name: "world",
        threads: 1,
        wall_secs: t0.elapsed().as_secs_f64(),
        items: 0,
        peak: 0,
    });

    // ---- Stage: render --------------------------------------------------
    let telescope = Telescope::default_slash8();
    let pot_addrs: Vec<std::net::Ipv4Addr> = AmpPotFleet::standard()
        .honeypots()
        .iter()
        .map(|h| h.addr)
        .collect();
    let renderer = Renderer::new(&truth, telescope, pot_addrs, opts.seed ^ 0x8E4, opts.days);
    let t0 = Instant::now();
    let days_data: Vec<(Vec<PacketBatch>, Vec<RequestBatch>)> = (0..opts.days)
        .map(|d| {
            let day = DayIndex(d);
            (renderer.telescope_day(day), renderer.honeypot_day(day))
        })
        .collect();
    let render_secs = t0.elapsed().as_secs_f64();
    let tele_batches: u64 = days_data.iter().map(|(t, _)| t.len() as u64).sum();
    let hp_batches: u64 = days_data.iter().map(|(_, h)| h.len() as u64).sum();
    stages.push(Stage {
        name: "render",
        threads: 1,
        wall_secs: render_secs,
        items: tele_batches + hp_batches,
        peak: 0,
    });

    // ---- Serial measurement lanes: current vs pre-overhaul baseline -----
    // The baseline replicas consume the pre-overhaul `Arc<Vec<u8>>` batch
    // layout; the conversion happens outside the timed region because it
    // is an artifact of keeping both implementations in one process, not
    // work the old pipeline ever did.
    let base_tele_days: Vec<Vec<BaselinePacketBatch>> =
        days_data.iter().map(|(t, _)| baseline_packets(t)).collect();
    let (
        ((serial_tele, tele1_peak), tele1_secs),
        ((base_tele_events, base_tele_peak), base_tele_secs),
    ) = time_pair(
        SERIAL_REPS,
        || run_serial_telescope(telescope, &days_data),
        || {
            let mut detector = BaselineRsdos::with_defaults(telescope);
            let mut interval: Option<u64> = None;
            let mut peak = 0usize;
            for tele in &base_tele_days {
                for b in tele {
                    let iv = b.ts.secs() / INTERVAL_SECS;
                    match interval {
                        None => interval = Some(iv),
                        Some(cur) if iv > cur => {
                            detector.advance(SimTime(iv * INTERVAL_SECS));
                            interval = Some(iv);
                        }
                        _ => {}
                    }
                    detector.ingest(b);
                }
                peak = peak.max(detector.live_flows());
            }
            let (events, _) = detector.finish();
            (events, peak)
        },
    );
    drop(base_tele_days);

    let base_hp_days: Vec<Vec<BaselineRequestBatch>> =
        days_data.iter().map(|(_, h)| baseline_requests(h)).collect();
    let (
        ((serial_hp, fleet1_peak), fleet1_secs),
        ((base_hp_events, base_fleet_peak), base_fleet_secs),
    ) = time_pair(
        SERIAL_REPS,
        || run_serial_fleet(&days_data),
        || {
            let mut fleet = BaselineFleet::standard();
            let mut peak = 0usize;
            for hp in &base_hp_days {
                for b in hp {
                    fleet.ingest(b);
                }
                peak = peak.max(fleet.open_events());
            }
            let (events, _) = fleet.finish();
            (events, peak)
        },
    );
    drop(base_hp_days);

    // ---- Telemetry overhead lane ----------------------------------------
    // Re-time the full serial measurement (telescope + fleet) with
    // dosscope-obs collection off and on, interleaved so scheduler and
    // frequency noise land on both lanes alike. The disabled lane is the
    // shipping default — every instrumentation site collapses to one
    // relaxed atomic load plus the always-on batch counters — and the
    // check section gates its wall against the committed trajectory on
    // full-scale runs. The enabled ratio is informational: it prices the
    // clock reads collection adds.
    let ((telem_off_events, telem_off_secs), (telem_on_events, telem_on_secs)) = time_pair(
        SERIAL_REPS,
        || {
            dosscope_obs::set_enabled(false);
            let t = run_serial_telescope(telescope, &days_data);
            let f = run_serial_fleet(&days_data);
            (t.0, f.0)
        },
        || {
            dosscope_obs::set_enabled(true);
            let t = run_serial_telescope(telescope, &days_data);
            let f = run_serial_fleet(&days_data);
            dosscope_obs::set_enabled(false);
            (t.0, f.0)
        },
    );
    assert_eq!(
        telem_off_events, telem_on_events,
        "telemetry collection changed the measured events"
    );
    // Drop the counters the lane itself accumulated so an optional
    // --telemetry emission below reflects only the pool lanes.
    dosscope_obs::reset();
    let telemetry_enabled_overhead = ratio(telem_on_secs, telem_off_secs);
    if opts.telemetry {
        dosscope_obs::set_enabled(true);
    }
    dosscope_obs::init_from_env();

    // ---- Dispatch chunks for the pool lanes (built outside all timers) --
    let tele_chunks: Vec<Arc<Vec<PacketBatch>>> = days_data
        .chunks(DISPATCH_DAYS)
        .map(|days| Arc::new(days.iter().flat_map(|(t, _)| t.iter().cloned()).collect()))
        .collect();
    let hp_chunks: Vec<Arc<Vec<RequestBatch>>> = days_data
        .chunks(DISPATCH_DAYS)
        .map(|days| Arc::new(days.iter().flat_map(|(_, h)| h.iter().cloned()).collect()))
        .collect();

    // ---- Measurement stages at each thread count ------------------------
    let mut par_tele: Vec<(usize, ParallelLane)> = Vec::new();
    let mut par_fleet: Vec<(usize, ParallelLane)> = Vec::new();
    for &threads in &thread_list {
        // Telescope detection.
        let (tele_events, tele_secs, tele_peak) = if threads == 1 {
            (serial_tele.clone(), tele1_secs, tele1_peak as u64)
        } else {
            let lane = time_telescope_pool(telescope, &tele_chunks, threads, &serial_tele);
            let (wall, peak) = (lane.wall_secs, lane.peak);
            par_tele.push((threads, lane));
            (serial_tele.clone(), wall, peak)
        };
        stages.push(Stage {
            name: "telescope",
            threads,
            wall_secs: tele_secs,
            items: tele_batches,
            peak: tele_peak,
        });

        // Honeypot fleet.
        let (hp_events, fleet_secs, fleet_peak) = if threads == 1 {
            (serial_hp.clone(), fleet1_secs, fleet1_peak as u64)
        } else {
            let lane = time_fleet_pool(&hp_chunks, threads, &serial_hp);
            let (wall, peak) = (lane.wall_secs, lane.peak);
            par_fleet.push((threads, lane));
            (serial_hp.clone(), wall, peak)
        };
        stages.push(Stage {
            name: "fleet",
            threads,
            wall_secs: fleet_secs,
            items: hp_batches,
            peak: fleet_peak,
        });

        // Event fusion into the store — through the pool-backed sharded
        // store when threaded, collapsing to the canonical serial order.
        let t0 = Instant::now();
        let store = if threads == 1 {
            let mut store = EventStore::new();
            store.ingest_telescope(tele_events.clone());
            store.ingest_honeypot(hp_events.clone());
            store
        } else {
            let mut sharded = ShardedEventStore::new(threads);
            sharded.ingest_telescope(tele_events.clone());
            sharded.ingest_honeypot(hp_events.clone());
            sharded.into_store()
        };
        let combined = store.summary_combined();
        let common = store.common_targets();
        stages.push(Stage {
            name: "fusion",
            threads,
            wall_secs: t0.elapsed().as_secs_f64(),
            items: combined.events,
            peak: common,
        });

        // Report assembly over the fused store.
        let t0 = Instant::now();
        let fw = Framework::new(&store, &geo, &asdb, opts.days)
            .with_dns(&synth.zone, &synth.catalog)
            .with_dps(&dps);
        let t1 = Table1::build(&fw);
        let t2 = Table2::build(&fw);
        let t3 = Table3::build(&fw);
        let report_items =
            t1.rows.len() as u64 + t2.is_some() as u64 + t3.is_some() as u64;
        stages.push(Stage {
            name: "report",
            threads,
            wall_secs: t0.elapsed().as_secs_f64(),
            items: report_items,
            peak: 0,
        });
    }

    // ---- Baseline stage records (timed in the serial lanes above) -------
    stages.push(Stage {
        name: "telescope_baseline",
        threads: 1,
        wall_secs: base_tele_secs,
        items: tele_batches,
        peak: base_tele_peak as u64,
    });
    stages.push(Stage {
        name: "fleet_baseline",
        threads: 1,
        wall_secs: base_fleet_secs,
        items: hp_batches,
        peak: base_fleet_peak as u64,
    });

    // The speedup is only meaningful if both lanes did the same work.
    assert_eq!(
        serial_tele, base_tele_events,
        "baseline telescope lane produced different events"
    );
    assert_eq!(
        serial_hp, base_hp_events,
        "baseline fleet lane produced different events"
    );

    let speedup_tele = ratio(base_tele_secs, tele1_secs);
    let speedup_fleet = ratio(base_fleet_secs, fleet1_secs);
    let speedup_measurement = ratio(base_tele_secs + base_fleet_secs, tele1_secs + fleet1_secs);

    // ---- Store scale sweep ----------------------------------------------
    // Free the packet-level data first: the sweep is about the event
    // store's working set, not the renderer's.
    drop(tele_chunks);
    drop(hp_chunks);
    drop(days_data);
    let (sweep_scales, unit): (&[u64], u64) = if opts.smoke {
        (&SWEEP_SCALES_SMOKE, SWEEP_UNIT_EVENTS_SMOKE)
    } else {
        (&SWEEP_SCALES, SWEEP_UNIT_EVENTS)
    };
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let base_total = (serial_tele.len() + serial_hp.len()) as u64;

    // Pre-fault the sweep's peak working set once, outside every timer
    // (see the module docs' memory note). A resize with a nonzero byte
    // actually writes every page; the arena is dropped before any lane
    // starts, so lanes reuse the now-populated heap.
    if !opts.smoke {
        let top = *sweep_scales.last().expect("sweep scales nonempty");
        let bytes = (top * unit) as usize * PREFAULT_BYTES_PER_EVENT;
        let t0 = Instant::now();
        let mut arena: Vec<u8> = Vec::new();
        arena.resize(bytes, 1);
        std::hint::black_box(&arena);
        drop(arena);
        println!(
            "  prefault: {:.1} GiB touched in {:.1}s",
            bytes as f64 / (1024.0 * 1024.0 * 1024.0),
            t0.elapsed().as_secs_f64()
        );
    }

    let sweep_reps = if opts.smoke { SMOKE_SWEEP_REPS } else { 1 };
    let mut sweep: Vec<SweepLane> = Vec::new();
    for &m in sweep_scales {
        let factor = (m * unit).div_ceil(base_total).max(1);
        let mut best: Option<SweepLane> = None;
        for _ in 0..sweep_reps {
            let tele_batches = stride_split(replicate(&serial_tele, factor), SWEEP_BATCHES);
            let hp_batches = stride_split(replicate(&serial_hp, factor), SWEEP_BATCHES);

            // Ingest: every interleaved batch, both sources alternating
            // (as the pipeline's chunked handoff would deliver them),
            // plus the consolidation that makes the store query-ready.
            let t0 = Instant::now();
            let mut store = EventStore::new();
            store.set_consolidation_threads(cpus.clamp(1, 8));
            for (t, h) in tele_batches.into_iter().zip(hp_batches) {
                store.ingest_telescope(t);
                store.ingest_honeypot(h);
            }
            store.consolidate();
            let ingest_secs = t0.elapsed().as_secs_f64();
            let peak_bytes = store.memory_bytes() as u64;

            // Fusion: stream every stored event through the incremental
            // engine in global start order (a two-way merge of the
            // sources, matching the live pipeline's arrival order), then
            // read the fused aggregates. This prices real per-event
            // fusion work — the store's O(1) bitset summaries are also
            // read, and cross-checked against the streamed state.
            let t0 = Instant::now();
            let mut fusion = StreamingFusion::new(&geo, &asdb, opts.days + 2);
            let mut t_it = store.telescope().iter().peekable();
            let mut h_it = store.honeypot().iter().peekable();
            loop {
                let take_tele = match (t_it.peek(), h_it.peek()) {
                    (Some(t), Some(h)) => t.when.start <= h.when.start,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let e = if take_tele {
                    t_it.next().expect("peeked")
                } else {
                    h_it.next().expect("peeked")
                };
                fusion.push(&e);
            }
            let snap = fusion.snapshot();
            let combined = store.summary_combined();
            let common = store.common_targets();
            let fusion_secs = t0.elapsed().as_secs_f64();
            assert_eq!(combined.events, base_total * factor, "sweep lost events");
            assert_eq!(
                snap.combined_events, combined.events,
                "streaming fusion disagrees with the store on events"
            );
            assert_eq!(
                snap.combined_targets, combined.targets,
                "streaming fusion disagrees with the store on targets"
            );
            assert_eq!(
                snap.common_targets, common,
                "streaming fusion disagrees with the store on common targets"
            );
            assert!(common > 0 || serial_hp.is_empty(), "sweep degenerated");

            let t0 = Instant::now();
            let fw = Framework::new(&store, &geo, &asdb, opts.days)
                .with_dns(&synth.zone, &synth.catalog)
                .with_dps(&dps);
            let t1 = Table1::build(&fw);
            let t2 = Table2::build(&fw);
            let t3 = Table3::build(&fw);
            let report_secs = t0.elapsed().as_secs_f64();
            assert_eq!(t1.rows[2].summary.events, combined.events);
            let _ = (t2, t3);

            let lane = SweepLane {
                scale: m,
                events: combined.events,
                ingest_secs,
                fusion_secs,
                report_secs,
                peak_bytes,
            };
            best = Some(match best.take() {
                None => lane,
                Some(b) => SweepLane {
                    ingest_secs: b.ingest_secs.min(lane.ingest_secs),
                    fusion_secs: b.fusion_secs.min(lane.fusion_secs),
                    report_secs: b.report_secs.min(lane.report_secs),
                    ..lane
                },
            });
        }
        sweep.push(best.expect("at least one sweep rep"));
    }

    // ---- Emit JSON ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"dosscope-bench-pipeline-v5\",");
    let _ = writeln!(json, "  \"scale\": {},", opts.scale);
    let _ = writeln!(json, "  \"days\": {},", opts.days);
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(
        json,
        "  \"threads\": [{}],",
        thread_list
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let sep = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"wall_secs\": {:.6}, \"items\": {}, \"items_per_sec\": {:.1}, \"peak\": {}}}{}",
            s.name, s.threads, s.wall_secs, s.items, s.items_per_sec(), s.peak, sep
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"telescope\": {:.3}, \"fleet\": {:.3}, \"measurement\": {:.3}}},",
        speedup_tele, speedup_fleet, speedup_measurement
    );
    let _ = writeln!(
        json,
        "  \"telemetry\": {{\"disabled_wall_secs\": {:.6}, \"enabled_wall_secs\": {:.6}, \"enabled_overhead\": {:.4}}},",
        telem_off_secs, telem_on_secs, telemetry_enabled_overhead
    );
    let _ = writeln!(
        json,
        "  \"parallel_speedup_basis\": \"serial wall over max(route wall, max per-shard wall), each component timed contention-free; routing overlaps shard work in the pipelined run, so this is the steady-state speedup an unloaded host with > threads cores realises\","
    );
    let mut par_fields: Vec<String> = Vec::new();
    for (threads, lane) in &par_tele {
        par_fields.push(format!(
            "\"telescope_{threads}\": {:.3}",
            ratio(tele1_secs, lane.pipelined_secs())
        ));
    }
    for (threads, lane) in &par_fleet {
        par_fields.push(format!(
            "\"fleet_{threads}\": {:.3}",
            ratio(fleet1_secs, lane.pipelined_secs())
        ));
    }
    let _ = writeln!(json, "  \"parallel_speedup\": {{{}}},", par_fields.join(", "));
    let mut lane_fields: Vec<String> = Vec::new();
    for (name, lanes) in [("telescope", &par_tele), ("fleet", &par_fleet)] {
        for (threads, lane) in lanes.iter() {
            lane_fields.push(format!(
                "\"{name}_{threads}\": {{\"wall_secs\": {:.6}, \"route_secs\": {:.6}, \"max_shard_secs\": {:.6}}}",
                lane.wall_secs, lane.route_secs, lane.max_shard_secs
            ));
        }
    }
    let _ = writeln!(json, "  \"parallel_lanes\": {{{}}},", lane_fields.join(", "));
    let mut wall_fields: Vec<String> = Vec::new();
    for (threads, lane) in &par_tele {
        wall_fields.push(format!(
            "\"telescope_{threads}\": {:.3}",
            ratio(tele1_secs, lane.wall_secs)
        ));
    }
    for (threads, lane) in &par_fleet {
        wall_fields.push(format!(
            "\"fleet_{threads}\": {:.3}",
            ratio(fleet1_secs, lane.wall_secs)
        ));
    }
    let _ = writeln!(
        json,
        "  \"parallel_wall_speedup\": {{{}}},",
        wall_fields.join(", ")
    );
    let _ = writeln!(json, "  \"sweep_batches\": {SWEEP_BATCHES},");
    json.push_str("  \"sweep\": [\n");
    for (i, l) in sweep.iter().enumerate() {
        let sep = if i + 1 == sweep.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scale\": {}, \"events\": {}, \"ingest_secs\": {:.6}, \"ingest_events_per_sec\": {:.1}, \"fusion_secs\": {:.6}, \"report_secs\": {:.6}, \"fusion_report_events_per_sec\": {:.1}, \"peak_bytes\": {}}}{}",
            l.scale, l.events, l.ingest_secs, l.ingest_events_per_sec(), l.fusion_secs,
            l.report_secs, l.fusion_report_events_per_sec(), l.peak_bytes, sep
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"events\": {{\"telescope\": {}, \"honeypot\": {}}}",
        serial_tele.len(),
        serial_hp.len()
    );
    json.push_str("}\n");
    std::fs::write(&opts.out, &json).expect("write bench output");

    println!("wrote {}", opts.out);
    for s in &stages {
        println!(
            "  {:<20} threads={} {:>9.3}s  {:>12.0} items/s  peak={}",
            s.name,
            s.threads,
            s.wall_secs,
            s.items_per_sec(),
            s.peak
        );
    }
    println!(
        "  speedup vs pre-overhaul baseline: telescope {speedup_tele:.2}x, fleet {speedup_fleet:.2}x, measurement {speedup_measurement:.2}x"
    );
    println!(
        "  telemetry lane: disabled {telem_off_secs:.3}s, enabled {telem_on_secs:.3}s (x{telemetry_enabled_overhead:.3} when collecting)"
    );
    for (threads, lane) in &par_tele {
        println!(
            "  telescope threads={threads}: wall {:.3}s (x{:.2} vs serial), pipelined bound max(route {:.3}s, max-shard {:.3}s) (x{:.2})",
            lane.wall_secs,
            ratio(tele1_secs, lane.wall_secs),
            lane.route_secs,
            lane.max_shard_secs,
            ratio(tele1_secs, lane.pipelined_secs())
        );
    }
    for (threads, lane) in &par_fleet {
        println!(
            "  fleet     threads={threads}: wall {:.3}s (x{:.2} vs serial), pipelined bound max(route {:.3}s, max-shard {:.3}s) (x{:.2})",
            lane.wall_secs,
            ratio(fleet1_secs, lane.wall_secs),
            lane.route_secs,
            lane.max_shard_secs,
            ratio(fleet1_secs, lane.pipelined_secs())
        );
    }
    let sweep1_ingest = sweep.first().map_or(0.0, |l| l.ingest_secs);
    for l in &sweep {
        println!(
            "  sweep scale={:<3}: {:>10} events  ingest {:.3}s ({:.0} events/s, x{:.2} normalized vs scale 1)  fusion {:.3}s  report {:.3}s  ({:.0} events/s fused+reported, {:.1} MiB store)",
            l.scale,
            l.events,
            l.ingest_secs,
            l.ingest_events_per_sec(),
            ratio(l.ingest_secs / l.scale as f64, sweep1_ingest),
            l.fusion_secs,
            l.report_secs,
            l.fusion_report_events_per_sec(),
            l.peak_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    // ---- Optional regression gate ---------------------------------------
    if let Some(path) = &opts.check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let c = parse_committed(&committed)
            .unwrap_or_else(|e| fail(&format!("{path} is malformed: {e}")));
        let gates = [
            ("telescope", c.speedup_tele, speedup_tele),
            ("fleet", c.speedup_fleet, speedup_fleet),
            ("measurement", c.speedup_measurement, speedup_measurement),
        ];
        for (name, committed_x, current_x) in gates {
            if current_x < committed_x / 2.0 {
                fail(&format!(
                    "{name} speedup regressed more than 2x: committed {committed_x:.2}x, current {current_x:.2}x"
                ));
            }
        }
        // The committed trajectory must hold the 4x parallel-speedup floor.
        for (name, committed_x) in [
            ("telescope_8", c.par_tele8),
            ("fleet_8", c.par_fleet8),
        ] {
            if committed_x < 4.0 {
                fail(&format!(
                    "committed parallel_speedup {name} below the 4x floor: {committed_x:.2}x"
                ));
            }
        }
        // And the fresh parallel speedups must not have collapsed. At
        // smoke scale the lanes are a few milliseconds, so per-shard
        // fixed costs (8 detector builds and finishes) dominate and the
        // committed full-scale ratio is unreachable; the smoke gate only
        // demands that sharding still beats the serial lane at all.
        let fresh_par_tele8 = par_tele
            .iter()
            .find(|(t, _)| *t == 8)
            .map(|(_, l)| ratio(tele1_secs, l.pipelined_secs()));
        let fresh_par_fleet8 = par_fleet
            .iter()
            .find(|(t, _)| *t == 8)
            .map(|(_, l)| ratio(fleet1_secs, l.pipelined_secs()));
        for (name, committed_x, fresh) in [
            ("telescope_8", c.par_tele8, fresh_par_tele8),
            ("fleet_8", c.par_fleet8, fresh_par_fleet8),
        ] {
            let floor = if opts.smoke { 1.0 } else { committed_x / 2.0 };
            if let Some(current_x) = fresh {
                if current_x < floor {
                    fail(&format!(
                        "parallel_speedup {name} regressed: committed {committed_x:.2}x, current {current_x:.2}x, floor {floor:.2}x"
                    ));
                }
            }
        }
        // Fresh threads=8 vs threads=1 wall gate. When the host has the
        // cores, the pool's honest wall time must stay within the
        // fill/drain budget of the serial wall (the retired per-batch
        // clone-and-respawn design was ~2x over). On a host without 8
        // cores the workers can only interleave, so wall time cannot
        // reflect parallelism; the gate then binds the contention-free
        // pipelined bound instead, which is what the wall becomes once
        // the cores exist.
        for (name, serial_secs, lanes) in [
            ("telescope", tele1_secs, &par_tele),
            ("fleet", fleet1_secs, &par_fleet),
        ] {
            if let Some((_, lane)) = lanes.iter().find(|(t, _)| *t == 8) {
                let (gated, form) = if cpus >= WALL_GATE_CPUS {
                    (lane.wall_secs, "wall")
                } else {
                    (lane.pipelined_secs(), "pipelined bound")
                };
                if gated > serial_secs * WALL_TOLERANCE {
                    fail(&format!(
                        "{name} threads=8 {form} regressed past threads=1: {gated:.3}s vs {serial_secs:.3}s (budget {WALL_TOLERANCE}x)"
                    ));
                }
            }
        }
        // Disabled-telemetry budget: only comparable when this run did
        // the same work as the committed one (full scale, same window) —
        // wall seconds do not transfer across scales. CI's smoke check
        // skips it; the gate binds whenever the trajectory is
        // regenerated.
        if !opts.smoke && c.scale == opts.scale && c.days == opts.days as f64 {
            let committed_meas = c.tele1_wall + c.fleet1_wall;
            if telem_off_secs > committed_meas * DISABLED_TELEMETRY_BUDGET {
                fail(&format!(
                    "disabled-telemetry serial measurement regressed past the committed trajectory: {telem_off_secs:.3}s vs {committed_meas:.3}s (budget {DISABLED_TELEMETRY_BUDGET}x)"
                ));
            }
        }
        // The committed trajectory must prove the paper-scale × 100 run:
        // a scale=100 sweep lane with ≥ 100 M events ingested, fused and
        // reported in-memory, with real throughput and working-set
        // numbers — and ingest must have stayed amortized-linear across
        // the sweep (both gates are in-run ratios of the committed file,
        // so they hold on any machine that regenerated it honestly).
        let committed_lane = |scale: f64| {
            c.sweep
                .iter()
                .find(|l| l.scale == scale)
                .unwrap_or_else(|| fail(&format!("committed sweep lacks a scale={scale} lane")))
        };
        let c1 = committed_lane(1.0);
        let c20 = committed_lane(20.0);
        let c100 = committed_lane(100.0);
        if (c100.events as u64) < SWEEP_FULL_FLOOR {
            fail(&format!(
                "committed scale=100 sweep lane has only {:.0} events (< {SWEEP_FULL_FLOOR})",
                c100.events
            ));
        }
        if c100.throughput <= 0.0 || c100.peak_bytes <= 0.0 {
            fail("committed scale=100 sweep lane has zero throughput or peak");
        }
        if c1.ingest_secs <= 0.0 {
            fail("committed scale=1 sweep lane has zero ingest wall");
        }
        let normalized = (c100.ingest_secs / 100.0) / c1.ingest_secs;
        if normalized > SWEEP_NORMALIZED_INGEST_BUDGET {
            fail(&format!(
                "committed scale=100 ingest is not amortized-linear: {:.3}s/scale vs {:.3}s at scale 1 (x{normalized:.2}, budget x{SWEEP_NORMALIZED_INGEST_BUDGET})",
                c100.ingest_secs / 100.0,
                c1.ingest_secs
            ));
        }
        if c20.ingest_secs > SWEEP_SCALE20_BUDGET * 20.0 * c1.ingest_secs {
            fail(&format!(
                "committed scale=20 ingest broke linearity: {:.3}s vs {:.3}s at scale 1 (budget x{SWEEP_SCALE20_BUDGET} of 20x)",
                c20.ingest_secs, c1.ingest_secs
            ));
        }
        // And the fresh run must have completed its own largest sweep
        // lane (scale=5 at smoke — the CI gate — scale=100 on full runs).
        let top = *sweep_scales.last().expect("sweep scales nonempty");
        let Some(lane) = sweep.iter().find(|l| l.scale == top) else {
            fail(&format!("fresh sweep lacks the scale={top} lane"));
        };
        if lane.events < top * unit || lane.peak_bytes == 0 {
            fail(&format!(
                "fresh scale={top} sweep lane is degenerate: {} events, {} peak bytes",
                lane.events, lane.peak_bytes
            ));
        }
        // Fresh smoke runs re-prove near-linear ingest at CI scale: the
        // scale=5 lane did 5x the scale=1 work through the same
        // interleaved-batch path.
        if opts.smoke {
            let lane1 = sweep
                .iter()
                .find(|l| l.scale == 1)
                .unwrap_or_else(|| fail("fresh sweep lacks the scale=1 lane"));
            let lane5 = sweep
                .iter()
                .find(|l| l.scale == 5)
                .unwrap_or_else(|| fail("fresh sweep lacks the scale=5 lane"));
            let r = ratio(lane5.ingest_secs, lane1.ingest_secs);
            if r > SWEEP_SMOKE_INGEST_RATIO {
                fail(&format!(
                    "fresh smoke ingest is superlinear: scale=5 took {:.4}s vs {:.4}s at scale 1 (x{r:.2}, budget x{SWEEP_SMOKE_INGEST_RATIO})",
                    lane5.ingest_secs, lane1.ingest_secs
                ));
            }
        }
        println!("  check against {path}: ok");
    }

    if dosscope_obs::enabled() {
        let snapshot = dosscope_obs::Telemetry::capture();
        println!("{}", snapshot.render_ascii());
        std::fs::write("TELEMETRY.json", snapshot.to_json()).expect("write TELEMETRY.json");
        println!("wrote TELEMETRY.json");
    }
}

/// Time the pool-backed telescope engine over pre-built chunks (min of
/// [`PARALLEL_REPS`]), asserting the merged events equal the serial
/// lane's, then decompose the same work into routing + per-shard serial
/// passes for the critical-path ratio.
fn time_telescope_pool(
    telescope: Telescope,
    chunks: &[Arc<Vec<PacketBatch>>],
    threads: usize,
    expect: &[dosscope_types::AttackEvent],
) -> ParallelLane {
    let mut wall = f64::INFINITY;
    let mut peak = 0u64;
    for _ in 0..PARALLEL_REPS {
        let t0 = Instant::now();
        let mut rsdos = ShardedRsdos::with_defaults(telescope, threads);
        for chunk in chunks {
            rsdos.ingest_routed(route_batches(chunk.clone(), threads));
        }
        let (events, _, p) = rsdos.finish();
        wall = wall.min(t0.elapsed().as_secs_f64());
        peak = p;
        assert_eq!(events, expect, "pool telescope lane diverged from serial");
    }

    // Decomposition for the pipelined bound: route (timed), then each
    // shard's sub-stream serially on this thread, contention-free. Each
    // component keeps its minimum over the reps.
    let mut route_secs = f64::INFINITY;
    let mut shard_secs = vec![f64::INFINITY; threads];
    for _ in 0..DECOMP_REPS {
        let t0 = Instant::now();
        let routed: Vec<_> = chunks
            .iter()
            .map(|c| route_batches(c.clone(), threads))
            .collect();
        route_secs = route_secs.min(t0.elapsed().as_secs_f64());
        for (shard, best) in shard_secs.iter_mut().enumerate() {
            let t0 = Instant::now();
            let mut detector = RsdosDetector::with_defaults(telescope);
            let mut interval: Option<u64> = None;
            for r in &routed {
                for b in r.owned(shard) {
                    let iv = b.ts.secs() / INTERVAL_SECS;
                    match interval {
                        None => interval = Some(iv),
                        Some(cur) if iv > cur => {
                            detector.advance(SimTime(iv * INTERVAL_SECS));
                            interval = Some(iv);
                        }
                        _ => {}
                    }
                    detector.ingest(b);
                }
            }
            let _ = detector.finish();
            *best = best.min(t0.elapsed().as_secs_f64());
        }
    }
    ParallelLane {
        wall_secs: wall,
        peak,
        route_secs,
        max_shard_secs: shard_secs.iter().copied().fold(0.0, f64::max),
    }
}

/// Fleet twin of [`time_telescope_pool`].
fn time_fleet_pool(
    chunks: &[Arc<Vec<RequestBatch>>],
    threads: usize,
    expect: &[dosscope_types::AttackEvent],
) -> ParallelLane {
    let mut wall = f64::INFINITY;
    let mut peak = 0u64;
    for _ in 0..PARALLEL_REPS {
        let t0 = Instant::now();
        let mut fleet = ShardedFleet::standard(threads);
        for chunk in chunks {
            fleet.ingest_routed(route_requests(chunk.clone(), threads));
        }
        let (events, _, p) = fleet.finish();
        wall = wall.min(t0.elapsed().as_secs_f64());
        peak = p;
        assert_eq!(events, expect, "pool fleet lane diverged from serial");
    }

    let mut route_secs = f64::INFINITY;
    let mut shard_secs = vec![f64::INFINITY; threads];
    for _ in 0..DECOMP_REPS {
        let t0 = Instant::now();
        let routed: Vec<_> = chunks
            .iter()
            .map(|c| route_requests(c.clone(), threads))
            .collect();
        route_secs = route_secs.min(t0.elapsed().as_secs_f64());
        for (shard, best) in shard_secs.iter_mut().enumerate() {
            let t0 = Instant::now();
            let mut fleet = AmpPotFleet::standard();
            for r in &routed {
                for b in r.owned(shard) {
                    fleet.ingest(b);
                }
            }
            let _ = fleet.finish();
            *best = best.min(t0.elapsed().as_secs_f64());
        }
    }
    ParallelLane {
        wall_secs: wall,
        peak,
        route_secs,
        max_shard_secs: shard_secs.iter().copied().fold(0.0, f64::max),
    }
}

/// Run two implementations of the same stage `reps` times each, with the
/// reps interleaved A, B, A, B, … so ambient machine noise (scheduler,
/// frequency scaling, co-tenants) lands on both alike rather than on
/// whichever lane happened to run during the bad stretch. Returns each
/// side's (first) result with its minimum wall time.
fn time_pair<A, B>(
    reps: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> ((A, f64), (B, f64)) {
    let (mut out_a, mut best_a) = (None, f64::INFINITY);
    let (mut out_b, mut best_b) = (None, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        out_a.get_or_insert(r);
        let t0 = Instant::now();
        let r = b();
        best_b = best_b.min(t0.elapsed().as_secs_f64());
        out_b.get_or_insert(r);
    }
    (
        (out_a.expect("at least one rep"), best_a),
        (out_b.expect("at least one rep"), best_b),
    )
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("pipeline bench check FAILED: {msg}");
    std::process::exit(1);
}

/// What the checker needs from a committed `BENCH_pipeline.json`.
struct Committed {
    speedup_tele: f64,
    speedup_fleet: f64,
    speedup_measurement: f64,
    par_tele8: f64,
    par_fleet8: f64,
    /// Committed run parameters, for the wall-comparable gates.
    scale: f64,
    days: f64,
    /// Committed serial measurement walls (threads=1 telescope / fleet).
    tele1_wall: f64,
    fleet1_wall: f64,
    /// Every committed sweep lane, for the scaling gates.
    sweep: Vec<CommittedSweepLane>,
}

/// One sweep lane as read back from the committed file.
struct CommittedSweepLane {
    scale: f64,
    events: f64,
    ingest_secs: f64,
    throughput: f64,
    peak_bytes: f64,
}

/// Minimal structural validation + value extraction for the writer's own
/// one-stage-per-line format. Not a general JSON parser on purpose: the
/// file is produced by this binary, and a format drift should fail loudly.
/// v5 extended the sweep to scale 100 with interleaved-batch ingest and
/// honest streaming-fusion walls, and the checker gates ingest linearity
/// on the committed lanes — so older trajectories must be regenerated
/// rather than silently accepted.
fn parse_committed(text: &str) -> Result<Committed, String> {
    if !text.contains("\"schema\": \"dosscope-bench-pipeline-v5\"") {
        return Err(
            "missing or unknown schema marker (expected dosscope-bench-pipeline-v5; regenerate with a full run)"
                .to_string(),
        );
    }
    // Every (stage, threads) pair must be present with a finite wall time.
    // The committed file is always a full (non-smoke) run over all of
    // THREADS, whatever subset the current run timed.
    let mut required: Vec<(String, usize)> = vec![
        ("world".to_string(), 1),
        ("render".to_string(), 1),
        ("telescope_baseline".to_string(), 1),
        ("fleet_baseline".to_string(), 1),
    ];
    for t in THREADS {
        for name in ["telescope", "fleet", "fusion", "report"] {
            required.push((name.to_string(), t));
        }
    }
    let mut threaded_peaks_ok = true;
    let mut tele1_wall = 0.0;
    let mut fleet1_wall = 0.0;
    for line in text.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let threads = extract_num(line, "threads")
            .ok_or_else(|| format!("stage {name} has no threads field"))?
            as usize;
        let wall = extract_num(line, "wall_secs")
            .ok_or_else(|| format!("stage {name} has no wall_secs field"))?;
        if !wall.is_finite() || wall < 0.0 {
            return Err(format!("stage {name} has invalid wall_secs {wall}"));
        }
        if threads == 1 {
            match name {
                "telescope" => tele1_wall = wall,
                "fleet" => fleet1_wall = wall,
                _ => {}
            }
        }
        // The pool lanes sample their working set; a zero peak means the
        // accounting broke.
        if threads > 1 && (name == "telescope" || name == "fleet") {
            let peak = extract_num(line, "peak")
                .ok_or_else(|| format!("stage {name} has no peak field"))?;
            threaded_peaks_ok &= peak > 0.0;
        }
        required.retain(|(n, t)| !(*n == name && *t == threads));
    }
    if !required.is_empty() {
        return Err(format!("missing stages: {required:?}"));
    }
    if !threaded_peaks_ok {
        return Err("a threaded measurement stage reports peak 0".to_string());
    }
    let speedup_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("\"speedup\""))
        .ok_or("missing speedup record")?;
    let get = |key: &str| {
        extract_num(speedup_line, key).ok_or_else(|| format!("speedup record lacks {key}"))
    };
    let par_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("\"parallel_speedup\""))
        .ok_or("missing parallel_speedup record")?;
    let get_par = |key: &str| {
        extract_num(par_line, key)
            .ok_or_else(|| format!("parallel_speedup record lacks {key}"))
    };
    let header = |key: &str| {
        text.lines()
            .find_map(|l| {
                l.trim_start()
                    .starts_with(&format!("\"{key}\""))
                    .then(|| extract_num(l, key))
                    .flatten()
            })
            .ok_or_else(|| format!("missing {key} field"))
    };
    // Sweep lanes are one object per line.
    let sweep = text
        .lines()
        .filter(|l| l.contains("\"peak_bytes\""))
        .map(|l| {
            Ok::<_, String>(CommittedSweepLane {
                scale: extract_num(l, "scale").ok_or("sweep lane lacks scale")?,
                events: extract_num(l, "events").ok_or("sweep lane lacks events")?,
                ingest_secs: extract_num(l, "ingest_secs")
                    .ok_or("sweep lane lacks ingest_secs")?,
                throughput: extract_num(l, "fusion_report_events_per_sec")
                    .ok_or("sweep lane lacks throughput")?,
                peak_bytes: extract_num(l, "peak_bytes").ok_or("sweep lane lacks peak_bytes")?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Committed {
        speedup_tele: get("telescope")?,
        speedup_fleet: get("fleet")?,
        speedup_measurement: get("measurement")?,
        par_tele8: get_par("telescope_8")?,
        par_fleet8: get_par("fleet_8")?,
        scale: header("scale")?,
        days: header("days")?,
        tele1_wall,
        fleet1_wall,
        sweep,
    })
}

/// Extract `"key": "value"` from a single line.
fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extract `"key": <number>` from a single line.
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
