//! Benchmark support for the `dosscope` workspace.
//!
//! Besides the Criterion benches under `benches/`, this crate ships
//! [`baseline`]: faithful replicas of the measurement hot paths *before*
//! the hot-path overhaul (SipHash `std` maps, full-table expiry scans, no
//! idle wheel). The `pipeline` binary runs them in the same process as
//! the current implementations so `BENCH_pipeline.json` records an
//! apples-to-apples speedup measured in one run, on one machine.

pub mod baseline;
