//! Benchmark crate; see benches/.
