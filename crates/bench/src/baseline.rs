//! Pre-overhaul replicas of the two measurement hot paths, kept as the
//! benchmark baseline lane.
//!
//! These reproduce the implementations as they stood before the hot-path
//! overhaul, byte-for-byte in behaviour but with the old data structures:
//!
//! * `std::collections` hash maps/sets with the default SipHash hasher
//!   everywhere the current code uses `FastMap`/`FastSet`;
//! * flow expiry as a full-table scan at every interval boundary instead
//!   of the bucketed time wheel;
//! * the honeypot fleet without the hourly idle sweep, so the open-event
//!   map grows with the set of victims seen over the whole trace;
//! * batch representatives held as `Arc<Vec<u8>>` (the pre-overhaul
//!   `SharedBytes` layout), costing two dependent pointer hops per read
//!   where the current `Arc<[u8]>` costs one — the lanes convert their
//!   input outside the timed region via [`baseline_packets`] /
//!   [`baseline_requests`], preserving representative sharing;
//! * no parse memo: every request batch is re-parsed and re-classified.
//!
//! The replicas emit the same events as the current detectors (the
//! `pipeline` binary asserts this), which is what makes the recorded
//! speedups honest: both lanes do the same observable work.

use dosscope_amppot::{FleetStats, HoneypotId, RequestBatch};
use dosscope_telescope::{classify, Backscatter, DetectorConfig, PacketBatch, Telescope};
use dosscope_telescope::detector::DetectorStats;
use dosscope_types::{
    AttackEvent, AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange,
    TransportProto,
};
use dosscope_wire::{reflect, IpProtocol, Ipv4Packet, UdpDatagram};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The pre-overhaul representative buffer: `Arc<Vec<u8>>`, i.e. two
/// dependent pointer hops per read (Arc box, then heap data) where the
/// current `SharedBytes` inlines the bytes next to the refcount.
#[derive(Debug, Clone)]
pub struct BaselineBytes(Arc<Vec<u8>>);

impl BaselineBytes {
    /// The contents as a slice (through both hops).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

/// A telescope packet batch in the pre-overhaul representation.
#[derive(Debug, Clone)]
pub struct BaselinePacketBatch {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Packets the batch stands for.
    pub count: u32,
    /// One representative packet.
    pub bytes: BaselineBytes,
}

impl BaselinePacketBatch {
    /// Total bytes on the wire the batch stands for.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.bytes.as_slice().len() as u64
    }
}

/// A honeypot request batch in the pre-overhaul representation.
#[derive(Debug, Clone)]
pub struct BaselineRequestBatch {
    /// The honeypot that received the requests.
    pub honeypot: HoneypotId,
    /// Arrival timestamp.
    pub ts: SimTime,
    /// Requests the batch stands for.
    pub count: u32,
    /// One representative request.
    pub bytes: BaselineBytes,
}

impl BaselineRequestBatch {
    /// Total bytes received that the batch stands for.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.bytes.as_slice().len() as u64
    }
}

/// Convert a rendered telescope stream to the pre-overhaul layout.
/// Sharing is preserved: batches that are clones of one allocation stay
/// clones of one allocation, exactly as the old renderer emitted them.
pub fn baseline_packets(batches: &[PacketBatch]) -> Vec<BaselinePacketBatch> {
    let mut reps: HashMap<usize, BaselineBytes> = HashMap::new();
    batches
        .iter()
        .map(|b| BaselinePacketBatch {
            ts: b.ts,
            count: b.count,
            bytes: reps
                .entry(b.bytes.as_slice().as_ptr() as usize)
                .or_insert_with(|| BaselineBytes(Arc::new(b.bytes.as_slice().to_vec())))
                .clone(),
        })
        .collect()
}

/// Convert a rendered honeypot request stream to the pre-overhaul layout,
/// preserving representative sharing like [`baseline_packets`].
pub fn baseline_requests(batches: &[RequestBatch]) -> Vec<BaselineRequestBatch> {
    let mut reps: HashMap<usize, BaselineBytes> = HashMap::new();
    batches
        .iter()
        .map(|b| BaselineRequestBatch {
            honeypot: b.honeypot,
            ts: b.ts,
            count: b.count,
            bytes: reps
                .entry(b.bytes.as_slice().as_ptr() as usize)
                .or_insert_with(|| BaselineBytes(Arc::new(b.bytes.as_slice().to_vec())))
                .clone(),
        })
        .collect()
}

const MAX_TRACKED_PORTS: usize = 256;
const MAX_TRACKED_SOURCES: usize = 65_536;

/// An in-progress flow, as tracked before the overhaul (SipHash source
/// set, no wheel-bucket field).
#[derive(Debug, Clone)]
struct BaselineFlow {
    victim: Ipv4Addr,
    first: SimTime,
    last: SimTime,
    packets: u64,
    bytes: u64,
    proto_packets: [u64; 4],
    ports: BTreeSet<u16>,
    ports_saturated: bool,
    sources: HashSet<u32>,
    sources_overflow: u32,
    cur_minute: u64,
    cur_minute_count: u64,
    max_minute_count: u64,
}

impl BaselineFlow {
    fn new(victim: Ipv4Addr, ts: SimTime) -> BaselineFlow {
        BaselineFlow {
            victim,
            first: ts,
            last: ts,
            packets: 0,
            bytes: 0,
            proto_packets: [0; 4],
            ports: BTreeSet::new(),
            ports_saturated: false,
            sources: HashSet::new(),
            sources_overflow: 0,
            cur_minute: ts.minute(),
            cur_minute_count: 0,
            max_minute_count: 0,
        }
    }

    fn add(&mut self, b: &Backscatter, ts: SimTime, count: u32, bytes: u64) {
        self.last = self.last.max(ts);
        self.packets += count as u64;
        self.bytes += bytes;
        let proto_idx = TransportProto::ALL
            .iter()
            .position(|p| *p == b.attack_proto)
            .expect("ALL covers every variant");
        self.proto_packets[proto_idx] += count as u64;
        if let Some(port) = b.victim_port {
            if self.ports.len() < MAX_TRACKED_PORTS {
                self.ports.insert(port);
            } else if !self.ports.contains(&port) {
                self.ports_saturated = true;
            }
        }
        let src = u32::from(b.spoofed_source);
        if self.sources.len() < MAX_TRACKED_SOURCES {
            self.sources.insert(src);
        } else if !self.sources.contains(&src) {
            self.sources_overflow = self.sources_overflow.saturating_add(1);
        }
        let minute = ts.minute();
        if minute != self.cur_minute {
            self.max_minute_count = self.max_minute_count.max(self.cur_minute_count);
            self.cur_minute = minute;
            self.cur_minute_count = 0;
        }
        self.cur_minute_count += count as u64;
    }

    fn max_pps(&self) -> f64 {
        self.max_minute_count.max(self.cur_minute_count) as f64
            / dosscope_types::SECS_PER_MINUTE as f64
    }

    fn distinct_ports(&self) -> u32 {
        self.ports.len() as u32 + u32::from(self.ports_saturated)
    }

    fn distinct_sources(&self) -> u32 {
        self.sources.len() as u32 + self.sources_overflow
    }

    fn dominant_proto(&self) -> TransportProto {
        let (idx, _) = self
            .proto_packets
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("array non-empty");
        TransportProto::ALL[idx]
    }
}

/// The pre-overhaul RSDoS detector: SipHash flow table, full-scan expiry.
///
/// Drives exactly the same classification, thresholds and event assembly
/// as [`dosscope_telescope::RsdosDetector`]; only the container types and
/// the sweep algorithm differ.
pub struct BaselineRsdos {
    config: DetectorConfig,
    telescope: Telescope,
    flows: HashMap<Ipv4Addr, BaselineFlow>,
    events: Vec<AttackEvent>,
    stats: DetectorStats,
}

impl BaselineRsdos {
    /// A baseline detector with the published default thresholds.
    pub fn with_defaults(telescope: Telescope) -> BaselineRsdos {
        BaselineRsdos {
            config: DetectorConfig::default(),
            telescope,
            flows: HashMap::new(),
            events: Vec::new(),
            stats: DetectorStats::default(),
        }
    }

    /// Number of currently live flows.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// Ingest one captured batch (time-ordered), in the pre-overhaul
    /// `Arc<Vec<u8>>` representation.
    pub fn ingest(&mut self, batch: &BaselinePacketBatch) {
        let Ok(ip) = Ipv4Packet::new_checked(batch.bytes.as_slice()) else {
            self.stats.malformed += 1;
            return;
        };
        if !self.telescope.observes(ip.dst()) {
            self.stats.non_backscatter += 1;
            return;
        }
        let Some(bs) = classify(&ip) else {
            self.stats.non_backscatter += 1;
            return;
        };
        self.stats.backscatter_packets += batch.count as u64;
        let timeout = self.config.flow_timeout_secs;
        let flow = self
            .flows
            .entry(bs.victim)
            .or_insert_with(|| BaselineFlow::new(bs.victim, batch.ts));
        let mut expired = None;
        if batch.ts.secs() > flow.last.secs() + timeout {
            expired = Some(std::mem::replace(
                flow,
                BaselineFlow::new(bs.victim, batch.ts),
            ));
        }
        flow.add(&bs, batch.ts, batch.count, batch.total_bytes());
        if let Some(old) = expired {
            self.finalize(old);
        }
    }

    /// Interval boundary: the pre-overhaul full-table scan over every live
    /// flow, finalizing the idle ones in victim order.
    pub fn advance(&mut self, now: SimTime) {
        let timeout = self.config.flow_timeout_secs;
        let mut expired: Vec<Ipv4Addr> = self
            .flows
            .iter()
            .filter(|(_, f)| now.secs() > f.last.secs() + timeout)
            .map(|(k, _)| *k)
            .collect();
        expired.sort();
        for k in expired {
            let flow = self.flows.remove(&k).expect("key collected above");
            self.finalize(flow);
        }
    }

    /// End of trace: finalize everything, sorted by start time.
    pub fn finish(mut self) -> (Vec<AttackEvent>, DetectorStats) {
        let mut rest: Vec<BaselineFlow> = self.flows.drain().map(|(_, f)| f).collect();
        rest.sort_by_key(|f| f.victim);
        for flow in rest {
            self.finalize(flow);
        }
        self.events.sort_by_key(|e| (e.when.start, e.target));
        (self.events, self.stats)
    }

    fn finalize(&mut self, flow: BaselineFlow) {
        self.stats.flows_finalized += 1;
        let duration = flow.last.secs() - flow.first.secs();
        let max_pps = flow.max_pps();
        if flow.packets < self.config.min_packets
            || duration < self.config.min_duration_secs
            || max_pps < self.config.min_max_pps
        {
            self.stats.flows_filtered += 1;
            return;
        }
        let proto = flow.dominant_proto();
        let ports = match (proto, flow.distinct_ports()) {
            (TransportProto::Icmp | TransportProto::Other, _) | (_, 0) => PortSignature::None,
            (_, 1) => PortSignature::Single(
                *flow.ports.iter().next().expect("exactly one port"),
            ),
            (_, n) => PortSignature::Multi(n),
        };
        self.events.push(AttackEvent {
            target: flow.victim,
            when: TimeRange::new(flow.first, flow.last),
            vector: AttackVector::RandomlySpoofed { proto, ports },
            packets: flow.packets,
            bytes: flow.bytes,
            intensity_pps: max_pps,
            distinct_sources: flow.distinct_sources(),
        });
        self.stats.events += 1;
    }
}

/// Open per-honeypot event state (no wheel-bucket field).
#[derive(Debug, Clone)]
struct BaselinePotEvent {
    first: SimTime,
    last: SimTime,
    requests: u64,
    bytes: u64,
}

type OpenKey = (Ipv4Addr, ReflectionProtocol, HoneypotId);

/// The per-source reply rate limiter with its pre-overhaul SipHash map.
#[derive(Debug, Clone, Default)]
struct BaselineLimiter {
    current_minute: u64,
    counts: HashMap<u32, u32>,
}

impl BaselineLimiter {
    fn allow(&mut self, source: Ipv4Addr, minute: u64) -> bool {
        if minute != self.current_minute {
            self.counts.clear();
            self.current_minute = minute;
        }
        let c = self.counts.entry(u32::from(source)).or_insert(0);
        *c += 1;
        *c < 3
    }
}

/// The pre-overhaul honeypot fleet: SipHash open-event map, no hourly idle
/// sweep (open events accumulate until the end of the trace or their own
/// next request), default fleet parameters.
pub struct BaselineFleet {
    idle_timeout_secs: u64,
    max_event_secs: u64,
    min_requests: u64,
    limiters: Vec<BaselineLimiter>,
    open: HashMap<OpenKey, BaselinePotEvent>,
    closed: Vec<(OpenKey, BaselinePotEvent)>,
    stats: FleetStats,
}

impl BaselineFleet {
    /// The standard 24-instance fleet with default parameters.
    pub fn standard() -> BaselineFleet {
        BaselineFleet {
            idle_timeout_secs: 3_600,
            max_event_secs: 86_400,
            min_requests: 100,
            limiters: vec![BaselineLimiter::default(); 24],
            open: HashMap::new(),
            closed: Vec::new(),
            stats: FleetStats::default(),
        }
    }

    /// Number of currently open per-honeypot events.
    pub fn open_events(&self) -> usize {
        self.open.len()
    }

    /// Ingest one request batch (time-ordered), in the pre-overhaul
    /// `Arc<Vec<u8>>` representation.
    pub fn ingest(&mut self, batch: &BaselineRequestBatch) {
        let Ok(ip) = Ipv4Packet::new_checked(batch.bytes.as_slice()) else {
            self.stats.malformed += 1;
            return;
        };
        if ip.protocol() != IpProtocol::Udp {
            self.stats.unrecognised += 1;
            return;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            self.stats.malformed += 1;
            return;
        };
        let Some(protocol) = reflect::classify_request(udp.dst_port(), udp.payload()) else {
            self.stats.unrecognised += 1;
            return;
        };
        let victim = ip.src();
        self.stats.requests += batch.count as u64;

        if let Some(limiter) = self.limiters.get_mut(batch.honeypot.0 as usize) {
            if limiter.allow(victim, batch.ts.minute()) {
                self.stats.replies_sent += 1;
            }
        }

        let key = (victim, protocol, batch.honeypot);
        let entry = self.open.entry(key).or_insert_with(|| BaselinePotEvent {
            first: batch.ts,
            last: batch.ts,
            requests: 0,
            bytes: 0,
        });
        let idle = batch.ts.secs() > entry.last.secs() + self.idle_timeout_secs;
        let capped = batch.ts.secs() - entry.first.secs() >= self.max_event_secs;
        if idle || capped {
            let finished = std::mem::replace(
                entry,
                BaselinePotEvent {
                    first: batch.ts,
                    last: batch.ts,
                    requests: 0,
                    bytes: 0,
                },
            );
            self.stats.pot_events += 1;
            self.closed.push((key, finished));
        }
        let entry = self.open.get_mut(&key).expect("inserted above");
        entry.last = entry.last.max(batch.ts);
        entry.requests += batch.count as u64;
        entry.bytes += batch.total_bytes();
    }

    /// End of trace: close everything, merge per-honeypot views per
    /// (victim, protocol) and return attack events sorted by start time.
    pub fn finish(mut self) -> (Vec<AttackEvent>, FleetStats) {
        let open: Vec<(OpenKey, BaselinePotEvent)> = self.open.drain().collect();
        self.stats.pot_events += open.len() as u64;
        self.closed.extend(open);

        let mut groups: HashMap<(Ipv4Addr, ReflectionProtocol), Vec<(HoneypotId, BaselinePotEvent)>> =
            HashMap::new();
        for ((victim, protocol, pot), e) in self.closed.drain(..) {
            groups.entry((victim, protocol)).or_default().push((pot, e));
        }

        let mut events = Vec::new();
        for ((victim, protocol), mut pots) in groups {
            pots.sort_by_key(|(pot, e)| (e.first, *pot));
            let mut iter = pots.into_iter();
            let (_, first) = iter.next().expect("group non-empty");
            let mut cur = Merged::from(first);
            for (_, e) in iter {
                let within_gap = e.first.secs() <= cur.last.secs() + self.idle_timeout_secs;
                let within_cap =
                    e.last.secs().max(cur.last.secs()) - cur.first.secs() < self.max_event_secs;
                if within_gap && within_cap {
                    cur.absorb(e);
                } else {
                    self.emit(&mut events, victim, protocol, cur);
                    cur = Merged::from(e);
                }
            }
            self.emit(&mut events, victim, protocol, cur);
        }
        events.sort_by_key(|e| (e.when.start, e.target, e.reflection_protocol()));
        (events, self.stats)
    }

    fn emit(
        &mut self,
        out: &mut Vec<AttackEvent>,
        victim: Ipv4Addr,
        protocol: ReflectionProtocol,
        merged: Merged,
    ) {
        if merged.requests <= self.min_requests {
            self.stats.scan_filtered += 1;
            return;
        }
        let duration = (merged.last.secs() - merged.first.secs()).max(1);
        out.push(AttackEvent {
            target: victim,
            when: TimeRange::new(merged.first, merged.last),
            vector: AttackVector::Reflection { protocol },
            packets: merged.requests,
            bytes: merged.bytes,
            intensity_pps: merged.requests as f64 / duration as f64,
            distinct_sources: merged.honeypots,
        });
        self.stats.events += 1;
    }
}

struct Merged {
    first: SimTime,
    last: SimTime,
    requests: u64,
    bytes: u64,
    honeypots: u32,
}

impl From<BaselinePotEvent> for Merged {
    fn from(e: BaselinePotEvent) -> Merged {
        Merged {
            first: e.first,
            last: e.last,
            requests: e.requests,
            bytes: e.bytes,
            honeypots: 1,
        }
    }
}

impl Merged {
    fn absorb(&mut self, e: BaselinePotEvent) {
        self.first = self.first.min(e.first);
        self.last = self.last.max(e.last);
        self.requests += e.requests;
        self.bytes += e.bytes;
        self.honeypots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_amppot::AmpPotFleet;
    use dosscope_telescope::RsdosDetector;
    use dosscope_wire::builder;

    /// The baseline detector must emit exactly what the current one does
    /// for a mixed workload with interval sweeps, or the recorded speedup
    /// would compare different work.
    #[test]
    fn baseline_rsdos_matches_current() {
        let mut cur = RsdosDetector::with_defaults(Telescope::default_slash8());
        let mut base = BaselineRsdos::with_defaults(Telescope::default_slash8());
        for s in 0..400u64 {
            let v = Ipv4Addr::new(203, 0, 113, (s % 7) as u8);
            let dark = Ipv4Addr::new(44, (s % 200) as u8, 1, 1);
            let pkt = builder::tcp_syn_ack(v, 80, dark, 40_000, s as u32);
            let b = PacketBatch::repeated(SimTime(s * 3), 2, pkt);
            cur.ingest(&b);
            base.ingest(&baseline_packets(std::slice::from_ref(&b))[0]);
        }
        cur.advance(SimTime(2_000));
        base.advance(SimTime(2_000));
        for s in 0..200u64 {
            let v = Ipv4Addr::new(203, 0, 113, 99);
            let pkt = builder::tcp_syn_ack(v, 443, Ipv4Addr::new(44, 9, 9, 9), 1, s as u32);
            let b = PacketBatch::repeated(SimTime(3_000 + s), 1, pkt);
            cur.ingest(&b);
            base.ingest(&baseline_packets(std::slice::from_ref(&b))[0]);
        }
        let (ce, cs) = cur.finish();
        let (be, bs) = base.finish();
        assert_eq!(ce, be);
        assert_eq!(cs, bs);
    }

    /// Same for the fleet: the baseline (no hourly sweep) must produce
    /// identical merged events.
    #[test]
    fn baseline_fleet_matches_current() {
        let mut cur = AmpPotFleet::standard();
        let mut base = BaselineFleet::standard();
        let pots: Vec<Ipv4Addr> = cur.honeypots().iter().map(|h| h.addr).collect();
        for s in 0..500u64 {
            let victim = Ipv4Addr::new(203, 0, 113, (s % 5) as u8);
            let pot = (s % 4) as usize;
            let pkt = builder::reflection_request(
                victim,
                40_000,
                pots[pot],
                ReflectionProtocol::Ntp,
            );
            // Spread over several hours so the current fleet's hourly
            // sweep actually fires.
            let b = RequestBatch::repeated(HoneypotId(pot as u8), SimTime(s * 40), 3, pkt);
            cur.ingest(&b);
            base.ingest(&baseline_requests(std::slice::from_ref(&b))[0]);
        }
        let (ce, cs) = cur.finish();
        let (be, bs) = base.finish();
        assert_eq!(ce, be);
        assert_eq!(cs.requests, bs.requests);
        assert_eq!(cs.replies_sent, bs.replies_sent);
        assert_eq!(cs.pot_events, bs.pot_events);
        assert_eq!(cs.events, bs.events);
        assert_eq!(cs.scan_filtered, bs.scan_filtered);
    }
}
