//! Hot-path microbenchmarks for the overhaul's data-structure choices:
//! bucketed time-wheel expiry vs the pre-overhaul full-table scan, the
//! FxHash victim map vs the std SipHash default, and the fused
//! single-pass classifier vs the layered reference path. The end-to-end
//! numbers live in `BENCH_pipeline.json` (the `pipeline` binary); these
//! isolate the individual mechanisms.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dosscope_telescope::flow::FlowTable;
use dosscope_telescope::{classify, classify_batch, Backscatter};
use dosscope_types::{FastMap, SimTime, TransportProto};
use dosscope_wire::{builder, IpProtocol, Ipv4Packet};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const FLOWS: u32 = 4096;

/// A table with `n` single-packet flows whose last activity is staggered
/// over the first four wheel buckets.
fn table_with_flows(n: u32, timeout: u64) -> FlowTable {
    let mut t = FlowTable::new(timeout);
    for i in 0..n {
        let b = Backscatter {
            victim: Ipv4Addr::from(0xCB00_0000u32 + i),
            spoofed_source: Ipv4Addr::from(0x2C00_0000u32 + i),
            attack_proto: TransportProto::Tcp,
            victim_port: Some(80),
        };
        t.offer(&b, SimTime(u64::from(i % 240)), 1, 40);
    }
    t
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_expiry");
    g.throughput(Throughput::Elements(u64::from(FLOWS)));

    // Nothing expired: the wheel's point is that an interval boundary
    // with no expirable bucket costs O(1), while the pre-overhaul scan
    // still walks every live flow.
    let mut wheel = table_with_flows(FLOWS, 300);
    g.bench_function("sweep_idle_wheel", |b| {
        b.iter(|| black_box(wheel.sweep(SimTime(300))))
    });
    let mut scan = table_with_flows(FLOWS, 300);
    g.bench_function("sweep_idle_scan", |b| {
        b.iter(|| black_box(scan.sweep_scan(SimTime(300))))
    });

    // Everything expired: both sides finalize every flow; the wheel adds
    // bucket bookkeeping, the scan the full-table walk plus key copies.
    // Each iteration rebuilds the table (the vendored criterion stub has
    // no untimed setup), so the build cost is a shared constant in both.
    g.bench_function("build_and_sweep_all_wheel", |b| {
        b.iter(|| {
            let mut t = table_with_flows(FLOWS, 300);
            black_box(t.sweep(SimTime(10_000)))
        })
    });
    g.bench_function("build_and_sweep_all_scan", |b| {
        b.iter(|| {
            let mut t = table_with_flows(FLOWS, 300);
            black_box(t.sweep_scan(SimTime(10_000)))
        })
    });
    g.finish();
}

fn bench_hashers(c: &mut Criterion) {
    let keys: Vec<Ipv4Addr> = (0..FLOWS)
        .map(|i| Ipv4Addr::from(i.wrapping_mul(2_654_435_761)))
        .collect();
    let mut g = c.benchmark_group("victim_map");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("fxhash_insert_get", |b| {
        b.iter(|| {
            let mut m: FastMap<Ipv4Addr, u64> = FastMap::default();
            for k in &keys {
                *m.entry(*k).or_insert(0) += 1;
            }
            let mut hits = 0u64;
            for k in &keys {
                hits += m[k];
            }
            black_box(hits)
        })
    });
    g.bench_function("siphash_insert_get", |b| {
        b.iter(|| {
            let mut m: HashMap<Ipv4Addr, u64> = HashMap::new();
            for k in &keys {
                *m.entry(*k).or_insert(0) += 1;
            }
            let mut hits = 0u64;
            for k in &keys {
                hits += m[k];
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let victim: Ipv4Addr = "203.0.113.7".parse().unwrap();
    let dark: Ipv4Addr = "44.1.2.3".parse().unwrap();
    let syn_ack = builder::tcp_syn_ack(victim, 80, dark, 40_000, 7);
    let unreach = builder::icmp_dest_unreachable(victim, dark, IpProtocol::Udp, 5555, 27015, 3);
    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Elements(1));
    g.bench_function("fused_tcp_syn_ack", |b| {
        b.iter(|| classify_batch(black_box(syn_ack.as_slice())))
    });
    g.bench_function("layered_tcp_syn_ack", |b| {
        b.iter(|| {
            let ip = Ipv4Packet::new_checked(black_box(syn_ack.as_slice())).unwrap();
            classify(&ip)
        })
    });
    g.bench_function("fused_icmp_unreachable_udp", |b| {
        b.iter(|| classify_batch(black_box(unreach.as_slice())))
    });
    g.bench_function("layered_icmp_unreachable_udp", |b| {
        b.iter(|| {
            let ip = Ipv4Packet::new_checked(black_box(unreach.as_slice())).unwrap();
            classify(&ip)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sweep, bench_hashers, bench_classify);
criterion_main!(benches);
