//! Component microbenchmarks: the hot paths of the measurement pipelines
//! (packet build/parse, backscatter classification, flow-table ingest,
//! honeypot ingest, LPM lookups, statistics kernels) plus ablations for
//! the design choices DESIGN.md calls out (checked vs unchecked parsing,
//! batch compression factor).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dosscope_amppot::{AmpPotFleet, HoneypotId, RequestBatch};
use dosscope_geo::{AsRegistry, PrefixMap, RegistryConfig};
use dosscope_telescope::{classify, PacketBatch, RsdosDetector, Telescope};
use dosscope_types::{Ecdf, Ipv4Cidr, ReflectionProtocol, SimTime};
use dosscope_wire::{builder, Ipv4Packet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

fn bench_wire(c: &mut Criterion) {
    let victim: Ipv4Addr = "203.0.113.7".parse().unwrap();
    let dark: Ipv4Addr = "44.1.2.3".parse().unwrap();

    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(1));
    g.bench_function("build_tcp_syn_ack", |b| {
        b.iter(|| builder::tcp_syn_ack(black_box(victim), 80, black_box(dark), 40000, 7))
    });
    g.bench_function("build_icmp_unreachable_quoting_udp", |b| {
        b.iter(|| {
            builder::icmp_dest_unreachable(
                black_box(victim),
                black_box(dark),
                dosscope_wire::IpProtocol::Udp,
                5555,
                27015,
                3,
            )
        })
    });
    g.bench_function("build_ntp_monlist_request", |b| {
        b.iter(|| builder::reflection_request(victim, 4444, dark, ReflectionProtocol::Ntp))
    });

    let syn_ack = builder::tcp_syn_ack(victim, 80, dark, 40000, 7);
    g.bench_function("parse_checked_ipv4", |b| {
        b.iter(|| Ipv4Packet::new_checked(black_box(syn_ack.as_slice())).unwrap())
    });
    // Ablation: cost of validation vs the unchecked view.
    g.bench_function("parse_unchecked_ipv4", |b| {
        b.iter(|| Ipv4Packet::new_unchecked(black_box(syn_ack.as_slice())))
    });
    g.bench_function("classify_backscatter", |b| {
        let ip = Ipv4Packet::new_checked(syn_ack.as_slice()).unwrap();
        b.iter(|| classify(black_box(&ip)))
    });
    g.finish();
}

fn bench_detector(c: &mut Criterion) {
    let victim: Ipv4Addr = "203.0.113.7".parse().unwrap();
    // 600 batches ≈ one 10-minute 2-pps flood.
    let make_batches = |count: u32| -> Vec<PacketBatch> {
        (0..600u64)
            .map(|s| {
                let pkt = builder::tcp_syn_ack(
                    victim,
                    80,
                    Ipv4Addr::new(44, (s % 200) as u8, 3, 4),
                    40000,
                    s as u32,
                );
                PacketBatch::repeated(SimTime(s), count, pkt)
            })
            .collect()
    };
    let batches1 = make_batches(1);
    let batches64 = make_batches(64);

    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(batches1.len() as u64));
    g.bench_function("rsdos_ingest_600_batches", |b| {
        b.iter(|| {
            let mut d = RsdosDetector::with_defaults(Telescope::default_slash8());
            for batch in &batches1 {
                d.ingest(batch);
            }
            d.finish()
        })
    });
    // Ablation: batch compression — same packet volume, 64x fewer parses.
    g.bench_function("rsdos_ingest_600_batches_x64_compressed", |b| {
        b.iter(|| {
            let mut d = RsdosDetector::with_defaults(Telescope::default_slash8());
            for batch in &batches64 {
                d.ingest(batch);
            }
            d.finish()
        })
    });
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let victim: Ipv4Addr = "203.0.113.7".parse().unwrap();
    let fleet_template = AmpPotFleet::standard();
    let pot_addr = fleet_template.honeypots()[0].addr;
    let batches: Vec<RequestBatch> = (0..600u64)
        .map(|s| {
            let pkt = builder::reflection_request(victim, 4000, pot_addr, ReflectionProtocol::Ntp);
            RequestBatch::repeated(HoneypotId(0), SimTime(s), 3, pkt)
        })
        .collect();

    let mut g = c.benchmark_group("amppot");
    g.throughput(Throughput::Elements(batches.len() as u64));
    g.bench_function("fleet_ingest_600_batches", |b| {
        b.iter(|| {
            let mut fleet = AmpPotFleet::standard();
            for batch in &batches {
                fleet.ingest(batch);
            }
            fleet.finish()
        })
    });
    g.finish();
}

fn bench_geo(c: &mut Criterion) {
    let registry = AsRegistry::build(&RegistryConfig::default());
    let geo = registry.build_geodb();
    let asdb = registry.build_asdb();
    let mut rng = SmallRng::seed_from_u64(11);
    let probes: Vec<Ipv4Addr> = (0..1024).map(|_| Ipv4Addr::from(rng.gen::<u32>())).collect();

    let mut g = c.benchmark_group("geo");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("lpm_country_lookup_1k", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&a| geo.country_of(a).is_some())
                .count()
        })
    });
    g.bench_function("lpm_asn_lookup_1k", |b| {
        b.iter(|| probes.iter().filter(|&&a| asdb.asn_of(a).is_some()).count())
    });
    g.bench_function("trie_insert_1k", |b| {
        b.iter(|| {
            let mut m = PrefixMap::new();
            for (i, &p) in probes.iter().enumerate().take(1000) {
                m.insert(Ipv4Cidr::new(p, 24), i as u32);
            }
            m.len()
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.gen_range(0.0..1e5)).collect();
    let mut g = c.benchmark_group("stats");
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("ecdf_freeze_100k", |b| {
        b.iter(|| {
            let e: Ecdf = samples.iter().copied().collect();
            e.freeze()
        })
    });
    let frozen: dosscope_types::FrozenEcdf = samples.iter().copied().collect::<Ecdf>().freeze();
    g.bench_function("ecdf_cdf_query", |b| b.iter(|| frozen.cdf(black_box(500.0))));
    g.finish();
}

fn bench_scenario(c: &mut Criterion) {
    // The full end-to-end loop at a tiny scale: the number a downstream
    // user cares about when sweeping parameters.
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("end_to_end_scale_200k", |b| {
        b.iter(|| {
            dosscope_harness::Scenario::run(&dosscope_harness::ScenarioConfig {
                scale: 200_000.0,
                ..dosscope_harness::ScenarioConfig::default()
            })
        })
    });
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default();
    targets = bench_wire, bench_detector, bench_fleet, bench_geo, bench_stats, bench_scenario
}
criterion_main!(components);
