//! Sharded-pipeline benchmarks: the component measurement pipelines
//! (telescope detector, honeypot fleet) driven serially (1 shard) and in
//! parallel (2 and 8 shards), over the same pre-rendered multi-day
//! workload. The routed input (per-shard index views over one shared
//! chunk) is prepared outside the timing loop, so the numbers isolate the
//! detection work itself.
//!
//! Results are byte-identical at every shard count (that is the pipeline's
//! headline guarantee, see DESIGN.md "Concurrency model"); the point of
//! this bench is wall-clock. On a multi-core machine the 8-shard runs
//! beat 1 shard roughly linearly in usable cores; on a single-core
//! container the shard counts tie, the workers merely interleave.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dosscope_amppot::{route_requests, AmpPotFleet, RequestBatch, ShardedFleet};
use dosscope_attackgen::Renderer;
use dosscope_harness::{Scenario, ScenarioConfig};
use dosscope_telescope::{route_batches, PacketBatch, ShardedRsdos, Telescope};
use dosscope_types::DayIndex;
use std::sync::{Arc, OnceLock};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Several busy days of rendered observations from a mid-scale scenario:
/// one shared workload for every shard count.
fn workload() -> &'static (Vec<PacketBatch>, Vec<RequestBatch>) {
    static WORKLOAD: OnceLock<(Vec<PacketBatch>, Vec<RequestBatch>)> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        // A heavier stream than the other benches: per-iteration work must
        // dwarf the cost of standing up and draining the 8-worker pool.
        let config = ScenarioConfig {
            scale: 2_000.0,
            ..ScenarioConfig::default()
        };
        let world = Scenario::run(&config);
        let telescope = Telescope::default_slash8();
        let pot_addrs: Vec<std::net::Ipv4Addr> = AmpPotFleet::standard()
            .honeypots()
            .iter()
            .map(|h| h.addr)
            .collect();
        let renderer = Renderer::new(
            &world.truth,
            telescope,
            pot_addrs,
            config.seed ^ 0x8E4,
            world.days,
        );
        let mut packets = Vec::new();
        let mut requests = Vec::new();
        for d in 10..70 {
            packets.extend(renderer.telescope_day(DayIndex(d)));
            requests.extend(renderer.honeypot_day(DayIndex(d)));
        }
        (packets, requests)
    })
}

fn bench_sharded_telescope(c: &mut Criterion) {
    let (packets, _) = workload();
    let mut g = c.benchmark_group("parallel/telescope");
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.sample_size(10);
    for shards in SHARD_COUNTS {
        let routed = route_batches(Arc::new(packets.clone()), shards);
        g.bench_function(&format!("shards={shards}"), |b| {
            b.iter(|| {
                let mut rsdos = ShardedRsdos::with_defaults(Telescope::default_slash8(), shards);
                rsdos.ingest_routed(routed.clone());
                rsdos.finish()
            })
        });
    }
    g.finish();
}

fn bench_sharded_honeypot(c: &mut Criterion) {
    let (_, requests) = workload();
    let mut g = c.benchmark_group("parallel/honeypot");
    g.throughput(Throughput::Elements(requests.len() as u64));
    g.sample_size(10);
    for shards in SHARD_COUNTS {
        let routed = route_requests(Arc::new(requests.clone()), shards);
        g.bench_function(&format!("shards={shards}"), |b| {
            b.iter(|| {
                let mut fleet = ShardedFleet::standard(shards);
                fleet.ingest_routed(routed.clone());
                fleet.finish()
            })
        });
    }
    g.finish();
}

criterion_group!(parallel, bench_sharded_telescope, bench_sharded_honeypot);
criterion_main!(parallel);
