//! Microbenchmarks for the sorted-run consolidation primitives: the
//! loser-tree k-way merge (`dosscope_types::kway`) against the
//! two-pointer cascade the store used before the sorted-run layout —
//! each new batch merged pairwise into the full accumulated column,
//! which re-copies all previously ingested rows on every ingest and is
//! what made large sweeps superlinear. The end-to-end ingest numbers
//! live in `BENCH_pipeline.json`; these isolate the merge mechanism.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dosscope_types::merge_sorted;

/// Keys shaped like the store's merge keys: (start second, victim id).
type Key = (u64, u32);

/// `runs` disjointly-strided sorted runs of `len` keys each, covering the
/// same time span — the worst case for the old cascade (every merge
/// interleaves fully, no block copies survive).
fn strided_runs(runs: usize, len: usize) -> Vec<Vec<Key>> {
    (0..runs)
        .map(|r| {
            (0..len)
                .map(|i| ((i * runs + r) as u64 * 7, (i % 251) as u32))
                .collect()
        })
        .collect()
}

/// The pre-sorted-run behavior: fold each run into the accumulator with a
/// classic two-pointer merge. Re-copies the whole accumulator per run:
/// O(runs^2 * len) moves for O(runs * len) rows.
fn two_pointer_cascade(runs: &[Vec<Key>]) -> Vec<Key> {
    let mut acc: Vec<Key> = Vec::new();
    for run in runs {
        let mut merged = Vec::with_capacity(acc.len() + run.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < acc.len() && b < run.len() {
            if acc[a] <= run[b] {
                merged.push(acc[a]);
                a += 1;
            } else {
                merged.push(run[b]);
                b += 1;
            }
        }
        merged.extend_from_slice(&acc[a..]);
        merged.extend_from_slice(&run[b..]);
        acc = merged;
    }
    acc
}

fn bench_consolidation(c: &mut Criterion) {
    for (runs, len) in [(4usize, 20_000usize), (16, 5_000), (64, 1_250)] {
        let total = runs * len;
        let data = strided_runs(runs, len);
        let slices: Vec<&[Key]> = data.iter().map(Vec::as_slice).collect();

        // Equivalence guard: both merges must produce the same rows, or
        // the timings compare different work.
        assert_eq!(merge_sorted(&slices), two_pointer_cascade(&data));

        let name = format!("consolidate_{runs}x{len}");
        let mut g = c.benchmark_group(&name);
        g.throughput(Throughput::Elements(total as u64));
        g.bench_function("kway_loser_tree", |b| {
            b.iter(|| black_box(merge_sorted(black_box(&slices))))
        });
        g.bench_function("two_pointer_cascade", |b| {
            b.iter(|| black_box(two_pointer_cascade(black_box(&data))))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_consolidation);
criterion_main!(benches);
