//! One benchmark per figure of the paper (plus the Section 4 joint-attack
//! correlation): each target regenerates the figure's data series from a
//! prebuilt scenario world and prints the headline values once.

use criterion::{criterion_group, criterion_main, Criterion};
use dosscope_core::migration::MigrationAnalysis;
use dosscope_core::report::{render_web_impact, DistributionFigure, Figure1, Figure5};
use dosscope_core::webimpact::WebImpact;
use dosscope_core::{Enricher, Framework, JointAnalysis};
use dosscope_harness::{Scenario, ScenarioConfig, World};
use dosscope_types::EventSource;
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        Scenario::run(&ScenarioConfig {
            scale: 20_000.0,
            ..ScenarioConfig::default()
        })
    })
}

fn fw() -> Framework<'static> {
    world().framework()
}

fn bench_figures(c: &mut Criterion) {
    let framework = fw();

    // Figure 1: daily attacks / targets / /16s / ASNs, three panels.
    println!("{}", Figure1::build(&framework).render());
    c.bench_function("figure1_daily_series", |b| {
        b.iter(|| Figure1::build(&framework))
    });

    // Figure 2: duration CDFs per source.
    let d_tel = DistributionFigure::durations(&framework, EventSource::Telescope);
    let d_hp = DistributionFigure::durations(&framework, EventSource::Honeypot);
    println!(
        "Figure 2: telescope median {:.0}s mean {:.0}s | honeypot median {:.0}s mean {:.0}s",
        d_tel.ecdf.median().unwrap_or(0.0),
        d_tel.ecdf.mean().unwrap_or(0.0),
        d_hp.ecdf.median().unwrap_or(0.0),
        d_hp.ecdf.mean().unwrap_or(0.0),
    );
    c.bench_function("figure2_duration_cdfs", |b| {
        b.iter(|| {
            (
                DistributionFigure::durations(&framework, EventSource::Telescope),
                DistributionFigure::durations(&framework, EventSource::Honeypot),
            )
        })
    });

    // Figure 3: telescope intensity CDF.
    let f3 = DistributionFigure::intensities(&framework, EventSource::Telescope);
    println!(
        "Figure 3: median {:.1} pps, mean {:.1} pps, P(<=2)={:.2}",
        f3.ecdf.median().unwrap_or(0.0),
        f3.ecdf.mean().unwrap_or(0.0),
        f3.ecdf.cdf(2.0)
    );
    c.bench_function("figure3_telescope_intensity", |b| {
        b.iter(|| DistributionFigure::intensities(&framework, EventSource::Telescope))
    });

    // Figure 4: honeypot intensity CDFs, overall + per protocol.
    let f4 = DistributionFigure::intensities(&framework, EventSource::Honeypot);
    println!(
        "Figure 4: median {:.0} req/s, mean {:.0} req/s",
        f4.ecdf.median().unwrap_or(0.0),
        f4.ecdf.mean().unwrap_or(0.0)
    );
    c.bench_function("figure4_honeypot_intensity_per_protocol", |b| {
        b.iter(|| DistributionFigure::intensities_per_protocol(&framework))
    });

    // Figure 5: medium+ intensity attacks per day.
    println!("{}", Figure5::build(&framework).render());
    c.bench_function("figure5_medium_intensity_series", |b| {
        b.iter(|| Figure5::build(&framework))
    });

    // Figures 6 and 7: the Web-association join.
    let web = WebImpact::analyze(&framework).expect("dns attached");
    println!("{}", render_web_impact(&web));
    c.bench_function("figure6_7_web_association", |b| {
        b.iter(|| WebImpact::analyze(&framework))
    });

    // Figures 8-11 + Table 9: the migration analysis.
    let m = MigrationAnalysis::analyze(&framework, &web).expect("dps attached");
    let t = &m.taxonomy;
    println!(
        "Figure 8: attacked {:.1}% | Figure 9: <=5 all {:.1}% migrating {:.1}% | Figure 10: 6d all {:.1}% top0.1 {:.1}% | Figure 11: 1d {:.1}%",
        100.0 * t.attacked_share(),
        100.0 * m.freq_all.cdf(5.0),
        100.0 * m.freq_migrating.cdf(5.0),
        100.0 * m.delay_all.cdf(6.0),
        100.0 * m.delay_top01.cdf(6.0),
        100.0 * m.delay_long4h.cdf(1.0),
    );
    c.bench_function("figure8_11_migration_analysis", |b| {
        b.iter(|| MigrationAnalysis::analyze(&framework, &web))
    });

    // Section 4: joint-attack correlation.
    let enricher = Enricher::new(framework.geo, framework.asdb);
    let joint = JointAnalysis::run(framework.store, &enricher);
    println!(
        "Joint: {} common, {} joint targets, single-port {:.1}%",
        joint.common_targets,
        joint.joint_targets,
        100.0 * joint.single_port_share
    );
    c.bench_function("joint_attack_correlation", |b| {
        b.iter(|| {
            let enricher = Enricher::new(framework.geo, framework.asdb);
            JointAnalysis::run(framework.store, &enricher)
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(figures);
