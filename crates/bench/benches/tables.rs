//! One benchmark per table of the paper: each target regenerates the
//! table from a prebuilt scenario world and prints its rows once, so a
//! bench run doubles as a reproduction run (see EXPERIMENTS.md for the
//! paper-vs-measured record).

use criterion::{criterion_group, criterion_main, Criterion};
use dosscope_core::report::{Table1, Table2, Table3, Table4, Table5, Table6, Table7, Table8};
use dosscope_core::Framework;
use dosscope_harness::{Scenario, ScenarioConfig, World};
use std::sync::OnceLock;

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        Scenario::run(&ScenarioConfig {
            scale: 20_000.0,
            ..ScenarioConfig::default()
        })
    })
}

fn fw() -> Framework<'static> {
    world().framework()
}

fn bench_tables(c: &mut Criterion) {
    let framework = fw();

    println!("{}", Table1::build(&framework).render());
    c.bench_function("table1_attack_events_summary", |b| {
        b.iter(|| Table1::build(&framework))
    });

    if let Some(t2) = Table2::build(&framework) {
        println!("{}", t2.render());
    }
    c.bench_function("table2_dns_dataset_summary", |b| {
        b.iter(|| Table2::build(&framework))
    });

    if let Some(t3) = Table3::build(&framework) {
        println!("{}", t3.render());
    }
    c.bench_function("table3_dps_web_sites", |b| {
        b.iter(|| Table3::build(&framework))
    });

    println!("{}", Table4::build(&framework).render());
    c.bench_function("table4_country_ranking", |b| {
        b.iter(|| Table4::build(&framework))
    });

    println!("{}", Table5::build(&framework).render());
    c.bench_function("table5_ip_protocols", |b| {
        b.iter(|| Table5::build(&framework))
    });

    println!("{}", Table6::build(&framework).render());
    c.bench_function("table6_reflection_protocols", |b| {
        b.iter(|| Table6::build(&framework))
    });

    println!("{}", Table7::build(&framework).render());
    c.bench_function("table7_port_cardinality", |b| {
        b.iter(|| Table7::build(&framework))
    });

    println!("{}", Table8::build(&framework).render());
    c.bench_function("table8_targeted_services", |b| {
        b.iter(|| Table8::build(&framework))
    });

    // Table 9 comes out of the Section 6 analysis (benched end to end in
    // figures.rs); here only the percentile extraction is measured.
    let web = dosscope_core::webimpact::WebImpact::analyze(&framework).expect("dns attached");
    let migration =
        dosscope_core::migration::MigrationAnalysis::analyze(&framework, &web).expect("dps");
    println!("Table 9: {:?}", migration.table9_row());
    c.bench_function("table9_intensity_percentiles", |b| {
        b.iter(|| migration.table9_row())
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20);
    targets = bench_tables
}
criterion_main!(tables);
