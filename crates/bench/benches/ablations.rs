//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the Moore et al. filter thresholds — how many flows survive at the
//!   published values vs. looser/stricter variants (printed once);
//! * the flow-table timeout — event splitting vs the 300 s default;
//! * the honeypot fleet-merge idle gap;
//! * AnchorDist (inverse-CDF) sampling vs log-normal rejection sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use dosscope_attackgen::dist::{lognormal_min, AnchorDist};
use dosscope_harness::{Scenario, ScenarioConfig};
use dosscope_telescope::{DetectorConfig, PacketBatch, RsdosDetector, Telescope};
use dosscope_types::DayIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// One rendered day of telescope traffic from a small scenario: a
/// realistic mixed batch stream for detector ablations.
fn day_batches() -> &'static Vec<PacketBatch> {
    static BATCHES: OnceLock<Vec<PacketBatch>> = OnceLock::new();
    BATCHES.get_or_init(|| {
        let config = ScenarioConfig {
            scale: 20_000.0,
            ..ScenarioConfig::default()
        };
        let world = Scenario::run(&config);
        let renderer = dosscope_attackgen::Renderer::new(
            &world.truth,
            Telescope::default_slash8(),
            (0..24).map(|i| std::net::Ipv4Addr::new(198, 18, i, 53)).collect(),
            7,
            world.days,
        );
        // Concatenate a couple of busy days.
        let mut out = Vec::new();
        for d in 10..14 {
            out.extend(renderer.telescope_day(DayIndex(d)));
        }
        out
    })
}

fn run_with(config: DetectorConfig) -> (usize, u64) {
    let mut d = RsdosDetector::new(Telescope::default_slash8(), config);
    for b in day_batches() {
        d.ingest(b);
    }
    let (events, stats) = d.finish();
    (events.len(), stats.flows_filtered)
}

fn bench_threshold_ablation(c: &mut Criterion) {
    let published = DetectorConfig::default();
    let loose = DetectorConfig {
        min_packets: 1,
        min_duration_secs: 0,
        min_max_pps: 0.0,
        ..published
    };
    let strict = DetectorConfig {
        min_packets: 100,
        min_duration_secs: 300,
        min_max_pps: 2.0,
        ..published
    };
    let short_timeout = DetectorConfig {
        flow_timeout_secs: 60,
        ..published
    };
    for (label, cfg) in [
        ("published (25 pkts / 60 s / 0.5 pps / 300 s)", published),
        ("no filters", loose),
        ("strict (100 / 300 s / 2 pps)", strict),
        ("60 s flow timeout", short_timeout),
    ] {
        let (events, filtered) = run_with(cfg);
        println!("ablation[{label}]: {events} events, {filtered} flows filtered");
    }

    let mut g = c.benchmark_group("detector_ablation");
    g.sample_size(20);
    g.bench_function("published_thresholds", |b| b.iter(|| run_with(published)));
    g.bench_function("no_filters", |b| b.iter(|| run_with(loose)));
    g.bench_function("short_flow_timeout", |b| b.iter(|| run_with(short_timeout)));
    g.finish();
}

fn bench_sampling_ablation(c: &mut Criterion) {
    // AnchorDist inverse-CDF sampling vs Box-Muller log-normal rejection:
    // the generator's choice (anchors) is both faster and directly matches
    // published curves.
    let anchors = AnchorDist::new(&[
        (0.5, 0.0),
        (1.0, 0.50),
        (2.0, 0.70),
        (10.0, 0.83),
        (100.0, 0.96),
        (100_000.0, 1.0),
    ]);
    let mut g = c.benchmark_group("sampling_ablation");
    g.bench_function("anchor_inverse_cdf", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| anchors.sample(&mut rng))
    });
    g.bench_function("lognormal_rejection", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| lognormal_min(&mut rng, 454.0, 1.95, 60.0))
    });
    g.bench_function("uniform_baseline", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| rng.gen_range(0.5..100_000.0))
    });
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default();
    targets = bench_threshold_ablation, bench_sampling_ablation
}
criterion_main!(ablations);
