//! Rendering ground truth into byte-level observations.
//!
//! The renderer walks one day at a time (the harness feeds days in order)
//! and produces, for every ground-truth attack active on that day:
//!
//! * **telescope side** — backscatter [`PacketBatch`]es: per wall-clock
//!   minute of the attack, the victim's responses that landed in the
//!   darknet, with one minute designated as the attack's peak (realising
//!   exactly the generated peak rate, so the Moore et al. max-pps
//!   statistic recovers the calibrated intensity distribution);
//! * **honeypot side** — spoofed [`RequestBatch`]es to each honeypot on
//!   the attacker's reflector list, at the generated average rate.
//!
//! All packets are built through `dosscope-wire` and re-parsed by the
//! observers, so the byte path is exercised end to end. Rendering is
//! deterministic per (seed, day): each attack-day derives its own RNG.

use crate::model::{GroundTruth, GtKind, GtPorts};
use dosscope_amppot::{HoneypotId, RequestBatch};
use dosscope_telescope::{PacketBatch, Telescope};
use dosscope_types::{DayIndex, SharedBytes, SimTime, TimeRange, TransportProto, SECS_PER_MINUTE};
use dosscope_wire::builder;
use dosscope_wire::IpProtocol;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Day-by-day observation renderer.
pub struct Renderer<'a> {
    truth: &'a GroundTruth,
    telescope: Telescope,
    honeypot_addrs: Vec<Ipv4Addr>,
    seed: u64,
    /// Attack indices active per day.
    day_index: Vec<Vec<u32>>,
}

impl<'a> Renderer<'a> {
    /// Build a renderer for a ground truth, a darknet and the fleet's
    /// addresses.
    pub fn new(
        truth: &'a GroundTruth,
        telescope: Telescope,
        honeypot_addrs: Vec<Ipv4Addr>,
        seed: u64,
        days: u32,
    ) -> Renderer<'a> {
        let mut day_index = vec![Vec::new(); days as usize];
        for (i, a) in truth.attacks.iter().enumerate() {
            for d in a.window.days() {
                if let Some(list) = day_index.get_mut(d.0 as usize) {
                    list.push(i as u32);
                }
            }
        }
        Renderer {
            truth,
            telescope,
            honeypot_addrs,
            seed,
            day_index,
        }
    }

    fn attack_rng(&self, attack_idx: u32, day: DayIndex) -> SmallRng {
        SmallRng::seed_from_u64(
            self.seed ^ (attack_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (day.0 as u64) << 40,
        )
    }

    /// Render all backscatter batches for `day`, sorted by timestamp.
    pub fn telescope_day(&self, day: DayIndex) -> Vec<PacketBatch> {
        let Some(indices) = self.day_index.get(day.0 as usize) else {
            return Vec::new();
        };
        // Rough reservation: a short attack emits a handful of batches;
        // marathon ones grow the vector a few times — still far fewer
        // reallocations than starting empty.
        let mut out = Vec::with_capacity(indices.len() * 16);
        for &idx in indices {
            let attack = &self.truth.attacks[idx as usize];
            if let GtKind::RandomSpoofed {
                proto,
                ports,
                peak_pps,
            } = &attack.kind
            {
                let mut rng = self.attack_rng(idx, day);
                self.render_backscatter(
                    &mut out,
                    &mut rng,
                    attack.target,
                    attack.window,
                    day,
                    *proto,
                    ports,
                    *peak_pps,
                );
            }
        }
        out.sort_by_key(|b| b.ts);
        out
    }

    /// The wall minute designated as the attack's peak: the first minute
    /// fully contained in the window, or the start minute for very short
    /// attacks. Stable across days.
    fn peak_minute(window: TimeRange) -> u64 {
        let first_full = window.start.secs().div_ceil(SECS_PER_MINUTE);
        if (first_full + 1) * SECS_PER_MINUTE <= window.end.secs() {
            first_full
        } else {
            window.start.minute()
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn render_backscatter(
        &self,
        out: &mut Vec<PacketBatch>,
        rng: &mut SmallRng,
        victim: Ipv4Addr,
        window: TimeRange,
        day: DayIndex,
        proto: TransportProto,
        ports: &GtPorts,
        peak_pps: f64,
    ) {
        let day_range = TimeRange::new(day.start(), day.end());
        let Some(active) = window.intersect(&day_range) else {
            return;
        };
        let peak_minute = Self::peak_minute(window);
        let first_minute = active.start.minute();
        let last_minute = (active.end.secs() - 1) / SECS_PER_MINUTE;
        for minute in first_minute..=last_minute {
            let m_start = minute * SECS_PER_MINUTE;
            let m_end = m_start + SECS_PER_MINUTE;
            let overlap_start = m_start.max(active.start.secs());
            let overlap_end = m_end.min(active.end.secs());
            let overlap = overlap_end.saturating_sub(overlap_start);
            if overlap == 0 {
                continue;
            }
            let packets = if minute == peak_minute {
                // The peak minute realises the full generated rate
                // regardless of overlap, anchoring the observed max-pps.
                (peak_pps * SECS_PER_MINUTE as f64).round() as u64
            } else {
                let factor = rng.gen_range(0.45..0.85);
                probabilistic_round(rng, peak_pps * factor * overlap as f64)
            };
            if packets == 0 {
                continue;
            }
            // Split the minute's packets into up to three batches at
            // distinct seconds, each with its own spoofed darknet address.
            let n_batches = match packets {
                1..=2 => 1,
                3..=50 => 2,
                _ => 3,
            };
            let mut remaining = packets;
            for b in 0..n_batches {
                let count = if b == n_batches - 1 {
                    remaining
                } else {
                    (remaining / (n_batches - b) as u64).max(1)
                };
                remaining -= count;
                // Pin the stream to the event's true endpoints so the
                // detector recovers the generated duration (otherwise the
                // measured duration systematically undershoots and events
                // near the 60 s threshold get filtered).
                let ts = if b == 0 && overlap_start == window.start.secs() {
                    SimTime(overlap_start)
                } else if b == n_batches - 1 && overlap_end == window.end.secs() {
                    SimTime(overlap_end - 1)
                } else {
                    SimTime(overlap_start + rng.gen_range(0..overlap.max(1)))
                };
                let spoofed = self.random_darknet_addr(rng);
                let port = match ports {
                    GtPorts::Single(p) => *p,
                    GtPorts::Multi(list) => list[rng.gen_range(0..list.len())],
                    GtPorts::None => 0,
                };
                let bytes = match proto {
                    TransportProto::Tcp => {
                        if rng.gen_bool(0.75) {
                            builder::tcp_syn_ack(victim, port, spoofed, rng.gen(), rng.gen())
                        } else {
                            builder::tcp_rst(victim, port, spoofed, rng.gen(), rng.gen())
                        }
                    }
                    TransportProto::Udp => builder::icmp_dest_unreachable(
                        victim,
                        spoofed,
                        IpProtocol::Udp,
                        rng.gen_range(1024..65535),
                        port,
                        3,
                    ),
                    TransportProto::Icmp => {
                        builder::icmp_echo_reply(victim, spoofed, rng.gen(), rng.gen())
                    }
                    TransportProto::Other => {
                        builder::icmp_dest_unreachable(victim, spoofed, IpProtocol::Igmp, 0, 0, 2)
                    }
                };
                out.push(PacketBatch::repeated(ts, count as u32, bytes));
                if remaining == 0 {
                    break;
                }
            }
        }
    }

    fn random_darknet_addr(&self, rng: &mut SmallRng) -> Ipv4Addr {
        let prefix = self.telescope.prefix();
        prefix.addr_at(rng.gen_range(0..prefix.size()))
    }

    /// Render all honeypot request batches for `day`, sorted by timestamp.
    pub fn honeypot_day(&self, day: DayIndex) -> Vec<RequestBatch> {
        let Some(indices) = self.day_index.get(day.0 as usize) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(indices.len() * 16);
        for &idx in indices {
            let attack = &self.truth.attacks[idx as usize];
            if let GtKind::Reflection {
                protocol,
                fleet_rate,
                pots,
            } = &attack.kind
            {
                let mut rng = self.attack_rng(idx, day);
                self.render_requests(
                    &mut out,
                    &mut rng,
                    attack.target,
                    attack.window,
                    day,
                    *protocol,
                    *fleet_rate,
                    pots,
                );
            }
        }
        out.sort_by_key(|b| b.ts);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn render_requests(
        &self,
        out: &mut Vec<RequestBatch>,
        rng: &mut SmallRng,
        victim: Ipv4Addr,
        window: TimeRange,
        day: DayIndex,
        protocol: dosscope_types::ReflectionProtocol,
        fleet_rate: f64,
        pots: &[u8],
    ) {
        let day_range = TimeRange::new(day.start(), day.end());
        let Some(active) = window.intersect(&day_range) else {
            return;
        };
        let per_pot_rate = fleet_rate / pots.len().max(1) as f64;
        // One representative request per (attack-day, pot): the spoofed
        // source is the victim and the payload is protocol-fixed, so all
        // of a pot's batches today can share one encoded packet. The
        // source port is drawn per batch regardless (the RNG stream is
        // pinned by the determinism and golden tests) but only the first
        // draw is rendered; the fleet never reads the source port.
        let mut representatives: Vec<Option<SharedBytes>> = vec![None; pots.len()];
        let whole_event_today = day_range.start <= window.start && window.end <= day_range.end;
        let mut emitted_today = 0u64;
        let first_minute = active.start.minute();
        let last_minute = (active.end.secs() - 1) / SECS_PER_MINUTE;
        let mut last_batch: Option<usize> = None;
        for minute in first_minute..=last_minute {
            let m_start = minute * SECS_PER_MINUTE;
            let m_end = m_start + SECS_PER_MINUTE;
            let overlap_start = m_start.max(active.start.secs());
            let overlap_end = m_end.min(active.end.secs());
            let overlap = overlap_end.saturating_sub(overlap_start);
            if overlap == 0 {
                continue;
            }
            for (pi, &pot) in pots.iter().enumerate() {
                let jitter = rng.gen_range(0.7..1.3);
                let count = probabilistic_round(rng, per_pot_rate * overlap as f64 * jitter);
                if count == 0 {
                    continue;
                }
                // Pin the first pot's stream to the event endpoints (same
                // rationale as the telescope side).
                let ts = if pi == 0 && overlap_start == window.start.secs() {
                    SimTime(overlap_start)
                } else if pi == 0 && overlap_end == window.end.secs() {
                    SimTime(overlap_end - 1)
                } else {
                    SimTime(overlap_start + rng.gen_range(0..overlap.max(1)))
                };
                let pot_addr = self.honeypot_addrs[pot as usize % self.honeypot_addrs.len()];
                let src_port = rng.gen_range(1024..65535);
                let bytes = match &representatives[pi] {
                    Some(b) => b.clone(),
                    None => {
                        let b = SharedBytes::from(builder::reflection_request(
                            victim, src_port, pot_addr, protocol,
                        ));
                        representatives[pi] = Some(b.clone());
                        b
                    }
                };
                out.push(RequestBatch::repeated(
                    HoneypotId(pot),
                    ts,
                    count as u32,
                    bytes,
                ));
                emitted_today += count;
                last_batch = Some(out.len() - 1);
            }
        }
        // Same-day events must clear the 100-request scan filter the
        // generator budgeted for; jitter can undershoot on marginal
        // events, so top up the last batch.
        if whole_event_today && emitted_today > 0 && emitted_today <= 105 {
            if let Some(i) = last_batch {
                out[i].count += (106 - emitted_today) as u32;
            }
        }
    }
}

/// Round `x` to an integer such that the expectation equals `x` (floor,
/// plus one with probability frac(x)); keeps sparse low-rate streams
/// unbiased.
fn probabilistic_round(rng: &mut SmallRng, x: f64) -> u64 {
    let base = x.floor();
    let frac = x - base;
    base as u64 + u64::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Episode, GtAttack};
    use dosscope_types::{ReflectionProtocol, TimeRange};

    fn truth_with(attacks: Vec<GtAttack>) -> GroundTruth {
        GroundTruth {
            attacks,
            episodes: crate::model::EpisodeLog {
                wix_attack_day: DayIndex(0),
                enom_attack_day: DayIndex(0),
                marquee_days: [DayIndex(0); 4],
            },
        }
    }

    fn fleet_addrs() -> Vec<Ipv4Addr> {
        (0..24).map(|i| Ipv4Addr::new(198, 18, i, 53)).collect()
    }

    fn tele_attack(start: u64, dur: u64, peak: f64) -> GtAttack {
        GtAttack {
            target: "203.0.113.8".parse().unwrap(),
            window: TimeRange::with_duration(SimTime(start), dur),
            kind: GtKind::RandomSpoofed {
                proto: TransportProto::Tcp,
                ports: GtPorts::Single(80),
                peak_pps: peak,
            },
            joint_id: None,
            episode: Episode::Background,
        }
    }

    fn hp_attack(start: u64, dur: u64, rate: f64) -> GtAttack {
        GtAttack {
            target: "203.0.113.8".parse().unwrap(),
            window: TimeRange::with_duration(SimTime(start), dur),
            kind: GtKind::Reflection {
                protocol: ReflectionProtocol::Ntp,
                fleet_rate: rate,
                pots: vec![0, 1, 2, 3],
            },
            joint_id: None,
            episode: Episode::Background,
        }
    }

    #[test]
    fn telescope_rendering_realises_peak_rate() {
        let truth = truth_with(vec![tele_attack(1000, 600, 4.0)]);
        let r = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 2);
        let batches = r.telescope_day(DayIndex(0));
        assert!(!batches.is_empty());
        // Find per-minute totals; the peak minute must carry 240 packets.
        let mut per_minute = std::collections::HashMap::new();
        for b in &batches {
            *per_minute.entry(b.ts.minute()).or_insert(0u64) += b.count as u64;
        }
        let max = per_minute.values().max().copied().unwrap();
        assert_eq!(max, 240, "peak minute realises 4 pps × 60 s");
        // Batches are time-sorted.
        assert!(batches.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn telescope_rendering_detectable_end_to_end() {
        use dosscope_telescope::{run_rsdos, RsdosDetector};
        let truth = truth_with(vec![tele_attack(5000, 300, 2.0)]);
        let r = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 2);
        let batches = r.telescope_day(DayIndex(0));
        let detector = RsdosDetector::with_defaults(Telescope::default_slash8());
        let (events, _) = run_rsdos(detector, batches, 60);
        assert_eq!(events.len(), 1, "rendered attack is detected");
        let e = &events[0];
        assert_eq!(e.target, "203.0.113.8".parse::<Ipv4Addr>().unwrap());
        assert!(
            (e.intensity_pps - 2.0).abs() < 0.5,
            "recovered intensity ≈ 2 pps, got {}",
            e.intensity_pps
        );
        assert!(e.duration_secs() >= 240, "duration ≈ 300 s");
    }

    #[test]
    fn honeypot_rendering_detectable_end_to_end() {
        use dosscope_amppot::AmpPotFleet;
        let truth = truth_with(vec![hp_attack(2000, 400, 2.0)]);
        let r = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 2);
        let batches = r.honeypot_day(DayIndex(0));
        assert!(!batches.is_empty());
        let mut fleet = AmpPotFleet::standard();
        for b in &batches {
            fleet.ingest(b);
        }
        let (events, _) = fleet.finish();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].reflection_protocol(),
            Some(ReflectionProtocol::Ntp)
        );
        // ~800 requests over ~400 s.
        assert!(events[0].packets > 500, "got {}", events[0].packets);
    }

    #[test]
    fn marginal_event_tops_up_past_scan_filter() {
        // 0.3 req/s × 400 s = 120 expected, easily jittered below 100
        // without the top-up.
        for seed in 0..10 {
            let truth = truth_with(vec![hp_attack(2000, 400, 0.3)]);
            let r = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), seed, 2);
            let total: u64 = r
                .honeypot_day(DayIndex(0))
                .iter()
                .map(|b| b.count as u64)
                .sum();
            assert!(total > 100, "seed {seed}: total {total} <= 100");
        }
    }

    #[test]
    fn cross_day_event_renders_on_both_days() {
        let start = 86_400 - 600;
        let truth = truth_with(vec![tele_attack(start, 1200, 2.0)]);
        let r = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 3);
        let d0 = r.telescope_day(DayIndex(0));
        let d1 = r.telescope_day(DayIndex(1));
        assert!(!d0.is_empty() && !d1.is_empty());
        assert!(d0.iter().all(|b| b.ts.day() == DayIndex(0)));
        assert!(d1.iter().all(|b| b.ts.day() == DayIndex(1)));
        // Continuity: no gap > 300 s at the boundary (would split flows).
        let last0 = d0.iter().map(|b| b.ts.secs()).max().unwrap();
        let first1 = d1.iter().map(|b| b.ts.secs()).min().unwrap();
        assert!(first1 - last0 < 300, "gap {} too long", first1 - last0);
    }

    #[test]
    fn rendering_is_deterministic() {
        let truth = truth_with(vec![tele_attack(1000, 600, 4.0), hp_attack(2000, 400, 2.0)]);
        let r1 = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 2);
        let r2 = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 2);
        assert_eq!(r1.telescope_day(DayIndex(0)), r2.telescope_day(DayIndex(0)));
        assert_eq!(r1.honeypot_day(DayIndex(0)), r2.honeypot_day(DayIndex(0)));
    }

    #[test]
    fn backscatter_goes_into_darknet_only() {
        let truth = truth_with(vec![tele_attack(1000, 600, 4.0)]);
        let t = Telescope::default_slash8();
        let r = Renderer::new(&truth, t, fleet_addrs(), 7, 2);
        for b in r.telescope_day(DayIndex(0)) {
            let ip = dosscope_wire::Ipv4Packet::new_checked(b.bytes.as_slice()).unwrap();
            assert!(t.observes(ip.dst()), "{} outside the darknet", ip.dst());
        }
    }

    #[test]
    fn request_representatives_are_shared_per_pot() {
        let truth = truth_with(vec![hp_attack(2000, 3000, 2.0)]);
        let r = Renderer::new(&truth, Telescope::default_slash8(), fleet_addrs(), 7, 2);
        let batches = r.honeypot_day(DayIndex(0));
        let mut per_pot = std::collections::HashMap::new();
        for b in &batches {
            per_pot.entry(b.honeypot).or_insert_with(Vec::new).push(b);
        }
        for (_, list) in per_pot {
            assert!(list.len() > 1, "long attack yields many batches per pot");
            let first = list[0].bytes.as_slice().as_ptr();
            assert!(
                list.iter().all(|b| b.bytes.as_slice().as_ptr() == first),
                "all of a pot's batches share one representative allocation"
            );
        }
    }

    #[test]
    fn probabilistic_round_unbiased() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| probabilistic_round(&mut rng, 0.3)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }
}
