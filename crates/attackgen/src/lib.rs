//! # dosscope-attackgen
//!
//! The ground-truth side of the reproduction: a generative model of the
//! DoS ecosystem over the two-year window, calibrated against the paper's
//! published marginal distributions, plus renderers that turn ground-truth
//! attacks into the *byte-level observations* each measurement
//! infrastructure would record:
//!
//! * randomly spoofed attacks → backscatter packet batches into the
//!   telescope's /8 (1/256 of uniformly spoofed replies land there);
//! * reflection attacks → spoofed request batches at the honeypots on the
//!   attacker's reflector list;
//! * attacks on Web hosting → DPS migrations applied to the DNS zone
//!   (intensity-dependent delays, platform-level moves).
//!
//! The analysis side (`dosscope-core`) never links this crate; it works
//! exclusively on detector outputs and measurement data sets, mirroring
//! the paper's separation between the Internet and the observatories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod botnets;
pub mod config;
pub mod dist;
pub mod migrate;
pub mod model;
pub mod render;

pub use config::{Calibration, GenConfig};
pub use migrate::{GtMigration, MigrationModel, MigrationOutcome};
pub use model::{Episode, Generator, GroundTruth, GtAttack, GtKind, GtPorts};
pub use render::Renderer;
