//! Ground-truth generation: the simulated DoS ecosystem.
//!
//! The generator produces a list of [`GtAttack`]s — who attacks which IP,
//! when, how, and how hard — calibrated against the paper's published
//! marginals (see [`crate::config`]). The measurement pipelines never see
//! this ground truth; they see only the packet streams rendered from it by
//! [`crate::render`].

use crate::config::{Calibration, GenConfig};
use crate::dist::{lognormal_min, repeat_count, weighted_index};
use dosscope_dns::synth::{HostingSlot, SynthOutput};
use dosscope_geo::AsRegistry;
use dosscope_types::{
    CountryCode, DayIndex, ReflectionProtocol, SimTime, TimeRange, TransportProto, SECS_PER_DAY,
    SECS_PER_HOUR,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Target-port structure of a ground-truth randomly spoofed attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GtPorts {
    /// One port.
    Single(u16),
    /// Several ports (2..=10 in practice).
    Multi(Vec<u16>),
    /// Port-less flood (ICMP/Other).
    None,
}

/// Vector-specific ground truth.
#[derive(Debug, Clone, PartialEq)]
pub enum GtKind {
    /// A direct flood with uniformly random spoofed sources. `peak_pps`
    /// is the *telescope-observed* peak rate the renderer must realise
    /// (victim-side rate is 256× that for a /8 darknet).
    RandomSpoofed {
        /// Flood IP protocol.
        proto: TransportProto,
        /// Target ports.
        ports: GtPorts,
        /// Peak backscatter rate at the telescope (pps).
        peak_pps: f64,
    },
    /// A reflection attack abusing some of the fleet's honeypots.
    Reflection {
        /// Abused protocol.
        protocol: ReflectionProtocol,
        /// Average request rate summed over the abused honeypots (req/s).
        fleet_rate: f64,
        /// Which honeypots (fleet indices) the attacker's reflector list
        /// includes.
        pots: Vec<u8>,
    },
}

/// Why an attack exists in the script — ordinary background traffic or one
/// of the named episodes the paper investigates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Episode {
    /// Ordinary ecosystem background.
    Background,
    /// One of the four marquee peak days of Figure 7 (index 0..4).
    MarqueePeak(u8),
    /// The long, intense attack on the Wix platform (drives the
    /// next-day platform migration of Figure 11).
    WixTakedown,
    /// The eNom attack whose migration lags 101 days (Section 6).
    EnomSlowBurn,
}

/// One ground-truth attack.
#[derive(Debug, Clone)]
pub struct GtAttack {
    /// Victim address.
    pub target: Ipv4Addr,
    /// Active window.
    pub window: TimeRange,
    /// Vector detail.
    pub kind: GtKind,
    /// Joint-incident id: attacks sharing a `Some(id)` hit the same target
    /// with overlapping windows from both infrastructures.
    pub joint_id: Option<u32>,
    /// Episode tag.
    pub episode: Episode,
}

impl GtAttack {
    /// Whether this is a telescope-observable (randomly spoofed) attack.
    pub fn is_random_spoofed(&self) -> bool {
        matches!(self.kind, GtKind::RandomSpoofed { .. })
    }
}

/// Scripted-episode metadata the migration model needs.
#[derive(Debug, Clone)]
pub struct EpisodeLog {
    /// Day of the Wix takedown attack.
    pub wix_attack_day: DayIndex,
    /// Day of the eNom attack.
    pub enom_attack_day: DayIndex,
    /// The four marquee peak days.
    pub marquee_days: [DayIndex; 4],
}

/// The generated ground truth.
pub struct GroundTruth {
    /// All attacks, sorted by window start.
    pub attacks: Vec<GtAttack>,
    /// Scripted-episode metadata.
    pub episodes: EpisodeLog,
}

impl GroundTruth {
    /// Attacks of the telescope-observable kind.
    pub fn telescope_attacks(&self) -> impl Iterator<Item = &GtAttack> {
        self.attacks.iter().filter(|a| a.is_random_spoofed())
    }

    /// Attacks of the honeypot-observable kind.
    pub fn honeypot_attacks(&self) -> impl Iterator<Item = &GtAttack> {
        self.attacks.iter().filter(|a| !a.is_random_spoofed())
    }
}

/// The generator.
pub struct Generator<'a> {
    config: GenConfig,
    cal: Calibration,
    registry: &'a AsRegistry,
    slots: &'a [HostingSlot],
    rng: SmallRng,
    day_weights: Vec<f64>,
    day_cum: Vec<f64>,
    /// Telescope targets already used (for the cross-data-set population).
    tele_targets: Vec<Ipv4Addr>,
    /// Slot IPs per mega-organisation name (for scripted episodes).
    org_slots: Vec<(String, Vec<Ipv4Addr>)>,
    /// "Permanently attacked" slot indices: DPS scrubbing infrastructure
    /// and the CNAME-fronted platforms, which real measurements show under
    /// attack almost daily (the DOSarrest IP tops the paper's co-hosting
    /// bins).
    perma_slots: Vec<usize>,
    /// Remaining DPS customer IPs: covered a handful of times over the
    /// window (so nearly every preexisting customer is attacked at least
    /// once, with a small per-site count).
    dps_lite_slots: Vec<usize>,
    /// Big-hoster slot indices (capacity above the mega threshold, not
    /// perma): hit regularly but far less often.
    mega_slots: Vec<usize>,
    /// Sweep cursors: attackers enumerate known scrubbing/hoster
    /// infrastructure, so coverage over these tiers is near-uniform
    /// rather than a high-variance random draw.
    lite_cursor: usize,
    mega_cursor: usize,
    /// First index of the sub-mega tail in the capacity-sorted inventory.
    tail_start: usize,
    /// Mail/NS infrastructure addresses (occasionally attacked — the
    /// paper observed hoster mail servers under frequent attack).
    infra_ips: Vec<Ipv4Addr>,
    marquee_days: [DayIndex; 4],
}

/// The paper's four marquee peak dates as day indices from 2015-03-01:
/// 2015-03-12, 2015-10-10, 2016-11-04, 2017-02-25.
pub const MARQUEE_DAYS: [u32; 4] = [11, 223, 614, 726];

impl<'a> Generator<'a> {
    /// Create a generator over a registry and the hosting-slot inventory
    /// from the DNS synthesis.
    pub fn new(
        config: GenConfig,
        cal: Calibration,
        registry: &'a AsRegistry,
        synth: &'a SynthOutput,
    ) -> Generator<'a> {
        let rng = SmallRng::seed_from_u64(config.seed);
        let marquee_days = MARQUEE_DAYS.map(|d| DayIndex(d.min(config.days - 1)));
        // Resolve slot IPs per organisation once, for the scripted
        // episodes (marquee peaks, Wix, eNom).
        let mut org_slots: std::collections::HashMap<String, Vec<Ipv4Addr>> = Default::default();
        for slot in &synth.slots {
            let name = synth.catalog.get(slot.org).name.clone();
            org_slots.entry(name).or_default().push(slot.ip);
        }
        for ips in org_slots.values_mut() {
            ips.sort_unstable();
            ips.dedup();
        }
        // Slot tiers for web targeting. The perma tier — large scrubbing
        // and parking IPs under near-daily attack — models the paper's
        // top co-hosting bins (the DOSarrest IP tops the 1M+ group); it
        // must stay a small share of the namespace so Figure 9's "most
        // attacked sites see <=5 attacks" holds.
        use dosscope_dns::OrgRole;
        // Orgs starring in the marquee episodes are attacked *on those
        // days* (plus occasional tail picks); keeping them out of the
        // steady background sweep keeps their sites' attack counts low
        // (Figure 9) while still producing the Figure 7 peaks.
        const MARQUEE_ORGS: &[&str] = &[
            "GoDaddy",
            "OVH",
            "Squarespace",
            "Endurance (EIG)",
            "Network Solutions",
            "Automattic (WordPress)",
        ];
        let mut perma_slots = Vec::new();
        let mut dps_lite_slots = Vec::new();
        let mut mega_slots = Vec::new();
        for (i, slot) in synth.slots.iter().enumerate() {
            let org = synth.catalog.get(slot.org);
            match org.role {
                OrgRole::Dps | OrgRole::Reseller if slot.capacity >= 900 => {
                    perma_slots.push(i)
                }
                OrgRole::Dps => dps_lite_slots.push(i),
                _ if slot.capacity >= 150 && !MARQUEE_ORGS.contains(&org.name.as_str()) => {
                    mega_slots.push(i)
                }
                _ => {}
            }
        }
        let mut g = Generator {
            config,
            cal,
            registry,
            slots: &synth.slots,
            rng,
            day_weights: Vec::new(),
            day_cum: Vec::new(),
            tele_targets: Vec::new(),
            perma_slots,
            dps_lite_slots,
            mega_slots,
            lite_cursor: 0,
            mega_cursor: 0,
            tail_start: synth
                .slots
                .iter()
                .position(|s| s.capacity < 150)
                .unwrap_or(0),
            infra_ips: synth
                .zone
                .infra()
                .iter()
                .flat_map(|i| i.mx_ips.iter().chain(&i.ns_ips).copied())
                .collect(),
            org_slots: {
                // HashMap order is nondeterministic; sort for reproducible
                // episode generation.
                let mut v: Vec<_> = org_slots.into_iter().collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
            marquee_days,
        };
        g.build_day_curve();
        g
    }

    /// Build the daily activity curve: baseline + weekly and seasonal
    /// wiggle + random spikes and plateaus (the structure visible in
    /// Figure 1) + the marquee days.
    fn build_day_curve(&mut self) {
        let days = self.config.days as usize;
        let mut w = vec![0.0f64; days];
        for (d, slot) in w.iter_mut().enumerate() {
            let day = d as f64;
            *slot = 1.0
                + 0.12 * (2.0 * std::f64::consts::PI * day / 7.0).sin()
                + 0.10 * (2.0 * std::f64::consts::PI * day / 183.0).sin();
        }
        // Random spikes (1-3 days) and plateaus (5-15 days).
        for _ in 0..20 {
            let at = self.rng.gen_range(0..days);
            let len = self.rng.gen_range(1..=3usize);
            let boost = self.rng.gen_range(1.6..3.2);
            for slot in w.iter_mut().skip(at).take(len) {
                *slot *= boost;
            }
        }
        for _ in 0..6 {
            let at = self.rng.gen_range(0..days);
            let len = self.rng.gen_range(5..=15usize);
            let boost = self.rng.gen_range(1.2..1.6);
            for slot in w.iter_mut().skip(at).take(len) {
                *slot *= boost;
            }
        }
        for d in self.marquee_days {
            if let Some(slot) = w.get_mut(d.0 as usize) {
                *slot *= 2.2;
            }
        }
        let mut cum = Vec::with_capacity(days);
        let mut acc = 0.0;
        for &x in &w {
            acc += x;
            cum.push(acc);
        }
        self.day_weights = w;
        self.day_cum = cum;
    }

    fn sample_day(&mut self) -> DayIndex {
        let total = *self.day_cum.last().expect("non-empty curve");
        let x = self.rng.gen_range(0.0..total);
        let idx = self.day_cum.partition_point(|&c| c < x);
        DayIndex(idx.min(self.day_cum.len() - 1) as u32)
    }

    fn sample_start(&mut self) -> SimTime {
        let day = self.sample_day();
        SimTime::from_day_offset(day, self.rng.gen_range(0..SECS_PER_DAY))
    }

    /// Sample a generic target by per-data-set country weights, falling
    /// back to any registry address when a listed country is missing from
    /// the plan.
    fn sample_country_target(&mut self, table: &[(&'static str, f64)]) -> Ipv4Addr {
        let listed: f64 = table.iter().map(|(_, w)| w).sum();
        let x: f64 = self.rng.gen();
        if x < listed {
            let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
            let i = weighted_index(&mut self.rng, &weights);
            let cc = CountryCode::new(table[i].0);
            if let Some(addr) = self.registry.sample_addr_in_country(&mut self.rng, cc) {
                return addr;
            }
        }
        // Residual: any *unlisted* country, proportional to address-space
        // usage (AS pick); listed countries keep exactly their table
        // weight, so e.g. the US is not re-drawn here.
        let ases = self.registry.ases();
        for _ in 0..64 {
            let a = &ases[self.rng.gen_range(0..ases.len())];
            if !table.iter().any(|(cc, _)| a.country == CountryCode::new(cc)) {
                return a.sample_addr(&mut self.rng);
            }
        }
        let a = &ases[self.rng.gen_range(0..ases.len())];
        a.sample_addr(&mut self.rng)
    }

    fn sample_web_slot(&mut self) -> &'a HostingSlot {
        // Three tiers: DPS/platform infrastructure is under near-daily
        // attack; big hosters are hit regularly; the long tail of small
        // hosting IPs absorbs the rest (and dominates unique-IP counts,
        // Figure 6).
        let x: f64 = self.rng.gen();
        if x < 0.46 && !self.perma_slots.is_empty() {
            let i = self.perma_slots[self.rng.gen_range(0..self.perma_slots.len())];
            return &self.slots[i];
        }
        if x < 0.55 && !self.dps_lite_slots.is_empty() {
            // Sweep with a 30 % random component.
            let i = if self.rng.gen_bool(0.7) {
                self.lite_cursor = (self.lite_cursor + 1) % self.dps_lite_slots.len();
                self.dps_lite_slots[self.lite_cursor]
            } else {
                self.dps_lite_slots[self.rng.gen_range(0..self.dps_lite_slots.len())]
            };
            return &self.slots[i];
        }
        if x < 0.595 && !self.mega_slots.is_empty() {
            let i = if self.rng.gen_bool(0.7) {
                self.mega_cursor = (self.mega_cursor + 1) % self.mega_slots.len();
                self.mega_slots[self.mega_cursor]
            } else {
                self.mega_slots[self.rng.gen_range(0..self.mega_slots.len())]
            };
            return &self.slots[i];
        }
        // Tail: the long tail of sub-mega hosting IPs. Half the picks are
        // uniform (the sea of single-site IPs that dominates Figure 6's
        // unique-IP counts), half are quadratically biased toward the
        // bigger mid-size hosters. Mega and marquee slots are excluded —
        // their exposure is the tiers above plus the scripted episodes.
        let start = self.tail_start;
        let n = self.slots.len() - start;
        let idx = if self.rng.gen_bool(0.5) {
            start + self.rng.gen_range(0..n)
        } else {
            let u: f64 = self.rng.gen();
            start + (((u * u) * n as f64) as usize).min(n - 1)
        };
        &self.slots[idx]
    }

    // ---- telescope-side sampling --------------------------------------

    fn sample_tcp_port(&mut self, web_target: bool) -> u16 {
        let (table, other) = if web_target {
            (
                &self.cal.telescope.web_tcp_port_table,
                self.cal.telescope.web_tcp_port_other,
            )
        } else {
            (
                &self.cal.telescope.tcp_port_table,
                self.cal.telescope.tcp_port_other,
            )
        };
        let mut weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
        weights.push(other);
        let i = weighted_index(&mut self.rng, &weights);
        if i < table.len() {
            table[i].0
        } else {
            self.rng.gen_range(1..=65535)
        }
    }

    fn sample_udp_port(&mut self) -> u16 {
        let table = &self.cal.telescope.udp_port_table;
        let mut weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
        weights.push(self.cal.telescope.udp_port_other);
        let i = weighted_index(&mut self.rng, &weights);
        if i < table.len() {
            table[i].0
        } else {
            self.rng.gen_range(1..=65535)
        }
    }

    fn sample_ports(&mut self, proto: TransportProto, web_target: bool, single_prob: f64) -> GtPorts {
        match proto {
            TransportProto::Icmp | TransportProto::Other => GtPorts::None,
            _ => {
                let single = self.rng.gen_bool(single_prob);
                let pick = |g: &mut Self| match proto {
                    TransportProto::Tcp => g.sample_tcp_port(web_target),
                    _ => g.sample_udp_port(),
                };
                if single {
                    GtPorts::Single(pick(self))
                } else {
                    let n = self.rng.gen_range(2..=10usize);
                    let mut ports: Vec<u16> = (0..n).map(|_| pick(self)).collect();
                    ports.sort_unstable();
                    ports.dedup();
                    if ports.len() < 2 {
                        ports.push(ports[0].wrapping_add(1).max(1));
                    }
                    GtPorts::Multi(ports)
                }
            }
        }
    }

    fn is_perma_ip(&self, ip: Ipv4Addr) -> bool {
        self.perma_slots.iter().any(|&i| self.slots[i].ip == ip)
    }

    fn telescope_kind(&mut self, web_target: bool, joint: bool) -> GtKind {
        let weights = if web_target {
            self.cal.telescope.web_proto_weights
        } else {
            self.cal.telescope.generic_proto_weights
        };
        let proto = TransportProto::ALL[weighted_index(&mut self.rng, &weights)];
        let single_prob = if joint {
            self.cal.telescope.joint_single_port_prob
        } else {
            self.cal.telescope.single_port_prob
        };
        let mut ports = self.sample_ports(proto, web_target, single_prob);
        if joint {
            // Joint attacks skew hard toward gaming: 27015/UDP rises to
            // 53 % of single-port UDP, HTTP to 50.23 % of single-port TCP.
            if let GtPorts::Single(p) = &mut ports {
                match proto {
                    TransportProto::Udp if self.rng.gen_bool(0.40) => *p = 27015,
                    TransportProto::Tcp if self.rng.gen_bool(0.07) => *p = 80,
                    _ => {}
                }
            }
        }
        let peak_pps = self.cal.telescope.intensity.sample(&mut self.rng);
        GtKind::RandomSpoofed {
            proto,
            ports,
            peak_pps,
        }
    }

    fn telescope_duration(&mut self) -> u64 {
        let d = lognormal_min(
            &mut self.rng,
            self.cal.telescope.duration_median,
            self.cal.telescope.duration_sigma,
            60.0,
        );
        (d as u64).clamp(60, 5 * SECS_PER_DAY / 2)
    }

    // ---- honeypot-side sampling ---------------------------------------

    fn honeypot_kind(&mut self, web_target: bool, joint: bool) -> GtKind {
        let weights = if joint {
            self.cal.honeypot.joint_protocol_weights
        } else if web_target {
            self.cal.honeypot.web_protocol_weights
        } else {
            self.cal.honeypot.protocol_weights
        };
        let pi = weighted_index(&mut self.rng, &weights);
        let protocol = ReflectionProtocol::ALL[pi];
        let rate_factor = self.cal.honeypot.protocol_rate_factor[pi];
        let fleet_rate = self.cal.honeypot.intensity.sample(&mut self.rng) * rate_factor;
        let (lo, hi) = self.cal.honeypot.pots_per_attack;
        let n_pots = self.rng.gen_range(lo..=hi);
        let mut pots: Vec<u8> = (0..24u8).collect();
        // Partial Fisher-Yates for a random subset.
        for i in 0..n_pots as usize {
            let j = self.rng.gen_range(i..24);
            pots.swap(i, j);
        }
        pots.truncate(n_pots as usize);
        pots.sort_unstable();
        GtKind::Reflection {
            protocol,
            fleet_rate,
            pots,
        }
    }

    fn honeypot_duration(&mut self, fleet_rate: f64) -> u64 {
        let mut d = lognormal_min(
            &mut self.rng,
            self.cal.honeypot.duration_median,
            self.cal.honeypot.duration_sigma,
            20.0,
        ) as u64;
        d = d.min(SECS_PER_DAY - 400);
        // The 100-request scan filter must pass: stretch short-and-slow
        // events (the published duration distribution is post-filter).
        while (fleet_rate * d as f64) <= 110.0 {
            d = (d * 2).max(60);
        }
        d.min(SECS_PER_DAY - 400)
    }

    // ---- main generation ----------------------------------------------

    /// Generate the full ground truth.
    pub fn generate(mut self) -> GroundTruth {
        let mut attacks: Vec<GtAttack> = Vec::new();
        let joint_budget = self.config.joint_incidents();
        let tele_budget = self.config.telescope_events().saturating_sub(joint_budget);
        let hp_budget = self.config.honeypot_events().saturating_sub(joint_budget);

        self.generate_telescope_background(tele_budget, &mut attacks);
        self.generate_honeypot_background(hp_budget, &mut attacks);
        self.generate_joint(joint_budget, &mut attacks);
        let episodes = self.generate_episodes(&mut attacks);

        attacks.sort_by_key(|a| (a.window.start, a.target));
        GroundTruth { attacks, episodes }
    }

    fn chain_starts(&mut self, k: u32) -> Vec<SimTime> {
        // A target's repeat attacks cluster in time: the first start is
        // drawn from the daily curve, subsequent ones follow at log-normal
        // gaps (median half a day), which yields both same-day repeats and
        // week-later follow-ups.
        let mut starts = Vec::with_capacity(k as usize);
        let mut t = self.sample_start();
        let horizon = self.config.days as u64 * SECS_PER_DAY;
        for _ in 0..k {
            if t.secs() >= horizon {
                break;
            }
            starts.push(t);
            let gap = lognormal_min(&mut self.rng, 43_200.0, 1.4, 900.0) as u64;
            t = t.add_secs(gap);
        }
        starts
    }

    fn generate_telescope_background(&mut self, budget: u64, out: &mut Vec<GtAttack>) {
        // Split the budget so the Web share holds at *event* level —
        // generic targets chain far more repeat events than hosting IPs,
        // so a per-pick coin would dilute the Web share threefold.
        let web_budget = (budget as f64 * self.config.telescope_web_fraction).round() as u64;
        self.telescope_stream(web_budget, true, out);
        self.telescope_stream(budget - web_budget, false, out);
    }

    fn telescope_stream(&mut self, budget: u64, web: bool, out: &mut Vec<GtAttack>) {
        let mut emitted = 0u64;
        while emitted < budget {
            let target = if web {
                self.sample_web_slot().ip
            } else if !self.infra_ips.is_empty() && self.rng.gen_bool(0.015) {
                // Shared mail/DNS infrastructure takes a small but steady
                // share of direct attacks.
                self.infra_ips[self.rng.gen_range(0..self.infra_ips.len())]
            } else {
                let table = self.cal.countries.telescope.clone();
                self.sample_country_target(&table)
            };
            self.tele_targets.push(target);
            // Co-hosted IPs see repeat attacks through independent
            // re-picks; individual attack chains on them stay short so
            // per-site attack counts keep the Figure 9 shape.
            let k = if web {
                repeat_count(&mut self.rng, 2.8, 2)
            } else {
                repeat_count(&mut self.rng, self.config.telescope_repeat_alpha, 200)
            }
            .min((budget - emitted) as u32);
            let perma_target = web && self.is_perma_ip(target);
            for start in self.chain_starts(k) {
                let mut kind = self.telescope_kind(web, false);
                if perma_target {
                    // Scrubbing infrastructure absorbs attacks: the
                    // backscatter observed for protected targets stays in
                    // the low-to-medium range.
                    if let GtKind::RandomSpoofed { peak_pps, .. } = &mut kind {
                        *peak_pps = peak_pps.min(
                            self.cal.telescope.intensity.quantile(0.93),
                        );
                    }
                }
                let duration = self.telescope_duration();
                out.push(GtAttack {
                    target,
                    window: TimeRange::with_duration(start, duration),
                    kind,
                    joint_id: None,
                    episode: Episode::Background,
                });
                emitted += 1;
            }
        }
    }

    fn generate_honeypot_background(&mut self, budget: u64, out: &mut Vec<GtAttack>) {
        let web_budget = (budget as f64 * self.config.honeypot_web_fraction).round() as u64;
        self.honeypot_stream(web_budget, true, out);
        self.honeypot_stream(budget - web_budget, false, out);
    }

    fn honeypot_stream(&mut self, budget: u64, web: bool, out: &mut Vec<GtAttack>) {
        let mut emitted = 0u64;
        while emitted < budget {
            let cross = !web
                && !self.tele_targets.is_empty()
                && self.rng.gen_bool(self.config.cross_dataset_target_prob);
            let target = if cross {
                self.tele_targets[self.rng.gen_range(0..self.tele_targets.len())]
            } else if web {
                self.sample_web_slot().ip
            } else if !self.infra_ips.is_empty() && self.rng.gen_bool(0.012) {
                self.infra_ips[self.rng.gen_range(0..self.infra_ips.len())]
            } else {
                let table = self.cal.countries.honeypot.clone();
                self.sample_country_target(&table)
            };
            let k = if web {
                repeat_count(&mut self.rng, 2.8, 3)
            } else {
                repeat_count(&mut self.rng, self.config.honeypot_repeat_alpha, 60)
            }
            .min((budget - emitted) as u32);
            let perma_target = self.is_perma_ip(target);
            for start in self.chain_starts(k) {
                let mut kind = self.honeypot_kind(web, false);
                if perma_target {
                    if let GtKind::Reflection { fleet_rate, .. } = &mut kind {
                        *fleet_rate =
                            fleet_rate.min(self.cal.honeypot.intensity.quantile(0.93));
                    }
                }
                let fleet_rate = match &kind {
                    GtKind::Reflection { fleet_rate, .. } => *fleet_rate,
                    GtKind::RandomSpoofed { .. } => unreachable!("honeypot kind"),
                };
                let duration = self.honeypot_duration(fleet_rate);
                out.push(GtAttack {
                    target,
                    window: TimeRange::with_duration(start, duration),
                    kind,
                    joint_id: None,
                    episode: Episode::Background,
                });
                emitted += 1;
            }
        }
    }

    fn sample_joint_target(&mut self) -> Ipv4Addr {
        // AS bias first (OVH, China Telecom, China Unicom).
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        let targets = self.cal.joint_as.targets.clone();
        for (name, p) in targets {
            acc += p;
            if x < acc {
                if let Some(info) = self.registry.by_name(name) {
                    return info.sample_addr(&mut self.rng);
                }
            }
        }
        let table = self.cal.countries.joint.clone();
        self.sample_country_target(&table)
    }

    fn generate_joint(&mut self, budget: u64, out: &mut Vec<GtAttack>) {
        for id in 0..budget {
            let target = self.sample_joint_target();
            let start = self.sample_start();
            let tele_kind = self.telescope_kind(false, true);
            let tele_dur = self.telescope_duration();
            let hp_kind = self.honeypot_kind(false, true);
            let fleet_rate = match &hp_kind {
                GtKind::Reflection { fleet_rate, .. } => *fleet_rate,
                GtKind::RandomSpoofed { .. } => unreachable!("honeypot kind"),
            };
            let hp_dur = self.honeypot_duration(fleet_rate);
            // The honeypot side starts inside the telescope window so the
            // two provably overlap.
            let offset = self.rng.gen_range(0..tele_dur.max(2) / 2);
            out.push(GtAttack {
                target,
                window: TimeRange::with_duration(start, tele_dur),
                kind: tele_kind,
                joint_id: Some(id as u32),
                episode: Episode::Background,
            });
            out.push(GtAttack {
                target,
                window: TimeRange::with_duration(start.add_secs(offset), hp_dur),
                kind: hp_kind,
                joint_id: Some(id as u32),
                episode: Episode::Background,
            });
        }
    }

    /// Scripted episodes: the four marquee hoster-peak days, the Wix
    /// takedown and the eNom slow burn.
    fn generate_episodes(&mut self, out: &mut Vec<GtAttack>) -> EpisodeLog {
        // Which mega-parties star on which marquee day (Section 5).
        let casts: [&[&str]; 4] = [
            &["GoDaddy", "Automattic (WordPress)", "CenturyLink"],
            &["Squarespace", "OVH", "AWS Reseller Parking"],
            &["GoDaddy", "Wix", "Squarespace"],
            &["GoDaddy", "OVH", "Network Solutions", "Endurance (EIG)"],
        ];
        for (mi, day) in self.marquee_days.into_iter().enumerate() {
            let cast = casts[mi];
            for slot in self.slots_of_orgs(cast) {
                // The paper observes *sets* of an org's IPs targeted (e.g.
                // "about twenty" of GoDaddy's), not necessarily all.
                if !self.rng.gen_bool(0.5) {
                    continue;
                }
                // One medium/low telescope event per slot IP, plus a
                // honeypot event on about half of them ("many targets
                // appear as joint attacks... with low to medium
                // intensities").
                let start = SimTime::from_day_offset(day, self.rng.gen_range(0..SECS_PER_DAY / 2));
                let mut kind = self.telescope_kind(true, false);
                if let GtKind::RandomSpoofed { peak_pps, .. } = &mut kind {
                    // Day 3 (2016-11-04) is the high-intensity one.
                    let q = if mi == 2 {
                        self.rng.gen_range(0.97..0.999)
                    } else {
                        self.rng.gen_range(0.55..0.92)
                    };
                    *peak_pps = self.cal.telescope.intensity.quantile(q);
                }
                let duration = self.telescope_duration().min(6 * SECS_PER_HOUR);
                out.push(GtAttack {
                    target: slot,
                    window: TimeRange::with_duration(start, duration),
                    kind,
                    joint_id: None,
                    episode: Episode::MarqueePeak(mi as u8),
                });
                if self.rng.gen_bool(0.3) {
                    let kind = self.honeypot_kind(true, true);
                    let fleet_rate = match &kind {
                        GtKind::Reflection { fleet_rate, .. } => *fleet_rate,
                        GtKind::RandomSpoofed { .. } => unreachable!(),
                    };
                    let dur = self.honeypot_duration(fleet_rate).min(6 * SECS_PER_HOUR);
                    out.push(GtAttack {
                        target: slot,
                        window: TimeRange::with_duration(start.add_secs(120), dur),
                        kind,
                        joint_id: None,
                        episode: Episode::MarqueePeak(mi as u8),
                    });
                }
            }
        }

        // Wix takedown: an NTP reflection attack ≥ 4 h at top intensity on
        // every Wix slot, on marquee day 3 (2016-11-04).
        let wix_day = self.marquee_days[2];
        for slot in self.slots_of_orgs(&["Wix"]) {
            let start = SimTime::from_day_offset(wix_day, 10 * SECS_PER_HOUR);
            // Above any background sample (anchor max 100 k × NTP factor):
            // the attack the paper singles out as driving the next-day
            // platform move tops the intensity distribution.
            let rate = 220_000.0;
            out.push(GtAttack {
                target: slot,
                window: TimeRange::with_duration(start, 5 * SECS_PER_HOUR),
                kind: GtKind::Reflection {
                    protocol: ReflectionProtocol::Ntp,
                    fleet_rate: rate,
                    pots: (0..12).collect(),
                },
                joint_id: None,
                episode: Episode::WixTakedown,
            });
        }

        // A sprinkle of long (≥ 4 h) reflection attacks against mid-size
        // hosting IPs spread over the window: the organic component of
        // the Figure 11 population (long attacks against well-co-hosted
        // targets whose owners migrate urgently).
        let mut sprinkle_slots = self.mega_slots.clone();
        for i in 0..10u32 {
            if sprinkle_slots.is_empty() {
                break;
            }
            let slot_idx =
                sprinkle_slots.swap_remove(self.rng.gen_range(0..sprinkle_slots.len()));
            let target = self.slots[slot_idx].ip;
            let day = DayIndex((i * self.config.days / 10 + self.rng.gen_range(0..20u32))
                .min(self.config.days - 1));
            let start = SimTime::from_day_offset(day, self.rng.gen_range(0..SECS_PER_DAY / 3));
            let q = self.rng.gen_range(0.90..0.99);
            out.push(GtAttack {
                target,
                window: TimeRange::with_duration(
                    start,
                    self.rng.gen_range(4 * SECS_PER_HOUR..9 * SECS_PER_HOUR),
                ),
                kind: GtKind::Reflection {
                    protocol: ReflectionProtocol::Ntp,
                    fleet_rate: self.cal.honeypot.intensity.quantile(q),
                    pots: (0..10).collect(),
                },
                joint_id: None,
                episode: Episode::Background,
            });
        }

        // eNom: a long but only mid-intensity CharGen attack around day
        // 300; the migration model delays the hoster's move by 101 days.
        let enom_day = DayIndex(300.min(self.config.days - 1));
        for slot in self.slots_of_orgs(&["eNom"]) {
            let start = SimTime::from_day_offset(enom_day, 3 * SECS_PER_HOUR);
            out.push(GtAttack {
                target: slot,
                window: TimeRange::with_duration(start, 5 * SECS_PER_HOUR),
                kind: GtKind::Reflection {
                    protocol: ReflectionProtocol::CharGen,
                    fleet_rate: self.cal.honeypot.intensity.quantile(0.80),
                    pots: (0..6).collect(),
                },
                joint_id: None,
                episode: Episode::EnomSlowBurn,
            });
        }

        EpisodeLog {
            wix_attack_day: wix_day,
            enom_attack_day: enom_day,
            marquee_days: self.marquee_days,
        }
    }

    /// The slot IPs of the named organisations (resolved through the
    /// hosting inventory built by the DNS synthesis).
    fn slots_of_orgs(&mut self, names: &[&str]) -> Vec<Ipv4Addr> {
        // Slot → org resolution goes through the synth catalog; the
        // generator only stored slots, so match by capacity-sorted head
        // lookup provided at construction time.
        self.org_slots
            .iter()
            .filter(|(name, _)| names.contains(&name.as_str()))
            .flat_map(|(_, ips)| ips.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    // Tests live in generator_tests.rs (they need the full wiring).
}
