//! The migration behavioural model: how Web sites (and whole hosting
//! platforms) move to DDoS protection services in response to attacks.
//!
//! This is the ground-truth *behaviour* the paper's Section 6 measures
//! back out of the data. The model encodes:
//!
//! * a spontaneous baseline — sites migrate without any (observed) attack
//!   (the paper's 3.32 % of never-attacked sites);
//! * attack-triggered migrations whose probability rises mildly with
//!   intensity and whose *delay* shrinks drastically with intensity
//!   (Figure 10: 80.7 % of top-0.1 %-intensity victims migrate within a
//!   day vs 23.2 % overall);
//! * platform-level moves: the Wix platform migrates to Incapsula the day
//!   after its long high-intensity attack; eNom migrates its parked sites
//!   to Verisign 101 days after its attack (both named in Section 6);
//! * provider choice following the Table 3 market-share profile.
//!
//! The model mutates the DNS zone (new placements with the provider's
//! CNAME and address space), which is the *only* way the measurement side
//! ever learns about a migration.

use crate::config::{Calibration, GenConfig};
use crate::dist::AnchorDist;
use crate::model::{Episode, GroundTruth, GtKind};
use dosscope_dns::synth::SynthOutput;
use dosscope_dns::{DayRange, DomainId, OrgId, OrgRole, Placement};
use dosscope_types::{DayIndex, SECS_PER_HOUR};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Why a ground-truth migration happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationTrigger {
    /// Following an attack on the site's hosting IP.
    Attack,
    /// Spontaneous (no attack involved).
    Spontaneous,
    /// The site's whole platform moved (Wix, eNom).
    PlatformMove,
}

/// One ground-truth migration.
#[derive(Debug, Clone)]
pub struct GtMigration {
    /// The migrating site.
    pub domain: DomainId,
    /// The day the new DNS configuration appears.
    pub day: DayIndex,
    /// The chosen provider's catalog entry.
    pub provider: OrgId,
    /// Why.
    pub trigger: MigrationTrigger,
}

/// The applied outcome.
pub struct MigrationOutcome {
    /// All migrations actually applied to the zone, sorted by day.
    pub migrations: Vec<GtMigration>,
}

/// Market-share weights for provider choice at migration time (Table 3
/// profile).
const PROVIDER_WEIGHTS: &[(&str, f64)] = &[
    ("Neustar", 0.262),
    ("DOSarrest", 0.171),
    ("Akamai", 0.142),
    ("Verisign", 0.105),
    ("CloudFlare", 0.104),
    ("Incapsula", 0.092),
    ("F5 Networks", 0.087),
    ("CenturyLink", 0.021),
    ("Level 3", 0.011),
    ("VirtualRoad", 0.005),
];

/// Migration-delay distributions (in days) per intensity class, anchored
/// on Figure 10, plus the ≥ 4 h duration class of Figure 11.
struct DelayModel {
    top01: AnchorDist,
    rest: AnchorDist,
    long4h: AnchorDist,
}

impl DelayModel {
    fn new() -> DelayModel {
        DelayModel {
            // The sampled value is floored and added to "attack day + 1",
            // so a measured k-day delay needs the sample below k; anchors
            // put the published CDF mass just below the integer marks.
            // 80.7 % ≤ 1 day, 98.6 % ≤ 6 days.
            top01: AnchorDist::new(&[(0.4, 0.0), (1.0, 0.807), (6.0, 0.986), (30.0, 1.0)]),
            // 23.2 % ≤ 1 day, 29.9 % ≤ 6 days.
            rest: AnchorDist::new(&[
                (0.4, 0.0),
                (1.0, 0.205),
                (6.0, 0.299),
                (16.0, 0.50),
                (120.0, 1.0),
            ]),
            // Figure 11: 67.6 % ≤ 1 day, 76 % ≤ 5 days, ~18 % ≥ 2 weeks.
            long4h: AnchorDist::new(&[
                (0.4, 0.0),
                (1.0, 0.676),
                (5.0, 0.76),
                (14.0, 0.82),
                (120.0, 1.0),
            ]),
        }
    }

    fn sample_days<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        percentile: f64,
        long_attack: bool,
    ) -> u32 {
        if long_attack {
            return self.long4h.sample(rng).floor() as u32;
        }
        // Urgency blends continuously with intensity: the probability of
        // following the fast profile rises piecewise-linearly through the
        // top event-intensity percentiles, calibrated so the analysis
        // side's site-weighted classes recover Figure 10's gradient
        // (within 6 days: all 29.9 %, top5 67.1 %, top1 77.1 %,
        // top0.1 98.6 %).
        let w = piecewise(
            percentile,
            &[
                (0.95, 0.0),
                (0.97, 0.28),
                (0.99, 0.45),
                (0.999, 0.50),
                (0.9999, 0.74),
                (1.0, 1.0),
            ],
        );
        let dist = if rng.gen_bool(w) { &self.top01 } else { &self.rest };
        dist.sample(rng).floor() as u32
    }
}

/// Apply the migration model: mutate the zone and return the ground-truth
/// migration log.
pub fn apply_migrations(
    config: &GenConfig,
    cal: &Calibration,
    truth: &GroundTruth,
    synth: &mut SynthOutput,
) -> MigrationOutcome {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x4D16_1A7E);
    let delays = DelayModel::new();

    // Provider org ids and their hosting addresses.
    let providers: Vec<(OrgId, f64)> = PROVIDER_WEIGHTS
        .iter()
        .filter_map(|&(name, w)| synth.catalog.by_name(name).map(|o| (o.id, w)))
        .collect();
    assert!(!providers.is_empty(), "catalog lacks DPS providers");
    // Migrating customers land on *on-demand* provider addresses, not on
    // the always-on scrubbing slots: providers segment their
    // infrastructure, so a new customer's IP is not the one under
    // permanent attack. The address is deterministic per provider.
    let provider_ip: HashMap<OrgId, Ipv4Addr> = providers
        .iter()
        .map(|&(org, _)| {
            let slot_ip = synth
                .slots
                .iter()
                .find(|s| s.org == org)
                .map(|s| s.ip)
                .expect("every provider has at least one slot");
            // A sibling address in the same /24 (same AS) but a different
            // host: distinct from every planned slot.
            let base = u32::from(slot_ip) & 0xFFFF_FF00;
            let mut candidate = base | 0xFE;
            if candidate == u32::from(slot_ip) {
                candidate = base | 0xFD;
            }
            (org, Ipv4Addr::from(candidate))
        })
        .collect();

    // Sites already protected from day one: initial placement carries a
    // DPS organisation.
    let mut protected: HashSet<DomainId> = HashSet::new();
    for d in synth.zone.domain_ids() {
        let first = synth.zone.first_seen(d);
        if let Some(p) = synth.zone.placement_of(d, first) {
            let org = p.cname.unwrap_or(p.ns);
            if synth.catalog.get(org).role == OrgRole::Dps {
                protected.insert(d);
            }
        }
    }

    // Planned migrations: earliest day wins per domain.
    let mut planned: HashMap<DomainId, (DayIndex, MigrationTrigger)> = HashMap::new();

    // 1. Spontaneous baseline. Sites parked in huge co-hosting groups
    // (resellers, platforms) don't individually buy protection — their
    // operators decide for them.
    for d in synth.zone.domain_ids() {
        if protected.contains(&d) {
            continue;
        }
        if rng.gen_bool(config.spontaneous_migration_prob) {
            let active = synth.zone.active_range(d);
            if active.len() <= 2 {
                continue;
            }
            let first = active.start;
            let cohort = synth
                .zone
                .ip_of(d, first)
                .map(|ip| synth.zone.domains_on_ip(ip, first).len())
                .unwrap_or(0);
            if cohort > config.individual_migration_max_cohost {
                continue;
            }
            let day = DayIndex(rng.gen_range(active.start.0 + 1..active.end.0));
            planned.insert(d, (day, MigrationTrigger::Spontaneous));
        }
    }

    // 2. Attack-triggered migrations and platform moves.
    let mut platform_moves: Vec<(OrgId, OrgId, DayIndex)> = Vec::new(); // (from org, to org, day)
    let incapsula = synth.catalog.by_name("Incapsula").map(|o| o.id);
    let verisign = synth.catalog.by_name("Verisign").map(|o| o.id);
    let wix = synth.catalog.by_name("Wix").map(|o| o.id);
    let enom = synth.catalog.by_name("eNom").map(|o| o.id);

    for attack in &truth.attacks {
        let day = attack.window.start.day();
        match attack.episode {
            Episode::WixTakedown => {
                if let (Some(w), Some(i)) = (wix, incapsula) {
                    platform_moves.push((w, i, DayIndex(day.0 + 1)));
                }
                continue;
            }
            Episode::EnomSlowBurn => {
                if let (Some(e), Some(v)) = (enom, verisign) {
                    platform_moves.push((e, v, DayIndex(day.0 + 101)));
                }
                continue;
            }
            _ => {}
        }
        let (percentile, long_attack) = match &attack.kind {
            GtKind::RandomSpoofed { peak_pps, .. } => {
                (cal.telescope.intensity.cdf(*peak_pps), false)
            }
            GtKind::Reflection { fleet_rate, .. } => (
                cal.honeypot.intensity.cdf(*fleet_rate),
                attack.window.duration_secs() >= 4 * SECS_PER_HOUR,
            ),
        };
        let sites = synth.zone.domains_on_ip(attack.target, day);
        if sites.is_empty() {
            continue;
        }
        // Large co-hosting groups don't make individual decisions: the
        // hoster owns mitigation (platform moves above); only small
        // groups' owners migrate on their own.
        if sites.len() > config.individual_migration_max_cohost {
            continue;
        }
        // Long (≥ 4 h) reflection attacks create the strongest urgency —
        // they drive both the probability and the fast delay profile of
        // Figure 11.
        let urgency = if long_attack { 2.6 } else { 1.0 };
        let prob = config.migration_base_prob * (0.5 + 2.5 * percentile.powi(4)) * urgency;
        for site in sites {
            if protected.contains(&site) {
                continue;
            }
            if !rng.gen_bool(prob.clamp(0.0, 1.0)) {
                continue;
            }
            let delay = delays.sample_days(&mut rng, percentile, long_attack);
            let mig_day = DayIndex(day.0 + 1 + delay);
            let entry = planned
                .entry(site)
                .or_insert((mig_day, MigrationTrigger::Attack));
            if mig_day < entry.0 {
                *entry = (mig_day, MigrationTrigger::Attack);
            }
        }
    }

    // 3. Resolve platform moves into per-site migrations (they override
    // individual plans: the hoster decides for everyone on the platform).
    platform_moves.sort_by_key(|&(_, _, day)| day);
    for (from_org, to_org, day) in platform_moves {
        for d in synth.zone.domain_ids() {
            if protected.contains(&d) {
                continue;
            }
            let Some(p) = synth.zone.placement_of(d, day.min(DayIndex(config.days - 1))) else {
                continue;
            };
            if p.cname == Some(from_org) || p.ns == from_org {
                planned.insert(d, (day, MigrationTrigger::PlatformMove));
            }
        }
        // Destination (to_org) is re-derived in the apply step from the
        // platform identity; only Wix→Incapsula and eNom→Verisign exist.
        let _ = to_org;
    }

    // 4. Apply in day order.
    let mut migrations: Vec<GtMigration> = Vec::new();
    let mut ordered: Vec<(DomainId, DayIndex, MigrationTrigger)> = planned
        .into_iter()
        .map(|(d, (day, t))| (d, day, t))
        .collect();
    ordered.sort_by_key(|&(d, day, _)| (day, d));
    let provider_weights: Vec<f64> = providers.iter().map(|&(_, w)| w).collect();
    for (domain, day, trigger) in ordered {
        let active = synth.zone.active_range(domain);
        if day.0 + 1 >= active.end.0 || day < active.start {
            // Migration would land outside the site's lifetime: the move
            // happens after our observation window (the bounding problem
            // the paper discusses) — invisible, skip.
            continue;
        }
        let provider = match trigger {
            MigrationTrigger::PlatformMove => {
                // Destination fixed by the platform's choice.
                let p = synth.zone.placement_of(domain, day).map(|p| p.cname.unwrap_or(p.ns));
                match p {
                    Some(org) if Some(org) == synth.catalog.by_name("Wix").map(|o| o.id) => {
                        synth.catalog.by_name("Incapsula").expect("in catalog").id
                    }
                    _ => synth.catalog.by_name("Verisign").expect("in catalog").id,
                }
            }
            _ => {
                let i = crate::dist::weighted_index(&mut rng, &provider_weights);
                providers[i].0
            }
        };
        let Some(old) = synth.zone.truncate_at(domain, day) else {
            continue;
        };
        if old.days.end <= day {
            continue;
        }
        let ip = provider_ip[&provider];
        synth.zone.place(Placement {
            domain,
            ip,
            days: DayRange::new(day, old.days.end),
            ns: old.ns,
            cname: Some(provider),
        });
        protected.insert(domain);
        migrations.push(GtMigration {
            domain,
            day,
            provider,
            trigger,
        });
    }

    MigrationOutcome { migrations }
}

/// Piecewise-linear interpolation through `(x, y)` anchor points
/// (clamped outside the range).
fn piecewise(x: f64, anchors: &[(f64, f64)]) -> f64 {
    if x <= anchors[0].0 {
        return anchors[0].1;
    }
    for w in anchors.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x <= x1 {
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    anchors.last().expect("non-empty").1
}

/// Convenience re-export: the migration model entry point.
pub use apply_migrations as apply;

/// Marker type so the public API reads `MigrationModel::apply(...)`.
pub struct MigrationModel;

impl MigrationModel {
    /// See [`apply_migrations`].
    pub fn apply(
        config: &GenConfig,
        cal: &Calibration,
        truth: &GroundTruth,
        synth: &mut SynthOutput,
    ) -> MigrationOutcome {
        apply_migrations(config, cal, truth, synth)
    }
}
