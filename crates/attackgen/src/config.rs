//! Generator configuration: every distribution the ecosystem model uses,
//! calibrated against the paper's published numbers. The calibration
//! constants are data, not code — the fidelity harness tunes against the
//! paper by editing these tables only.

use crate::dist::AnchorDist;

/// Paper-scale totals (Table 1 and Section 4), used to derive scaled
/// budgets.
pub mod paper {
    /// Telescope attack events over two years.
    pub const TELESCOPE_EVENTS: f64 = 12_470_000.0;
    /// Honeypot attack events over two years.
    pub const HONEYPOT_EVENTS: f64 = 8_430_000.0;
    /// Targets hit by overlapping (joint) attacks.
    pub const JOINT_TARGETS: f64 = 137_000.0;
    /// Targets seen in both data sets (overlapping or not).
    pub const COMMON_TARGETS: f64 = 282_000.0;
    /// Total Web sites in the measured namespace.
    pub const WEB_SITES: f64 = 210_000_000.0;
    /// Study window length in days.
    pub const DAYS: u32 = 731;
}

/// Top-level generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; the whole ground truth is a function of the config.
    pub seed: u64,
    /// Days in the window.
    pub days: u32,
    /// Scale denominator: all paper totals are divided by this (2000 for
    /// the default harness run; tests use larger denominators).
    pub scale: f64,
    /// Fraction of telescope events aimed at Web-hosting IPs.
    pub telescope_web_fraction: f64,
    /// Fraction of honeypot events aimed at Web-hosting IPs.
    pub honeypot_web_fraction: f64,
    /// Repeat-count tail exponent for telescope targets (mean ≈ 5
    /// events/target) and honeypots (mean ≈ 2).
    pub telescope_repeat_alpha: f64,
    /// See [`GenConfig::telescope_repeat_alpha`].
    pub honeypot_repeat_alpha: f64,
    /// Probability that a honeypot target is drawn from earlier telescope
    /// targets (produces the "common but not simultaneous" population).
    pub cross_dataset_target_prob: f64,
    /// Probability that a triggered migration fires for an attacked,
    /// unprotected Web site (scaled further by intensity percentile).
    pub migration_base_prob: f64,
    /// Spontaneous (no observed attack) migration probability over the
    /// whole window.
    pub spontaneous_migration_prob: f64,
    /// Fraction of the paper's joint-target budget generated as scripted
    /// joint incidents; the remainder arises from accidental overlaps on
    /// popular targets, which the correlation measures as joint too.
    pub joint_scripted_fraction: f64,
    /// Largest co-hosting group whose members still make *individual*
    /// migration decisions; bigger groups only move via platform/hoster
    /// decisions (the paper: few migrating sites were hosted in large
    /// numbers).
    pub individual_migration_max_cohost: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0xA77AC4,
            days: paper::DAYS,
            scale: 2_000.0,
            telescope_web_fraction: 0.30,
            honeypot_web_fraction: 0.22,
            telescope_repeat_alpha: 1.22,
            honeypot_repeat_alpha: 2.10,
            cross_dataset_target_prob: 0.035,
            migration_base_prob: 0.018,
            spontaneous_migration_prob: 0.033,
            joint_scripted_fraction: 0.60,
            individual_migration_max_cohost: 700,
        }
    }
}

impl GenConfig {
    /// Scaled telescope event budget.
    pub fn telescope_events(&self) -> u64 {
        (paper::TELESCOPE_EVENTS / self.scale).round().max(1.0) as u64
    }

    /// Scaled honeypot event budget.
    pub fn honeypot_events(&self) -> u64 {
        (paper::HONEYPOT_EVENTS / self.scale).round().max(1.0) as u64
    }

    /// Scaled joint-incident budget (each incident creates one event in
    /// each data set against the same target, overlapping in time).
    pub fn joint_incidents(&self) -> u64 {
        (paper::JOINT_TARGETS * self.joint_scripted_fraction / self.scale)
            .round()
            .max(1.0) as u64
    }
}

/// Telescope-side distribution calibration (Tables 5, 7, 8; Figures 2, 3).
pub struct TelescopeModel {
    /// Attack IP-protocol weights for generic (non-Web) targets
    /// [TCP, UDP, ICMP, Other]; chosen so that together with the Web
    /// portion the overall mix reproduces Table 5 (79.4/15.9/4.5/0.2).
    pub generic_proto_weights: [f64; 4],
    /// Protocol weights for Web-hosting targets: 93.4 % TCP (Section 5).
    pub web_proto_weights: [f64; 4],
    /// Probability a TCP/UDP attack targets a single port (0.587 so that
    /// Table 7's 60.6 % single-port holds once no-port ICMP events are
    /// counted with singles).
    pub single_port_prob: f64,
    /// Single-port probability for joint attacks (Section 4: 77.1 %).
    pub joint_single_port_prob: f64,
    /// Duration distribution: log-normal median 454 s, sigma 1.92,
    /// truncated at the 60 s detection threshold (Figure 2 top).
    pub duration_median: f64,
    /// See [`TelescopeModel::duration_median`].
    pub duration_sigma: f64,
    /// Observed max-pps intensity CDF (Figure 3): median 1, 70 % ≤ 2,
    /// mean ≈ 107.
    pub intensity: AnchorDist,
    /// Single-port service weights for TCP against generic targets:
    /// `(port, weight)`; the residual weight is spread over the whole port
    /// range.
    pub tcp_port_table: Vec<(u16, f64)>,
    /// Residual weight for "any other TCP port".
    pub tcp_port_other: f64,
    /// Single-port service weights for UDP (Table 8b: gaming ports).
    pub udp_port_table: Vec<(u16, f64)>,
    /// Residual weight for "any other UDP port".
    pub udp_port_other: f64,
    /// Web-target TCP port weights (87.6 % Web infrastructure ports).
    pub web_tcp_port_table: Vec<(u16, f64)>,
    /// Residual for Web targets.
    pub web_tcp_port_other: f64,
}

impl Default for TelescopeModel {
    fn default() -> Self {
        TelescopeModel {
            generic_proto_weights: [0.734, 0.206, 0.057, 0.003],
            web_proto_weights: [0.934, 0.050, 0.016, 0.000],
            single_port_prob: 0.587,
            joint_single_port_prob: 0.95,
            duration_median: 290.0,
            duration_sigma: 1.95,
            intensity: AnchorDist::new(&[
                (0.5, 0.0),
                (1.0, 0.50),
                (2.0, 0.70),
                (10.0, 0.83),
                (100.0, 0.96),
                (1_000.0, 0.9915),
                (10_000.0, 0.9985),
                (100_000.0, 1.0),
            ]),
            tcp_port_table: vec![
                (80, 0.400),
                (443, 0.170),
                (3306, 0.0115),
                (53, 0.0110),
                (1723, 0.0100),
                (22, 0.0080),
                (25, 0.0060),
                (8080, 0.0055),
            ],
            tcp_port_other: 0.378,
            udp_port_table: vec![
                (27015, 0.1854),
                (37547, 0.0204),
                (32124, 0.0141),
                (28183, 0.0139),
                (3306, 0.0130),
                (123, 0.0080),
                (138, 0.0070),
            ],
            udp_port_other: 0.7382,
            web_tcp_port_table: vec![(80, 0.616), (443, 0.260), (3306, 0.012), (22, 0.010)],
            web_tcp_port_other: 0.102,
        }
    }
}

/// Honeypot-side distribution calibration (Table 6; Figures 2, 4).
pub struct HoneypotModel {
    /// Reflector-protocol weights in [`dosscope_types::ReflectionProtocol::ALL`]
    /// order [NTP, DNS, CharGen, SSDP, RIPv1, MSSQL, TFTP, QOTD]
    /// (Table 6: 40.08/26.17/22.37/8.38/2.27 + 0.73 other).
    pub protocol_weights: [f64; 8],
    /// Protocol weights for Web-hosting targets (Section 5: NTP rises to
    /// 54.69 %).
    pub web_protocol_weights: [f64; 8],
    /// Protocol weights for joint attacks (Section 4: NTP 47 %, CharGen
    /// halves to 11.5 %).
    pub joint_protocol_weights: [f64; 8],
    /// Duration: log-normal median 255 s, sigma 1.70 (Figure 2 bottom).
    pub duration_median: f64,
    /// See [`HoneypotModel::duration_median`].
    pub duration_sigma: f64,
    /// Average request-rate CDF across the fleet (Figure 4 overall):
    /// median 77, mean ≈ 413.
    pub intensity: AnchorDist,
    /// Per-protocol intensity multipliers (Figure 4 per-protocol spread),
    /// same order as the weights.
    pub protocol_rate_factor: [f64; 8],
    /// How many of the 24 honeypots an attack's scan list includes, as an
    /// inclusive range.
    pub pots_per_attack: (u8, u8),
}

impl Default for HoneypotModel {
    fn default() -> Self {
        HoneypotModel {
            protocol_weights: [
                0.3596, 0.2790, 0.2473, 0.0849, 0.0221, 0.0040, 0.0020, 0.0013,
            ],
            web_protocol_weights: [
                0.5469, 0.2000, 0.1400, 0.0800, 0.0250, 0.0050, 0.0020, 0.0011,
            ],
            joint_protocol_weights: [
                0.4700, 0.3000, 0.1150, 0.0900, 0.0250, 0.0, 0.0, 0.0,
            ],
            duration_median: 255.0,
            duration_sigma: 1.70,
            intensity: AnchorDist::new(&[
                (0.3, 0.0),
                (1.0, 0.04),
                (10.0, 0.18),
                (77.0, 0.50),
                (413.0, 0.94),
                (3_000.0, 0.981),
                (30_000.0, 0.9995),
                (100_000.0, 1.0),
            ]),
            protocol_rate_factor: [1.35, 0.85, 1.00, 0.55, 0.40, 0.50, 0.45, 0.40],
            pots_per_attack: (3, 8),
        }
    }
}

/// Per-country target weights (Table 4); everything not listed shares the
/// residual proportionally to address-space usage.
pub struct CountryTargets {
    /// `(country, weight)` for the telescope data set.
    pub telescope: Vec<(&'static str, f64)>,
    /// `(country, weight)` for the honeypot data set.
    pub honeypot: Vec<(&'static str, f64)>,
    /// `(country, weight)` for joint-attack targets (Section 4).
    pub joint: Vec<(&'static str, f64)>,
}

impl Default for CountryTargets {
    fn default() -> Self {
        CountryTargets {
            // Table 4a; JP forced low (rank ~25 despite high usage).
            telescope: vec![
                ("US", 0.1150),
                ("CN", 0.1500),
                ("RU", 0.0560),
                ("FR", 0.0380),
                ("DE", 0.0330),
                ("GB", 0.0330),
                ("BR", 0.0330),
                ("CA", 0.0260),
                ("KR", 0.0240),
                ("IT", 0.0220),
                ("NL", 0.0210),
                ("JP", 0.0070),
            ],
            // Table 4b; JP ranks ~14th here.
            honeypot: vec![
                ("US", 0.2200),
                ("CN", 0.1250),
                ("FR", 0.0640),
                ("GB", 0.0580),
                ("DE", 0.0450),
                ("RU", 0.0380),
                ("BR", 0.0300),
                ("CA", 0.0270),
                ("NL", 0.0240),
                ("KR", 0.0220),
                ("IT", 0.0200),
                ("JP", 0.0150),
            ],
            // Joint attacks: US 24.4, CN 20.4, FR 9.5, DE 6.5, RU 4.1.
            joint: vec![
                ("US", 0.244),
                ("CN", 0.204),
                ("FR", 0.095),
                ("DE", 0.065),
                ("RU", 0.041),
                ("GB", 0.035),
            ],
        }
    }
}

/// Joint-attack AS biases (Section 4: OVH 12.3 %, China Telecom 5.4 %,
/// China Unicom 3.1 % of joint targets).
pub struct JointAsBias {
    /// `(org name in the registry, probability)`.
    pub targets: Vec<(&'static str, f64)>,
}

impl Default for JointAsBias {
    fn default() -> Self {
        JointAsBias {
            targets: vec![
                ("OVH", 0.123),
                ("China Telecom", 0.054),
                ("China Unicom", 0.031),
            ],
        }
    }
}

/// The full calibration bundle.
#[derive(Default)]
pub struct Calibration {
    /// Telescope-side distributions.
    pub telescope: TelescopeModel,
    /// Honeypot-side distributions.
    pub honeypot: HoneypotModel,
    /// Country target weights.
    pub countries: CountryTargets,
    /// Joint-attack AS bias.
    pub joint_as: JointAsBias,
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_budgets() {
        let c = GenConfig::default();
        assert_eq!(c.telescope_events(), 6_235);
        assert_eq!(c.honeypot_events(), 4_215);
        // 137k × 0.6 scripted fraction / 2000 ≈ 41.
        assert_eq!(c.joint_incidents(), 41);
        let tiny = GenConfig {
            scale: 1e12,
            ..GenConfig::default()
        };
        assert_eq!(tiny.telescope_events(), 1, "budgets never hit zero");
    }

    #[test]
    fn telescope_intensity_calibration() {
        let m = TelescopeModel::default();
        // Median 1, P(<=2) = 0.70, mean ≈ 107 (Figure 3).
        assert!((m.intensity.quantile(0.5) - 1.0).abs() < 1e-9);
        assert!((m.intensity.cdf(2.0) - 0.70).abs() < 1e-9);
        let mean = m.intensity.mean();
        assert!((80.0..140.0).contains(&mean), "mean ≈ 107, got {mean}");
    }

    #[test]
    fn honeypot_intensity_calibration() {
        let m = HoneypotModel::default();
        assert!((m.intensity.quantile(0.5) - 77.0).abs() < 1e-9);
        let mean = m.intensity.mean();
        assert!((330.0..500.0).contains(&mean), "mean ≈ 413, got {mean}");
    }

    #[test]
    fn protocol_weights_sum_to_one() {
        let t = TelescopeModel::default();
        for w in [&t.generic_proto_weights, &t.web_proto_weights] {
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{w:?}");
        }
        let h = HoneypotModel::default();
        for w in [
            &h.protocol_weights,
            &h.web_protocol_weights,
            &h.joint_protocol_weights,
        ] {
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "{w:?} sums to {s}");
        }
    }

    #[test]
    fn port_tables_sum_to_one() {
        let t = TelescopeModel::default();
        let tcp: f64 = t.tcp_port_table.iter().map(|(_, w)| w).sum::<f64>() + t.tcp_port_other;
        assert!((tcp - 1.0).abs() < 1e-6, "tcp table sums to {tcp}");
        let udp: f64 = t.udp_port_table.iter().map(|(_, w)| w).sum::<f64>() + t.udp_port_other;
        assert!((udp - 1.0).abs() < 1e-6, "udp table sums to {udp}");
        let web: f64 =
            t.web_tcp_port_table.iter().map(|(_, w)| w).sum::<f64>() + t.web_tcp_port_other;
        assert!((web - 1.0).abs() < 1e-6, "web table sums to {web}");
    }

    #[test]
    fn overall_proto_mix_reproduces_table5() {
        // telescope_web_fraction * web + (1-f) * generic ≈ 79.4/15.9/4.5/0.2
        let g = GenConfig::default();
        let t = TelescopeModel::default();
        let f = g.telescope_web_fraction;
        let expect = [0.794, 0.159, 0.045, 0.002];
        for (i, want) in expect.into_iter().enumerate() {
            let mix = f * t.web_proto_weights[i] + (1.0 - f) * t.generic_proto_weights[i];
            assert!((mix - want).abs() < 0.01, "proto {i}: {mix} vs {want}");
        }
    }
}
