//! Sampling primitives for the ecosystem generator: a piecewise
//! log-linear inverse-CDF sampler anchored directly on the paper's
//! published distribution curves, a truncated log-normal, a heavy-tailed
//! repeat-count sampler and a small weighted-choice helper.

use rand::Rng;

/// A distribution defined by CDF anchor points `(value, cdf)` with
/// log-linear interpolation between anchors.
///
/// This is how the generator encodes the paper's figures directly: e.g.
/// Figure 3's intensity CDF is reproduced by anchoring (1 pps, 0.50),
/// (2 pps, 0.70), (10 pps, 0.83), ... and sampling by inverse transform.
/// Values interpolate geometrically between anchors (log-uniform within a
/// segment), which matches the log-x axes of the paper's CDF plots.
#[derive(Debug, Clone)]
pub struct AnchorDist {
    /// `(value, cdf)` pairs; values and cdfs strictly increasing,
    /// first cdf 0, last cdf 1.
    anchors: Vec<(f64, f64)>,
}

impl AnchorDist {
    /// Build from anchor points. Panics on malformed anchors (this is
    /// developer-provided calibration data, not user input).
    pub fn new(anchors: &[(f64, f64)]) -> AnchorDist {
        assert!(anchors.len() >= 2, "need at least two anchors");
        assert_eq!(anchors[0].1, 0.0, "first anchor must have cdf 0");
        assert!(
            (anchors.last().expect("non-empty").1 - 1.0).abs() < 1e-12,
            "last anchor must have cdf 1"
        );
        for w in anchors.windows(2) {
            assert!(w[0].0 > 0.0, "values must be positive (log scale)");
            assert!(w[1].0 > w[0].0, "values must increase");
            assert!(w[1].1 >= w[0].1, "cdf must be non-decreasing");
        }
        AnchorDist {
            anchors: anchors.to_vec(),
        }
    }

    /// Inverse-CDF sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The value at CDF position `u` (clamped to [0, 1]).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let anchors = &self.anchors;
        for w in anchors.windows(2) {
            let (v0, c0) = w[0];
            let (v1, c1) = w[1];
            if u <= c1 {
                if c1 == c0 {
                    return v1;
                }
                let t = (u - c0) / (c1 - c0);
                // Log-linear interpolation.
                return (v0.ln() + t * (v1.ln() - v0.ln())).exp();
            }
        }
        anchors.last().expect("non-empty").0
    }

    /// The CDF at `x` (piecewise log-linear; 0 below the first anchor, 1
    /// above the last).
    pub fn cdf(&self, x: f64) -> f64 {
        let anchors = &self.anchors;
        if x <= anchors[0].0 {
            return 0.0;
        }
        for w in anchors.windows(2) {
            let (v0, c0) = w[0];
            let (v1, c1) = w[1];
            if x <= v1 {
                let t = (x.ln() - v0.ln()) / (v1.ln() - v0.ln());
                return c0 + t * (c1 - c0);
            }
        }
        1.0
    }

    /// Approximate mean via the log-uniform segment means
    /// (`(b-a)/ln(b/a)` per segment, weighted by segment mass).
    pub fn mean(&self) -> f64 {
        self.anchors
            .windows(2)
            .map(|w| {
                let (a, c0) = w[0];
                let (b, c1) = w[1];
                let mass = c1 - c0;
                if mass == 0.0 {
                    return 0.0;
                }
                let seg_mean = if (b - a).abs() < f64::EPSILON {
                    a
                } else {
                    (b - a) / (b / a).ln()
                };
                mass * seg_mean
            })
            .sum()
    }
}

/// Sample a log-normal with the given `median` and `sigma` (of the
/// underlying normal), truncated below at `min` by resampling (Box-Muller;
/// two uniforms per draw).
pub fn lognormal_min<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64, min: f64) -> f64 {
    let mu = median.ln();
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = (mu + sigma * z).exp();
        if x >= min {
            return x;
        }
    }
}

/// Heavy-tailed repeat count: `k = ceil(u^(-1/alpha))` capped at `max` — a
/// discretised Pareto with index `alpha`. Smaller `alpha` means a heavier
/// tail (more repeat attacks on the same target): the continuous mean is
/// `alpha/(alpha-1)`, so `alpha` ≈ 2.2 gives a mean around 2 and
/// `alpha` ≈ 1.25 around 5 (the cap trims both slightly).
pub fn repeat_count<R: Rng + ?Sized>(rng: &mut R, alpha: f64, max: u32) -> u32 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let k = u.powf(-1.0 / alpha).ceil();
    (k as u32).clamp(1, max)
}

/// Weighted choice over a small fixed slice: returns an index.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn anchor_quantiles_hit_anchors() {
        let d = AnchorDist::new(&[(1.0, 0.0), (10.0, 0.5), (100.0, 1.0)]);
        assert!((d.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((d.quantile(0.5) - 10.0).abs() < 1e-9);
        assert!((d.quantile(1.0) - 100.0).abs() < 1e-9);
        // Midway in log space.
        let q25 = d.quantile(0.25);
        assert!((q25 - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn anchor_cdf_inverts_quantile() {
        let d = AnchorDist::new(&[(0.5, 0.0), (2.0, 0.4), (50.0, 0.9), (1000.0, 1.0)]);
        for u in [0.1, 0.3, 0.5, 0.77, 0.95] {
            let x = d.quantile(u);
            assert!((d.cdf(x) - u).abs() < 1e-9, "u={u}");
        }
        assert_eq!(d.cdf(0.1), 0.0);
        assert_eq!(d.cdf(2000.0), 1.0);
    }

    #[test]
    fn anchor_samples_match_cdf() {
        let d = AnchorDist::new(&[(1.0, 0.0), (2.0, 0.7), (10.0, 0.83), (100.0, 1.0)]);
        let mut r = rng();
        let n = 20_000;
        let below2 = (0..n).filter(|_| d.sample(&mut r) <= 2.0).count();
        let frac = below2 as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "P(<=2)≈0.7, got {frac}");
    }

    #[test]
    fn anchor_mean_formula() {
        // Log-uniform on [1, e]: mean = (e-1)/1 = e-1.
        let d = AnchorDist::new(&[(1.0, 0.0), (std::f64::consts::E, 1.0)]);
        assert!((d.mean() - (std::f64::consts::E - 1.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "values must increase")]
    fn anchor_rejects_nonincreasing() {
        AnchorDist::new(&[(1.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn lognormal_median_and_truncation() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| lognormal_min(&mut r, 454.0, 1.9, 60.0)).collect();
        assert!(samples.iter().all(|&x| x >= 60.0));
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        // Truncation at 60 pushes the median up slightly from 454.
        assert!(
            (400.0..700.0).contains(&median),
            "median ≈ 454+, got {median}"
        );
    }

    #[test]
    fn repeat_count_bounds_and_mean() {
        let mut r = rng();
        let n = 50_000;
        let ks: Vec<u32> = (0..n).map(|_| repeat_count(&mut r, 2.2, 100)).collect();
        assert!(ks.iter().all(|&k| (1..=100).contains(&k)));
        let mean = ks.iter().map(|&k| k as f64).sum::<f64>() / n as f64;
        assert!((1.5..3.0).contains(&mean), "mean ≈ 2, got {mean}");
        let heavy: Vec<u32> = (0..n).map(|_| repeat_count(&mut r, 1.2, 200)).collect();
        let hmean = heavy.iter().map(|&k| k as f64).sum::<f64>() / n as f64;
        assert!(hmean > mean, "smaller alpha gives heavier tail");
    }

    #[test]
    fn weighted_index_proportions() {
        let mut r = rng();
        let weights = [0.5, 0.3, 0.2];
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        for (i, w) in weights.iter().enumerate() {
            let frac = counts[i] as f64 / 30_000.0;
            assert!((frac - w).abs() < 0.02, "index {i}: {frac} vs {w}");
        }
    }
}
