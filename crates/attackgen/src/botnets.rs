//! Ground truth for the third data source: botnet C&C activity.
//!
//! Models a Wang-et-al.-style population of monitored botnets issuing
//! start/stop attack commands over the study window. Botnet attacks are
//! *unspoofed direct* attacks: they produce no uniformly spoofed
//! backscatter and abuse no reflectors, so the telescope and honeypots are
//! structurally blind to them — the coverage gap the paper's footnote 4
//! concedes and its Section 8 wants closed. A minority of botnet targets
//! coincide with spoofed-attack victims (multi-vector incidents, as Wang
//! et al. also observed).

use crate::config::GenConfig;
use crate::dist::{lognormal_min, weighted_index};
use crate::model::GroundTruth;
use dosscope_botmon::{AttackMethod, BotFamily, BotnetId, CncAction, CncCommand};
use dosscope_geo::{AsRegistry, OrgKind};
use dosscope_types::{SimTime, SECS_PER_DAY};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Paper-scale number of botnet attack events over two years,
/// extrapolated from Wang et al.'s 51 k over seven months.
pub const PAPER_BOTNET_EVENTS: f64 = 175_000.0;

/// Family mix of the monitored botnets (DirtJumper dominated Wang et
/// al.'s view; Mirai appears late in the window).
const FAMILY_WEIGHTS: [(BotFamily, f64); 5] = [
    (BotFamily::DirtJumper, 0.40),
    (BotFamily::Yoddos, 0.22),
    (BotFamily::Nitol, 0.16),
    (BotFamily::Gafgyt, 0.12),
    (BotFamily::Mirai, 0.10),
];

/// Generate the C&C command stream for the window, sorted by time.
///
/// `truth` provides the spoofed-attack target population, a slice of which
/// the botnets also hit (multi-vector incidents).
pub fn generate_commands(
    config: &GenConfig,
    registry: &AsRegistry,
    truth: &GroundTruth,
    seed: u64,
) -> Vec<CncCommand> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let budget = ((PAPER_BOTNET_EVENTS / config.scale).round() as u64).max(3);
    let horizon = config.days as u64 * SECS_PER_DAY;

    // Access-network space: Noroozian et al. find most booter/botnet
    // victims in broadband ISP networks.
    let isp_space: Vec<&dosscope_geo::AsInfo> = registry
        .ases()
        .iter()
        .filter(|a| a.kind == OrgKind::Isp)
        .collect();
    let spoofed_targets: Vec<(Ipv4Addr, dosscope_types::TimeRange)> = truth
        .attacks
        .iter()
        .map(|a| (a.target, a.window))
        .collect();

    // A botnet population proportional to the event budget (Wang et al.:
    // ~75 events per botnet over their window).
    let n_botnets = (budget / 12).clamp(3, 700) as u32;
    let mut commands = Vec::new();
    let mut emitted = 0u64;

    // Allocate botnets to families by largest remainder rather than
    // sampling, so the Wang et al. mix holds even for the 3-botnet fleets
    // small scales produce (sampling would let a light family dominate a
    // tiny fleet by chance).
    let mut family_counts: Vec<u32> = FAMILY_WEIGHTS
        .iter()
        .map(|&(_, w)| (w * n_botnets as f64) as u32)
        .collect();
    let assigned: u32 = family_counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = FAMILY_WEIGHTS
        .iter()
        .enumerate()
        .map(|(i, &(_, w))| (i, (w * n_botnets as f64).fract()))
        .collect();
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take((n_botnets - assigned) as usize) {
        family_counts[i] += 1;
    }
    let mut botnet_families = Vec::with_capacity(n_botnets as usize);
    for (i, &(fam, _)) in FAMILY_WEIGHTS.iter().enumerate() {
        botnet_families.extend(std::iter::repeat_n(fam, family_counts[i] as usize));
    }

    // Each event picks a botnet in proportion to its family's share of
    // the observed mix (heavyweight families launch more, not just own
    // more botnets).
    let botnet_weights: Vec<f64> = botnet_families
        .iter()
        .map(|f| {
            let (i, _) = FAMILY_WEIGHTS
                .iter()
                .enumerate()
                .find(|(_, (fam, _))| fam == f)
                .expect("family in table");
            FAMILY_WEIGHTS[i].1 / family_counts[i].max(1) as f64
        })
        .collect();

    while emitted < budget {
        let b = weighted_index(&mut rng, &botnet_weights) as u32;
        let family = botnet_families[b as usize];
        // Mirai only exists from late 2016 (day ~540 on).
        let min_day = if family == BotFamily::Mirai {
            (config.days as u64 * SECS_PER_DAY * 3 / 4).min(horizon - 1)
        } else {
            0
        };
        let ts = SimTime(rng.gen_range(min_day..horizon));
        // Multi-vector: some botnet targets coincide with spoofed-attack
        // victims — 40 % of those even during the spoofed attack itself.
        let (target, overlap_window) = if !spoofed_targets.is_empty() && rng.gen_bool(0.25) {
            let (t, w) = spoofed_targets[rng.gen_range(0..spoofed_targets.len())];
            (t, Some(w))
        } else {
            let a = isp_space[rng.gen_range(0..isp_space.len())];
            (a.sample_addr(&mut rng), None)
        };
        let start_ts = match overlap_window {
            Some(w) if rng.gen_bool(0.4) => {
                // Start inside the spoofed attack's window.
                SimTime(rng.gen_range(w.start.secs()..w.end.secs().max(w.start.secs() + 1)))
            }
            _ => ts,
        };
        let method = match family {
            BotFamily::DirtJumper | BotFamily::Yoddos => {
                // HTTP-flood-centric families (Wang et al.: Web services
                // are the preferred target).
                if rng.gen_bool(0.8) {
                    AttackMethod::HttpFlood
                } else {
                    AttackMethod::SynFlood
                }
            }
            BotFamily::Mirai | BotFamily::Gafgyt => {
                if rng.gen_bool(0.5) {
                    AttackMethod::UdpFlood
                } else {
                    AttackMethod::SynFlood
                }
            }
            BotFamily::Nitol => AttackMethod::SynFlood,
        };
        let port = match method {
            AttackMethod::HttpFlood => 80,
            AttackMethod::SynFlood => {
                if rng.gen_bool(0.6) {
                    80
                } else {
                    rng.gen_range(1..=65535)
                }
            }
            AttackMethod::UdpFlood => 0,
        };
        commands.push(CncCommand {
            botnet: BotnetId(b),
            family,
            ts: start_ts,
            action: CncAction::Start {
                target,
                port,
                method,
            },
        });
        // 72 % of attacks get an explicit stop (the rest run until the
        // monitor's cap) — botnets are sloppy.
        if rng.gen_bool(0.72) {
            let dur = lognormal_min(&mut rng, 1_800.0, 1.4, 60.0) as u64;
            let stop_ts = start_ts.add_secs(dur.min(horizon.saturating_sub(start_ts.secs())));
            commands.push(CncCommand {
                botnet: BotnetId(b),
                family,
                ts: stop_ts,
                action: CncAction::Stop { target },
            });
        }
        emitted += 1;
    }
    commands.sort_by_key(|c| c.ts);
    commands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Calibration;
    use crate::Generator;
    use dosscope_dns::synth::{synthesize, SynthConfig};
    use dosscope_geo::RegistryConfig;

    fn setup() -> (AsRegistry, GroundTruth, GenConfig) {
        let registry = AsRegistry::build(&RegistryConfig::default());
        let synth = synthesize(
            &SynthConfig {
                total_sites: 5_000,
                ..SynthConfig::default()
            },
            &registry,
        );
        let config = GenConfig {
            scale: 20_000.0,
            ..GenConfig::default()
        };
        let truth = Generator::new(config.clone(), Calibration::default(), &registry, &synth)
            .generate();
        (registry, truth, config)
    }

    #[test]
    fn commands_are_time_sorted_and_in_window() {
        let (registry, truth, config) = setup();
        let cmds = generate_commands(&config, &registry, &truth, 7);
        assert!(!cmds.is_empty());
        assert!(cmds.windows(2).all(|w| w[0].ts <= w[1].ts));
        let horizon = config.days as u64 * 86_400;
        assert!(cmds.iter().all(|c| c.ts.secs() <= horizon));
    }

    #[test]
    fn monitor_infers_events_from_commands() {
        let (registry, truth, config) = setup();
        let cmds = generate_commands(&config, &registry, &truth, 7);
        let mut monitor = dosscope_botmon::CncMonitor::new();
        for c in &cmds {
            monitor.ingest(c);
        }
        let horizon = SimTime(config.days as u64 * 86_400);
        let (events, stats) = monitor.finish(horizon);
        let budget = (PAPER_BOTNET_EVENTS / config.scale).round() as usize;
        assert!(
            events.len() >= budget * 9 / 10,
            "inferred {} of ~{budget}",
            events.len()
        );
        assert_eq!(stats.orphan_stops, 0, "stops always follow starts");
        assert!(stats.stopped > 0 && stats.capped > 0);
    }

    #[test]
    fn mirai_appears_late() {
        let (registry, truth, mut config) = setup();
        config.scale = 2_000.0; // more events for a stable check
        let cmds = generate_commands(&config, &registry, &truth, 7);
        let cutoff = config.days as u64 * 86_400 * 3 / 4;
        for c in cmds.iter().filter(|c| c.family == BotFamily::Mirai) {
            if let CncAction::Start { .. } = c.action {
                assert!(c.ts.secs() >= cutoff.min(c.ts.secs()), "sanity");
            }
        }
        // At least some Mirai activity exists and all of it is in the last
        // quarter of the window (modulo multi-vector overlap starts).
        let mirai_starts: Vec<u64> = cmds
            .iter()
            .filter(|c| {
                c.family == BotFamily::Mirai && matches!(c.action, CncAction::Start { .. })
            })
            .map(|c| c.ts.secs())
            .collect();
        assert!(!mirai_starts.is_empty());
        let early = mirai_starts.iter().filter(|&&t| t < cutoff / 2).count();
        assert!(
            early * 5 < mirai_starts.len(),
            "Mirai concentrated late: {early}/{}",
            mirai_starts.len()
        );
    }

    #[test]
    fn deterministic() {
        let (registry, truth, config) = setup();
        let a = generate_commands(&config, &registry, &truth, 7);
        let b = generate_commands(&config, &registry, &truth, 7);
        assert_eq!(a, b);
    }
}
