//! End-to-end tests of the ground-truth generator: budgets, marginal
//! distributions, episodes and the migration model.

use dosscope_attackgen::config::Calibration;
use dosscope_attackgen::migrate::MigrationTrigger;
use dosscope_attackgen::{Episode, GenConfig, Generator, GtKind, GtPorts, MigrationModel};
use dosscope_dns::synth::{synthesize, SynthConfig, SynthOutput};
use dosscope_geo::{AsRegistry, RegistryConfig};
use dosscope_types::{ReflectionProtocol, TransportProto};

fn world(scale: f64) -> (AsRegistry, SynthOutput, GenConfig) {
    let registry = AsRegistry::build(&RegistryConfig::default());
    let synth = synthesize(
        &SynthConfig {
            total_sites: 20_000,
            ..SynthConfig::default()
        },
        &registry,
    );
    let config = GenConfig {
        scale,
        ..GenConfig::default()
    };
    (registry, synth, config)
}

fn generate(scale: f64) -> (dosscope_attackgen::GroundTruth, SynthOutput, GenConfig) {
    let (registry, synth, config) = world(scale);
    let truth = Generator::new(
        config.clone(),
        Calibration::default(),
        &registry,
        &synth,
    )
    .generate();
    (truth, synth, config)
}

#[test]
fn budgets_roughly_met() {
    let (truth, _, config) = generate(10_000.0);
    let tele = truth.telescope_attacks().count() as u64;
    let hp = truth.honeypot_attacks().count() as u64;
    // Chains may overshoot by a few and episodes add a handful on top.
    let tele_budget = config.telescope_events();
    let hp_budget = config.honeypot_events();
    assert!(
        tele >= tele_budget && tele < tele_budget * 2,
        "telescope {tele} vs budget {tele_budget}"
    );
    assert!(
        hp >= hp_budget && hp < hp_budget * 2,
        "honeypot {hp} vs budget {hp_budget}"
    );
}

#[test]
fn attacks_are_time_sorted_and_in_window() {
    let (truth, _, config) = generate(10_000.0);
    let horizon = config.days as u64 * 86_400;
    assert!(truth
        .attacks
        .windows(2)
        .all(|w| w[0].window.start <= w[1].window.start));
    assert!(truth
        .attacks
        .iter()
        .all(|a| a.window.start.secs() < horizon));
}

#[test]
fn telescope_protocol_mix_matches_table5() {
    let (truth, _, _) = generate(2_000.0);
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    for a in truth.telescope_attacks() {
        if let GtKind::RandomSpoofed { proto, .. } = &a.kind {
            let i = TransportProto::ALL.iter().position(|p| p == proto).unwrap();
            counts[i] += 1;
            total += 1;
        }
    }
    let tcp = counts[0] as f64 / total as f64;
    let udp = counts[1] as f64 / total as f64;
    let icmp = counts[2] as f64 / total as f64;
    assert!((tcp - 0.794).abs() < 0.03, "TCP {tcp}");
    assert!((udp - 0.159).abs() < 0.03, "UDP {udp}");
    assert!((icmp - 0.045).abs() < 0.02, "ICMP {icmp}");
}

#[test]
fn reflection_protocol_mix_matches_table6() {
    let (truth, _, _) = generate(2_000.0);
    let mut ntp = 0usize;
    let mut dns = 0usize;
    let mut total = 0usize;
    for a in truth.honeypot_attacks() {
        if let GtKind::Reflection { protocol, .. } = &a.kind {
            total += 1;
            match protocol {
                ReflectionProtocol::Ntp => ntp += 1,
                ReflectionProtocol::Dns => dns += 1,
                _ => {}
            }
        }
    }
    let ntp_share = ntp as f64 / total as f64;
    let dns_share = dns as f64 / total as f64;
    assert!((ntp_share - 0.40).abs() < 0.05, "NTP {ntp_share}");
    assert!((dns_share - 0.26).abs() < 0.05, "DNS {dns_share}");
}

#[test]
fn joint_attacks_overlap_same_target() {
    let (truth, _, config) = generate(2_000.0);
    let mut by_id: std::collections::HashMap<u32, Vec<&dosscope_attackgen::GtAttack>> =
        Default::default();
    for a in &truth.attacks {
        if let Some(id) = a.joint_id {
            by_id.entry(id).or_default().push(a);
        }
    }
    assert_eq!(by_id.len() as u64, config.joint_incidents());
    for (id, pair) in by_id {
        assert_eq!(pair.len(), 2, "incident {id}");
        assert_eq!(pair[0].target, pair[1].target);
        assert!(pair[0].window.overlaps(&pair[1].window), "incident {id}");
        assert_ne!(
            pair[0].is_random_spoofed(),
            pair[1].is_random_spoofed(),
            "one per infrastructure"
        );
    }
}

#[test]
fn durations_match_figure2_shape() {
    let (truth, _, _) = generate(2_000.0);
    let tele: Vec<f64> = truth
        .telescope_attacks()
        .map(|a| a.window.duration_secs() as f64)
        .collect();
    let within_5m = tele.iter().filter(|&&d| d <= 300.0).count() as f64 / tele.len() as f64;
    assert!(
        (0.30..0.52).contains(&within_5m),
        "~40 % of telescope attacks ≤ 5 min, got {within_5m}"
    );
    assert!(tele.iter().all(|&d| d >= 60.0), "60 s duration floor");
    let hp: Vec<f64> = truth
        .honeypot_attacks()
        .map(|a| a.window.duration_secs() as f64)
        .collect();
    let mut sorted = hp.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    assert!(
        (150.0..450.0).contains(&median),
        "honeypot median ≈ 255 s, got {median}"
    );
    assert!(hp.iter().all(|&d| d <= 86_400.0), "24 h cap");
}

#[test]
fn single_port_share_matches_table7() {
    let (truth, _, _) = generate(2_000.0);
    let mut single = 0usize;
    let mut total = 0usize;
    for a in truth.telescope_attacks() {
        if let GtKind::RandomSpoofed { ports, .. } = &a.kind {
            total += 1;
            if !matches!(ports, GtPorts::Multi(_)) {
                single += 1;
            }
        }
    }
    let share = single as f64 / total as f64;
    assert!((share - 0.606).abs() < 0.04, "single-port {share}");
}

#[test]
fn episodes_present() {
    let (truth, _, _) = generate(10_000.0);
    assert!(truth
        .attacks
        .iter()
        .any(|a| a.episode == Episode::WixTakedown));
    assert!(truth
        .attacks
        .iter()
        .any(|a| a.episode == Episode::EnomSlowBurn));
    for i in 0..4u8 {
        assert!(
            truth
                .attacks
                .iter()
                .any(|a| a.episode == Episode::MarqueePeak(i)),
            "marquee {i} missing"
        );
    }
    // The Wix takedown is a ≥ 4 h NTP reflection attack.
    let wix = truth
        .attacks
        .iter()
        .find(|a| a.episode == Episode::WixTakedown)
        .unwrap();
    assert!(wix.window.duration_secs() >= 4 * 3600);
    assert!(matches!(
        wix.kind,
        GtKind::Reflection {
            protocol: ReflectionProtocol::Ntp,
            ..
        }
    ));
}

#[test]
fn generation_is_deterministic() {
    let (a, _, _) = generate(10_000.0);
    let (b, _, _) = generate(10_000.0);
    assert_eq!(a.attacks.len(), b.attacks.len());
    for (x, y) in a.attacks.iter().zip(&b.attacks) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.window, y.window);
    }
}

#[test]
fn migrations_applied_to_zone() {
    let (registry, mut synth, config) = world(2_000.0);
    let truth = Generator::new(
        config.clone(),
        Calibration::default(),
        &registry,
        &synth,
    )
    .generate();
    let outcome = MigrationModel::apply(&config, &Calibration::default(), &truth, &mut synth);
    assert!(
        !outcome.migrations.is_empty(),
        "some sites migrate at this scale"
    );
    // Every migration is visible in the zone: the new placement carries
    // the provider CNAME from the migration day on.
    for m in outcome.migrations.iter().take(50) {
        let p = synth
            .zone
            .placement_of(m.domain, m.day)
            .expect("placement exists on migration day");
        assert_eq!(p.cname, Some(m.provider), "domain {:?}", m.domain);
    }
    // The Wix platform move exists and lands the day after the attack.
    let wix_moves: Vec<_> = outcome
        .migrations
        .iter()
        .filter(|m| m.trigger == MigrationTrigger::PlatformMove)
        .collect();
    assert!(!wix_moves.is_empty(), "platform moves happen");
    // All migration days are within the window.
    assert!(outcome.migrations.iter().all(|m| m.day.0 < config.days));
}

#[test]
fn spontaneous_and_attack_triggers_both_occur() {
    let (registry, mut synth, config) = world(2_000.0);
    let truth = Generator::new(
        config.clone(),
        Calibration::default(),
        &registry,
        &synth,
    )
    .generate();
    let outcome = MigrationModel::apply(&config, &Calibration::default(), &truth, &mut synth);
    let spont = outcome
        .migrations
        .iter()
        .filter(|m| m.trigger == MigrationTrigger::Spontaneous)
        .count();
    let triggered = outcome
        .migrations
        .iter()
        .filter(|m| m.trigger == MigrationTrigger::Attack)
        .count();
    assert!(spont > 0, "spontaneous migrations occur");
    assert!(triggered > 0, "attack-triggered migrations occur");
}
