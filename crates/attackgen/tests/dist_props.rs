//! Property-based tests for the generator's sampling primitives.

use dosscope_attackgen::dist::{lognormal_min, repeat_count, weighted_index, AnchorDist};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strictly increasing positive values with increasing CDF anchors.
fn arb_anchors() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.01f64..10.0, 0.01f64..1.0), 2..8).prop_map(|steps| {
        let mut anchors = Vec::with_capacity(steps.len() + 1);
        let mut v = 0.1f64;
        let mut mass: Vec<f64> = steps.iter().map(|&(_, m)| m).collect();
        let total: f64 = mass.iter().sum();
        for m in &mut mass {
            *m /= total;
        }
        anchors.push((v, 0.0));
        let mut c = 0.0;
        for (i, &(dv, _)) in steps.iter().enumerate() {
            v += dv;
            c += mass[i];
            anchors.push((v, c.min(1.0)));
        }
        anchors.last_mut().expect("non-empty").1 = 1.0;
        anchors
    })
}

proptest! {
    /// Samples stay within the anchor range; quantile/cdf are inverse;
    /// quantile is monotone in q.
    #[test]
    fn anchor_dist_laws(anchors in arb_anchors(), seed in any::<u64>()) {
        let d = AnchorDist::new(&anchors);
        let lo = anchors[0].0;
        let hi = anchors.last().unwrap().0;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-12, "{x} outside [{lo},{hi}]");
        }
        let mut prev = lo - 1.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = d.quantile(q);
            prop_assert!(v + 1e-12 >= prev, "quantile not monotone");
            prev = v;
            // cdf(quantile(q)) == q wherever the CDF is strictly increasing.
            let c = d.cdf(v);
            prop_assert!(c + 1e-6 >= q, "cdf(quantile({q})) = {c}");
        }
        // Mean lies within the support.
        let m = d.mean();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// The truncated log-normal respects its floor and stays finite.
    #[test]
    fn lognormal_floor(median in 1.0f64..10_000.0, sigma in 0.1f64..3.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let min = median / 4.0;
        for _ in 0..20 {
            let x = lognormal_min(&mut rng, median, sigma, min);
            prop_assert!(x.is_finite());
            prop_assert!(x >= min);
        }
    }

    /// Repeat counts respect their bounds for every alpha.
    #[test]
    fn repeat_count_bounds(alpha in 0.5f64..5.0, max in 1u32..500, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let k = repeat_count(&mut rng, alpha, max);
            prop_assert!((1..=max).contains(&k));
        }
    }

    /// Weighted choice returns an index with positive weight.
    #[test]
    fn weighted_index_valid(
        weights in proptest::collection::vec(0.0f64..10.0, 1..10),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..30 {
            let i = weighted_index(&mut rng, &weights);
            prop_assert!(i < weights.len());
        }
    }
}
