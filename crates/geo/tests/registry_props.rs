//! Property-based tests for the synthetic address registry: for arbitrary
//! configurations, the plan must be non-overlapping, avoid reserved space
//! and the darknet, and the derived databases must agree with the plan.

use dosscope_geo::{AsRegistry, RegistryConfig};
use dosscope_types::Ipv4Cidr;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn arb_config() -> impl Strategy<Value = RegistryConfig> {
    (any::<u64>(), 50u32..400, 1u8..=126).prop_map(|(seed, prefixes, dark_octet)| {
        RegistryConfig {
            seed,
            darknet: Ipv4Cidr::new(Ipv4Addr::new(dark_octet, 0, 0, 0), 8),
            generic_prefixes: prefixes,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No two allocated prefixes overlap, none intersects reserved space
    /// or the darknet, for any configuration.
    #[test]
    fn plan_is_sound(config in arb_config()) {
        let registry = AsRegistry::build(&config);
        let mut all: Vec<Ipv4Cidr> = registry
            .ases()
            .iter()
            .flat_map(|a| a.prefixes.iter().copied())
            .collect();
        prop_assert!(!all.is_empty());
        all.sort_by_key(|p| (u32::from(p.network()), p.len()));
        for w in all.windows(2) {
            prop_assert!(
                !w[0].covers(&w[1]) && !w[1].covers(&w[0]),
                "{} overlaps {}",
                w[0],
                w[1]
            );
        }
        for p in &all {
            prop_assert!(!config.darknet.covers(p) && !p.covers(&config.darknet));
            for probe in [p.first(), p.last()] {
                let o = probe.octets();
                prop_assert!(o[0] != 0 && o[0] != 10 && o[0] != 127 && o[0] < 224);
                prop_assert!(!(o[0] == 172 && (16..32).contains(&o[1])));
                prop_assert!(!(o[0] == 192 && o[1] == 168));
                prop_assert!(!(o[0] == 169 && o[1] == 254));
            }
        }
    }

    /// The geolocation and routing databases agree with the plan for
    /// sampled addresses of every AS.
    #[test]
    fn databases_agree(config in arb_config(), probe_seed in any::<u64>()) {
        let registry = AsRegistry::build(&config);
        let geo = registry.build_geodb();
        let asdb = registry.build_asdb();
        let mut rng = SmallRng::seed_from_u64(probe_seed);
        for a in registry.ases().iter().step_by(7) {
            let addr = a.sample_addr(&mut rng);
            prop_assert_eq!(geo.country_of(addr), Some(a.country));
            prop_assert_eq!(asdb.asn_of(addr), Some(a.asn));
        }
        // Darknet addresses are never routed or geolocated.
        let dark = config.darknet.addr_at(12345);
        prop_assert_eq!(asdb.asn_of(dark), None);
        prop_assert_eq!(geo.country_of(dark), None);
    }

    /// Identical configs produce identical plans (pure function).
    #[test]
    fn plan_is_pure(config in arb_config()) {
        let a = AsRegistry::build(&config);
        let b = AsRegistry::build(&config);
        prop_assert_eq!(a.ases().len(), b.ases().len());
        for (x, y) in a.ases().iter().zip(b.ases()) {
            prop_assert_eq!(x.asn, y.asn);
            prop_assert_eq!(&x.prefixes, &y.prefixes);
            prop_assert_eq!(x.country, y.country);
        }
    }
}
