//! A binary trie keyed on IPv4 prefixes with longest-prefix-match lookup.
//!
//! The trie is uncompressed (one node per bit of prefix) which bounds every
//! operation at 32 steps; nodes live in a `Vec` arena, so there is no
//! pointer chasing through separate allocations and no unsafe code.

use dosscope_types::Ipv4Cidr;
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    children: [u32; 2],
    /// Index into `values`, or `NO_NODE`.
    value: u32,
}

impl Node {
    fn new() -> Node {
        Node {
            children: [NO_NODE, NO_NODE],
            value: NO_NODE,
        }
    }
}

/// A map from IPv4 CIDR prefixes to values with longest-prefix-match
/// semantics. Inserting the same prefix twice replaces the value.
#[derive(Debug, Clone)]
pub struct PrefixMap<V> {
    nodes: Vec<Node>,
    values: Vec<(Ipv4Cidr, V)>,
    len: usize,
}

impl<V> Default for PrefixMap<V> {
    fn default() -> Self {
        PrefixMap::new()
    }
}

impl<V> PrefixMap<V> {
    /// An empty map.
    pub fn new() -> PrefixMap<V> {
        PrefixMap {
            nodes: vec![Node::new()],
            values: Vec::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth as u32)) & 1) as usize
    }

    /// Insert a prefix. Returns the previous value if the exact prefix was
    /// already present.
    pub fn insert(&mut self, prefix: Ipv4Cidr, value: V) -> Option<V> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            let child = self.nodes[node].children[b];
            node = if child == NO_NODE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let slot = self.nodes[node].value;
        if slot == NO_NODE {
            self.nodes[node].value = self.values.len() as u32;
            self.values.push((prefix, value));
            self.len += 1;
            None
        } else {
            let old = std::mem::replace(&mut self.values[slot as usize], (prefix, value));
            Some(old.1)
        }
    }

    /// Longest-prefix-match lookup: the most specific stored prefix
    /// containing `addr`, with its value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Ipv4Cidr, &V)> {
        let a = u32::from(addr);
        let mut node = 0usize;
        let mut best: Option<u32> = None;
        for depth in 0..=32u8 {
            if self.nodes[node].value != NO_NODE {
                best = Some(self.nodes[node].value);
            }
            if depth == 32 {
                break;
            }
            let child = self.nodes[node].children[Self::bit(a, depth)];
            if child == NO_NODE {
                break;
            }
            node = child as usize;
        }
        best.map(|i| {
            let (p, ref v) = self.values[i as usize];
            (p, v)
        })
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, prefix: &Ipv4Cidr) -> Option<&V> {
        let addr = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let child = self.nodes[node].children[Self::bit(addr, depth)];
            if child == NO_NODE {
                return None;
            }
            node = child as usize;
        }
        let slot = self.nodes[node].value;
        if slot == NO_NODE {
            None
        } else {
            let (p, ref v) = self.values[slot as usize];
            (p == *prefix).then_some(v)
        }
    }

    /// Iterate over all stored `(prefix, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Cidr, &V)> {
        self.values.iter().map(|(p, v)| (*p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_lookup() {
        let m: PrefixMap<u32> = PrefixMap::new();
        assert!(m.lookup(addr("1.2.3.4")).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut m = PrefixMap::new();
        m.insert(cidr("10.0.0.0/8"), 8);
        m.insert(cidr("10.10.0.0/16"), 16);
        m.insert(cidr("10.10.10.0/24"), 24);
        assert_eq!(m.lookup(addr("10.10.10.10")).unwrap().1, &24);
        assert_eq!(m.lookup(addr("10.10.99.1")).unwrap().1, &16);
        assert_eq!(m.lookup(addr("10.99.0.1")).unwrap().1, &8);
        assert!(m.lookup(addr("11.0.0.1")).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut m = PrefixMap::new();
        m.insert(cidr("0.0.0.0/0"), "default");
        m.insert(cidr("192.0.2.0/24"), "doc");
        assert_eq!(m.lookup(addr("8.8.8.8")).unwrap().1, &"default");
        assert_eq!(m.lookup(addr("192.0.2.1")).unwrap().1, &"doc");
    }

    #[test]
    fn host_route() {
        let mut m = PrefixMap::new();
        m.insert(cidr("203.0.113.7/32"), 1);
        assert_eq!(m.lookup(addr("203.0.113.7")).unwrap().1, &1);
        assert!(m.lookup(addr("203.0.113.8")).is_none());
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut m = PrefixMap::new();
        assert_eq!(m.insert(cidr("10.0.0.0/8"), 1), None);
        assert_eq!(m.insert(cidr("10.0.0.0/8"), 2), Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(addr("10.0.0.1")).unwrap().1, &2);
    }

    #[test]
    fn exact_get() {
        let mut m = PrefixMap::new();
        m.insert(cidr("10.0.0.0/8"), 8);
        m.insert(cidr("10.0.0.0/16"), 16);
        assert_eq!(m.get(&cidr("10.0.0.0/8")), Some(&8));
        assert_eq!(m.get(&cidr("10.0.0.0/16")), Some(&16));
        assert_eq!(m.get(&cidr("10.0.0.0/12")), None);
        assert_eq!(m.get(&cidr("11.0.0.0/8")), None);
    }

    #[test]
    fn lookup_returns_matching_prefix() {
        let mut m = PrefixMap::new();
        m.insert(cidr("172.16.0.0/12"), ());
        let (p, _) = m.lookup(addr("172.20.1.1")).unwrap();
        assert_eq!(p, cidr("172.16.0.0/12"));
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut m = PrefixMap::new();
        m.insert(cidr("128.0.0.0/1"), "hi");
        m.insert(cidr("0.0.0.0/1"), "lo");
        assert_eq!(m.lookup(addr("200.1.1.1")).unwrap().1, &"hi");
        assert_eq!(m.lookup(addr("100.1.1.1")).unwrap().1, &"lo");
    }

    #[test]
    fn iter_yields_all() {
        let mut m = PrefixMap::new();
        m.insert(cidr("10.0.0.0/8"), 1);
        m.insert(cidr("192.168.0.0/16"), 2);
        let all: Vec<_> = m.iter().map(|(p, v)| (p.to_string(), *v)).collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&("10.0.0.0/8".to_string(), 1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_cidr() -> impl Strategy<Value = Ipv4Cidr> {
        (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Cidr::new(Ipv4Addr::from(a), l))
    }

    proptest! {
        /// LPM must agree with a brute-force linear scan over all inserted
        /// prefixes (most specific containing prefix wins; later insert of
        /// an equal prefix wins).
        #[test]
        fn lpm_agrees_with_linear_scan(
            entries in proptest::collection::vec((arb_cidr(), any::<u16>()), 1..40),
            probes in proptest::collection::vec(any::<u32>(), 1..40),
        ) {
            let mut m = PrefixMap::new();
            for (p, v) in &entries {
                m.insert(*p, *v);
            }
            for probe in probes {
                let addr = Ipv4Addr::from(probe);
                let expected = entries
                    .iter()
                    .filter(|(p, _)| p.contains(addr))
                    // max_by_key is stable: later (= more recently inserted)
                    // entries win ties, matching replace-on-insert.
                    .max_by_key(|(p, _)| p.len())
                    .map(|(_, v)| *v);
                let got = m.lookup(addr).map(|(_, v)| *v);
                prop_assert_eq!(got, expected);
            }
        }

        /// Every inserted prefix is retrievable by exact get, and its own
        /// network address LPMs to a prefix at least as specific.
        #[test]
        fn insert_then_get(entries in proptest::collection::vec((arb_cidr(), any::<u16>()), 1..40)) {
            let mut m = PrefixMap::new();
            let mut last: std::collections::HashMap<Ipv4Cidr, u16> = Default::default();
            for (p, v) in &entries {
                m.insert(*p, *v);
                last.insert(*p, *v);
            }
            for (p, v) in &last {
                prop_assert_eq!(m.get(p), Some(v));
                let (found, _) = m.lookup(p.network()).unwrap();
                prop_assert!(found.len() >= p.len() || found.covers(p));
            }
            prop_assert_eq!(m.len(), last.len());
        }
    }
}
