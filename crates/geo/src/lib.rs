//! # dosscope-geo
//!
//! Address metadata for the dosscope analyses: a longest-prefix-match
//! [`PrefixMap`] (the structure behind both databases), an IP-geolocation
//! database ([`GeoDb`], standing in for NetAcuity Edge), a prefix-to-AS
//! database ([`AsDb`], standing in for CAIDA's Routeviews pfx2as), and a
//! synthetic-but-realistic [`registry`] that plans the simulated IPv4
//! address space (countries, autonomous systems, hosters, the darknet).
//!
//! The lookup code paths are the real thing — the paper enriches every
//! attack target with geolocation and origin AS exactly like
//! [`GeoDb::country_of`]/[`AsDb::asn_of`] do; only the database contents
//! are synthetic (see DESIGN.md for the substitution argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod trie;

pub use registry::{AsInfo, AsRegistry, OrgKind, RegistryConfig};
pub use trie::PrefixMap;

use dosscope_types::{Asn, CountryCode, Ipv4Cidr};
use std::net::Ipv4Addr;

/// IP-geolocation database: longest-prefix match from address to country.
///
/// Stands in for the NetAcuity Edge Premium data the paper uses to add
/// country metadata to attack targets.
#[derive(Debug, Default, Clone)]
pub struct GeoDb {
    map: PrefixMap<CountryCode>,
}

impl GeoDb {
    /// Empty database.
    pub fn new() -> GeoDb {
        GeoDb::default()
    }

    /// Register a prefix as geolocating to `country`.
    pub fn insert(&mut self, prefix: Ipv4Cidr, country: CountryCode) {
        self.map.insert(prefix, country);
    }

    /// The country an address geolocates to, if covered.
    pub fn country_of(&self, addr: Ipv4Addr) -> Option<CountryCode> {
        self.map.lookup(addr).map(|(_, c)| *c)
    }

    /// Number of prefixes in the database.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Prefix-to-AS database: longest-prefix match from address to origin ASN.
///
/// Stands in for the Routeviews pfx2as mapping the paper uses for BGP
/// routing metadata.
#[derive(Debug, Default, Clone)]
pub struct AsDb {
    map: PrefixMap<Asn>,
}

impl AsDb {
    /// Empty database.
    pub fn new() -> AsDb {
        AsDb::default()
    }

    /// Register a prefix as originated by `asn`.
    pub fn insert(&mut self, prefix: Ipv4Cidr, asn: Asn) {
        self.map.insert(prefix, asn);
    }

    /// The origin AS of an address, if covered.
    pub fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.map.lookup(addr).map(|(_, a)| *a)
    }

    /// The covering prefix and origin AS of an address, if covered.
    pub fn route_of(&self, addr: Ipv4Addr) -> Option<(Ipv4Cidr, Asn)> {
        self.map.lookup(addr).map(|(p, a)| (p, *a))
    }

    /// Number of prefixes in the database.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geodb_lpm_prefers_longer_prefix() {
        let mut db = GeoDb::new();
        db.insert("10.0.0.0/8".parse().unwrap(), CountryCode::new("US"));
        db.insert("10.1.0.0/16".parse().unwrap(), CountryCode::new("DE"));
        assert_eq!(
            db.country_of("10.1.2.3".parse().unwrap()),
            Some(CountryCode::new("DE"))
        );
        assert_eq!(
            db.country_of("10.2.2.3".parse().unwrap()),
            Some(CountryCode::new("US"))
        );
        assert_eq!(db.country_of("11.0.0.1".parse().unwrap()), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn asdb_route_lookup() {
        let mut db = AsDb::new();
        let p: Ipv4Cidr = "192.0.2.0/24".parse().unwrap();
        db.insert(p, Asn(64500));
        assert_eq!(db.asn_of("192.0.2.200".parse().unwrap()), Some(Asn(64500)));
        assert_eq!(
            db.route_of("192.0.2.200".parse().unwrap()),
            Some((p, Asn(64500)))
        );
        assert_eq!(db.asn_of("192.0.3.1".parse().unwrap()), None);
    }
}
