//! Synthetic Internet address plan: countries, autonomous systems and the
//! prefixes they originate.
//!
//! The plan is deterministic for a given [`RegistryConfig`] and provides
//! the content for both metadata databases ([`crate::GeoDb`],
//! [`crate::AsDb`]). The country weights approximate published IPv4
//! address-space usage estimates ("Lost in Space", JSAC 2016) — e.g. the
//! United States holds by far the most space and Japan ranks third — so
//! that the paper's observation "by-country target ranking follows Internet
//! space usage patterns, with notable exceptions (Japan low, Russia/France
//! high)" is reproducible: the *usage* plan here ranks Japan high while the
//! attack generator's target weights rank it low.
//!
//! Notable real-world organisations (large hosters, clouds, DPS operators)
//! get dedicated ASes with their well-known AS numbers, because Section 5
//! of the paper identifies attack peaks by exactly these names.

use crate::{AsDb, GeoDb};
use dosscope_types::{Asn, CountryCode, Ipv4Cidr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What kind of organisation an AS is; drives hosting placement in
/// `dosscope-dns` and the narrative labels of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrgKind {
    /// Access/transit ISP.
    Isp,
    /// Web hosting company (GoDaddy, OVH, ...).
    Hoster,
    /// Public cloud (AWS, Google Cloud).
    Cloud,
    /// DDoS protection service operator.
    Dps,
    /// Anything else (enterprises, universities, ...).
    Enterprise,
}

/// An autonomous system in the synthetic plan.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// AS number.
    pub asn: Asn,
    /// Organisation name ("GoDaddy", "AS-NN-xx", ...).
    pub name: String,
    /// Registration country.
    pub country: CountryCode,
    /// Organisation kind.
    pub kind: OrgKind,
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Ipv4Cidr>,
}

impl AsInfo {
    /// Total number of addresses across all originated prefixes.
    pub fn address_count(&self) -> u64 {
        self.prefixes.iter().map(|p| p.size()).sum()
    }

    /// Sample a uniformly random address within this AS.
    pub fn sample_addr<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        let total = self.address_count();
        debug_assert!(total > 0, "AS without prefixes");
        let mut i = rng.gen_range(0..total);
        for p in &self.prefixes {
            if i < p.size() {
                return p.addr_at(i);
            }
            i -= p.size();
        }
        unreachable!("index within total address count")
    }
}

/// Configuration for the synthetic address plan.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// RNG seed: the whole plan is a pure function of the config.
    pub seed: u64,
    /// The telescope's darknet; never allocated to any AS.
    pub darknet: Ipv4Cidr,
    /// Total number of "generic" prefixes to allocate across countries
    /// (notable organisations get theirs on top). More prefixes mean more
    /// /16 and ASN diversity in the reports.
    pub generic_prefixes: u32,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            seed: 0x005C09E,
            darknet: Ipv4Cidr::new(Ipv4Addr::new(44, 0, 0, 0), 8),
            generic_prefixes: 900,
        }
    }
}

/// Country share of used IPv4 address space, in arbitrary weight units.
/// Approximates published usage estimates; only the ranking and rough
/// proportions matter for the reproduction.
const COUNTRY_USAGE: &[(&str, u32)] = &[
    ("US", 350),
    ("CN", 120),
    ("JP", 63), // ranks third in usage estimates, as the paper notes
    ("DE", 45),
    ("GB", 43),
    ("KR", 40),
    ("FR", 38),
    ("BR", 33),
    ("CA", 30),
    ("IT", 25),
    ("RU", 24),
    ("AU", 22),
    ("NL", 20),
    ("IN", 19),
    ("ES", 17),
    ("MX", 15),
    ("SE", 13),
    ("TW", 12),
    ("PL", 11),
    ("TR", 10),
    ("ZA", 9),
    ("AR", 8),
    ("CH", 8),
    ("VN", 7),
    ("ID", 7),
    ("TH", 6),
    ("UA", 6),
    ("EG", 5),
    ("SA", 5),
    ("NG", 4),
];

/// Notable organisations with dedicated ASes: `(asn, name, country, kind,
/// number of /16-equivalent prefixes)`. AS numbers are the organisations'
/// well-known ones; AS12276 is labelled OVH following the paper's text.
const NOTABLE_ORGS: &[(u32, &str, &str, OrgKind, u32)] = &[
    (26496, "GoDaddy", "US", OrgKind::Hoster, 4),
    (16509, "Amazon AWS", "US", OrgKind::Cloud, 6),
    (15169, "Google Cloud", "US", OrgKind::Cloud, 5),
    (2635, "Automattic (WordPress)", "US", OrgKind::Hoster, 1),
    (53831, "Squarespace", "US", OrgKind::Hoster, 1),
    (12276, "OVH", "FR", OrgKind::Hoster, 4),
    (29169, "Gandi", "FR", OrgKind::Hoster, 1),
    (22612, "eNom", "US", OrgKind::Hoster, 1),
    (19871, "Network Solutions", "US", OrgKind::Hoster, 1),
    (46606, "Endurance (EIG)", "US", OrgKind::Hoster, 2),
    (4134, "China Telecom", "CN", OrgKind::Isp, 6),
    (4837, "China Unicom", "CN", OrgKind::Isp, 5),
    // DPS operators (scrubbing-centre space; BGP-diverted customers land
    // here). Names match the ten providers of Table 3.
    (20940, "Akamai", "US", OrgKind::Dps, 2),
    (209, "CenturyLink", "US", OrgKind::Dps, 2),
    (13335, "CloudFlare", "US", OrgKind::Dps, 2),
    (19324, "DOSarrest", "CA", OrgKind::Dps, 1),
    (55002, "F5 Networks", "US", OrgKind::Dps, 1),
    (19551, "Incapsula", "US", OrgKind::Dps, 1),
    (3356, "Level 3", "US", OrgKind::Dps, 2),
    (19905, "Neustar", "US", OrgKind::Dps, 1),
    (26415, "Verisign", "US", OrgKind::Dps, 1),
    (57363, "VirtualRoad", "DK", OrgKind::Dps, 1),
];

/// The full synthetic address plan plus the two metadata databases built
/// from it.
#[derive(Debug)]
pub struct AsRegistry {
    ases: Vec<AsInfo>,
    by_asn: HashMap<Asn, usize>,
    by_country: HashMap<CountryCode, Vec<usize>>,
    darknet: Ipv4Cidr,
}

/// Sequential prefix allocator over public unicast space that skips
/// reserved ranges and the darknet.
struct Allocator {
    next: u32,
    darknet: Ipv4Cidr,
}

impl Allocator {
    fn new(darknet: Ipv4Cidr) -> Allocator {
        Allocator {
            next: u32::from(Ipv4Addr::new(1, 0, 0, 0)),
            darknet,
        }
    }

    fn reserved(addr: u32) -> Option<Ipv4Cidr> {
        const RESERVED: &[(&str, u8)] = &[
            ("0.0.0.0", 8),
            ("10.0.0.0", 8),
            ("127.0.0.0", 8),
            ("169.254.0.0", 16),
            ("172.16.0.0", 12),
            ("192.168.0.0", 16),
            ("224.0.0.0", 3),
        ];
        let a = Ipv4Addr::from(addr);
        RESERVED
            .iter()
            .map(|(s, l)| Ipv4Cidr::new(s.parse().expect("static addr"), *l))
            .find(|c| c.contains(a))
    }

    /// Allocate the next aligned prefix of length `len`, skipping reserved
    /// space and the darknet.
    fn alloc(&mut self, len: u8) -> Ipv4Cidr {
        let size = 1u64 << (32 - len as u32);
        loop {
            // Align up.
            let aligned = (self.next as u64).div_ceil(size) * size;
            assert!(aligned + size <= u32::MAX as u64 + 1, "address space exhausted");
            let candidate = Ipv4Cidr::new(Ipv4Addr::from(aligned as u32), len);
            if let Some(r) = Self::reserved(aligned as u32) {
                self.next = u32::from(r.last()).saturating_add(1);
                continue;
            }
            if self.darknet.covers(&candidate)
                || candidate.covers(&self.darknet)
                || self.darknet.contains(candidate.first())
            {
                self.next = u32::from(self.darknet.last()).saturating_add(1);
                continue;
            }
            self.next = (aligned + size) as u32;
            return candidate;
        }
    }
}

impl AsRegistry {
    /// Build the plan from a config. Deterministic: equal configs yield an
    /// identical registry.
    pub fn build(config: &RegistryConfig) -> AsRegistry {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut alloc = Allocator::new(config.darknet);
        let mut ases: Vec<AsInfo> = Vec::new();

        // Notable organisations first: fixed ASNs, /16 blocks.
        for &(asn, name, cc, kind, blocks) in NOTABLE_ORGS {
            let prefixes = (0..blocks).map(|_| alloc.alloc(16)).collect();
            ases.push(AsInfo {
                asn: Asn(asn),
                name: name.to_string(),
                country: CountryCode::new(cc),
                kind,
                prefixes,
            });
        }

        // Generic country space: prefixes proportional to usage share,
        // grouped into per-country ASes of ~3 prefixes each.
        let total_weight: u32 = COUNTRY_USAGE.iter().map(|(_, w)| w).sum();
        let mut next_generic_asn = 64500u32;
        for &(cc, weight) in COUNTRY_USAGE {
            let country = CountryCode::new(cc);
            let n_prefixes =
                ((config.generic_prefixes as u64 * weight as u64) / total_weight as u64).max(1);
            let mut remaining = n_prefixes;
            while remaining > 0 {
                let batch = remaining.min(rng.gen_range(2..=4));
                remaining -= batch;
                let prefixes = (0..batch)
                    .map(|_| {
                        // Mix of sizes; /16 dominates, some /15 and /17-/19.
                        let len = *[15u8, 16, 16, 16, 17, 18, 19]
                            .get(rng.gen_range(0..7usize))
                            .expect("static table");
                        alloc.alloc(len)
                    })
                    .collect();
                ases.push(AsInfo {
                    asn: Asn(next_generic_asn),
                    name: format!("AS-{cc}-{next_generic_asn}"),
                    country,
                    kind: if rng.gen_bool(0.12) {
                        OrgKind::Hoster
                    } else if rng.gen_bool(0.5) {
                        OrgKind::Isp
                    } else {
                        OrgKind::Enterprise
                    },
                    prefixes,
                });
                next_generic_asn += 1;
            }
        }

        let by_asn = ases
            .iter()
            .enumerate()
            .map(|(i, a)| (a.asn, i))
            .collect::<HashMap<_, _>>();
        let mut by_country: HashMap<CountryCode, Vec<usize>> = HashMap::new();
        for (i, a) in ases.iter().enumerate() {
            by_country.entry(a.country).or_default().push(i);
        }

        AsRegistry {
            ases,
            by_asn,
            by_country,
            darknet: config.darknet,
        }
    }

    /// All ASes in the plan.
    pub fn ases(&self) -> &[AsInfo] {
        &self.ases
    }

    /// Look up an AS by number.
    pub fn by_asn(&self, asn: Asn) -> Option<&AsInfo> {
        self.by_asn.get(&asn).map(|&i| &self.ases[i])
    }

    /// Look up a notable organisation's AS by name.
    pub fn by_name(&self, name: &str) -> Option<&AsInfo> {
        self.ases.iter().find(|a| a.name == name)
    }

    /// ASes registered in `country`.
    pub fn ases_in_country(&self, country: CountryCode) -> impl Iterator<Item = &AsInfo> {
        self.by_country
            .get(&country)
            .into_iter()
            .flatten()
            .map(move |&i| &self.ases[i])
    }

    /// ASes of a given organisation kind.
    pub fn ases_of_kind(&self, kind: OrgKind) -> impl Iterator<Item = &AsInfo> {
        self.ases.iter().filter(move |a| a.kind == kind)
    }

    /// The darknet prefix (the telescope's address space).
    pub fn darknet(&self) -> Ipv4Cidr {
        self.darknet
    }

    /// Sample a random address in a random AS of `country`, if the country
    /// exists in the plan.
    pub fn sample_addr_in_country<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        country: CountryCode,
    ) -> Option<Ipv4Addr> {
        let list = self.by_country.get(&country)?;
        let idx = list[rng.gen_range(0..list.len())];
        Some(self.ases[idx].sample_addr(rng))
    }

    /// Build the geolocation database for this plan.
    pub fn build_geodb(&self) -> GeoDb {
        let mut db = GeoDb::new();
        for a in &self.ases {
            for p in &a.prefixes {
                db.insert(*p, a.country);
            }
        }
        db
    }

    /// Build the prefix-to-AS database for this plan.
    pub fn build_asdb(&self) -> AsDb {
        let mut db = AsDb::new();
        for a in &self.ases {
            for p in &a.prefixes {
                db.insert(*p, a.asn);
            }
        }
        db
    }

    /// All countries present in the plan.
    pub fn countries(&self) -> impl Iterator<Item = CountryCode> + '_ {
        self.by_country.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> AsRegistry {
        AsRegistry::build(&RegistryConfig::default())
    }

    #[test]
    fn deterministic() {
        let a = registry();
        let b = registry();
        assert_eq!(a.ases().len(), b.ases().len());
        for (x, y) in a.ases().iter().zip(b.ases()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.prefixes, y.prefixes);
        }
    }

    #[test]
    fn no_prefix_overlaps() {
        let r = registry();
        let mut all: Vec<Ipv4Cidr> = r
            .ases()
            .iter()
            .flat_map(|a| a.prefixes.iter().copied())
            .collect();
        all.sort_by_key(|p| (u32::from(p.network()), p.len()));
        for w in all.windows(2) {
            assert!(
                !w[0].covers(&w[1]) && !w[1].covers(&w[0]),
                "{} overlaps {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn darknet_never_allocated() {
        let r = registry();
        let darknet = r.darknet();
        for a in r.ases() {
            for p in &a.prefixes {
                assert!(
                    !darknet.covers(p) && !p.covers(&darknet),
                    "{} ({}) intersects the darknet",
                    p,
                    a.name
                );
            }
        }
    }

    #[test]
    fn reserved_space_never_allocated() {
        let r = registry();
        for a in r.ases() {
            for p in &a.prefixes {
                for probe in [p.first(), p.last()] {
                    let o = probe.octets();
                    assert!(o[0] != 0 && o[0] != 10 && o[0] != 127 && o[0] < 224, "{p}");
                }
            }
        }
    }

    #[test]
    fn notable_orgs_present() {
        let r = registry();
        for name in ["GoDaddy", "OVH", "Amazon AWS", "Google Cloud", "CloudFlare"] {
            let a = r.by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!a.prefixes.is_empty());
        }
        assert_eq!(r.by_name("OVH").unwrap().asn, Asn(12276));
        assert_eq!(r.by_name("OVH").unwrap().country, CountryCode::new("FR"));
    }

    #[test]
    fn lookup_by_asn() {
        let r = registry();
        let a = r.by_asn(Asn(26496)).expect("GoDaddy by ASN");
        assert_eq!(a.name, "GoDaddy");
    }

    #[test]
    fn dps_kind_count() {
        let r = registry();
        assert_eq!(r.ases_of_kind(OrgKind::Dps).count(), 10, "ten DPS providers");
    }

    #[test]
    fn geodb_and_asdb_agree_with_plan() {
        let r = registry();
        let geo = r.build_geodb();
        let asdb = r.build_asdb();
        let mut rng = SmallRng::seed_from_u64(7);
        for a in r.ases().iter().take(50) {
            let addr = a.sample_addr(&mut rng);
            assert_eq!(geo.country_of(addr), Some(a.country), "{addr} in {}", a.name);
            assert_eq!(asdb.asn_of(addr), Some(a.asn));
        }
    }

    #[test]
    fn country_sampling() {
        let r = registry();
        let mut rng = SmallRng::seed_from_u64(9);
        let us = CountryCode::new("US");
        let geo = r.build_geodb();
        for _ in 0..20 {
            let addr = r.sample_addr_in_country(&mut rng, us).unwrap();
            assert_eq!(geo.country_of(addr), Some(us));
        }
        assert!(r
            .sample_addr_in_country(&mut rng, CountryCode::new("ZZ"))
            .is_none());
    }

    #[test]
    fn usage_ranking_has_japan_third() {
        // The plan must rank JP high in *usage* so the paper's "notable
        // exception" (JP low in attacks) is meaningful.
        let r = registry();
        let mut per_country: HashMap<CountryCode, u64> = HashMap::new();
        for a in r.ases() {
            *per_country.entry(a.country).or_default() += a.address_count();
        }
        let mut ranked: Vec<_> = per_country.into_iter().collect();
        ranked.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        let top: Vec<&str> = ranked.iter().take(3).map(|(c, _)| c.as_str()).collect();
        assert_eq!(top[0], "US");
        assert!(top.contains(&"JP") || ranked[3].0.as_str() == "JP",
            "JP must rank in the top 4 of usage, got {ranked:?}");
    }

    #[test]
    fn allocator_skips_reserved() {
        let mut alloc = Allocator::new(Ipv4Cidr::new(Ipv4Addr::new(44, 0, 0, 0), 8));
        // Burn allocations until we are past 44/8 and check none landed in
        // reserved or darknet space.
        for _ in 0..600 {
            let p = alloc.alloc(16);
            let o = p.first().octets();
            assert!(o[0] != 10 && o[0] != 44 && o[0] != 127 && o[0] != 0);
        }
    }
}
