//! Property-based tests for the C&C monitor: conservation between
//! commands and events, and duration-cap invariants, for arbitrary
//! command streams.

use dosscope_botmon::{
    AttackMethod, BotFamily, BotnetId, CncAction, CncCommand, CncMonitor, MonitorConfig,
};
use dosscope_types::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// (botnet, target octet, is_start, time delta)
fn arb_script() -> impl Strategy<Value = Vec<(u8, u8, bool, u64)>> {
    proptest::collection::vec((0u8..4, 0u8..4, any::<bool>(), 0u64..50_000), 1..60)
}

fn build_commands(script: &[(u8, u8, bool, u64)]) -> Vec<CncCommand> {
    let mut ts = 0u64;
    let mut out = Vec::new();
    for &(botnet, tgt, is_start, dt) in script {
        ts += dt;
        let target = Ipv4Addr::new(10, 0, 0, tgt);
        let action = if is_start {
            CncAction::Start {
                target,
                port: 80,
                method: AttackMethod::SynFlood,
            }
        } else {
            CncAction::Stop { target }
        };
        out.push(CncCommand {
            botnet: BotnetId(botnet as u32),
            family: BotFamily::Nitol,
            ts: SimTime(ts),
            action,
        });
    }
    out
}

proptest! {
    /// For any time-ordered command stream: number of events equals the
    /// number of starts (every start eventually closes — by stop, restart
    /// or end-of-trace cap), stops without a start are counted as orphans,
    /// and every event respects the duration cap.
    #[test]
    fn conservation(script in arb_script()) {
        let cmds = build_commands(&script);
        let starts = cmds
            .iter()
            .filter(|c| matches!(c.action, CncAction::Start { .. }))
            .count();
        let stops = cmds.len() - starts;
        let mut m = CncMonitor::with_config(MonitorConfig {
            max_attack_secs: 3_600,
        });
        for c in &cmds {
            m.ingest(c);
        }
        let horizon = SimTime(10_000_000);
        let (events, stats) = m.finish(horizon);
        prop_assert_eq!(events.len(), starts, "every start becomes one event");
        prop_assert_eq!(stats.commands as usize, cmds.len());
        prop_assert_eq!(
            (stats.stopped + stats.capped) as usize,
            events.len(),
            "every event closed exactly once"
        );
        prop_assert!(stats.orphan_stops as usize <= stops);
        for e in &events {
            prop_assert!(e.duration_secs() >= 1);
            prop_assert!(e.duration_secs() <= 3_600, "cap violated: {}", e.duration_secs());
            prop_assert!(e.when.end <= horizon.add_secs(0).max(e.when.end));
        }
        // Events are sorted by start.
        prop_assert!(events.windows(2).all(|w| w[0].when.start <= w[1].when.start));
    }

    /// A stream of starts only (no stops) yields exactly one capped event
    /// per (botnet, target) restart chain.
    #[test]
    fn starts_only(script in proptest::collection::vec((0u8..3, 0u8..3, 1u64..5_000), 1..30)) {
        let cmds: Vec<CncCommand> = {
            let mut ts = 0u64;
            script
                .iter()
                .map(|&(b, t, dt)| {
                    ts += dt;
                    CncCommand {
                        botnet: BotnetId(b as u32),
                        family: BotFamily::Mirai,
                        ts: SimTime(ts),
                        action: CncAction::Start {
                            target: Ipv4Addr::new(10, 0, 0, t),
                            port: 0,
                            method: AttackMethod::UdpFlood,
                        },
                    }
                })
                .collect()
        };
        let mut m = CncMonitor::new();
        for c in &cmds {
            m.ingest(c);
        }
        let (events, stats) = m.finish(SimTime(100_000_000));
        prop_assert_eq!(events.len(), cmds.len());
        prop_assert_eq!(stats.stopped, 0, "no explicit stops exist");
        prop_assert_eq!(stats.orphan_stops, 0);
    }
}
