//! # dosscope-botmon
//!
//! A third DoS attack data source: a botnet Command & Control monitor in
//! the style of Wang et al. (DSN 2015), who inferred 51 k attack events
//! from the C&C channels of 674 botnets across 23 families.
//!
//! The paper's two primary data sets deliberately do not cover *unspoofed*
//! direct attacks (its footnote 4), and its Section 8 calls for
//! "development and integration of other attack data sources, e.g.,
//! unspoofed volumetric attacks". This crate provides exactly that
//! integration surface: [`CncCommand`] is the raw observation (an attack
//! instruction seen on a monitored C&C channel) and [`CncMonitor`] infers
//! [`BotnetEvent`]s from start/stop command pairs, with a duration cap for
//! botnets that never send a stop.
//!
//! The fusion side lives in `dosscope_core::coverage`, which measures how
//! much of the botnet-driven attack population the telescope/honeypot
//! pair could never have seen.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dosscope_types::{SimTime, TimeRange};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Identifier of one monitored botnet instance (a distinct C&C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BotnetId(pub u32);

/// Malware family of a monitored botnet. DirtJumper and YZF (Yoddos) are
/// the families of Welzel et al.; Mirai is the 2016 IoT family behind the
/// Dyn and OVH attacks the paper's introduction cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum BotFamily {
    DirtJumper,
    Yoddos,
    Mirai,
    Nitol,
    Gafgyt,
}

impl BotFamily {
    /// All modelled families.
    pub const ALL: [BotFamily; 5] = [
        BotFamily::DirtJumper,
        BotFamily::Yoddos,
        BotFamily::Mirai,
        BotFamily::Nitol,
        BotFamily::Gafgyt,
    ];
}

impl std::fmt::Display for BotFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BotFamily::DirtJumper => f.write_str("DirtJumper"),
            BotFamily::Yoddos => f.write_str("Yoddos"),
            BotFamily::Mirai => f.write_str("Mirai"),
            BotFamily::Nitol => f.write_str("Nitol"),
            BotFamily::Gafgyt => f.write_str("Gafgyt"),
        }
    }
}

/// Attack method carried in the C&C instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AttackMethod {
    HttpFlood,
    SynFlood,
    UdpFlood,
}

/// The action of one C&C instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CncAction {
    /// Begin attacking `target`.
    Start {
        /// The victim.
        target: Ipv4Addr,
        /// Destination port of the flood (0 = random).
        port: u16,
        /// Flood method.
        method: AttackMethod,
    },
    /// Stop attacking `target`.
    Stop {
        /// The victim.
        target: Ipv4Addr,
    },
}

/// One observed C&C instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CncCommand {
    /// The issuing botnet.
    pub botnet: BotnetId,
    /// Its malware family.
    pub family: BotFamily,
    /// When the command was seen.
    pub ts: SimTime,
    /// What it instructed.
    pub action: CncAction,
}

/// One inferred botnet attack event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BotnetEvent {
    /// The victim.
    pub target: Ipv4Addr,
    /// Active interval (start command to stop command or cap).
    pub when: TimeRange,
    /// The attacking botnet.
    pub botnet: BotnetId,
    /// Its family.
    pub family: BotFamily,
    /// Flood method.
    pub method: AttackMethod,
    /// Destination port (0 = random).
    pub port: u16,
    /// Whether the event ended with an explicit stop command (false:
    /// capped after [`MonitorConfig::max_attack_secs`]).
    pub explicit_stop: bool,
}

impl BotnetEvent {
    /// Event duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.when.duration_secs()
    }
}

/// Monitor parameters.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Cap on a single attack when no stop command arrives (botnets
    /// frequently never send one); Wang et al. use a comparable cutoff.
    pub max_attack_secs: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            max_attack_secs: 6 * 3_600,
        }
    }
}

/// Statistics of a monitoring run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorStats {
    /// Commands ingested.
    pub commands: u64,
    /// Stop commands with no matching start (dropped).
    pub orphan_stops: u64,
    /// Events closed by an explicit stop.
    pub stopped: u64,
    /// Events closed by the duration cap.
    pub capped: u64,
}

/// The C&C monitor: pairs start/stop commands per (botnet, target) into
/// attack events.
#[derive(Debug)]
pub struct CncMonitor {
    config: MonitorConfig,
    open: HashMap<(BotnetId, Ipv4Addr), CncCommand>,
    events: Vec<BotnetEvent>,
    stats: MonitorStats,
}

impl Default for CncMonitor {
    fn default() -> Self {
        CncMonitor::new()
    }
}

impl CncMonitor {
    /// A monitor with default parameters.
    pub fn new() -> CncMonitor {
        CncMonitor::with_config(MonitorConfig::default())
    }

    /// A monitor with explicit parameters.
    pub fn with_config(config: MonitorConfig) -> CncMonitor {
        CncMonitor {
            config,
            open: HashMap::new(),
            events: Vec::new(),
            stats: MonitorStats::default(),
        }
    }

    /// Ingest one command (commands must arrive in time order).
    pub fn ingest(&mut self, cmd: &CncCommand) {
        self.stats.commands += 1;
        match cmd.action {
            CncAction::Start { target, .. } => {
                // A re-issued start against the same target restarts the
                // attack: close the previous one at the new start time.
                if let Some(prev) = self.open.insert((cmd.botnet, target), *cmd) {
                    self.close(prev, cmd.ts, false);
                }
            }
            CncAction::Stop { target } => match self.open.remove(&(cmd.botnet, target)) {
                Some(start) => self.close(start, cmd.ts, true),
                None => self.stats.orphan_stops += 1,
            },
        }
    }

    fn close(&mut self, start_cmd: CncCommand, end: SimTime, explicit: bool) {
        let CncAction::Start {
            target,
            port,
            method,
        } = start_cmd.action
        else {
            unreachable!("only starts are stored open");
        };
        let mut end = end.max(start_cmd.ts.add_secs(1));
        let mut explicit_stop = explicit;
        if end.secs() - start_cmd.ts.secs() > self.config.max_attack_secs {
            end = start_cmd.ts.add_secs(self.config.max_attack_secs);
            explicit_stop = false;
        }
        if explicit_stop {
            self.stats.stopped += 1;
        } else {
            self.stats.capped += 1;
        }
        self.events.push(BotnetEvent {
            target,
            when: TimeRange::new(start_cmd.ts, end),
            botnet: start_cmd.botnet,
            family: start_cmd.family,
            method,
            port,
            explicit_stop,
        });
    }

    /// End of trace: cap every still-open attack and return all events
    /// sorted by start time.
    pub fn finish(mut self, now: SimTime) -> (Vec<BotnetEvent>, MonitorStats) {
        let open: Vec<CncCommand> = self.open.drain().map(|(_, c)| c).collect();
        for cmd in open {
            self.close(cmd, now, false);
        }
        self.events.sort_by_key(|e| (e.when.start, e.target));
        (self.events, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(botnet: u32, ts: u64, target: &str) -> CncCommand {
        CncCommand {
            botnet: BotnetId(botnet),
            family: BotFamily::DirtJumper,
            ts: SimTime(ts),
            action: CncAction::Start {
                target: target.parse().unwrap(),
                port: 80,
                method: AttackMethod::HttpFlood,
            },
        }
    }

    fn stop(botnet: u32, ts: u64, target: &str) -> CncCommand {
        CncCommand {
            botnet: BotnetId(botnet),
            family: BotFamily::DirtJumper,
            ts: SimTime(ts),
            action: CncAction::Stop {
                target: target.parse().unwrap(),
            },
        }
    }

    #[test]
    fn start_stop_pairs_into_event() {
        let mut m = CncMonitor::new();
        m.ingest(&start(1, 100, "10.0.0.1"));
        m.ingest(&stop(1, 700, "10.0.0.1"));
        let (events, stats) = m.finish(SimTime(10_000));
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.duration_secs(), 600);
        assert!(e.explicit_stop);
        assert_eq!(e.method, AttackMethod::HttpFlood);
        assert_eq!(stats.stopped, 1);
        assert_eq!(stats.capped, 0);
    }

    #[test]
    fn missing_stop_capped() {
        let mut m = CncMonitor::new();
        m.ingest(&start(1, 100, "10.0.0.1"));
        let (events, stats) = m.finish(SimTime(1_000_000));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].duration_secs(), 6 * 3_600);
        assert!(!events[0].explicit_stop);
        assert_eq!(stats.capped, 1);
    }

    #[test]
    fn reissued_start_restarts() {
        let mut m = CncMonitor::new();
        m.ingest(&start(1, 100, "10.0.0.1"));
        m.ingest(&start(1, 500, "10.0.0.1"));
        m.ingest(&stop(1, 900, "10.0.0.1"));
        let (events, _) = m.finish(SimTime(10_000));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].when, TimeRange::new(SimTime(100), SimTime(500)));
        assert_eq!(events[1].when, TimeRange::new(SimTime(500), SimTime(900)));
    }

    #[test]
    fn orphan_stop_counted() {
        let mut m = CncMonitor::new();
        m.ingest(&stop(1, 100, "10.0.0.1"));
        let (events, stats) = m.finish(SimTime(1_000));
        assert!(events.is_empty());
        assert_eq!(stats.orphan_stops, 1);
    }

    #[test]
    fn botnets_and_targets_independent() {
        let mut m = CncMonitor::new();
        m.ingest(&start(1, 100, "10.0.0.1"));
        m.ingest(&start(2, 100, "10.0.0.1"));
        m.ingest(&start(1, 100, "10.0.0.2"));
        m.ingest(&stop(1, 400, "10.0.0.1"));
        let (events, _) = m.finish(SimTime(100_000));
        assert_eq!(events.len(), 3);
        let explicit = events.iter().filter(|e| e.explicit_stop).count();
        assert_eq!(explicit, 1);
    }

    #[test]
    fn late_stop_still_caps() {
        let mut m = CncMonitor::new();
        m.ingest(&start(1, 0, "10.0.0.1"));
        m.ingest(&stop(1, 10 * 24 * 3_600, "10.0.0.1"));
        let (events, stats) = m.finish(SimTime(11 * 24 * 3_600));
        assert_eq!(events[0].duration_secs(), 6 * 3_600, "cap applies");
        assert!(!events[0].explicit_stop);
        assert_eq!(stats.capped, 1);
    }
}
