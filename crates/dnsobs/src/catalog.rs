//! The organisation catalog: hosting companies, clouds and DPS providers
//! as they appear *in the DNS* (name-server names, CNAME suffixes) and in
//! BGP (origin AS).
//!
//! The paper identifies large parties behind attacked IPs "by looking at
//! routing information..., by looking at a common name server in the NS
//! record, or a common CNAME through which Web sites expand to the shared
//! IP address" — this catalog is the dictionary those identifications
//! resolve against.

use dosscope_types::Asn;

/// Index of an organisation in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrgId(pub u16);

/// The role an organisation plays for a Web site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrgRole {
    /// Classic Web hoster (GoDaddy, OVH, ...).
    Hoster,
    /// Public cloud that hosts other companies' platforms (AWS, GCP).
    Cloud,
    /// Web-site building platform (Wix, Squarespace, WordPress).
    Platform,
    /// DDoS protection service.
    Dps,
    /// Domain registrar/reseller parking pages.
    Reseller,
}

/// One organisation and its DNS/BGP fingerprint.
#[derive(Debug, Clone)]
pub struct OrgRecord {
    /// Catalog id.
    pub id: OrgId,
    /// Display name, matching the geo registry's AS names where the
    /// organisation has its own AS.
    pub name: String,
    /// Origin AS of the organisation's own address space (None for
    /// platforms hosted entirely inside a cloud, like Wix-in-AWS).
    pub asn: Option<Asn>,
    /// Name-server suffix, e.g. `ns.godaddy.example`.
    pub ns_suffix: String,
    /// CNAME suffix through which customer sites expand, if the
    /// organisation fronts its customers with CNAMEs.
    pub cname_suffix: Option<String>,
    /// Role.
    pub role: OrgRole,
}

/// The catalog: a vector of organisations with name/suffix lookups.
#[derive(Debug, Default)]
pub struct OrgCatalog {
    orgs: Vec<OrgRecord>,
}

impl OrgCatalog {
    /// Empty catalog.
    pub fn new() -> OrgCatalog {
        OrgCatalog::default()
    }

    /// Add an organisation, returning its id.
    pub fn add(
        &mut self,
        name: &str,
        asn: Option<Asn>,
        role: OrgRole,
        cname_fronted: bool,
    ) -> OrgId {
        let id = OrgId(self.orgs.len() as u16);
        let slug: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        self.orgs.push(OrgRecord {
            id,
            name: name.to_string(),
            asn,
            ns_suffix: format!("ns.{slug}.example"),
            cname_suffix: cname_fronted.then(|| format!("edge.{slug}.example")),
            role,
        });
        id
    }

    /// Look up by id.
    pub fn get(&self, id: OrgId) -> &OrgRecord {
        &self.orgs[id.0 as usize]
    }

    /// Look up by display name.
    pub fn by_name(&self, name: &str) -> Option<&OrgRecord> {
        self.orgs.iter().find(|o| o.name == name)
    }

    /// All organisations.
    pub fn orgs(&self) -> &[OrgRecord] {
        &self.orgs
    }

    /// All organisations with a given role.
    pub fn by_role(&self, role: OrgRole) -> impl Iterator<Item = &OrgRecord> {
        self.orgs.iter().filter(move |o| o.role == role)
    }

    /// Find the organisation whose NS suffix matches a name-server name.
    pub fn match_ns(&self, ns_name: &str) -> Option<&OrgRecord> {
        self.orgs.iter().find(|o| ns_name.ends_with(&o.ns_suffix))
    }

    /// Find the organisation whose CNAME suffix matches an expansion name.
    pub fn match_cname(&self, cname: &str) -> Option<&OrgRecord> {
        self.orgs
            .iter()
            .find(|o| o.cname_suffix.as_deref().is_some_and(|s| cname.ends_with(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = OrgCatalog::new();
        let id = c.add("GoDaddy", Some(Asn(26496)), OrgRole::Hoster, false);
        let rec = c.get(id);
        assert_eq!(rec.name, "GoDaddy");
        assert_eq!(rec.ns_suffix, "ns.godaddy.example");
        assert!(rec.cname_suffix.is_none());
        assert_eq!(c.by_name("GoDaddy").unwrap().id, id);
        assert!(c.by_name("Nope").is_none());
    }

    #[test]
    fn cname_fronted_orgs_get_suffix() {
        let mut c = OrgCatalog::new();
        let id = c.add("Wix", None, OrgRole::Platform, true);
        assert_eq!(
            c.get(id).cname_suffix.as_deref(),
            Some("edge.wix.example")
        );
    }

    #[test]
    fn ns_and_cname_matching() {
        let mut c = OrgCatalog::new();
        c.add("GoDaddy", Some(Asn(26496)), OrgRole::Hoster, false);
        c.add("Incapsula", Some(Asn(19551)), OrgRole::Dps, true);
        assert_eq!(
            c.match_ns("ns1.ns.godaddy.example").unwrap().name,
            "GoDaddy"
        );
        assert!(c.match_ns("ns1.elsewhere.example").is_none());
        assert_eq!(
            c.match_cname("x.edge.incapsula.example").unwrap().name,
            "Incapsula"
        );
        assert!(c.match_cname("x.edge.godaddy.example").is_none());
    }

    #[test]
    fn role_filter() {
        let mut c = OrgCatalog::new();
        c.add("A", None, OrgRole::Hoster, false);
        c.add("B", None, OrgRole::Dps, false);
        c.add("C", None, OrgRole::Dps, false);
        assert_eq!(c.by_role(OrgRole::Dps).count(), 2);
        assert_eq!(c.by_role(OrgRole::Hoster).count(), 1);
    }

    #[test]
    fn slug_strips_punctuation() {
        let mut c = OrgCatalog::new();
        let id = c.add("Endurance (EIG)", None, OrgRole::Hoster, false);
        assert_eq!(c.get(id).ns_suffix, "ns.enduranceeig.example");
    }
}
