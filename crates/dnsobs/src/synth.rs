//! Population synthesis: a scaled `.com`/`.net`/`.org` namespace with a
//! realistic hosting structure.
//!
//! What the paper *measured* — and what the synthesis therefore must
//! produce structurally — is:
//!
//! * a namespace split roughly 83/10/7 across the three gTLDs (Table 2);
//! * a heavily skewed co-hosting distribution: most hosting IPs carry one
//!   site, a long tail of hoster IPs carry thousands to millions
//!   (Figure 6), with named mega-parties (GoDaddy, Wix-in-AWS, WordPress,
//!   Squarespace, OVH, reseller parking in AWS, ...);
//! * a minority of sites pre-protected by one of ten DPS providers with a
//!   market-share profile like Table 3;
//! * churn: sites appear and disappear during the window (the last day
//!   sees ~73 % of the two-year population).
//!
//! The synthesis is deterministic for a given config and never looks at
//! attack data; targeting decisions live in `dosscope-attackgen`.

use crate::catalog::{OrgCatalog, OrgId, OrgRole};
use crate::store::{DayRange, Placement, Tld, ZoneStore};
use dosscope_geo::{AsRegistry, OrgKind};
use dosscope_types::DayIndex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Configuration for the synthetic namespace.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total Web sites over the whole window (the paper's 210 M, scaled).
    pub total_sites: u32,
    /// Window length in days (731).
    pub days: u32,
    /// Fraction of sites protected by a DPS from their first appearance
    /// ("preexisting customers"). The paper implies ≈12 % overall.
    pub preexisting_dps_fraction: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0xD05,
            total_sites: 105_000, // 210 M / 2000
            days: 731,
            preexisting_dps_fraction: 0.12,
        }
    }
}

/// A hosting IP with its organisation and planned capacity; the attack
/// generator uses this inventory for target selection.
#[derive(Debug, Clone)]
pub struct HostingSlot {
    /// The shared hosting address.
    pub ip: Ipv4Addr,
    /// Operating organisation.
    pub org: OrgId,
    /// Number of sites planned onto this IP.
    pub capacity: u32,
}

/// The synthesized population.
pub struct SynthOutput {
    /// The zone store with all placements.
    pub zone: ZoneStore,
    /// The organisation catalog (hosters, platforms, clouds, DPS).
    pub catalog: OrgCatalog,
    /// Hosting-slot inventory (including DPS slots), largest first.
    pub slots: Vec<HostingSlot>,
}

/// Mega-parties and the share of all Web sites they host. Shares echo the
/// paper's Section 5 findings (GoDaddy/Google/Wix the most frequently hit
/// large parties; a reseller parking in AWS; Wix fronted by CNAME inside
/// AWS).
const MEGA_HOSTERS: &[(&str, f64, u32, bool)] = &[
    // (name, share of sites, number of IPs, cname-fronted)
    ("GoDaddy", 0.120, 20, false),
    ("Google Cloud", 0.060, 12, false),
    ("Wix", 0.0015, 2, true),
    ("Automattic (WordPress)", 0.025, 2, true),
    ("Squarespace", 0.020, 3, true),
    ("AWS Reseller Parking", 0.020, 2, true),
    ("Endurance (EIG)", 0.020, 8, false),
    ("eNom", 0.0012, 1, false),
    ("Network Solutions", 0.010, 4, false),
    ("OVH", 0.030, 15, false),
    ("Gandi", 0.010, 4, false),
];

/// The ten DPS providers with Table-3-like customer-share weights.
const DPS_PROVIDERS: &[(&str, f64)] = &[
    ("Neustar", 0.262),
    ("DOSarrest", 0.171),
    ("Akamai", 0.142),
    ("Verisign", 0.105),
    ("CloudFlare", 0.104),
    ("Incapsula", 0.092),
    ("F5 Networks", 0.087),
    ("CenturyLink", 0.021),
    ("Level 3", 0.011),
    ("VirtualRoad", 0.000_005),
];

/// Build the organisation catalog for a registry: mega-hosters, DPS
/// providers, plus every generic hoster AS in the plan.
pub fn build_catalog(registry: &AsRegistry) -> OrgCatalog {
    let mut cat = OrgCatalog::new();
    for &(name, _, _, fronted) in MEGA_HOSTERS {
        let (asn, role) = match name {
            // Wix and the reseller live inside AWS: no own AS.
            "Wix" => (None, OrgRole::Platform),
            "AWS Reseller Parking" => (None, OrgRole::Reseller),
            "Google Cloud" => (
                registry.by_name("Google Cloud").map(|a| a.asn),
                OrgRole::Cloud,
            ),
            _ => (registry.by_name(name).map(|a| a.asn), OrgRole::Hoster),
        };
        cat.add(name, asn, role, fronted);
    }
    for &(name, _) in DPS_PROVIDERS {
        let asn = registry.by_name(name).map(|a| a.asn);
        // All considered DPS providers divert via DNS (CNAME fronting)
        // and/or BGP; fingerprints carry both.
        cat.add(name, asn, OrgRole::Dps, true);
    }
    // Generic hosters from the plan.
    for a in registry.ases_of_kind(OrgKind::Hoster) {
        if cat.by_name(&a.name).is_none() {
            cat.add(&a.name, Some(a.asn), OrgRole::Hoster, false);
        }
    }
    cat
}

/// The ten DPS provider names in Table 3 order.
pub fn dps_provider_names() -> Vec<&'static str> {
    DPS_PROVIDERS.iter().map(|&(n, _)| n).collect()
}

/// Synthesize the population.
pub fn synthesize(config: &SynthConfig, registry: &AsRegistry) -> SynthOutput {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let catalog = build_catalog(registry);
    let mut zone = ZoneStore::new();

    // ---- Plan hosting slots -------------------------------------------
    let mut slots: Vec<HostingSlot> = Vec::new();
    let total = config.total_sites as f64;

    let org_ip = |name: &str, rng: &mut SmallRng| -> Ipv4Addr {
        // An organisation's slots live in its own AS, or in AWS when it
        // has none (Wix, the reseller).
        let info = registry
            .by_name(name)
            .or_else(|| registry.by_name("Amazon AWS"))
            .expect("AWS exists in every plan");
        info.sample_addr(rng)
    };

    let mut planned: u64 = 0;
    for &(name, share, ips, _) in MEGA_HOSTERS {
        let org = catalog.by_name(name).expect("mega hosters in catalog").id;
        let per_ip = ((total * share) / ips as f64).ceil().max(1.0) as u32;
        for _ in 0..ips {
            slots.push(HostingSlot {
                ip: org_ip(name, &mut rng),
                org,
                capacity: per_ip,
            });
            planned += per_ip as u64;
        }
    }

    // DPS slots for preexisting customers.
    let dps_total = total * config.preexisting_dps_fraction;
    let dps_share_sum: f64 = DPS_PROVIDERS.iter().map(|&(_, s)| s).sum();
    for &(name, share) in DPS_PROVIDERS {
        let org = catalog.by_name(name).expect("DPS in catalog").id;
        let sites = (dps_total * share / dps_share_sum).round() as u32;
        // DOSarrest concentrates customers on very few addresses (its IP
        // tops the paper's co-hosting bins); other providers spread
        // customers over many scrubbing IPs, so an attack on one touches
        // only a slice of their customers. Everyone gets at least one.
        let n_ips = if name == "DOSarrest" {
            1
        } else {
            (sites / 120).max(1)
        };
        let per_ip = (sites / n_ips).max(1);
        for _ in 0..n_ips {
            slots.push(HostingSlot {
                ip: org_ip(name, &mut rng),
                org,
                capacity: per_ip,
            });
            planned += per_ip as u64;
        }
    }

    // Mid-size hosters: log-uniform capacities 10..2000 on hoster ASes.
    let hoster_orgs: Vec<OrgId> = catalog
        .by_role(OrgRole::Hoster)
        .map(|o| o.id)
        .collect();
    let mid_budget = (total * 0.27) as u64;
    let mut used = 0u64;
    // Mid-size capacities scale with the namespace so the co-hosting
    // ranking keeps DOSarrest's concentrated slot at the top (paper
    // footnote 13) at every scale.
    let mid_cap = (total * 0.018).max(20.0) as u32;
    while used < mid_budget {
        let org = hoster_orgs[rng.gen_range(0..hoster_orgs.len())];
        let name = catalog.get(org).name.clone();
        let capacity = (10.0_f64.powf(rng.gen_range(1.0..3.3)) as u32).min(mid_cap);
        slots.push(HostingSlot {
            ip: org_ip(&name, &mut rng),
            org,
            capacity,
        });
        used += capacity as u64;
        planned += capacity as u64;
    }

    // Small/self-hosted: capacity 1-5 slots on arbitrary (ISP/enterprise)
    // space fill the remainder.
    let small_org = {
        // A catch-all "self-hosted" org: NS at the registrar, no CNAME.
        let mut cat2 = catalog; // move to mutate once more
        let id = cat2.add("Self-hosted", None, OrgRole::Hoster, false);
        slots_fill_small(&mut rng, registry, &mut slots, id, config.total_sites as u64, &mut planned);
        (cat2, id)
    };
    let (catalog, _small_org_id) = small_org;

    // Largest slots first: attackgen aims "big hoster" peaks at the head.
    slots.sort_by_key(|s| std::cmp::Reverse(s.capacity));

    // ---- Create sites and deal them onto slots ------------------------
    let window = DayRange::new(DayIndex(0), DayIndex(config.days));
    // Expand slot capacities into a deal order: site k lands on deal[k].
    let mut deal: Vec<u32> = Vec::with_capacity(config.total_sites as usize);
    for (i, s) in slots.iter().enumerate() {
        for _ in 0..s.capacity {
            deal.push(i as u32);
        }
    }
    // Truncate/extend to the exact population size (extend onto small
    // slots by repeating the tail).
    while deal.len() < config.total_sites as usize {
        let tail = deal[deal.len() - 1];
        deal.push(tail);
    }
    deal.truncate(config.total_sites as usize);

    for (n, &slot_idx) in deal.iter().enumerate() {
        let slot = &slots[slot_idx as usize];
        let tld = match rng.gen_range(0..1000) {
            0..=826 => Tld::Com,
            827..=929 => Tld::Net,
            _ => Tld::Org,
        };
        // Lifetimes: ~60 % full window, ~25 % appear later, ~15 %
        // disappear. DPS-protected sites are overwhelmingly established
        // businesses: almost all full-window.
        let is_dps = catalog.get(slot.org).role == OrgRole::Dps;
        let active = match rng.gen_range(0..100) {
            _ if is_dps && rng.gen_range(0..100) < 85 => window,
            0..=59 => window,
            60..=84 => DayRange::new(DayIndex(rng.gen_range(0..config.days * 9 / 10)), window.end),
            _ => DayRange::new(
                window.start,
                DayIndex(rng.gen_range(config.days / 10..config.days)),
            ),
        };
        let d = zone.add_domain(tld, active);
        debug_assert_eq!(d.0 as usize, n);
        let org = catalog.get(slot.org);
        zone.place(Placement {
            domain: d,
            ip: slot.ip,
            days: active,
            ns: slot.org,
            cname: org.cname_suffix.is_some().then_some(slot.org),
        });
    }

    // Shared infrastructure: each organisation with hosting customers
    // gets mail exchangers and authoritative name servers in its own
    // address space (AWS for the orgs hosted there). An attack on one of
    // these addresses affects the mail/DNS of every customer domain.
    {
        use crate::store::OrgInfra;
        let mut orgs_with_customers: Vec<OrgId> = slots.iter().map(|s| s.org).collect();
        orgs_with_customers.sort_unstable();
        orgs_with_customers.dedup();
        for org in orgs_with_customers {
            let name = catalog.get(org).name.clone();
            let n_mx = if name == "GoDaddy" { 3 } else { 1 };
            let mx_ips = (0..n_mx).map(|_| org_ip(&name, &mut rng)).collect();
            let ns_ips = (0..2).map(|_| org_ip(&name, &mut rng)).collect();
            zone.register_infra(OrgInfra { org, mx_ips, ns_ips });
        }
    }

    SynthOutput {
        zone,
        catalog,
        slots,
    }
}

fn slots_fill_small(
    rng: &mut SmallRng,
    registry: &AsRegistry,
    slots: &mut Vec<HostingSlot>,
    self_hosted: OrgId,
    total_sites: u64,
    planned: &mut u64,
) {
    let ases: Vec<&dosscope_geo::AsInfo> = registry
        .ases()
        .iter()
        .filter(|a| matches!(a.kind, OrgKind::Isp | OrgKind::Enterprise))
        .collect();
    assert!(!ases.is_empty(), "registry without generic space");
    while *planned < total_sites {
        let a = ases[rng.gen_range(0..ases.len())];
        // Mostly single-site IPs with a thin tail up to a few tens,
        // filling the 1..100 co-hosting decades of Figure 6.
        let capacity = if rng.gen_bool(0.55) {
            1
        } else {
            10.0_f64.powf(rng.gen_range(0.1..1.6)) as u32
        };
        slots.push(HostingSlot {
            ip: a.sample_addr(rng),
            org: self_hosted,
            capacity,
        });
        *planned += capacity as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_geo::RegistryConfig;
    use dosscope_types::LogHistogram;

    fn small_synth() -> SynthOutput {
        let registry = AsRegistry::build(&RegistryConfig::default());
        let config = SynthConfig {
            total_sites: 20_000,
            ..SynthConfig::default()
        };
        synthesize(&config, &registry)
    }

    #[test]
    fn population_size_and_tld_split() {
        let out = small_synth();
        assert_eq!(out.zone.domain_count(), 20_000);
        let com = out.zone.domain_count_in(Tld::Com) as f64 / 20_000.0;
        let net = out.zone.domain_count_in(Tld::Net) as f64 / 20_000.0;
        let org = out.zone.domain_count_in(Tld::Org) as f64 / 20_000.0;
        assert!((com - 0.827).abs() < 0.02, "com share {com}");
        assert!((net - 0.103).abs() < 0.02, "net share {net}");
        assert!((org - 0.070).abs() < 0.02, "org share {org}");
    }

    #[test]
    fn cohosting_distribution_is_heavy_tailed() {
        let out = small_synth();
        let mut hist = LogHistogram::new(7);
        // Count sites per hosting IP mid-window.
        let mut seen = std::collections::HashSet::new();
        for s in &out.slots {
            if seen.insert(s.ip) {
                let n = out.zone.domains_on_ip(s.ip, DayIndex(365)).len() as u64;
                hist.push(n);
            }
        }
        let bins = hist.bins();
        // Single-site IPs dominate in count; some IPs host >100 sites.
        assert!(bins[0] + bins[1] > bins[2], "small slots dominate: {bins:?}");
        assert!(
            bins[3] + bins[4] + bins[5] > 0,
            "large co-hosting groups exist: {bins:?}"
        );
    }

    #[test]
    fn mega_hosters_have_big_slots() {
        let out = small_synth();
        let godaddy = out.catalog.by_name("GoDaddy").unwrap().id;
        let biggest_godaddy = out
            .slots
            .iter()
            .filter(|s| s.org == godaddy)
            .map(|s| out.zone.domains_on_ip(s.ip, DayIndex(0)).len())
            .max()
            .unwrap();
        assert!(
            biggest_godaddy > 50,
            "GoDaddy IPs must be heavily co-hosted, got {biggest_godaddy}"
        );
    }

    #[test]
    fn preexisting_dps_customers_exist_with_market_shares() {
        let out = small_synth();
        let mut counts: Vec<(String, usize)> = Vec::new();
        for &(name, _) in DPS_PROVIDERS {
            let org = out.catalog.by_name(name).unwrap().id;
            let n: usize = out
                .slots
                .iter()
                .filter(|s| s.org == org)
                .map(|s| out.zone.domains_on_ip(s.ip, DayIndex(0)).len())
                .sum();
            counts.push((name.to_string(), n));
        }
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        let frac = total as f64 / 20_000.0;
        assert!(
            (0.06..0.20).contains(&frac),
            "preexisting DPS fraction ≈12 %, got {frac}"
        );
        // Neustar is the largest provider; VirtualRoad is tiny.
        let neustar = counts.iter().find(|(n, _)| n == "Neustar").unwrap().1;
        let vroad = counts.iter().find(|(n, _)| n == "VirtualRoad").unwrap().1;
        assert!(neustar > vroad * 10);
    }

    #[test]
    fn wix_lives_in_aws_space() {
        let registry = AsRegistry::build(&RegistryConfig::default());
        let out = synthesize(
            &SynthConfig {
                total_sites: 20_000,
                ..SynthConfig::default()
            },
            &registry,
        );
        let asdb = registry.build_asdb();
        let aws = registry.by_name("Amazon AWS").unwrap().asn;
        let wix = out.catalog.by_name("Wix").unwrap().id;
        for s in out.slots.iter().filter(|s| s.org == wix) {
            assert_eq!(asdb.asn_of(s.ip), Some(aws), "Wix slot {} not in AWS", s.ip);
        }
    }

    #[test]
    fn deterministic() {
        let registry = AsRegistry::build(&RegistryConfig::default());
        let cfg = SynthConfig {
            total_sites: 5_000,
            ..SynthConfig::default()
        };
        let a = synthesize(&cfg, &registry);
        let b = synthesize(&cfg, &registry);
        assert_eq!(a.zone.domain_count(), b.zone.domain_count());
        for d in a.zone.domain_ids().take(200) {
            assert_eq!(a.zone.ip_of(d, DayIndex(100)), b.zone.ip_of(d, DayIndex(100)));
        }
    }

    #[test]
    fn churn_leaves_most_sites_active_at_end() {
        let out = small_synth();
        let last = out.zone.active_on_day(DayIndex(730));
        let frac = last as f64 / 20_000.0;
        assert!(
            (0.6..0.95).contains(&frac),
            "~73 % of sites active on the last day, got {frac}"
        );
    }

    #[test]
    fn catalog_has_all_parties() {
        let out = small_synth();
        for name in dps_provider_names() {
            assert!(out.catalog.by_name(name).is_some(), "{name} missing");
        }
        assert!(out.catalog.by_name("GoDaddy").is_some());
        assert!(out.catalog.by_name("Self-hosted").is_some());
    }
}
