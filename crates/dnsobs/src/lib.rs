//! # dosscope-dns
//!
//! An OpenINTEL-style active DNS measurement data set (Section 3.2 of the
//! paper): daily snapshots of the `www` A records (plus CNAME and NS) for
//! every Web site in the `.com`, `.net` and `.org` zones, stored
//! interval-encoded so two years of daily snapshots stay queryable in
//! memory.
//!
//! The store answers the two joins the paper's analyses need:
//!
//! * **Web-site association** — which Web sites resolved to an attacked IP
//!   address on the day of an attack ([`ZoneStore::domains_on_ip`]);
//! * **hoster/DPS identification** — the CNAME and NS context of a
//!   placement, through which large hosters behind shared IPs (e.g. a
//!   reseller CNAMEd into AWS) and DPS usage are identified.
//!
//! Population synthesis (a scaled namespace with a realistic co-hosting
//! distribution) lives in [`synth`]; the measurement/query side never looks
//! at ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod store;
pub mod synth;

pub use catalog::{OrgCatalog, OrgId, OrgRecord, OrgRole};
pub use store::{DayRange, DomainId, OrgInfra, Placement, Tld, ZoneStore};
