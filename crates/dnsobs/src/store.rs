//! The interval-encoded zone store: two years of daily DNS snapshots,
//! queryable by domain and (reverse) by IP address.
//!
//! OpenINTEL stores a data *point* per record per day; materialising that
//! for even a scaled namespace would be wasteful, so the store keeps
//! [`Placement`] intervals — "domain d's `www` A record resolved to IP x
//! from day a to day b, with NS/CNAME context" — and derives daily views
//! on demand. Totals equivalent to the paper's Table 2 (sites, data
//! points, size) are computed from the intervals.

use crate::catalog::OrgId;
use dosscope_types::{DayIndex, FastMap};
use std::net::Ipv4Addr;

/// Top-level domain of a Web site; the three gTLDs the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tld {
    /// `.com`
    Com,
    /// `.net`
    Net,
    /// `.org`
    Org,
}

impl Tld {
    /// All measured TLDs in presentation order.
    pub const ALL: [Tld; 3] = [Tld::Com, Tld::Net, Tld::Org];
}

impl std::fmt::Display for Tld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tld::Com => f.write_str(".com"),
            Tld::Net => f.write_str(".net"),
            Tld::Org => f.write_str(".org"),
        }
    }
}

/// A Web-site (domain with a `www` label) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

/// A half-open range of days `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayRange {
    /// First day (inclusive).
    pub start: DayIndex,
    /// One past the last day (exclusive).
    pub end: DayIndex,
}

impl DayRange {
    /// Create a range; `end` is clamped to at least `start`.
    pub fn new(start: DayIndex, end: DayIndex) -> DayRange {
        DayRange {
            start,
            end: DayIndex(end.0.max(start.0)),
        }
    }

    /// Whether `day` falls inside the range.
    #[inline]
    pub fn contains(&self, day: DayIndex) -> bool {
        day >= self.start && day < self.end
    }

    /// Number of days covered.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end.0 - self.start.0
    }

    /// True for an empty range.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One hosting interval of a Web site: where its `www` A record pointed
/// and through which DNS context, over a range of days.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The Web site.
    pub domain: DomainId,
    /// The A-record target.
    pub ip: Ipv4Addr,
    /// Days this placement was observed.
    pub days: DayRange,
    /// Operator of the authoritative name servers (NS record context).
    pub ns: OrgId,
    /// Organisation whose CNAME the `www` label expands through, if any
    /// (platforms like Wix, or a DPS reverse proxy).
    pub cname: Option<OrgId>,
}

#[derive(Debug, Clone)]
struct DomainMeta {
    tld: Tld,
    active: DayRange,
}

/// Shared DNS/mail infrastructure of a hosting organisation: the addresses
/// its authoritative name servers and mail exchangers answer from.
///
/// The paper's future work (Section 8) proposes mapping attacked IPs to
/// `MX` targets and authoritative name servers; domains inherit their
/// operator's infrastructure, so an attack on one mail exchanger address
/// touches every domain the organisation serves (the paper observed
/// GoDaddy's e-mail servers — used by tens of millions of domains — under
/// frequent attack).
#[derive(Debug, Clone)]
pub struct OrgInfra {
    /// The operating organisation.
    pub org: OrgId,
    /// Mail exchanger addresses (targets of the domains' `MX` records).
    pub mx_ips: Vec<Ipv4Addr>,
    /// Authoritative name-server addresses (`NS` glue).
    pub ns_ips: Vec<Ipv4Addr>,
}

/// The zone store: all Web sites of the measured TLDs with their hosting
/// history.
#[derive(Debug, Default)]
pub struct ZoneStore {
    domains: Vec<DomainMeta>,
    placements: Vec<Placement>,
    by_domain: Vec<Vec<u32>>,
    by_ip: FastMap<u32, Vec<u32>>,
    /// Placements per operating organisation (for infrastructure joins).
    by_org: FastMap<OrgId, Vec<u32>>,
    /// Registered org infrastructure.
    infra: Vec<OrgInfra>,
    /// Mail-exchanger address → infra index.
    mx_index: FastMap<u32, usize>,
    /// Name-server address → infra index.
    ns_index: FastMap<u32, usize>,
}

impl ZoneStore {
    /// Empty store.
    pub fn new() -> ZoneStore {
        ZoneStore::default()
    }

    /// Register a Web site active over `active` days.
    pub fn add_domain(&mut self, tld: Tld, active: DayRange) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(DomainMeta { tld, active });
        self.by_domain.push(Vec::new());
        id
    }

    /// Number of Web sites (total over the whole window).
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of Web sites in one TLD.
    pub fn domain_count_in(&self, tld: Tld) -> usize {
        self.domains.iter().filter(|d| d.tld == tld).count()
    }

    /// The TLD of a site.
    pub fn tld_of(&self, domain: DomainId) -> Tld {
        self.domains[domain.0 as usize].tld
    }

    /// The day a site first appears in the DNS.
    pub fn first_seen(&self, domain: DomainId) -> DayIndex {
        self.domains[domain.0 as usize].active.start
    }

    /// The active range of a site.
    pub fn active_range(&self, domain: DomainId) -> DayRange {
        self.domains[domain.0 as usize].active
    }

    /// Record a hosting interval. Panics if it overlaps an existing
    /// placement of the same domain (the builder must keep intervals
    /// disjoint) or leaves the domain's active range.
    pub fn place(&mut self, p: Placement) {
        assert!(!p.days.is_empty(), "empty placement for {:?}", p.domain);
        let meta = &self.domains[p.domain.0 as usize];
        assert!(
            p.days.start >= meta.active.start && p.days.end <= meta.active.end,
            "placement outside domain activity: {:?}",
            p.domain
        );
        for &idx in &self.by_domain[p.domain.0 as usize] {
            let other = &self.placements[idx as usize].days;
            assert!(
                p.days.end <= other.start || other.end <= p.days.start,
                "overlapping placements for {:?}",
                p.domain
            );
        }
        let idx = self.placements.len() as u32;
        self.by_domain[p.domain.0 as usize].push(idx);
        self.by_ip.entry(u32::from(p.ip)).or_default().push(idx);
        self.by_org.entry(p.ns).or_default().push(idx);
        self.placements.push(p);
    }

    /// Register an organisation's shared mail/name-server infrastructure.
    pub fn register_infra(&mut self, infra: OrgInfra) {
        let idx = self.infra.len();
        for ip in &infra.mx_ips {
            self.mx_index.insert(u32::from(*ip), idx);
        }
        for ip in &infra.ns_ips {
            self.ns_index.insert(u32::from(*ip), idx);
        }
        self.infra.push(infra);
    }

    /// All registered infrastructure records.
    pub fn infra(&self) -> &[OrgInfra] {
        &self.infra
    }

    /// The organisation whose mail exchanger answers at `ip`, if any.
    pub fn mail_org_at(&self, ip: Ipv4Addr) -> Option<OrgId> {
        self.mx_index.get(&u32::from(ip)).map(|&i| self.infra[i].org)
    }

    /// The organisation whose name server answers at `ip`, if any.
    pub fn ns_org_at(&self, ip: Ipv4Addr) -> Option<OrgId> {
        self.ns_index.get(&u32::from(ip)).map(|&i| self.infra[i].org)
    }

    /// Domains operated by `org` on `day` (their placements carry the
    /// organisation in the NS context).
    pub fn domains_of_org(&self, org: OrgId, day: DayIndex) -> Vec<DomainId> {
        self.by_org
            .get(&org)
            .into_iter()
            .flatten()
            .map(|&i| &self.placements[i as usize])
            .filter(|p| p.days.contains(day))
            .map(|p| p.domain)
            .collect()
    }

    /// Domains whose mail would be affected by an attack on `ip` at `day`:
    /// every domain operated by the organisation whose mail exchanger
    /// lives there (domains' `MX` records point at their operator's
    /// exchangers).
    pub fn domains_on_mail_ip(&self, ip: Ipv4Addr, day: DayIndex) -> Vec<DomainId> {
        match self.mail_org_at(ip) {
            Some(org) => self.domains_of_org(org, day),
            None => Vec::new(),
        }
    }

    /// Domains whose authoritative DNS would be affected by an attack on
    /// `ip` at `day`.
    pub fn domains_on_ns_ip(&self, ip: Ipv4Addr, day: DayIndex) -> Vec<DomainId> {
        match self.ns_org_at(ip) {
            Some(org) => self.domains_of_org(org, day),
            None => Vec::new(),
        }
    }

    /// Truncate the placement of `domain` covering `day` so it ends just
    /// before `day`; returns the truncated placement's data for the caller
    /// to re-place elsewhere. Used to express migrations. If the placement
    /// started on `day`, it is removed entirely from `day` onward by
    /// truncating to empty — callers should re-place from `day`.
    pub fn truncate_at(&mut self, domain: DomainId, day: DayIndex) -> Option<Placement> {
        let list = &self.by_domain[domain.0 as usize];
        let idx = list
            .iter()
            .copied()
            .find(|&i| self.placements[i as usize].days.contains(day))?;
        let p = &mut self.placements[idx as usize];
        let original = p.clone();
        p.days = DayRange::new(p.days.start, day);
        Some(original)
    }

    /// The placement of a site on a given day.
    pub fn placement_of(&self, domain: DomainId, day: DayIndex) -> Option<&Placement> {
        self.by_domain[domain.0 as usize]
            .iter()
            .map(|&i| &self.placements[i as usize])
            .find(|p| p.days.contains(day))
    }

    /// The `www` A record of a site on a given day.
    pub fn ip_of(&self, domain: DomainId, day: DayIndex) -> Option<Ipv4Addr> {
        self.placement_of(domain, day).map(|p| p.ip)
    }

    /// All placements pointing at `ip` on `day`.
    pub fn placements_on_ip(
        &self,
        ip: Ipv4Addr,
        day: DayIndex,
    ) -> impl Iterator<Item = &Placement> {
        self.by_ip
            .get(&u32::from(ip))
            .into_iter()
            .flatten()
            .map(|&i| &self.placements[i as usize])
            .filter(move |p| p.days.contains(day))
    }

    /// The Web sites resolving to `ip` on `day` — the paper's core join
    /// ("A records on `www` labels that, at the time of an attack,
    /// resolved to the attacked IP addresses").
    pub fn domains_on_ip(&self, ip: Ipv4Addr, day: DayIndex) -> Vec<DomainId> {
        self.placements_on_ip(ip, day).map(|p| p.domain).collect()
    }

    /// Whether any placement ever points at `ip` (cheap pre-filter for
    /// the Web-association join).
    pub fn ip_ever_hosts(&self, ip: Ipv4Addr) -> bool {
        self.by_ip.contains_key(&u32::from(ip))
    }

    /// All placements of a domain, in insertion order.
    pub fn placements_of(&self, domain: DomainId) -> impl Iterator<Item = &Placement> {
        self.by_domain[domain.0 as usize]
            .iter()
            .map(|&i| &self.placements[i as usize])
    }

    /// Number of sites active on a given day.
    pub fn active_on_day(&self, day: DayIndex) -> usize {
        self.domains
            .iter()
            .filter(|d| d.active.contains(day))
            .count()
    }

    /// Total collected data points: one per record per active day, with
    /// three records per placement-day (`www` A, NS, and CNAME when
    /// present) — the store's equivalent of Table 2's "#data points".
    pub fn data_points(&self) -> u64 {
        self.placements
            .iter()
            .map(|p| p.days.len() as u64 * (2 + u64::from(p.cname.is_some())))
            .sum()
    }

    /// Data points for one TLD.
    pub fn data_points_in(&self, tld: Tld) -> u64 {
        self.placements
            .iter()
            .filter(|p| self.tld_of(p.domain) == tld)
            .map(|p| p.days.len() as u64 * (2 + u64::from(p.cname.is_some())))
            .sum()
    }

    /// Estimated compressed storage footprint in bytes, assuming ~24 bytes
    /// per data point (the paper's 1 257.6 G points in 28.4 TiB works out
    /// to ~24.8 bytes/point in Parquet).
    pub fn est_size_bytes(&self) -> u64 {
        self.data_points() * 24
    }

    /// Iterate all domain ids.
    pub fn domain_ids(&self) -> impl Iterator<Item = DomainId> {
        (0..self.domains.len() as u32).map(DomainId)
    }

    /// The synthetic FQDN of a site (`www.w<id>.<tld>`).
    pub fn fqdn(&self, domain: DomainId) -> String {
        format!("www.w{}{}", domain.0, self.tld_of(domain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(d: u32) -> DayIndex {
        DayIndex(d)
    }

    fn range(a: u32, b: u32) -> DayRange {
        DayRange::new(day(a), day(b))
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn add_and_query_domain() {
        let mut z = ZoneStore::new();
        let d = z.add_domain(Tld::Com, range(0, 731));
        z.place(Placement {
            domain: d,
            ip: ip("203.0.113.1"),
            days: range(0, 731),
            ns: OrgId(0),
            cname: None,
        });
        assert_eq!(z.ip_of(d, day(100)), Some(ip("203.0.113.1")));
        assert_eq!(z.ip_of(d, day(731)), None, "range is half-open");
        assert_eq!(z.domains_on_ip(ip("203.0.113.1"), day(5)), vec![d]);
        assert!(z.domains_on_ip(ip("203.0.113.2"), day(5)).is_empty());
        assert!(z.ip_ever_hosts(ip("203.0.113.1")));
        assert!(!z.ip_ever_hosts(ip("203.0.113.9")));
    }

    #[test]
    fn cohosted_domains() {
        let mut z = ZoneStore::new();
        let shared = ip("198.51.100.10");
        for _ in 0..5 {
            let d = z.add_domain(Tld::Net, range(0, 100));
            z.place(Placement {
                domain: d,
                ip: shared,
                days: range(0, 100),
                ns: OrgId(1),
                cname: None,
            });
        }
        assert_eq!(z.domains_on_ip(shared, day(50)).len(), 5);
        assert_eq!(z.domain_count_in(Tld::Net), 5);
    }

    #[test]
    fn moving_a_domain_between_hosts() {
        let mut z = ZoneStore::new();
        let d = z.add_domain(Tld::Org, range(0, 200));
        z.place(Placement {
            domain: d,
            ip: ip("203.0.113.1"),
            days: range(0, 200),
            ns: OrgId(0),
            cname: None,
        });
        // Migrate on day 120.
        let old = z.truncate_at(d, day(120)).expect("placement exists");
        assert_eq!(old.days, range(0, 200));
        z.place(Placement {
            domain: d,
            ip: ip("198.51.100.2"),
            days: range(120, 200),
            ns: OrgId(2),
            cname: Some(OrgId(2)),
        });
        assert_eq!(z.ip_of(d, day(119)), Some(ip("203.0.113.1")));
        assert_eq!(z.ip_of(d, day(120)), Some(ip("198.51.100.2")));
        // Reverse index respects the truncation.
        assert!(z.domains_on_ip(ip("203.0.113.1"), day(150)).is_empty());
        assert_eq!(z.domains_on_ip(ip("198.51.100.2"), day(150)), vec![d]);
    }

    #[test]
    #[should_panic(expected = "overlapping placements")]
    fn overlapping_placements_rejected() {
        let mut z = ZoneStore::new();
        let d = z.add_domain(Tld::Com, range(0, 100));
        let p = Placement {
            domain: d,
            ip: ip("203.0.113.1"),
            days: range(0, 60),
            ns: OrgId(0),
            cname: None,
        };
        z.place(p.clone());
        z.place(Placement {
            days: range(59, 100),
            ..p
        });
    }

    #[test]
    #[should_panic(expected = "outside domain activity")]
    fn placement_outside_activity_rejected() {
        let mut z = ZoneStore::new();
        let d = z.add_domain(Tld::Com, range(10, 100));
        z.place(Placement {
            domain: d,
            ip: ip("203.0.113.1"),
            days: range(0, 60),
            ns: OrgId(0),
            cname: None,
        });
    }

    #[test]
    fn data_points_and_size() {
        let mut z = ZoneStore::new();
        let d = z.add_domain(Tld::Com, range(0, 10));
        z.place(Placement {
            domain: d,
            ip: ip("203.0.113.1"),
            days: range(0, 10),
            ns: OrgId(0),
            cname: Some(OrgId(1)),
        });
        // 10 days x (A + NS + CNAME) = 30 points.
        assert_eq!(z.data_points(), 30);
        assert_eq!(z.data_points_in(Tld::Com), 30);
        assert_eq!(z.data_points_in(Tld::Org), 0);
        assert_eq!(z.est_size_bytes(), 30 * 24);
    }

    #[test]
    fn active_on_day_counts() {
        let mut z = ZoneStore::new();
        z.add_domain(Tld::Com, range(0, 50));
        z.add_domain(Tld::Com, range(40, 100));
        assert_eq!(z.active_on_day(day(45)), 2);
        assert_eq!(z.active_on_day(day(10)), 1);
        assert_eq!(z.active_on_day(day(99)), 1);
        assert_eq!(z.active_on_day(day(100)), 0);
    }

    #[test]
    fn fqdn_format() {
        let mut z = ZoneStore::new();
        let d = z.add_domain(Tld::Org, range(0, 1));
        assert_eq!(z.fqdn(d), "www.w0.org");
    }

    #[test]
    fn day_range_semantics() {
        let r = range(5, 8);
        assert!(r.contains(day(5)) && r.contains(day(7)));
        assert!(!r.contains(day(8)) && !r.contains(day(4)));
        assert_eq!(r.len(), 3);
        assert!(range(5, 5).is_empty());
        // end < start clamps to empty rather than panicking.
        assert!(DayRange::new(day(9), day(3)).is_empty());
    }
}
