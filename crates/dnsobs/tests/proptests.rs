//! Property-based tests for the zone store: the interval-encoded snapshot
//! store must agree with a brute-force daily-materialisation oracle.

use dosscope_dns::{DayRange, OrgId, Placement, Tld, ZoneStore};
use dosscope_types::DayIndex;
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;

const WINDOW: u32 = 60;

/// A domain's hosting history as disjoint (start, len, ip) segments.
fn arb_history() -> impl Strategy<Value = Vec<(u32, u32, u8)>> {
    // Up to 3 segments, each 1..20 days, with 0..5 day gaps, on one of 8
    // IPs.
    proptest::collection::vec((1u32..20, 0u32..5, 0u8..8), 1..4)
}

proptest! {
    /// For arbitrary placement histories, `domains_on_ip` and `ip_of`
    /// agree with a brute-force scan of the placement list.
    #[test]
    fn queries_agree_with_oracle(histories in proptest::collection::vec(arb_history(), 1..12)) {
        let mut zone = ZoneStore::new();
        let mut oracle: Vec<(u32, Ipv4Addr, DayRange)> = Vec::new(); // (domain, ip, days)
        for (di, history) in histories.iter().enumerate() {
            let domain = zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(WINDOW)));
            let mut cursor = 0u32;
            for &(len, gap, ip_idx) in history {
                let start = cursor;
                let end = (start + len).min(WINDOW);
                if start >= end {
                    break;
                }
                let ip = Ipv4Addr::new(10, 0, 0, ip_idx + 1);
                zone.place(Placement {
                    domain,
                    ip,
                    days: DayRange::new(DayIndex(start), DayIndex(end)),
                    ns: OrgId(0),
                    cname: None,
                });
                oracle.push((di as u32, ip, DayRange::new(DayIndex(start), DayIndex(end))));
                cursor = end + gap;
                if cursor >= WINDOW {
                    break;
                }
            }
        }

        // Probe a grid of (ip, day) pairs.
        for ip_idx in 0u8..8 {
            let ip = Ipv4Addr::new(10, 0, 0, ip_idx + 1);
            for day in (0..WINDOW).step_by(7) {
                let day = DayIndex(day);
                let got: HashSet<u32> =
                    zone.domains_on_ip(ip, day).into_iter().map(|d| d.0).collect();
                let expected: HashSet<u32> = oracle
                    .iter()
                    .filter(|(_, oip, days)| *oip == ip && days.contains(day))
                    .map(|(d, _, _)| *d)
                    .collect();
                prop_assert_eq!(&got, &expected, "ip {} day {}", ip, day.0);
            }
        }
        // ip_of agrees with the oracle for every domain and probed day.
        for (di, _) in histories.iter().enumerate() {
            for day in (0..WINDOW).step_by(5) {
                let day = DayIndex(day);
                let got = zone.ip_of(dosscope_dns::DomainId(di as u32), day);
                let expected = oracle
                    .iter()
                    .find(|(d, _, days)| *d == di as u32 && days.contains(day))
                    .map(|(_, ip, _)| *ip);
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// Truncation behaves like ending the placement: after truncate_at(d),
    /// the domain resolves before d and not from d on; re-placing from d
    /// restores resolution with the new target.
    #[test]
    fn truncate_then_replace(cut in 1u32..30, probe in 0u32..40) {
        let mut zone = ZoneStore::new();
        let d = zone.add_domain(Tld::Net, DayRange::new(DayIndex(0), DayIndex(40)));
        let old_ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let new_ip: Ipv4Addr = "10.0.0.2".parse().unwrap();
        zone.place(Placement {
            domain: d,
            ip: old_ip,
            days: DayRange::new(DayIndex(0), DayIndex(40)),
            ns: OrgId(0),
            cname: None,
        });
        zone.truncate_at(d, DayIndex(cut)).unwrap();
        zone.place(Placement {
            domain: d,
            ip: new_ip,
            days: DayRange::new(DayIndex(cut), DayIndex(40)),
            ns: OrgId(1),
            cname: None,
        });
        let day = DayIndex(probe);
        let expected = if probe < cut { old_ip } else { new_ip };
        prop_assert_eq!(zone.ip_of(d, day), Some(expected));
        // Reverse index consistent with the forward query.
        let on_expected = zone.domains_on_ip(expected, day);
        prop_assert!(on_expected.contains(&d));
        let other = if probe < cut { new_ip } else { old_ip };
        prop_assert!(!zone.domains_on_ip(other, day).contains(&d));
    }

    /// Data points equal the day-weighted record count regardless of how
    /// the history is segmented.
    #[test]
    fn data_points_additive(histories in proptest::collection::vec(arb_history(), 1..8)) {
        let mut zone = ZoneStore::new();
        let mut expected = 0u64;
        for history in &histories {
            let domain = zone.add_domain(Tld::Org, DayRange::new(DayIndex(0), DayIndex(WINDOW)));
            let mut cursor = 0u32;
            for &(len, gap, ip_idx) in history {
                let start = cursor;
                let end = (start + len).min(WINDOW);
                if start >= end {
                    break;
                }
                zone.place(Placement {
                    domain,
                    ip: Ipv4Addr::new(10, 0, 0, ip_idx + 1),
                    days: DayRange::new(DayIndex(start), DayIndex(end)),
                    ns: OrgId(0),
                    cname: None,
                });
                expected += (end - start) as u64 * 2; // A + NS per day
                cursor = end + gap;
                if cursor >= WINDOW {
                    break;
                }
            }
        }
        prop_assert_eq!(zone.data_points(), expected);
    }
}
