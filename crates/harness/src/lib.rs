//! # dosscope-harness
//!
//! End-to-end scenario runner: builds the synthetic world (address plan,
//! DNS namespace, DPS market), generates the ground-truth ecosystem,
//! renders it into per-day observations, drives the two measurement
//! pipelines over the rendered bytes, and assembles the analysis
//! [`dosscope_core::Framework`] — the complete loop the paper's
//! infrastructure performs over two years, in one call.
//!
//! The harness is also the home of the paper-reproduction machinery:
//! [`paper`] holds the published values, [`experiments`] regenerates every
//! table and figure and compares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod paper;
pub mod scenario;
pub mod telemetry;

pub use scenario::{Scenario, ScenarioConfig, World};
