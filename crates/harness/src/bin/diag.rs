//! Internal diagnostic: slot-tier hit coverage (not part of the public
//! reproduction surface; used to calibrate the generator).
//!
//! Usage: `diag [--threads N]` (plus the shared harness flags,
//! including `--telemetry`) — worker count for the measurement
//! pipelines; the diagnostic output is identical for any value.

use dosscope_dns::OrgRole;
use dosscope_harness::cli::{self, Command};
use dosscope_harness::Scenario;
use dosscope_obs::{obs_debug, obs_error};
use std::collections::HashMap;

fn main() {
    let opts = match cli::parse(std::env::args().skip(1)) {
        Ok(Command::Run(opts)) => opts,
        Ok(Command::Help) => {
            eprintln!("{}", cli::usage("diag"));
            return;
        }
        Ok(Command::ValidateTelemetry(path)) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match dosscope_harness::telemetry::validate(&text) {
                Ok(summary) => {
                    println!("{summary}");
                    return;
                }
                Err(problems) => {
                    eprintln!("{path} failed validation:\n{problems}");
                    std::process::exit(1);
                }
            }
        }
        Err(msg) => {
            eprintln!("{msg}\n{}", cli::usage("diag"));
            std::process::exit(2);
        }
    };

    dosscope_obs::log::set_level(dosscope_obs::log::level_from_flags(opts.quiet, opts.verbose));
    dosscope_obs::init_from_env();
    if opts.telemetry {
        dosscope_obs::set_enabled(true);
    }

    let config = opts.config;
    obs_debug!("running diagnostic scenario: {config:?}");
    let world = Scenario::run(&config);
    let mut hits: HashMap<std::net::Ipv4Addr, u32> = HashMap::new();
    for e in world.store.telescope().iter().chain(world.store.honeypot()) {
        *hits.entry(e.target).or_default() += 1;
    }
    let mut tier_stats: HashMap<&str, (u32, u32, u64)> = HashMap::new(); // slots, hit slots, hits
    for slot in &world.synth.slots {
        let org = world.synth.catalog.get(slot.org);
        let tier = match org.role {
            OrgRole::Dps | OrgRole::Reseller if slot.capacity >= 900 => "perma",
            OrgRole::Dps => "lite",
            _ if slot.capacity >= 150 => "mega",
            _ => "tail",
        };
        let h = hits.get(&slot.ip).copied().unwrap_or(0);
        let e = tier_stats.entry(tier).or_default();
        e.0 += 1;
        e.1 += u32::from(h > 0);
        e.2 += h as u64;
    }
    for (tier, (slots, hit, total)) in &tier_stats {
        println!(
            "{tier:>6}: {slots} slots, {hit} hit (>0), {total} events, {:.2} events/slot",
            *total as f64 / *slots as f64
        );
    }
    // Ground truth side: how many GT attacks targeted lite slots?
    let lite_ips: std::collections::HashSet<_> = world
        .synth
        .slots
        .iter()
        .filter(|s| {
            world.synth.catalog.get(s.org).role == OrgRole::Dps && s.capacity < 900
        })
        .map(|s| s.ip)
        .collect();
    let gt_lite = world
        .truth
        .attacks
        .iter()
        .filter(|a| lite_ips.contains(&a.target))
        .count();
    println!("GT attacks on lite slots: {gt_lite}; lite slots: {}", lite_ips.len());

    // Per-site attack counts by tier.
    use dosscope_core::webimpact::WebImpact;
    let fw = world.framework();
    let web = WebImpact::analyze(&fw).unwrap();
    let mut tier_of_ip: HashMap<std::net::Ipv4Addr, &str> = HashMap::new();
    for slot in &world.synth.slots {
        let org = world.synth.catalog.get(slot.org);
        let tier = match org.role {
            OrgRole::Dps | OrgRole::Reseller if slot.capacity >= 900 => "perma",
            OrgRole::Dps => "lite",
            _ if slot.capacity >= 150 => "mega",
            _ => "tail",
        };
        tier_of_ip.insert(slot.ip, tier);
    }
    let mut by_tier: HashMap<&str, (u64, u64, u64)> = HashMap::new(); // sites, >5, total count
    for (domain, rec) in &web.site_records {
        let day = rec.first_attack_day;
        let ip = world.synth.zone.ip_of(*domain, day).unwrap_or([0,0,0,0].into());
        let tier = tier_of_ip.get(&ip).copied().unwrap_or("off-slot");
        let e = by_tier.entry(tier).or_default();
        e.0 += 1;
        e.1 += u64::from(rec.count > 5);
        e.2 += rec.count as u64;
    }
    for (tier, (sites, gt5, total)) in &by_tier {
        println!(
            "{tier:>9}: {sites} attacked sites, {gt5} (> 5 attacks, {:.1}%), mean count {:.1}",
            100.0 * *gt5 as f64 / *sites as f64,
            *total as f64 / *sites as f64
        );
    }

    if dosscope_obs::enabled() {
        let snapshot = dosscope_obs::Telemetry::capture();
        println!("{}", snapshot.render_ascii());
        if let Err(e) = std::fs::write(&opts.telemetry_out, snapshot.to_json()) {
            obs_error!("cannot write {}: {e}", opts.telemetry_out);
            std::process::exit(1);
        }
    }
}
