//! The reproduction driver: runs the full scenario at a configurable
//! scale, prints every table and figure, and the paper-vs-measured
//! comparison.
//!
//! Usage: `repro [--scale N] [--seed N] [--days N] [--threads N]
//! [--smoke] [--telemetry] [--telemetry-out PATH] [--quiet] [-v]
//! [--validate-telemetry PATH]`
//!
//! `--threads` selects the measurement worker count; results are
//! byte-identical for any value (the pipelines shard by target /16).
//! With `--telemetry` (or `DOSSCOPE_TELEMETRY=1`) the run collects
//! spans, counters and pool profiles, writes `TELEMETRY.json` and
//! appends the ASCII dashboard to the report.

use dosscope_harness::cli::{self, Command};
use dosscope_harness::experiments::Experiments;
use dosscope_harness::{telemetry, Scenario};
use dosscope_obs::{obs_error, obs_info};

fn main() {
    let opts = match cli::parse(std::env::args().skip(1)) {
        Ok(Command::Run(opts)) => opts,
        Ok(Command::Help) => {
            eprintln!("{}", cli::usage("repro"));
            return;
        }
        Ok(Command::ValidateTelemetry(path)) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            match telemetry::validate(&text) {
                Ok(summary) => {
                    println!("{summary}");
                    return;
                }
                Err(problems) => {
                    eprintln!("{path} failed validation:\n{problems}");
                    std::process::exit(1);
                }
            }
        }
        Err(msg) => {
            eprintln!("{msg}\n{}", cli::usage("repro"));
            std::process::exit(2);
        }
    };

    dosscope_obs::log::set_level(dosscope_obs::log::level_from_flags(opts.quiet, opts.verbose));
    dosscope_obs::init_from_env();
    if opts.telemetry {
        dosscope_obs::set_enabled(true);
    }

    let config = opts.config;
    obs_info!(
        "running scenario: scale 1/{}, {} days, seed {:#x}, {} thread(s) ...",
        config.scale, config.days, config.seed, config.threads
    );
    let t0 = std::time::Instant::now();
    let world = Scenario::run(&config);
    obs_info!(
        "scenario done in {:.1?}: {} telescope events, {} honeypot events",
        t0.elapsed(),
        world.store.telescope().len(),
        world.store.honeypot().len()
    );
    let experiments = Experiments::run(&world, config.scale);
    println!("{}", experiments.render_report());
    let rows = experiments.compare();
    println!("{}", Experiments::render_comparison(&rows));

    if dosscope_obs::enabled() {
        let snapshot = dosscope_obs::Telemetry::capture();
        println!("{}", snapshot.render_ascii());
        if let Err(e) = std::fs::write(&opts.telemetry_out, snapshot.to_json()) {
            obs_error!("cannot write {}: {e}", opts.telemetry_out);
            std::process::exit(1);
        }
        obs_info!("telemetry written to {}", opts.telemetry_out);
    }
}
