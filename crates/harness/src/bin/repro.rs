//! The reproduction driver: runs the full scenario at a configurable
//! scale, prints every table and figure, and the paper-vs-measured
//! comparison.
//!
//! Usage: `repro [--scale N] [--seed N] [--days N] [--threads N]`
//!
//! `--threads` selects the measurement worker count; results are
//! byte-identical for any value (the pipelines shard by target /16).

use dosscope_harness::experiments::Experiments;
use dosscope_harness::{Scenario, ScenarioConfig};

fn parse_args() -> ScenarioConfig {
    let mut config = ScenarioConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match arg.as_str() {
            "--scale" => config.scale = take("--scale"),
            "--seed" => config.seed = take("--seed") as u64,
            "--days" => config.days = take("--days") as u32,
            "--threads" => config.threads = (take("--threads") as usize).max(1),
            "--help" | "-h" => {
                eprintln!("usage: repro [--scale N] [--seed N] [--days N] [--threads N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    config
}

fn main() {
    let config = parse_args();
    eprintln!(
        "running scenario: scale 1/{}, {} days, seed {:#x}, {} thread(s) ...",
        config.scale, config.days, config.seed, config.threads
    );
    let t0 = std::time::Instant::now();
    let world = Scenario::run(&config);
    eprintln!(
        "scenario done in {:.1?}: {} telescope events, {} honeypot events",
        t0.elapsed(),
        world.store.telescope().len(),
        world.store.honeypot().len()
    );
    let experiments = Experiments::run(&world, config.scale);
    println!("{}", experiments.render_report());
    let rows = experiments.compare();
    println!("{}", Experiments::render_comparison(&rows));
}
