//! Validation of emitted `TELEMETRY.json` artifacts against the
//! harness's expectations: the versioned schema marker, every pipeline
//! stage span, and per-worker pool utilization. The CI gate runs
//! `repro --smoke --telemetry --threads 8` and then
//! `repro --validate-telemetry TELEMETRY.json`.

/// Counters a full scenario run must have incremented.
const REQUIRED_COUNTERS: &[&str] = &[
    "telescope.batches",
    "telescope.backscatter_packets",
    "telescope.flows_expired",
    "telescope.events",
    "fleet.requests",
    "fleet.events",
    "store.rows",
];

/// Store run-lifecycle instruments that must be *present* (registered)
/// but may legitimately read zero — a smoke run whose batches all arrive
/// in time order never consolidates, yet the instruments must export so
/// dashboards can tell "no consolidation" from "not instrumented".
/// `store.victims` is the interner-size gauge and must be nonzero on any
/// run that ingested events.
const REQUIRED_STORE_INSTRUMENTS: &[&str] = &[
    "store.consolidations",
    "store.consolidation_rows",
    "store.runs",
];

/// Stage spans a multi-threaded scenario run must have recorded
/// (`stage.route` only exists on the sharded path, which is why the
/// validator is specified for `--threads` > 1 runs).
const REQUIRED_SPANS: &[&str] = &[
    "stage.world",
    "stage.truth",
    "stage.render",
    "stage.route",
    "stage.detect",
    "stage.fuse",
    "report.assemble",
    "report.render",
];

/// Pools the sharded pipeline always spins up.
const REQUIRED_POOLS: &[&str] = &["telescope", "fleet"];

/// Extract the integer following `"name": ` anywhere in the text.
/// The emission format is line-oriented with unique metric names, so a
/// plain substring scan is exact.
fn extract_num(text: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\": ");
    let at = text.find(&needle)? + needle.len();
    let digits: String = text[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Validate an emitted `TELEMETRY.json` from a `--threads > 1` scenario
/// run. Returns a human-readable summary on success and the full list
/// of violations on failure.
pub fn validate(text: &str) -> Result<String, String> {
    let mut problems: Vec<String> = Vec::new();

    if !text.contains(&format!("\"schema\": \"{}\"", dosscope_obs::telemetry::SCHEMA)) {
        problems.push(format!(
            "missing schema marker {:?}",
            dosscope_obs::telemetry::SCHEMA
        ));
    }

    for name in REQUIRED_COUNTERS {
        match extract_num(text, name) {
            Some(v) if v > 0 => {}
            Some(_) => problems.push(format!("counter {name} is zero")),
            None => problems.push(format!("counter {name} missing")),
        }
    }

    for name in REQUIRED_STORE_INSTRUMENTS {
        if extract_num(text, name).is_none() {
            problems.push(format!("store instrument {name} missing"));
        }
    }
    match extract_num(text, "store.victims") {
        Some(v) if v > 0 => {}
        Some(_) => problems.push("gauge store.victims is zero".into()),
        None => problems.push("gauge store.victims missing".into()),
    }

    for name in REQUIRED_SPANS {
        if !text.contains(&format!("\"name\": \"{name}\"")) {
            problems.push(format!("span {name} missing"));
        }
    }
    for prefix in ["stage", "report"] {
        if !text.contains(&format!("\"prefix\": \"{prefix}\"")) {
            problems.push(format!("rollup prefix {prefix} missing"));
        }
    }

    let mut workers_seen = 0u64;
    for pool in REQUIRED_POOLS {
        let workers = extract_num(text, &format!("pool.{pool}.workers")).unwrap_or(0);
        if workers == 0 {
            problems.push(format!("pool.{pool}.workers missing or zero"));
            continue;
        }
        workers_seen += workers;
        for w in 0..workers {
            match extract_num(text, &format!("pool.{pool}.w{w}.busy_us")) {
                Some(v) if v > 0 => {}
                _ => problems.push(format!("pool.{pool}.w{w}.busy_us missing or zero")),
            }
            match extract_num(text, &format!("pool.{pool}.w{w}.queue_hwm")) {
                Some(v) if v > 0 => {}
                _ => problems.push(format!("pool.{pool}.w{w}.queue_hwm missing or zero")),
            }
        }
    }

    if problems.is_empty() {
        Ok(format!(
            "telemetry valid: {} counters, {} spans, {} pools, {} workers utilized",
            REQUIRED_COUNTERS.len(),
            REQUIRED_SPANS.len(),
            REQUIRED_POOLS.len(),
            workers_seen
        ))
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal document passing every check, shaped like the real
    /// emission.
    fn valid_doc() -> String {
        let mut s = String::from("{\n  \"schema\": \"dosscope-telemetry-v1\",\n");
        for c in REQUIRED_COUNTERS {
            s.push_str(&format!("    \"{c}\": 10,\n"));
        }
        for c in REQUIRED_STORE_INSTRUMENTS {
            s.push_str(&format!("    \"{c}\": 0,\n"));
        }
        s.push_str("    \"store.victims\": 42,\n");
        for pool in REQUIRED_POOLS {
            s.push_str(&format!("    \"pool.{pool}.workers\": 2,\n"));
            for w in 0..2 {
                s.push_str(&format!("    \"pool.{pool}.w{w}.busy_us\": 5,\n"));
                s.push_str(&format!("    \"pool.{pool}.w{w}.queue_hwm\": 1,\n"));
            }
        }
        for sp in REQUIRED_SPANS {
            s.push_str(&format!("    {{\"name\": \"{sp}\", \"count\": 1}},\n"));
        }
        s.push_str("    {\"prefix\": \"stage\", \"count\": 5},\n");
        s.push_str("    {\"prefix\": \"report\", \"count\": 2}\n}\n");
        s
    }

    #[test]
    fn accepts_a_complete_document() {
        let summary = validate(&valid_doc()).expect("valid");
        assert!(summary.contains("telemetry valid"));
    }

    #[test]
    fn rejects_missing_schema() {
        let doc = valid_doc().replace("dosscope-telemetry-v1", "nope");
        assert!(validate(&doc).unwrap_err().contains("schema"));
    }

    #[test]
    fn rejects_zero_counters_and_missing_spans() {
        let doc = valid_doc()
            .replace("\"telescope.events\": 10", "\"telescope.events\": 0")
            .replace("{\"name\": \"stage.route\", \"count\": 1},\n", "");
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("telescope.events is zero"), "{err}");
        assert!(err.contains("span stage.route missing"), "{err}");
    }

    #[test]
    fn rejects_missing_store_instruments() {
        let doc = valid_doc()
            .replace("    \"store.consolidations\": 0,\n", "")
            .replace("\"store.victims\": 42", "\"store.victims\": 0");
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("store.consolidations missing"), "{err}");
        assert!(err.contains("store.victims is zero"), "{err}");
    }

    #[test]
    fn rejects_idle_workers() {
        let doc = valid_doc().replace(
            "\"pool.telescope.w1.busy_us\": 5",
            "\"pool.telescope.w1.busy_us\": 0",
        );
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("pool.telescope.w1.busy_us"), "{err}");
    }
}
