//! The end-to-end scenario: world building, ground-truth generation,
//! day-by-day rendering, and measurement.
//!
//! The rendering and the detection run as a two-stage pipeline over a
//! bounded channel (crossbeam scope): one thread renders day `d+1` while
//! the main thread feeds day `d` into the detectors — the same
//! overlap a real capture/processing deployment has.

use dosscope_amppot::{AmpPotFleet, RequestBatch, ShardedFleet};
use dosscope_attackgen::config::Calibration;
use dosscope_attackgen::{GenConfig, Generator, GroundTruth, MigrationModel, Renderer};
use dosscope_core::{EventStore, Framework};
use dosscope_dns::synth::{synthesize, SynthConfig, SynthOutput};
use dosscope_dps::DpsDataset;
use dosscope_geo::{AsDb, AsRegistry, GeoDb, RegistryConfig};
use dosscope_telescope::{
    PacketBatch, RsdosDetector, RsdosPlugin, ShardedRsdos, Telescope, TelescopePlugin,
};
use dosscope_types::DayIndex;

/// Scenario parameters. `scale` divides every paper-scale quantity; the
/// default (2000) runs the full 731-day window in seconds of CPU time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed (world, ground truth and rendering all derive from it).
    pub seed: u64,
    /// Scale denominator (events = paper totals / scale; namespace size
    /// likewise).
    pub scale: f64,
    /// Window length in days (731).
    pub days: u32,
    /// Measurement worker threads. 1 runs the original serial pipeline;
    /// larger values shard the detectors by the target's /16 with one
    /// worker per shard. The output is byte-identical either way (see
    /// DESIGN.md, "Concurrency model").
    pub threads: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0xD05C09E,
            scale: 2_000.0,
            days: 731,
            threads: 1,
        }
    }
}

impl ScenarioConfig {
    /// A reduced configuration for tests: coarser scale, full window.
    pub fn test_small() -> ScenarioConfig {
        ScenarioConfig {
            scale: 20_000.0,
            ..ScenarioConfig::default()
        }
    }

    /// Scaled number of Web sites.
    pub fn total_sites(&self) -> u32 {
        ((dosscope_attackgen::config::paper::WEB_SITES / self.scale).round() as u32).max(500)
    }
}

/// Everything the scenario produced. Analyses borrow from this.
pub struct World {
    /// The synthetic address plan.
    pub registry: AsRegistry,
    /// Geolocation database (built from the plan).
    pub geo: GeoDb,
    /// Prefix-to-AS database (built from the plan).
    pub asdb: AsDb,
    /// The DNS namespace (post-migration zone) and organisation catalog.
    pub synth: SynthOutput,
    /// The measured DPS adoption data set.
    pub dps: DpsDataset,
    /// Detected attack events from both pipelines.
    pub store: EventStore,
    /// Telescope detector statistics.
    pub telescope_stats: dosscope_telescope::detector::DetectorStats,
    /// Honeypot fleet statistics.
    pub fleet_stats: dosscope_amppot::FleetStats,
    /// Botnet attack events from the C&C monitor (the third data source;
    /// Section 8 extension).
    pub botnet_events: Vec<dosscope_botmon::BotnetEvent>,
    /// C&C monitor statistics.
    pub botmon_stats: dosscope_botmon::MonitorStats,
    /// The ground truth (kept for validation; the analyses never read it).
    pub truth: GroundTruth,
    /// The applied migrations (ground truth).
    pub migrations: dosscope_attackgen::MigrationOutcome,
    /// Window length.
    pub days: u32,
}

impl World {
    /// Assemble the analysis framework over this world. The framework
    /// borrows the world's event store directly — no per-call copy of the
    /// event lists.
    pub fn framework(&self) -> Framework<'_> {
        Framework::new(&self.store, &self.geo, &self.asdb, self.days)
            .with_dns(&self.synth.zone, &self.synth.catalog)
            .with_dps(&self.dps)
    }
}

/// The scenario driver.
pub struct Scenario;

impl Scenario {
    /// Run the full loop for a configuration.
    pub fn run(config: &ScenarioConfig) -> World {
        // 1. World: address plan, metadata databases, DNS namespace.
        let world_span = dosscope_obs::span!("stage.world");
        let registry = AsRegistry::build(&RegistryConfig {
            seed: config.seed ^ 0x9E0,
            ..RegistryConfig::default()
        });
        let geo = registry.build_geodb();
        let asdb = registry.build_asdb();
        let mut synth = synthesize(
            &SynthConfig {
                seed: config.seed ^ 0xD45,
                total_sites: config.total_sites(),
                days: config.days,
                ..SynthConfig::default()
            },
            &registry,
        );
        drop(world_span);

        // 2. Ground truth + behavioural migrations (mutates the zone).
        let truth_span = dosscope_obs::span!("stage.truth");
        let gen_config = GenConfig {
            seed: config.seed ^ 0xA77,
            days: config.days,
            scale: config.scale,
            ..GenConfig::default()
        };
        let cal = Calibration::default();
        let truth = Generator::new(gen_config.clone(), Calibration::default(), &registry, &synth)
            .generate();
        let migrations = MigrationModel::apply(&gen_config, &cal, &truth, &mut synth);

        // 3. Measure DPS adoption from the (mutated) zone — the inference
        // side of Section 3.3.
        let dps = DpsDataset::infer(&synth.zone, &synth.catalog, &asdb);
        drop(truth_span);

        // 4. Render observations and drive both measurement pipelines.
        let telescope = Telescope::default_slash8();
        let fleet = AmpPotFleet::standard();
        let pot_addrs: Vec<std::net::Ipv4Addr> =
            fleet.honeypots().iter().map(|h| h.addr).collect();
        let renderer = Renderer::new(&truth, telescope, pot_addrs, config.seed ^ 0x8E4, config.days);

        let (store, telescope_stats, fleet_stats) =
            drive_pipelines(&renderer, telescope, fleet, config.days, config.threads);

        // The third data source: botnet C&C monitoring (Section 8
        // extension). Commands are generated from the same ground truth
        // and inferred back by the monitor.
        let _botmon_span = dosscope_obs::span!("stage.botmon");
        let commands = dosscope_attackgen::botnets::generate_commands(
            &gen_config,
            &registry,
            &truth,
            config.seed ^ 0xB07,
        );
        let mut monitor = dosscope_botmon::CncMonitor::new();
        for c in &commands {
            monitor.ingest(c);
        }
        let (botnet_events, botmon_stats) =
            monitor.finish(dosscope_types::SimTime(config.days as u64 * 86_400));

        World {
            registry,
            geo,
            asdb,
            synth,
            dps,
            store,
            telescope_stats,
            fleet_stats,
            botnet_events,
            botmon_stats,
            truth,
            migrations,
            days: config.days,
        }
    }
}

/// Render days on a producer thread while the consumer feeds the
/// detectors: a bounded two-stage pipeline. With `threads > 1` the
/// consumer side fans out over target shards ([`drive_pipelines_sharded`]);
/// the serial path below is kept verbatim so `threads = 1` is exactly the
/// original pipeline.
fn drive_pipelines(
    renderer: &Renderer<'_>,
    telescope: Telescope,
    mut fleet: AmpPotFleet,
    days: u32,
    threads: usize,
) -> (
    EventStore,
    dosscope_telescope::detector::DetectorStats,
    dosscope_amppot::FleetStats,
) {
    if threads > 1 {
        return drive_pipelines_sharded(renderer, telescope, days, threads);
    }
    let detector = RsdosDetector::with_defaults(telescope);
    let mut plugin = RsdosPlugin::new(detector);
    let (tx, rx) = crossbeam::channel::bounded::<(Vec<PacketBatch>, Vec<RequestBatch>)>(4);
    let mut interval: Option<u64> = None;

    crossbeam::scope(|s| {
        s.spawn(move |_| {
            for d in 0..days {
                let _render = dosscope_obs::span!("stage.render");
                let day = DayIndex(d);
                let t = renderer.telescope_day(day);
                let h = renderer.honeypot_day(day);
                if tx.send((t, h)).is_err() {
                    return;
                }
            }
        });
        for (tele_batches, hp_batches) in rx.iter() {
            let _detect = dosscope_obs::span!("stage.detect");
            for b in &tele_batches {
                let iv = b.ts.secs() / 60;
                match interval {
                    None => interval = Some(iv),
                    Some(cur) if iv > cur => {
                        plugin.interval_end(dosscope_types::SimTime(iv * 60));
                        interval = Some(iv);
                    }
                    _ => {}
                }
                plugin.process_batch(b);
            }
            for b in &hp_batches {
                fleet.ingest(b);
            }
        }
    })
    .expect("pipeline threads never panic");

    let _fuse = dosscope_obs::span!("stage.fuse");
    plugin.finish();
    let (tele_events, tele_stats) = plugin.into_results();
    let (hp_events, fleet_stats) = fleet.finish();

    let mut store = EventStore::new();
    store.ingest_telescope(tele_events);
    store.ingest_honeypot(hp_events);
    (store, tele_stats, fleet_stats)
}

/// The parallel consumer: the producer thread renders *and routes* each
/// day by the victim's /16 shard (index lists over one `Arc`'d chunk — no
/// batch is copied or re-partitioned), then the persistent sharded
/// engines carry the per-shard streams on their long-lived pool workers.
/// Victim-keyed detector state makes the single merge at `finish`
/// byte-identical to the serial path for any shard count (DESIGN.md,
/// "Concurrency model").
fn drive_pipelines_sharded(
    renderer: &Renderer<'_>,
    telescope: Telescope,
    days: u32,
    threads: usize,
) -> (
    EventStore,
    dosscope_telescope::detector::DetectorStats,
    dosscope_amppot::FleetStats,
) {
    use dosscope_types::Routed;
    use std::sync::Arc;

    let mut rsdos = ShardedRsdos::with_defaults(telescope, threads);
    let mut fleet = ShardedFleet::standard(threads);
    type DayRouted = (Routed<PacketBatch>, Routed<RequestBatch>);
    let (tx, rx) = crossbeam::channel::bounded::<DayRouted>(4);

    crossbeam::scope(|s| {
        s.spawn(move |_| {
            for d in 0..days {
                let day = DayIndex(d);
                let rendered = {
                    let _render = dosscope_obs::span!("stage.render");
                    (renderer.telescope_day(day), renderer.honeypot_day(day))
                };
                let _route = dosscope_obs::span!("stage.route");
                let t = dosscope_telescope::route_batches(Arc::new(rendered.0), threads);
                let h = dosscope_amppot::route_requests(Arc::new(rendered.1), threads);
                if tx.send((t, h)).is_err() {
                    return;
                }
            }
        });
        for (tele_routed, hp_routed) in rx.iter() {
            let _detect = dosscope_obs::span!("stage.detect");
            rsdos.ingest_routed(tele_routed);
            fleet.ingest_routed(hp_routed);
        }
    })
    .expect("pipeline threads never panic");

    let _fuse = dosscope_obs::span!("stage.fuse");
    let (tele_events, tele_stats, _peak) = rsdos.finish();
    let (hp_events, fleet_stats, _peak) = fleet.finish();

    let mut store = EventStore::new();
    store.ingest_telescope(tele_events);
    store.ingest_honeypot(hp_events);
    (store, tele_stats, fleet_stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A very small smoke scenario (heavier validation lives in the
    /// workspace integration tests).
    #[test]
    fn tiny_scenario_end_to_end() {
        let config = ScenarioConfig {
            scale: 100_000.0,
            ..ScenarioConfig::default()
        };
        let world = Scenario::run(&config);
        assert!(world.store.telescope().len() > 50, "telescope events detected");
        assert!(world.store.honeypot().len() > 30, "honeypot events detected");
        assert_eq!(world.telescope_stats.malformed, 0);
        assert_eq!(world.fleet_stats.malformed, 0);
        // The framework assembles and basic reports build.
        let fw = world.framework();
        let t1 = dosscope_core::report::Table1::build(&fw);
        assert!(t1.rows[2].summary.events >= t1.rows[0].summary.events);
    }

    #[test]
    fn threads_do_not_change_results() {
        let base = ScenarioConfig {
            scale: 100_000.0,
            ..ScenarioConfig::default()
        };
        let serial = Scenario::run(&base);
        let parallel = Scenario::run(&ScenarioConfig { threads: 4, ..base });
        assert_eq!(serial.store.telescope(), parallel.store.telescope());
        assert_eq!(serial.store.honeypot(), parallel.store.honeypot());
        assert_eq!(
            serial.telescope_stats.backscatter_packets,
            parallel.telescope_stats.backscatter_packets
        );
        assert_eq!(serial.telescope_stats.events, parallel.telescope_stats.events);
        assert_eq!(serial.fleet_stats.requests, parallel.fleet_stats.requests);
        assert_eq!(serial.fleet_stats.replies_sent, parallel.fleet_stats.replies_sent);
    }

    #[test]
    fn scenario_deterministic() {
        let config = ScenarioConfig {
            scale: 200_000.0,
            ..ScenarioConfig::default()
        };
        let a = Scenario::run(&config);
        let b = Scenario::run(&config);
        assert_eq!(a.store.telescope().len(), b.store.telescope().len());
        assert_eq!(a.store.honeypot().len(), b.store.honeypot().len());
        for (x, y) in a.store.telescope().iter().zip(b.store.telescope()) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.when, y.when);
            assert_eq!(x.packets, y.packets);
        }
    }
}
