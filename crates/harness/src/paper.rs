//! The paper's published values, used for the reproduction comparison.
//!
//! Absolute counts are scale-dependent (we run a scaled-down two years);
//! the comparison therefore checks *shares, shapes and rankings*, plus
//! scale-normalized totals where meaningful.

/// Table 1 (shape): share of events per source.
pub const TELESCOPE_EVENT_SHARE: f64 = 12.47 / 20.90;
/// Events per unique target, telescope (12.47 M / 2.45 M).
pub const TELESCOPE_EVENTS_PER_TARGET: f64 = 12.47 / 2.45;
/// Events per unique target, honeypots (8.43 M / 4.18 M).
pub const HONEYPOT_EVENTS_PER_TARGET: f64 = 8.43 / 4.18;

/// Figure 1: mean attacks/day (paper scale).
pub const DAILY_TELESCOPE: f64 = 17_100.0;
/// See [`DAILY_TELESCOPE`].
pub const DAILY_HONEYPOT: f64 = 11_600.0;
/// See [`DAILY_TELESCOPE`].
pub const DAILY_COMBINED: f64 = 28_700.0;

/// Table 4a, telescope country shares (%).
pub const T4A: [(&str, f64); 5] = [
    ("US", 25.56),
    ("CN", 10.47),
    ("RU", 5.72),
    ("FR", 5.14),
    ("DE", 4.20),
];
/// Table 4b, honeypot country shares (%).
pub const T4B: [(&str, f64); 5] = [
    ("US", 29.50),
    ("CN", 9.96),
    ("FR", 7.73),
    ("GB", 6.37),
    ("DE", 5.18),
];

/// Table 5: protocol shares (%) [TCP, UDP, ICMP, Other].
pub const T5: [f64; 4] = [79.4, 15.9, 4.5, 0.2];

/// Table 6: reflection shares (%) [NTP, DNS, CharGen, SSDP, RIPv1].
pub const T6_TOP5: [(&str, f64); 5] = [
    ("NTP", 40.08),
    ("DNS", 26.17),
    ("CharGen", 22.37),
    ("SSDP", 8.38),
    ("RIPv1", 2.27),
];

/// Table 7: single-port share (%).
pub const T7_SINGLE: f64 = 60.6;

/// Table 8a: TCP service shares (%).
pub const T8A: [(&str, f64); 5] = [
    ("HTTP", 48.68),
    ("HTTPS", 20.68),
    ("MySQL", 1.12),
    ("DNS", 1.07),
    ("VPN PPTP", 0.99),
];
/// Table 8b: UDP port shares (%).
pub const T8B_STEAM: f64 = 18.54;
/// Web share of single-port TCP attacks.
pub const T8A_WEB: f64 = 69.36;

/// Figure 2 telescope: mean/median duration (s); share ≤ 5 min; top-10 %
/// boundary (s).
pub const F2_TELE_MEAN: f64 = 2_880.0;
/// See [`F2_TELE_MEAN`].
pub const F2_TELE_MEDIAN: f64 = 454.0;
/// See [`F2_TELE_MEAN`].
pub const F2_TELE_LE_5MIN: f64 = 0.40;
/// Figure 2 honeypots: mean/median duration (s).
pub const F2_HP_MEAN: f64 = 1_080.0;
/// See [`F2_HP_MEAN`].
pub const F2_HP_MEDIAN: f64 = 255.0;

/// Figure 3: telescope intensity — share ≤ 2 pps; share > 10 pps; mean;
/// median.
pub const F3_LE2: f64 = 0.70;
/// See [`F3_LE2`].
pub const F3_GT10: f64 = 0.17;
/// See [`F3_LE2`].
pub const F3_MEAN: f64 = 107.0;
/// See [`F3_LE2`].
pub const F3_MEDIAN: f64 = 1.0;

/// Figure 4: honeypot intensity mean/median (req/s).
pub const F4_MEAN: f64 = 413.0;
/// See [`F4_MEAN`].
pub const F4_MEDIAN: f64 = 77.0;

/// Figure 5: medium+ attacks per day (paper scale).
pub const F5_DAILY: f64 = 1_400.0;

/// Section 4: joint/common targets at paper scale.
pub const COMMON_TARGETS: f64 = 282_000.0;
/// See [`COMMON_TARGETS`].
pub const JOINT_TARGETS: f64 = 137_000.0;
/// Joint telescope attacks: single-port share.
pub const JOINT_SINGLE: f64 = 0.771;
/// OVH share of joint targets.
pub const JOINT_OVH: f64 = 0.123;

/// Section 5: share of namespace on attacked IPs over two years.
pub const WEB_AFFECTED: f64 = 0.64;
/// Mean daily share of namespace involved.
pub const WEB_DAILY_SHARE: f64 = 0.03;
/// Largest daily peak share.
pub const WEB_PEAK_SHARE: f64 = 0.1182;
/// TCP share of telescope events on Web-hosting IPs.
pub const WEB_TCP: f64 = 0.934;
/// Web-port share among their single-port TCP events.
pub const WEB_PORTS: f64 = 0.876;
/// NTP share of honeypot events on Web-hosting IPs.
pub const WEB_NTP: f64 = 0.5469;
/// Share of targeted IPs hosting at least one site.
pub const WEB_IP_SHARE: f64 = 0.09;

/// Figure 8: taxonomy shares.
pub const F8_ATTACKED: f64 = 0.64;
/// Preexisting among attacked.
pub const F8_PRE_ATTACKED: f64 = 0.186;
/// Preexisting among unattacked.
pub const F8_PRE_UNATTACKED: f64 = 0.0089;
/// Migrating among attacked non-preexisting.
pub const F8_MIG_ATTACKED: f64 = 0.0431;
/// Migrating among unattacked non-preexisting.
pub const F8_MIG_UNATTACKED: f64 = 0.0332;

/// Figure 9: share of sites attacked ≤ 5 times (all vs migrating).
pub const F9_ALL_LE5: f64 = 0.9235;
/// See [`F9_ALL_LE5`].
pub const F9_MIG_LE5: f64 = 0.9783;

/// Figure 10: share migrating within 6 days (all / top5 / top1 / top0.1).
pub const F10_6D: [f64; 4] = [0.299, 0.671, 0.771, 0.986];
/// Within one day: all vs top 0.1 %.
pub const F10_1D_ALL: f64 = 0.232;
/// See [`F10_1D_ALL`].
pub const F10_1D_TOP01: f64 = 0.807;

/// Figure 11: ≥ 4 h attacks — migration within 1 day / within 5 days.
pub const F11_1D: f64 = 0.676;
/// See [`F11_1D`].
pub const F11_5D: f64 = 0.76;
