//! Shared command-line parsing for the harness binaries (`repro`,
//! `diag`).
//!
//! Every value-taking flag is strict: a missing or non-numeric value is
//! a hard usage error (the binaries print it to stderr and exit 2),
//! never a silent fall-through to the default.

use crate::ScenarioConfig;

/// Scale denominator selected by `--smoke`: the same reduced
/// configuration the bench smoke mode and `ScenarioConfig::test_small`
/// use.
pub const SMOKE_SCALE: f64 = 20_000.0;

/// Parsed command line for a harness binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Scenario parameters (seed, scale, days, threads).
    pub config: ScenarioConfig,
    /// `--telemetry` / `DOSSCOPE_TELEMETRY=1`: collect and emit
    /// telemetry.
    pub telemetry: bool,
    /// `--telemetry-out PATH`: where to write `TELEMETRY.json`.
    pub telemetry_out: String,
    /// `--quiet`: only errors on stderr.
    pub quiet: bool,
    /// `-v` / `--verbose`: debug-level progress on stderr.
    pub verbose: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            config: ScenarioConfig::default(),
            telemetry: false,
            telemetry_out: "TELEMETRY.json".to_string(),
            quiet: false,
            verbose: false,
        }
    }
}

/// What the binary should do with the parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the scenario with these options.
    Run(CliOptions),
    /// `--help`: print usage to stderr and exit 0.
    Help,
    /// `--validate-telemetry PATH`: validate an emitted
    /// `TELEMETRY.json` and exit 0 (valid) or 1 (invalid).
    ValidateTelemetry(String),
}

/// One line describing the accepted flags, for usage messages.
pub fn usage(prog: &str) -> String {
    format!(
        "usage: {prog} [--scale N] [--seed N] [--days N] [--threads N] [--smoke] \
         [--telemetry] [--telemetry-out PATH] [--quiet] [-v] \
         [--validate-telemetry PATH]"
    )
}

fn take_value(
    args: &mut impl Iterator<Item = String>,
    name: &str,
) -> Result<String, String> {
    match args.next() {
        Some(v) if !v.starts_with("--") => Ok(v),
        Some(v) => Err(format!("{name} needs a value, got flag {v}")),
        None => Err(format!("{name} needs a value")),
    }
}

fn take_f64(args: &mut impl Iterator<Item = String>, name: &str) -> Result<f64, String> {
    let v = take_value(args, name)?;
    v.parse()
        .map_err(|_| format!("{name} needs a numeric value, got {v:?}"))
}

fn take_u64(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, String> {
    let v = take_value(args, name)?;
    // Accept plain integers and (for compatibility with the old parser)
    // float-formatted integers like `2e3`.
    if let Ok(n) = v.parse::<u64>() {
        return Ok(n);
    }
    match v.parse::<f64>() {
        Ok(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as u64),
        _ => Err(format!("{name} needs a numeric value, got {v:?}")),
    }
}

/// Parse the arguments (without the program name). Returns a usage
/// error string for anything malformed; the caller prints it plus
/// [`usage`] to stderr and exits nonzero.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Command, String> {
    let mut args = args.into_iter();
    let mut opts = CliOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => opts.config.scale = take_f64(&mut args, "--scale")?,
            "--seed" => opts.config.seed = take_u64(&mut args, "--seed")?,
            "--days" => opts.config.days = take_u64(&mut args, "--days")? as u32,
            "--threads" => {
                opts.config.threads = (take_u64(&mut args, "--threads")? as usize).max(1)
            }
            "--smoke" => opts.config.scale = SMOKE_SCALE,
            "--telemetry" => opts.telemetry = true,
            "--telemetry-out" => {
                opts.telemetry_out = take_value(&mut args, "--telemetry-out")?
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--validate-telemetry" => {
                let path = take_value(&mut args, "--validate-telemetry")?;
                return Ok(Command::ValidateTelemetry(path));
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Command::Run(opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<Command, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    fn opts(args: &[&str]) -> CliOptions {
        match run(args).expect("valid args") {
            Command::Run(o) => o,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn defaults() {
        let o = opts(&[]);
        assert_eq!(o.config.threads, 1);
        assert!(!o.telemetry);
        assert_eq!(o.telemetry_out, "TELEMETRY.json");
    }

    #[test]
    fn full_flag_set() {
        let o = opts(&[
            "--scale", "50000", "--seed", "7", "--days", "100", "--threads", "8",
            "--telemetry", "--telemetry-out", "t.json", "--quiet", "-v",
        ]);
        assert_eq!(o.config.scale, 50_000.0);
        assert_eq!(o.config.seed, 7);
        assert_eq!(o.config.days, 100);
        assert_eq!(o.config.threads, 8);
        assert!(o.telemetry);
        assert_eq!(o.telemetry_out, "t.json");
        assert!(o.quiet && o.verbose);
    }

    #[test]
    fn smoke_selects_the_reduced_scale() {
        assert_eq!(opts(&["--smoke"]).config.scale, SMOKE_SCALE);
        assert_eq!(opts(&["--smoke"]).config.scale, ScenarioConfig::test_small().scale);
    }

    #[test]
    fn threads_with_missing_value_is_a_hard_error() {
        let err = run(&["--threads"]).unwrap_err();
        assert!(err.contains("--threads needs a value"), "{err}");
    }

    #[test]
    fn threads_with_non_numeric_value_is_a_hard_error() {
        let err = run(&["--threads", "many"]).unwrap_err();
        assert!(err.contains("--threads needs a numeric value"), "{err}");
        // A following flag must not be swallowed as the value either.
        let err = run(&["--threads", "--telemetry"]).unwrap_err();
        assert!(err.contains("--threads needs a value"), "{err}");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(opts(&["--threads", "0"]).config.threads, 1);
    }

    #[test]
    fn unknown_argument_is_an_error() {
        assert!(run(&["--frobnicate"]).unwrap_err().contains("unknown argument"));
    }

    #[test]
    fn help_and_validate_short_circuit() {
        assert_eq!(run(&["--help"]).unwrap(), Command::Help);
        assert_eq!(run(&["-h"]).unwrap(), Command::Help);
        assert_eq!(
            run(&["--validate-telemetry", "x.json"]).unwrap(),
            Command::ValidateTelemetry("x.json".to_string())
        );
        assert!(run(&["--validate-telemetry"]).is_err());
    }

    #[test]
    fn float_formatted_integers_still_accepted() {
        // The pre-refactor parser read every value as f64; keep `2e3`
        // style working for scripts that relied on it.
        assert_eq!(opts(&["--seed", "2e3"]).config.seed, 2000);
        assert!(run(&["--seed", "2.5"]).is_err(), "fractional seed rejected");
    }
}
