//! Regeneration of every table and figure, and comparison against the
//! paper's published values.
//!
//! [`run_all`] produces the full text report; [`compare`] produces the
//! paper-vs-measured rows recorded in EXPERIMENTS.md. Checks compare
//! shares, shapes and rankings — absolute counts are scale-dependent and
//! reported scale-normalized.

use crate::paper;
use crate::scenario::World;
use dosscope_core::migration::MigrationAnalysis;
use dosscope_core::report::{
    render_web_impact, DistributionFigure, Figure1, Figure5, Table1, Table2, Table3, Table4,
    Table5, Table6, Table7, Table8,
};
use dosscope_core::webimpact::{parties_on_day, WebImpact};
use dosscope_core::{Framework, JointAnalysis};
use dosscope_types::{CountryCode, EventSource};
use std::fmt::Write as _;

/// Shape metrics that must not depend on the scale denominator.
#[derive(Debug, Clone, Copy)]
pub struct KeyShares {
    /// Table 5 TCP share.
    pub tcp_share: f64,
    /// Table 7 single-port share.
    pub single_port_share: f64,
    /// Figure 2: telescope attacks ≤ 5 min.
    pub tele_le_5min: f64,
    /// Figure 3: telescope intensity ≤ 2 pps.
    pub tele_le_2pps: f64,
    /// Section 5: TCP share on Web-hosting IPs.
    pub web_tcp_share: f64,
    /// Figure 7/8: namespace share ever attacked.
    pub attacked_namespace_share: f64,
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// Experiment id ("Table 5", "Figure 3", ...).
    pub id: String,
    /// Metric description.
    pub metric: String,
    /// Published value.
    pub paper: f64,
    /// Measured value.
    pub measured: f64,
    /// Acceptance tolerance (absolute).
    pub tolerance: f64,
}

impl CheckRow {
    /// Whether the measured value lands within tolerance.
    pub fn ok(&self) -> bool {
        (self.measured - self.paper).abs() <= self.tolerance
    }
}

fn row(id: &str, metric: &str, paper: f64, measured: f64, tolerance: f64) -> CheckRow {
    CheckRow {
        id: id.into(),
        metric: metric.into(),
        paper,
        measured,
        tolerance,
    }
}

/// All analyses materialized for a world.
pub struct Experiments<'a> {
    /// The underlying framework.
    pub fw: Framework<'a>,
    /// Section 5 results.
    pub web: WebImpact,
    /// Section 6 results.
    pub migration: MigrationAnalysis,
    /// Section 4 correlation.
    pub joint: dosscope_core::JointStats,
    /// The scale denominator of the scenario.
    pub scale: f64,
    /// Botnet events from the third data source.
    pub botnet_events: &'a [dosscope_botmon::BotnetEvent],
    /// The address registry, for resolving AS names in narratives.
    pub registry: &'a dosscope_geo::AsRegistry,
}

impl<'a> Experiments<'a> {
    /// Run every analysis once.
    pub fn run(world: &'a World, scale: f64) -> Experiments<'a> {
        let _span = dosscope_obs::span!("report.assemble");
        let fw = world.framework();
        let web = WebImpact::analyze(&fw).expect("scenario attaches DNS");
        let migration = MigrationAnalysis::analyze(&fw, &web).expect("scenario attaches DPS");
        let enricher = dosscope_core::Enricher::new(fw.geo, fw.asdb);
        let joint = JointAnalysis::run(fw.store, &enricher);
        Experiments {
            fw,
            web,
            migration,
            joint,
            scale,
            botnet_events: &world.botnet_events,
            registry: &world.registry,
        }
    }

    /// The full text report: every table and figure.
    pub fn render_report(&self) -> String {
        let _span = dosscope_obs::span!("report.render");
        let mut s = String::new();
        let _ = writeln!(s, "=== dosscope reproduction report (scale 1/{}) ===\n", self.scale);
        let _ = writeln!(s, "{}", Table1::build(&self.fw).render());
        if let Some(t2) = Table2::build(&self.fw) {
            let _ = writeln!(s, "{}", t2.render());
        }
        if let Some(t3) = Table3::build(&self.fw) {
            let _ = writeln!(s, "{}", t3.render());
        }
        let _ = writeln!(s, "{}", Table4::build(&self.fw).render());
        let _ = writeln!(s, "{}", Table5::build(&self.fw).render());
        let _ = writeln!(s, "{}", Table6::build(&self.fw).render());
        let _ = writeln!(s, "{}", Table7::build(&self.fw).render());
        let _ = writeln!(s, "{}", Table8::build(&self.fw).render());

        let f1 = Figure1::build(&self.fw);
        let _ = writeln!(s, "{}", f1.render());
        let _ = writeln!(s, "Figure 1 (combined attacks/day):");
        let _ = writeln!(s, "{}", dosscope_core::ascii::series(&f1.combined.attacks, 73, 6));
        let dur_thresholds = [60.0, 300.0, 900.0, 3_600.0, 5_400.0, 86_400.0];
        let _ = writeln!(
            s,
            "{}",
            DistributionFigure::durations(&self.fw, EventSource::Telescope)
                .render(&dur_thresholds)
        );
        let _ = writeln!(
            s,
            "{}",
            DistributionFigure::durations(&self.fw, EventSource::Honeypot)
                .render(&dur_thresholds)
        );
        let int_thresholds = [1.0, 2.0, 10.0, 100.0, 1_000.0, 10_000.0];
        let f3 = DistributionFigure::intensities(&self.fw, EventSource::Telescope);
        let _ = writeln!(s, "Figure 3: {}", f3.render(&int_thresholds));
        let _ = writeln!(s, "{}", dosscope_core::ascii::cdf(&f3.ecdf, 0.5, 100_000.0, 10, 50));
        let _ = writeln!(
            s,
            "Figure 4 (overall): {}",
            DistributionFigure::intensities(&self.fw, EventSource::Honeypot)
                .render(&int_thresholds)
        );
        for (p, ecdf) in DistributionFigure::intensities_per_protocol(&self.fw) {
            let _ = writeln!(
                s,
                "  Figure 4 [{p}]: n={} median={:.1}",
                ecdf.len(),
                ecdf.median().unwrap_or(0.0)
            );
        }
        let _ = writeln!(s, "{}", Figure5::build(&self.fw).render());
        let _ = writeln!(s, "{}", render_web_impact(&self.web));
        let _ = writeln!(s, "Figure 6 (bars):");
        let _ = writeln!(s, "{}", dosscope_core::ascii::histogram(&self.web.cohosting, 50));
        let _ = writeln!(s, "Figure 7 (web sites on attacked IPs / day):");
        let _ = writeln!(s, "{}", dosscope_core::ascii::series(&self.web.daily_sites, 73, 6));

        // Section 4 joint stats, with AS names resolved through the
        // registry (the paper: AS12276 (OVH) 12.3 %, China Telecom 5.4 %,
        // China Unicom 3.1 %).
        let _ = writeln!(
            s,
            "Joint attacks: common targets {}, joint targets {}, pairs {}; single-port {:.1}%, HTTP {:.1}%, 27015 {:.1}%",
            self.joint.common_targets,
            self.joint.joint_targets,
            self.joint.joint_pairs,
            100.0 * self.joint.single_port_share,
            100.0 * self.joint.tcp_http_share,
            100.0 * self.joint.udp_27015_share,
        );
        let named: Vec<String> = self
            .joint
            .top_asns
            .iter()
            .take(3)
            .map(|&(asn, share)| {
                let name = self
                    .registry
                    .by_asn(asn)
                    .map(|a| a.name.clone())
                    .unwrap_or_else(|| "?".into());
                format!("{asn} ({name}) {:.1}%", 100.0 * share)
            })
            .collect();
        let _ = writeln!(s, "Joint targets by AS: {}", named.join(", "));

        // DPS adoption trend (Jonker et al., IMC 2016: steady growth).
        if let Some(dps) = self.fw.dps {
            let ts = dps.adoption_series(self.fw.days);
            let first = ts.get(dosscope_types::DayIndex(0));
            let last = ts.get(dosscope_types::DayIndex(self.fw.days - 1));
            let _ = writeln!(
                s,
                "DPS adoption trend: {first:.0} protected sites on day 0 -> {last:.0} on the last day ({:+.1}%)",
                100.0 * (last - first) / first.max(1.0),
            );
            let _ = writeln!(s, "{}", dosscope_core::ascii::series(&ts, 73, 5));
            let (dns, bgp) = dps.diversion_split();
            let _ = writeln!(
                s,
                "Diversion mechanisms: DNS {dns} intervals, BGP {bgp} (single sites divert via DNS; hosters announce prefixes)",
            );
        }

        // Section 6.
        let t = &self.migration.taxonomy;
        let (pre_a, pre_u) = t.preexisting_shares();
        let (mig_a, mig_u) = t.migrating_shares();
        let _ = writeln!(
            s,
            "Figure 8: total {} | attacked {} ({:.1}%) [preexisting {:.1}%, migrating {:.2}%] | unattacked {} [preexisting {:.2}%, migrating {:.2}%]",
            t.total,
            t.attacked,
            100.0 * t.attacked_share(),
            100.0 * pre_a,
            100.0 * mig_a,
            t.unattacked,
            100.0 * pre_u,
            100.0 * mig_u,
        );
        let _ = writeln!(
            s,
            "Figure 9: attacked <=5 times — all {:.2}%, migrating {:.2}%",
            100.0 * self.migration.freq_all.cdf(5.0),
            100.0 * self.migration.freq_migrating.cdf(5.0),
        );
        let _ = writeln!(
            s,
            "Table 9: site share at normalized intensity {:?}",
            self.migration.table9_row()
        );
        let _ = writeln!(
            s,
            "Figure 10: within 6 days — all {:.1}%, top5 {:.1}%, top1 {:.1}%, top0.1 {:.1}%; within 1 day — all {:.1}%, top0.1 {:.1}%",
            100.0 * self.migration.delay_all.cdf(6.0),
            100.0 * self.migration.delay_top5.cdf(6.0),
            100.0 * self.migration.delay_top1.cdf(6.0),
            100.0 * self.migration.delay_top01.cdf(6.0),
            100.0 * self.migration.delay_all.cdf(1.0),
            100.0 * self.migration.delay_top01.cdf(1.0),
        );
        let _ = writeln!(
            s,
            "Figure 11: >=4h attacks — within 1 day {:.1}%, within 5 days {:.1}% (n={})",
            100.0 * self.migration.delay_long4h.cdf(1.0),
            100.0 * self.migration.delay_long4h.cdf(5.0),
            self.migration.delay_long4h.len(),
        );

        // Section 8 extension: third data source coverage.
        let _ = writeln!(
            s,
            "{}",
            dosscope_core::coverage::CoverageStats::analyze(self.fw.store, self.botnet_events)
                .render()
        );

        // Section 8 extension: shared mail/DNS infrastructure.
        if let Some(infra) = dosscope_core::mailimpact::InfrastructureImpact::analyze(&self.fw) {
            let _ = writeln!(s, "{}", infra.render());
        }

        // Section 5 narrative: parties behind the biggest peak.
        let (peak_day, _) = self.web.peak_fraction();
        let parties = parties_on_day(&self.fw, peak_day);
        let names: Vec<String> = parties
            .iter()
            .take(5)
            .map(|(n, c)| format!("{n} ({c})"))
            .collect();
        let _ = writeln!(s, "Peak day {} parties: {}", peak_day, names.join(", "));
        s
    }

    /// The paper-vs-measured comparison rows.
    pub fn compare(&self) -> Vec<CheckRow> {
        let mut rows = Vec::new();
        let t1 = Table1::build(&self.fw);
        let tele = &t1.rows[0].summary;
        let hp = &t1.rows[1].summary;
        let comb = &t1.rows[2].summary;
        rows.push(row(
            "Table 1",
            "telescope share of events",
            paper::TELESCOPE_EVENT_SHARE,
            tele.events as f64 / comb.events.max(1) as f64,
            0.05,
        ));
        rows.push(row(
            "Table 1",
            "telescope events per target",
            paper::TELESCOPE_EVENTS_PER_TARGET,
            tele.events as f64 / tele.targets.max(1) as f64,
            2.0,
        ));
        rows.push(row(
            "Table 1",
            "honeypot events per target",
            paper::HONEYPOT_EVENTS_PER_TARGET,
            hp.events as f64 / hp.targets.max(1) as f64,
            0.8,
        ));
        rows.push(row(
            "Table 1",
            "combined events (scale-normalized, M)",
            20.90,
            comb.events as f64 * self.scale / 1e6,
            2.5,
        ));

        // Figure 1 daily means, scale-normalized.
        let f1 = Figure1::build(&self.fw);
        rows.push(row(
            "Figure 1",
            "telescope attacks/day (scaled)",
            paper::DAILY_TELESCOPE,
            f1.telescope.mean_daily_attacks() * self.scale,
            paper::DAILY_TELESCOPE * 0.15,
        ));
        rows.push(row(
            "Figure 1",
            "honeypot attacks/day (scaled)",
            paper::DAILY_HONEYPOT,
            f1.honeypot.mean_daily_attacks() * self.scale,
            paper::DAILY_HONEYPOT * 0.15,
        ));
        rows.push(row(
            "Figure 1",
            "combined attacks/day (scaled)",
            paper::DAILY_COMBINED,
            f1.combined.mean_daily_attacks() * self.scale,
            paper::DAILY_COMBINED * 0.15,
        ));

        // Table 4: top-5 countries and shares; Japan's depressed rank.
        let t4 = Table4::build(&self.fw);
        for (i, &(cc, share)) in paper::T4A.iter().enumerate() {
            let measured = t4
                .telescope_full
                .iter()
                .find(|(c, _)| c.as_str() == cc)
                .map(|&(_, n)| {
                    100.0 * n as f64
                        / t4.telescope_full.iter().map(|&(_, n)| n).sum::<u64>() as f64
                })
                .unwrap_or(0.0);
            rows.push(row(
                "Table 4a",
                &format!("{cc} share (paper rank {})", i + 1),
                share,
                measured,
                3.0,
            ));
        }
        for &(cc, share) in paper::T4B.iter() {
            let measured = t4
                .honeypot_full
                .iter()
                .find(|(c, _)| c.as_str() == cc)
                .map(|&(_, n)| {
                    100.0 * n as f64
                        / t4.honeypot_full.iter().map(|&(_, n)| n).sum::<u64>() as f64
                })
                .unwrap_or(0.0);
            rows.push(row("Table 4b", &format!("{cc} share"), share, measured, 3.0));
        }
        let jp_rank = Table4::rank(&t4.telescope_full, CountryCode::new("JP")).unwrap_or(99);
        rows.push(row(
            "Table 4",
            "Japan telescope rank (>= 10 = depressed)",
            25.0,
            jp_rank as f64,
            16.0,
        ));

        // Table 5.
        let t5 = Table5::build(&self.fw);
        for (i, label) in ["TCP", "UDP", "ICMP", "Other"].iter().enumerate() {
            rows.push(row(
                "Table 5",
                &format!("{label} share %"),
                paper::T5[i],
                t5.shares[i],
                2.5,
            ));
        }

        // Table 6.
        let t6 = Table6::build(&self.fw);
        let total6: u64 = t6.counts.values().sum();
        for &(name, share) in paper::T6_TOP5.iter() {
            let measured = t6
                .counts
                .iter()
                .find(|(p, _)| p.to_string() == name)
                .map(|(_, &n)| 100.0 * n as f64 / total6.max(1) as f64)
                .unwrap_or(0.0);
            rows.push(row("Table 6", &format!("{name} share %"), share, measured, 3.0));
        }

        // Table 7.
        let t7 = Table7::build(&self.fw);
        rows.push(row(
            "Table 7",
            "single-port share %",
            paper::T7_SINGLE,
            100.0 * t7.single_share(),
            4.0,
        ));

        // Table 8.
        let t8 = Table8::build(&self.fw);
        for &(name, share) in paper::T8A.iter().take(2) {
            let measured = t8
                .tcp
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|&(_, _, pct)| pct)
                .unwrap_or(0.0);
            rows.push(row("Table 8a", &format!("{name} share %"), share, measured, 5.0));
        }
        rows.push(row(
            "Table 8a",
            "web share of single-port TCP %",
            paper::T8A_WEB,
            100.0 * t8.tcp_web_share(),
            6.0,
        ));
        let steam = t8
            .udp
            .iter()
            .find(|(n, _, _)| n == "27015")
            .map(|&(_, _, pct)| pct)
            .unwrap_or(0.0);
        rows.push(row("Table 8b", "27015 share %", paper::T8B_STEAM, steam, 4.0));

        // Figure 2.
        let f2t = DistributionFigure::durations(&self.fw, EventSource::Telescope);
        rows.push(row(
            "Figure 2",
            "telescope median duration (s)",
            paper::F2_TELE_MEDIAN,
            f2t.ecdf.median().unwrap_or(0.0),
            200.0,
        ));
        rows.push(row(
            "Figure 2",
            "telescope share <= 5 min",
            paper::F2_TELE_LE_5MIN,
            f2t.ecdf.cdf(300.0),
            0.10,
        ));
        rows.push(row(
            "Figure 2",
            "telescope mean duration (s)",
            paper::F2_TELE_MEAN,
            f2t.ecdf.mean().unwrap_or(0.0),
            1_500.0,
        ));
        let f2h = DistributionFigure::durations(&self.fw, EventSource::Honeypot);
        rows.push(row(
            "Figure 2",
            "honeypot median duration (s)",
            paper::F2_HP_MEDIAN,
            f2h.ecdf.median().unwrap_or(0.0),
            150.0,
        ));
        rows.push(row(
            "Figure 2",
            "honeypot mean duration (s)",
            paper::F2_HP_MEAN,
            f2h.ecdf.mean().unwrap_or(0.0),
            700.0,
        ));

        // Figure 3.
        let f3 = DistributionFigure::intensities(&self.fw, EventSource::Telescope);
        rows.push(row("Figure 3", "share <= 2 pps", paper::F3_LE2, f3.ecdf.cdf(2.0), 0.07));
        rows.push(row(
            "Figure 3",
            "share > 10 pps",
            paper::F3_GT10,
            1.0 - f3.ecdf.cdf(10.0),
            0.06,
        ));
        rows.push(row(
            "Figure 3",
            "mean (pps)",
            paper::F3_MEAN,
            f3.ecdf.mean().unwrap_or(0.0),
            70.0,
        ));
        rows.push(row(
            "Figure 3",
            "median (pps)",
            paper::F3_MEDIAN,
            f3.ecdf.median().unwrap_or(0.0),
            0.5,
        ));

        // Figure 4.
        let f4 = DistributionFigure::intensities(&self.fw, EventSource::Honeypot);
        rows.push(row(
            "Figure 4",
            "median (req/s)",
            paper::F4_MEDIAN,
            f4.ecdf.median().unwrap_or(0.0),
            40.0,
        ));
        rows.push(row(
            "Figure 4",
            "mean (req/s)",
            paper::F4_MEAN,
            f4.ecdf.mean().unwrap_or(0.0),
            250.0,
        ));

        // Figure 5.
        let f5 = Figure5::build(&self.fw);
        rows.push(row(
            "Figure 5",
            "medium+ attacks/day (scaled)",
            paper::F5_DAILY,
            f5.series.mean_daily_attacks() * self.scale,
            paper::F5_DAILY * 0.8,
        ));

        // Section 4 joint.
        rows.push(row(
            "Joint",
            "common targets (scaled, k)",
            paper::COMMON_TARGETS / 1e3,
            self.joint.common_targets as f64 * self.scale / 1e3,
            paper::COMMON_TARGETS / 1e3 * 0.6,
        ));
        rows.push(row(
            "Joint",
            "joint targets (scaled, k)",
            paper::JOINT_TARGETS / 1e3,
            self.joint.joint_targets as f64 * self.scale / 1e3,
            paper::JOINT_TARGETS / 1e3 * 0.6,
        ));
        rows.push(row(
            "Joint",
            "single-port share of joint attacks",
            paper::JOINT_SINGLE,
            self.joint.single_port_share,
            0.10,
        ));

        // Section 5.
        rows.push(row(
            "Figure 7",
            "namespace share ever attacked",
            paper::WEB_AFFECTED,
            self.web.affected_fraction(),
            0.12,
        ));
        let (_, daily_share) = self.web.mean_daily_sites();
        rows.push(row(
            "Figure 7",
            "mean daily namespace share",
            paper::WEB_DAILY_SHARE,
            daily_share,
            0.02,
        ));
        let (_, peak) = self.web.peak_fraction();
        rows.push(row(
            "Figure 7",
            "largest daily peak share",
            paper::WEB_PEAK_SHARE,
            peak,
            0.06,
        ));
        rows.push(row(
            "Section 5",
            "TCP share on web-hosting IPs",
            paper::WEB_TCP,
            self.web.web_tcp_share,
            0.05,
        ));
        rows.push(row(
            "Section 5",
            "web-port share on web-hosting IPs",
            paper::WEB_PORTS,
            self.web.web_port_share,
            0.08,
        ));
        rows.push(row(
            "Section 5",
            "NTP share on web-hosting IPs",
            paper::WEB_NTP,
            self.web.web_ntp_share,
            0.08,
        ));

        // Figure 8.
        let t = &self.migration.taxonomy;
        let (pre_a, pre_u) = t.preexisting_shares();
        let (mig_a, mig_u) = t.migrating_shares();
        rows.push(row(
            "Figure 8",
            "attacked share of namespace",
            paper::F8_ATTACKED,
            t.attacked_share(),
            0.12,
        ));
        rows.push(row(
            "Figure 8",
            "preexisting among attacked",
            paper::F8_PRE_ATTACKED,
            pre_a,
            0.08,
        ));
        rows.push(row(
            "Figure 8",
            "preexisting among unattacked",
            paper::F8_PRE_UNATTACKED,
            pre_u,
            0.03,
        ));
        rows.push(row(
            "Figure 8",
            "migrating among attacked",
            paper::F8_MIG_ATTACKED,
            mig_a,
            0.025,
        ));
        rows.push(row(
            "Figure 8",
            "migrating among unattacked",
            paper::F8_MIG_UNATTACKED,
            mig_u,
            0.02,
        ));

        // Figure 9.
        rows.push(row(
            "Figure 9",
            "all sites attacked <= 5 times",
            paper::F9_ALL_LE5,
            self.migration.freq_all.cdf(5.0),
            0.12,
        ));
        rows.push(row(
            "Figure 9",
            "migrating sites attacked <= 5 times",
            paper::F9_MIG_LE5,
            self.migration.freq_migrating.cdf(5.0),
            0.08,
        ));
        rows.push(row(
            "Figure 9",
            "migrating - all gap (pp, must be > 0)",
            paper::F9_MIG_LE5 - paper::F9_ALL_LE5,
            self.migration.freq_migrating.cdf(5.0) - self.migration.freq_all.cdf(5.0),
            0.15,
        ));

        // Figure 10.
        let d = &self.migration;
        let six = [
            d.delay_all.cdf(6.0),
            d.delay_top5.cdf(6.0),
            d.delay_top1.cdf(6.0),
            d.delay_top01.cdf(6.0),
        ];
        for (i, label) in ["all", "top 5%", "top 1%", "top 0.1%"].iter().enumerate() {
            rows.push(row(
                "Figure 10",
                &format!("{label} migrate within 6 days"),
                paper::F10_6D[i],
                six[i],
                0.15,
            ));
        }
        rows.push(row(
            "Figure 10",
            "all migrate within 1 day",
            paper::F10_1D_ALL,
            d.delay_all.cdf(1.0),
            0.10,
        ));
        rows.push(row(
            "Figure 10",
            "top 0.1% migrate within 1 day",
            paper::F10_1D_TOP01,
            d.delay_top01.cdf(1.0),
            0.20,
        ));

        // Figure 11.
        rows.push(row(
            "Figure 11",
            ">=4h: migrate within 1 day",
            paper::F11_1D,
            d.delay_long4h.cdf(1.0),
            0.20,
        ));
        rows.push(row(
            "Figure 11",
            ">=4h: migrate within 5 days",
            paper::F11_5D,
            d.delay_long4h.cdf(5.0),
            0.20,
        ));

        rows
    }

    /// The paper's boundary-sensitivity check (Section 6): shorten the
    /// attack observation window by `trim_days` on either end, re-run the
    /// Web/migration classification, and return (full, trimmed) taxonomies.
    /// The paper verified the class distribution barely moves; the
    /// integration tests assert the same here.
    pub fn boundary_sensitivity(
        world: &World,
        trim_days: u32,
    ) -> (
        dosscope_core::migration::Taxonomy,
        dosscope_core::migration::Taxonomy,
    ) {
        use dosscope_core::EventStore;

        let full_fw = world.framework();
        let full_web = WebImpact::analyze(&full_fw).expect("dns attached");
        let full = MigrationAnalysis::analyze(&full_fw, &full_web)
            .expect("dps attached")
            .taxonomy;

        // Trim the attack data only (the DNS/DPS window stays, exactly as
        // in the paper's check).
        let lo = trim_days as u64 * 86_400;
        let hi = (world.days.saturating_sub(trim_days)) as u64 * 86_400;
        let keep = |e: &dosscope_types::AttackEvent| {
            let t = e.when.start.secs();
            t >= lo && t < hi
        };
        let mut trimmed_store = EventStore::new();
        trimmed_store.ingest_telescope(
            world
                .store
                .telescope()
                .iter()
                .filter(keep)
                .collect(),
        );
        trimmed_store.ingest_honeypot(
            world
                .store
                .honeypot()
                .iter()
                .filter(keep)
                .collect(),
        );
        let trimmed_fw = Framework::new(&trimmed_store, &world.geo, &world.asdb, world.days)
            .with_dns(&world.synth.zone, &world.synth.catalog)
            .with_dps(&world.dps);
        let trimmed_web = WebImpact::analyze(&trimmed_fw).expect("dns attached");
        let trimmed = MigrationAnalysis::analyze(&trimmed_fw, &trimmed_web)
            .expect("dps attached")
            .taxonomy;
        (full, trimmed)
    }

    /// Scale invariance: the reproduction's shape metrics at one scale.
    /// The substitution argument (DESIGN.md §2) rests on shares and shapes
    /// being scale-invariant; [`key_shares`] extracts the metrics and the
    /// integration suite verifies their stability across scales.
    pub fn key_shares(world: &World) -> KeyShares {
        let fw = world.framework();
        let t5 = Table5::build(&fw);
        let t7 = Table7::build(&fw);
        let web = WebImpact::analyze(&fw).expect("dns attached");
        let f2 = DistributionFigure::durations(&fw, EventSource::Telescope);
        let f3 = DistributionFigure::intensities(&fw, EventSource::Telescope);
        KeyShares {
            tcp_share: t5.shares[0] / 100.0,
            single_port_share: t7.single_share(),
            tele_le_5min: f2.ecdf.cdf(300.0),
            tele_le_2pps: f3.ecdf.cdf(2.0),
            web_tcp_share: web.web_tcp_share,
            attacked_namespace_share: web.affected_fraction(),
        }
    }

    /// Render the comparison as a markdown table.
    pub fn render_comparison(rows: &[CheckRow]) -> String {
        let mut s = String::from(
            "| Experiment | Metric | Paper | Measured | Tolerance | Status |\n|---|---|---|---|---|---|\n",
        );
        for r in rows {
            let _ = writeln!(
                s,
                "| {} | {} | {:.4} | {:.4} | ±{:.3} | {} |",
                r.id,
                r.metric,
                r.paper,
                r.measured,
                r.tolerance,
                if r.ok() { "ok" } else { "DEVIATES" }
            );
        }
        let passed = rows.iter().filter(|r| r.ok()).count();
        let _ = writeln!(s, "\n{passed}/{} checks within tolerance", rows.len());
        s
    }
}
