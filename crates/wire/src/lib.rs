//! # dosscope-wire
//!
//! Packet wire formats for the dosscope simulators, in the smoltcp idiom:
//! typed, zero-copy *views* over byte buffers ([`Ipv4Packet`],
//! [`TcpSegment`], [`UdpDatagram`], [`Icmpv4Packet`]) that parse on access
//! and validate on construction, plus builders that emit well-formed packets
//! (correct lengths and Internet checksums).
//!
//! The telescope pipeline classifies *backscatter* — response packets such
//! as TCP SYN/ACK, TCP RST and a list of ICMP message types — so the ICMP
//! view also exposes the quoted inner packet of error messages, which the
//! detector uses to attribute UDP floods (an ICMP destination-unreachable
//! quoting a UDP packet counts as a UDP attack).
//!
//! The honeypot side needs the *request payloads* of the eight reflection
//! protocols AmpPot emulates; [`reflect`] provides minimal but structurally
//! valid request encoders/decoders for those (DNS query header, NTP monlist
//! mode-7 request, SSDP M-SEARCH, and so on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod icmp;
pub mod ipv4;
pub mod reflect;
pub mod tcp;
pub mod udp;

pub use icmp::{Icmpv4Message, Icmpv4Packet};
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

/// Errors raised when parsing or building wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header of the format.
    Truncated,
    /// A length field points outside the buffer.
    BadLength,
    /// A version/format discriminator has an unsupported value.
    BadVersion,
    /// The checksum does not verify.
    BadChecksum,
    /// A field value is outside the representable/permitted range.
    BadField,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("buffer truncated"),
            WireError::BadLength => f.write_str("length field out of range"),
            WireError::BadVersion => f.write_str("unsupported version"),
            WireError::BadChecksum => f.write_str("checksum mismatch"),
            WireError::BadField => f.write_str("field value out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias for wire-format results.
pub type Result<T> = std::result::Result<T, WireError>;
