//! Zero-copy TCP segment view.
//!
//! The telescope classifier only needs header fields (ports, flags), but the
//! view is complete enough to build valid SYN/ACK and RST backscatter
//! segments with correct checksums.

use crate::{checksum, Result, WireError};
use std::net::Ipv4Addr;

/// TCP header flags (lower 6 bits of byte 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag bit.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag bit.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag bit.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag bit.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag bit.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// The SYN/ACK combination: the signature of backscatter from a SYN
    /// flood against an open port.
    pub fn is_syn_ack(self) -> bool {
        self.contains(TcpFlags::SYN.union(TcpFlags::ACK)) && !self.contains(TcpFlags::RST)
    }

    /// Whether RST is set: backscatter from a flood against a closed port
    /// or a stateless responder.
    pub fn is_rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const SEQ: core::ops::Range<usize> = 4..8;
    pub const ACK: core::ops::Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: core::ops::Range<usize> = 14..16;
    pub const CHECKSUM: core::ops::Range<usize> = 16..18;
}

/// A typed view over a TCP segment buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> TcpSegment<T> {
        TcpSegment { buffer }
    }

    /// Wrap, requiring at least a full fixed header and a consistent data
    /// offset.
    pub fn new_checked(buffer: T) -> Result<TcpSegment<T>> {
        let s = TcpSegment { buffer };
        let data = s.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let off = ((data[field::DATA_OFF] >> 4) as usize) * 4;
        if off < HEADER_LEN || off > data.len() {
            return Err(WireError::BadLength);
        }
        Ok(s)
    }

    /// Consume the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[4], d[5], d[6], d[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        let d = self.buffer.as_ref();
        u32::from_be_bytes([d[8], d[9], d[10], d[11]])
    }

    /// Header flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[field::FLAGS] & 0x3F)
    }

    /// Data offset (header length) in bytes.
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[field::DATA_OFF] >> 4) as usize) * 4
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[14], d[15]])
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[16], d[17]])
    }

    /// Verify the checksum against the pseudo-header for `src`/`dst`.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        checksum::verify_transport(src, dst, 6, self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Initialize a minimal header: data offset 5 words, everything else 0.
    pub fn init(&mut self) {
        let d = self.buffer.as_mut();
        d[..HEADER_LEN].fill(0);
        d[field::DATA_OFF] = 0x50;
    }

    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the acknowledgment number.
    pub fn set_ack(&mut self, v: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&v.to_be_bytes());
    }

    /// Set the flag bits.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.buffer.as_mut()[field::FLAGS] = f.0 & 0x3F;
    }

    /// Set the advertised window.
    pub fn set_window(&mut self, w: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&w.to_be_bytes());
    }

    /// Compute and store the checksum for the given pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let d = self.buffer.as_mut();
        d[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum::transport_checksum(src, dst, 6, d);
        d[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "203.0.113.5";
    const DST: &str = "192.0.2.99";

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (SRC.parse().unwrap(), DST.parse().unwrap())
    }

    #[test]
    fn synack_roundtrip() {
        let (src, dst) = addrs();
        let mut buf = [0u8; HEADER_LEN];
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        s.init();
        s.set_src_port(80);
        s.set_dst_port(51111);
        s.set_seq(0x11223344);
        s.set_ack(0x55667788);
        s.set_flags(TcpFlags::SYN | TcpFlags::ACK);
        s.set_window(65535);
        s.fill_checksum(src, dst);

        let v = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(v.src_port(), 80);
        assert_eq!(v.dst_port(), 51111);
        assert_eq!(v.seq(), 0x11223344);
        assert_eq!(v.ack(), 0x55667788);
        assert!(v.flags().is_syn_ack());
        assert!(!v.flags().is_rst());
        assert_eq!(v.window(), 65535);
        assert!(v.verify_checksum(src, dst));
        let other: Ipv4Addr = "192.0.2.1".parse().unwrap();
        assert!(!v.verify_checksum(other, dst));
    }

    #[test]
    fn rst_flag() {
        let mut buf = [0u8; HEADER_LEN];
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        s.init();
        s.set_flags(TcpFlags::RST | TcpFlags::ACK);
        let v = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(v.flags().is_rst());
        assert!(!v.flags().is_syn_ack());
    }

    #[test]
    fn flags_algebra() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        // RST+SYN+ACK is not counted as a SYN/ACK.
        assert!(!(f | TcpFlags::RST).is_syn_ack());
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            TcpSegment::new_checked(&[0u8; 19][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = [0u8; HEADER_LEN];
        buf[field::DATA_OFF] = 0xF0; // 60-byte header > 20-byte buffer
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }
}
