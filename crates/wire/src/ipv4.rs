//! Zero-copy IPv4 header view and field accessors.
//!
//! [`Ipv4Packet`] wraps any `AsRef<[u8]>` buffer and exposes typed getters;
//! with `AsMut<[u8]>` it also exposes setters and checksum filling, so the
//! same type serves parsing (telescope ingest) and building (attack
//! rendering).

use crate::{checksum, Result, WireError};
use std::net::Ipv4Addr;

/// IP protocol numbers the simulators care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// IGMP (2) — appears in the paper's "Other" protocol class.
    Igmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number.
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> IpProtocol {
        match v {
            1 => IpProtocol::Icmp,
            2 => IpProtocol::Igmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Igmp => 2,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(v) => v,
        }
    }
}

impl std::fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpProtocol::Icmp => f.write_str("ICMP"),
            IpProtocol::Igmp => f.write_str("IGMP"),
            IpProtocol::Tcp => f.write_str("TCP"),
            IpProtocol::Udp => f.write_str("UDP"),
            IpProtocol::Unknown(v) => write!(f, "proto-{v}"),
        }
    }
}

mod field {
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const TOTAL_LEN: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const FLAGS_FRAG: core::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: core::ops::Range<usize> = 10..12;
    pub const SRC: core::ops::Range<usize> = 12..16;
    pub const DST: core::ops::Range<usize> = 16..20;
}

/// Minimum IPv4 header length in bytes (no options).
pub const HEADER_LEN: usize = 20;

/// A typed view over an IPv4 packet buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation (setters need this before the
    /// header fields exist). Accessors may panic on truncated buffers;
    /// prefer [`Ipv4Packet::new_checked`] for untrusted input.
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wrap and validate: version, header length and total length must be
    /// consistent with the buffer.
    pub fn new_checked(buffer: T) -> Result<Ipv4Packet<T>> {
        let p = Ipv4Packet { buffer };
        p.check_len()?;
        if p.version() != 4 {
            return Err(WireError::BadVersion);
        }
        Ok(p)
    }

    fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let hl = ((data[field::VER_IHL] & 0x0F) as usize) * 4;
        if hl < HEADER_LEN || hl > data.len() {
            return Err(WireError::BadLength);
        }
        let total = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total < hl || total > data.len() {
            return Err(WireError::BadLength);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[field::VER_IHL] & 0x0F) as usize) * 4
    }

    /// Total packet length in bytes (header + payload).
    pub fn total_len(&self) -> usize {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::TOTAL_LEN.start], d[field::TOTAL_LEN.start + 1]]) as usize
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::IDENT.start], d[field::IDENT.start + 1]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Upper-layer protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[field::CHECKSUM.start], d[field::CHECKSUM.start + 1]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    /// The payload bytes (between header and total length).
    pub fn payload(&self) -> &[u8] {
        let d = self.buffer.as_ref();
        &d[self.header_len()..self.total_len()]
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let d = self.buffer.as_ref();
        checksum::verify(&d[..self.header_len()])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initialize a default header: version 4, IHL 5, TTL 64.
    pub fn init(&mut self) {
        let d = self.buffer.as_mut();
        d[field::VER_IHL] = 0x45;
        d[field::DSCP_ECN] = 0;
        d[field::FLAGS_FRAG.start] = 0x40; // don't fragment
        d[field::FLAGS_FRAG.start + 1] = 0;
        d[field::TTL] = 64;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::TOTAL_LEN].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&id.to_be_bytes());
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.buffer.as_mut()[field::PROTOCOL] = p.into();
    }

    /// Set the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&a.octets());
    }

    /// Set the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&a.octets());
    }

    /// Mutable access to the payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let total = self.total_len();
        &mut self.buffer.as_mut()[hl..total]
    }

    /// Compute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        let d = self.buffer.as_mut();
        d[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum::checksum(&d[..hl]);
        d[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_simple(payload_len: usize) -> Vec<u8> {
        let total = HEADER_LEN + payload_len;
        let mut buf = vec![0u8; total];
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.init();
        p.set_total_len(total as u16);
        p.set_protocol(IpProtocol::Tcp);
        p.set_src("192.0.2.1".parse().unwrap());
        p.set_dst("198.51.100.7".parse().unwrap());
        p.set_ident(0xBEEF);
        p.fill_checksum();
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = build_simple(8);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_len(), 28);
        assert_eq!(p.protocol(), IpProtocol::Tcp);
        assert_eq!(p.src(), "192.0.2.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.dst(), "198.51.100.7".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.ident(), 0xBEEF);
        assert_eq!(p.ttl(), 64);
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 8);
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut buf = build_simple(0);
        buf[8] ^= 0xFF; // flip TTL
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = build_simple(0);
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadVersion
        );
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = build_simple(0);
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn rejects_short_ihl() {
        let mut buf = build_simple(0);
        buf[0] = 0x43; // IHL = 3 words < 20 bytes
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn protocol_number_roundtrip() {
        for v in [1u8, 2, 6, 17, 89, 255] {
            assert_eq!(u8::from(IpProtocol::from(v)), v);
        }
    }

    #[test]
    fn payload_mut_respects_bounds() {
        let total = HEADER_LEN + 4;
        let mut buf = vec![0u8; total + 6]; // slack after total_len
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.init();
        p.set_total_len(total as u16);
        p.payload_mut().copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&buf[20..24], &[1, 2, 3, 4]);
        assert_eq!(&buf[24..], &[0; 6]);
    }
}
