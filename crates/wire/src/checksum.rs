//! RFC 1071 Internet checksum, shared by the IPv4, ICMP, TCP and UDP
//! formats, plus the TCP/UDP pseudo-header combination.

use std::net::Ipv4Addr;

/// One's-complement sum of 16-bit words over `data` (odd trailing byte is
/// padded with zero), folded to 16 bits. This is the *raw sum*, not the
/// final checksum — callers combine sums and invert once.
pub fn sum(data: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u16::from_be_bytes([w[0], w[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += u16::from_be_bytes([*last, 0]) as u32;
    }
    acc
}

/// Fold a 32-bit accumulator into a 16-bit one's-complement value.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Final checksum over a contiguous buffer: `!fold(sum(data))`.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum(data))
}

/// The TCP/UDP pseudo-header sum: source, destination, zero/protocol byte
/// pair and the upper-layer length.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    sum(&s) + sum(&d) + protocol as u32 + len as u32
}

/// Checksum of an upper-layer segment including its pseudo-header.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    !fold(pseudo_header_sum(src, dst, protocol, segment.len() as u16) + sum(segment))
}

/// Verify a buffer whose checksum field is already filled in: the folded
/// sum over the whole buffer (including the checksum) must be 0xFFFF.
pub fn verify(data: &[u8]) -> bool {
    fold(sum(data)) == 0xFFFF
}

/// Verify an upper-layer segment (checksum field included) together with
/// its pseudo-header.
pub fn verify_transport(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> bool {
    fold(pseudo_header_sum(src, dst, protocol, segment.len() as u16) + sum(segment)) == 0xFFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum(&data)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padding() {
        assert_eq!(sum(&[0xab]), 0xab00);
        assert_eq!(sum(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn verify_roundtrip() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x40, 0x06, 0, 0];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn transport_roundtrip() {
        let src: Ipv4Addr = "192.0.2.1".parse().unwrap();
        let dst: Ipv4Addr = "198.51.100.2".parse().unwrap();
        let mut seg = vec![0u8; 12];
        seg[0..2].copy_from_slice(&1234u16.to_be_bytes());
        seg[2..4].copy_from_slice(&80u16.to_be_bytes());
        let ck = transport_checksum(src, dst, 6, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes()); // pretend offset 6 is the checksum
        assert!(verify_transport(src, dst, 6, &seg));
        // The pseudo-header sum is commutative in src/dst, so swap alone
        // would still verify; use a genuinely different address.
        let other: Ipv4Addr = "192.0.2.2".parse().unwrap();
        assert!(!verify_transport(other, dst, 6, &seg));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(sum(&[]), 0);
        assert_eq!(checksum(&[]), 0xFFFF);
    }
}
