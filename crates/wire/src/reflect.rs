//! Request payloads for the eight reflection protocols AmpPot emulates
//! (QOTD, CharGen, DNS, NTP, SSDP, MSSQL, RIPv1, TFTP).
//!
//! Attackers elicit amplified responses by sending small, well-known request
//! payloads with the victim's address spoofed as the source. This module
//! encodes structurally valid requests and classifies received payloads so
//! the honeypot can (a) recognise abuse per protocol and (b) compute the
//! amplification factor it would have produced.

use dosscope_types::ReflectionProtocol;

/// UDP port for each emulated protocol (delegates to
/// [`ReflectionProtocol::port`]).
pub fn protocol_port(p: ReflectionProtocol) -> u16 {
    p.port()
}

/// Typical bandwidth amplification factor per protocol, used by the
/// honeypot to report would-be response sizes. Values follow the ballpark
/// figures of Rossow's "Amplification Hell" (NDSS 2014).
pub fn amplification_factor(p: ReflectionProtocol) -> f64 {
    match p {
        ReflectionProtocol::Ntp => 556.9,
        ReflectionProtocol::Dns => 54.6,
        ReflectionProtocol::CharGen => 358.8,
        ReflectionProtocol::Ssdp => 30.8,
        ReflectionProtocol::RipV1 => 131.0,
        ReflectionProtocol::MsSql => 25.0,
        ReflectionProtocol::Tftp => 60.0,
        ReflectionProtocol::Qotd => 140.3,
    }
}

/// Encode an abuse request for the given protocol.
///
/// The payloads are the canonical small probes attackers use: NTP
/// `monlist`, DNS `ANY` query, a single CharGen byte, SSDP `M-SEARCH`,
/// RIPv1 full-table request, MS-SQL browser ping, TFTP read request, and an
/// empty QOTD trigger.
pub fn encode_request(p: ReflectionProtocol) -> Vec<u8> {
    match p {
        ReflectionProtocol::Ntp => ntp_monlist(),
        ReflectionProtocol::Dns => dns_any_query("example.com"),
        ReflectionProtocol::CharGen => vec![0x01],
        ReflectionProtocol::Ssdp => ssdp_msearch(),
        ReflectionProtocol::RipV1 => ripv1_request(),
        ReflectionProtocol::MsSql => vec![0x02],
        ReflectionProtocol::Tftp => tftp_rrq("a.pdf"),
        ReflectionProtocol::Qotd => vec![0x0a],
    }
}

/// Borrowed request payload for `p`: identical bytes to
/// [`encode_request`], but encoded once per process and shared, so the
/// per-packet hot path never allocates for the payload.
pub fn request_payload(p: ReflectionProtocol) -> &'static [u8] {
    use std::sync::OnceLock;
    static PAYLOADS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    let all = PAYLOADS.get_or_init(|| {
        let mut v = vec![Vec::new(); ReflectionProtocol::ALL.len()];
        for q in ReflectionProtocol::ALL {
            v[q as usize] = encode_request(q);
        }
        v
    });
    &all[p as usize]
}

/// Classify a UDP payload received on `port`: is it a plausible abuse
/// request for one of the emulated protocols?
///
/// Classification is port-first (the honeypot listens per-protocol) with a
/// payload sanity check, mirroring AmpPot's per-port service emulation.
pub fn classify_request(port: u16, payload: &[u8]) -> Option<ReflectionProtocol> {
    let proto = match port {
        123 => ReflectionProtocol::Ntp,
        53 => ReflectionProtocol::Dns,
        19 => ReflectionProtocol::CharGen,
        1900 => ReflectionProtocol::Ssdp,
        520 => ReflectionProtocol::RipV1,
        1434 => ReflectionProtocol::MsSql,
        69 => ReflectionProtocol::Tftp,
        17 => ReflectionProtocol::Qotd,
        _ => return None,
    };
    let ok = match proto {
        ReflectionProtocol::Ntp => is_ntp_monlist(payload),
        ReflectionProtocol::Dns => is_dns_query(payload),
        ReflectionProtocol::CharGen | ReflectionProtocol::Qotd => true,
        ReflectionProtocol::Ssdp => is_ssdp_msearch(payload),
        ReflectionProtocol::RipV1 => is_ripv1_request(payload),
        ReflectionProtocol::MsSql => is_mssql_ping(payload),
        ReflectionProtocol::Tftp => is_tftp_rrq(payload),
    };
    ok.then_some(proto)
}

/// NTP mode-7 `monlist` request (implementation 3 = XNTPD, request code
/// 42 = MON_GETLIST_1), the classic NTP amplification vector.
pub fn ntp_monlist() -> Vec<u8> {
    let mut p = vec![0u8; 8];
    p[0] = 0x17; // LI=0, version 2, mode 7 (private)
    p[1] = 0x00; // auth=0, sequence 0
    p[2] = 0x03; // implementation: XNTPD
    p[3] = 0x2a; // request code: MON_GETLIST_1
    p
}

/// Recognise an NTP private-mode monlist request.
pub fn is_ntp_monlist(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[0] & 0x07 == 7 && payload[2] == 0x03 && payload[3] == 0x2a
}

/// A DNS query for `QTYPE ANY` over `name`, the classic DNS amplification
/// vector (often combined with EDNS0; we keep the minimal form).
pub fn dns_any_query(name: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(17 + name.len());
    p.extend_from_slice(&0x1234u16.to_be_bytes()); // transaction id
    p.extend_from_slice(&0x0100u16.to_be_bytes()); // flags: RD
    p.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
    p.extend_from_slice(&[0, 0, 0, 0, 0, 0]); // AN/NS/AR
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        p.push(bytes.len().min(63) as u8);
        p.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    p.push(0); // root
    p.extend_from_slice(&255u16.to_be_bytes()); // QTYPE ANY
    p.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN
    p
}

/// Recognise a DNS query: QR bit clear, at least one question, and a
/// parseable QNAME.
pub fn is_dns_query(payload: &[u8]) -> bool {
    if payload.len() < 17 {
        return false;
    }
    let flags = u16::from_be_bytes([payload[2], payload[3]]);
    if flags & 0x8000 != 0 {
        return false; // QR set: a response, not a query
    }
    let qdcount = u16::from_be_bytes([payload[4], payload[5]]);
    if qdcount == 0 {
        return false;
    }
    // Walk the first QNAME.
    let mut i = 12usize;
    loop {
        let Some(&len) = payload.get(i) else {
            return false;
        };
        if len == 0 {
            break;
        }
        if len & 0xC0 != 0 {
            return false; // compression pointers don't appear in queries
        }
        i += 1 + len as usize;
        if i > payload.len() {
            return false;
        }
    }
    // Need QTYPE + QCLASS after the terminator.
    i + 5 <= payload.len()
}

/// SSDP `M-SEARCH` discovery request.
pub fn ssdp_msearch() -> Vec<u8> {
    b"M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nMAN: \"ssdp:discover\"\r\nMX: 1\r\nST: ssdp:all\r\n\r\n"
        .to_vec()
}

/// Recognise an SSDP M-SEARCH.
pub fn is_ssdp_msearch(payload: &[u8]) -> bool {
    payload.starts_with(b"M-SEARCH")
}

/// RIPv1 request for the full routing table (command 1, version 1,
/// AF 0, metric 16).
pub fn ripv1_request() -> Vec<u8> {
    let mut p = vec![0u8; 24];
    p[0] = 1; // command: request
    p[1] = 1; // version 1
    p[23] = 16; // metric 16 = whole table
    p
}

/// Recognise a RIPv1 full-table request.
pub fn is_ripv1_request(payload: &[u8]) -> bool {
    payload.len() >= 24 && payload[0] == 1 && payload[1] == 1
}

/// Recognise the MS-SQL browser ping (CLNT_UCAST_EX, 0x02 or 0x03).
pub fn is_mssql_ping(payload: &[u8]) -> bool {
    matches!(payload.first(), Some(0x02) | Some(0x03))
}

/// TFTP read request (opcode 1) for `filename` in octet mode.
pub fn tftp_rrq(filename: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(filename.len() + 9);
    p.extend_from_slice(&1u16.to_be_bytes());
    p.extend_from_slice(filename.as_bytes());
    p.push(0);
    p.extend_from_slice(b"octet");
    p.push(0);
    p
}

/// Recognise a TFTP read request.
pub fn is_tftp_rrq(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[0] == 0 && payload[1] == 1 && payload.last() == Some(&0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [ReflectionProtocol; 8] = [
        ReflectionProtocol::Ntp,
        ReflectionProtocol::Dns,
        ReflectionProtocol::CharGen,
        ReflectionProtocol::Ssdp,
        ReflectionProtocol::RipV1,
        ReflectionProtocol::MsSql,
        ReflectionProtocol::Tftp,
        ReflectionProtocol::Qotd,
    ];

    #[test]
    fn every_encoded_request_classifies_back() {
        for p in ALL {
            let payload = encode_request(p);
            let port = protocol_port(p);
            assert_eq!(
                classify_request(port, &payload),
                Some(p),
                "round-trip failed for {p:?}"
            );
        }
    }

    #[test]
    fn request_payload_matches_encode_request() {
        for p in ALL {
            assert_eq!(request_payload(p), encode_request(p).as_slice());
            // Same borrow on every call: no per-call allocation.
            assert_eq!(request_payload(p).as_ptr(), request_payload(p).as_ptr());
        }
    }

    #[test]
    fn wrong_port_is_rejected() {
        let payload = encode_request(ReflectionProtocol::Ntp);
        assert_eq!(classify_request(8080, &payload), None);
    }

    #[test]
    fn dns_response_is_not_a_query() {
        let mut q = dns_any_query("example.org");
        q[2] |= 0x80; // set QR
        assert!(!is_dns_query(&q));
    }

    #[test]
    fn dns_query_must_have_question() {
        let mut q = dns_any_query("example.org");
        q[4] = 0;
        q[5] = 0;
        assert!(!is_dns_query(&q));
    }

    #[test]
    fn dns_qname_walk_bounds() {
        // Truncated mid-label must not panic and must reject.
        let q = dns_any_query("a-very-long-label.example.com");
        assert!(is_dns_query(&q));
        assert!(!is_dns_query(&q[..14]));
    }

    #[test]
    fn ntp_monlist_structure() {
        let p = ntp_monlist();
        assert_eq!(p[0] & 0x07, 7, "mode 7");
        assert!(is_ntp_monlist(&p));
        assert!(!is_ntp_monlist(&[0x17, 0, 0, 0])); // wrong request code
    }

    #[test]
    fn ripv1_metric_16() {
        let p = ripv1_request();
        assert_eq!(p.len(), 24);
        assert_eq!(p[23], 16);
        assert!(is_ripv1_request(&p));
        assert!(!is_ripv1_request(&p[..20]));
    }

    #[test]
    fn tftp_rrq_structure() {
        let p = tftp_rrq("large-file.bin");
        assert!(is_tftp_rrq(&p));
        assert!(!is_tftp_rrq(b"\x00\x02foo\x00octet\x00")); // WRQ, not RRQ
    }

    #[test]
    fn amplification_factors_positive() {
        for p in ALL {
            assert!(amplification_factor(p) > 1.0, "{p:?} must amplify");
        }
    }

    #[test]
    fn ports_are_distinct() {
        let mut ports: Vec<u16> = ALL.iter().map(|&p| protocol_port(p)).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 8);
    }
}
