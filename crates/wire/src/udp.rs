//! Zero-copy UDP datagram view.

use crate::{checksum, Result, WireError};
use std::net::Ipv4Addr;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> UdpDatagram<T> {
        UdpDatagram { buffer }
    }

    /// Wrap, validating the fixed header and the length field.
    pub fn new_checked(buffer: T) -> Result<UdpDatagram<T>> {
        let d = UdpDatagram { buffer };
        let data = d.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::BadLength);
        }
        Ok(d)
    }

    /// Consume the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// The length field (header + payload).
    pub fn len_field(&self) -> usize {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]]) as usize
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field()]
    }

    /// Verify the checksum (zero means "no checksum" per RFC 768 and
    /// verifies trivially).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let d = self.buffer.as_ref();
        let ck = u16::from_be_bytes([d[6], d[7]]);
        if ck == 0 {
            return true;
        }
        checksum::verify_transport(src, dst, 17, &d[..self.len_field()])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Mutable payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len_field();
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }

    /// Compute and store the checksum for the given pseudo-header; a
    /// computed value of zero is transmitted as 0xFFFF per RFC 768.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = self.len_field();
        let d = self.buffer.as_mut();
        d[6..8].copy_from_slice(&[0, 0]);
        let mut ck = checksum::transport_checksum(src, dst, 17, &d[..len]);
        if ck == 0 {
            ck = 0xFFFF;
        }
        d[6..8].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        ("198.51.100.1".parse().unwrap(), "203.0.113.2".parse().unwrap())
    }

    #[test]
    fn roundtrip() {
        let (src, dst) = addrs();
        let mut buf = [0u8; HEADER_LEN + 4];
        let mut u = UdpDatagram::new_unchecked(&mut buf[..]);
        u.set_src_port(53);
        u.set_dst_port(33000);
        u.set_len((HEADER_LEN + 4) as u16);
        u.payload_mut().copy_from_slice(b"ping");
        u.fill_checksum(src, dst);

        let v = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(v.src_port(), 53);
        assert_eq!(v.dst_port(), 33000);
        assert_eq!(v.payload(), b"ping");
        assert!(v.verify_checksum(src, dst));
        let other: Ipv4Addr = "192.0.2.77".parse().unwrap();
        assert!(!v.verify_checksum(other, dst));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let (src, dst) = addrs();
        let mut buf = [0u8; HEADER_LEN];
        let mut u = UdpDatagram::new_unchecked(&mut buf[..]);
        u.set_len(HEADER_LEN as u16);
        let v = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(v.verify_checksum(src, dst));
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = [0u8; HEADER_LEN];
        buf[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
        buf[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }
}
