//! High-level constructors for the complete IPv4 packets the simulators
//! exchange: backscatter responses emitted by flood victims (SYN/ACK, RST,
//! ICMP echo replies and error messages quoting the offending packet), and
//! the spoofed reflection requests honeypots receive.
//!
//! Each builder returns an owned, fully checksummed packet; every builder
//! has a round-trip test through the checked parser, and `dosscope-telescope`
//! and `dosscope-amppot` consume these bytes through the same parsers, so
//! the simulated data path exercises real encode/decode on both ends.
//!
//! ```
//! use dosscope_wire::{builder, Ipv4Packet, TcpSegment};
//!
//! // A victim's SYN/ACK to one of the flood's spoofed sources.
//! let pkt = builder::tcp_syn_ack(
//!     "203.0.113.80".parse().unwrap(), 80,
//!     "44.1.2.3".parse().unwrap(), 40_000, 1,
//! );
//! let ip = Ipv4Packet::new_checked(pkt.as_slice()).unwrap();
//! assert!(ip.verify_checksum());
//! let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
//! assert!(tcp.flags().is_syn_ack());
//! ```

use crate::icmp::{self, Icmpv4Message, Icmpv4Packet};
use crate::ipv4::{self, IpProtocol, Ipv4Packet};
use crate::reflect;
use crate::tcp::{self, TcpFlags, TcpSegment};
use crate::udp::{self, UdpDatagram};
use dosscope_types::ReflectionProtocol;
use std::net::Ipv4Addr;

/// Reset `buf` to a zeroed IPv4 shell of `HEADER_LEN + payload_len` bytes
/// with the header fields below filled in. The buffer's capacity is
/// reused, so a caller looping over packets allocates only on growth.
fn ipv4_shell_into(
    buf: &mut Vec<u8>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: IpProtocol,
    ident: u16,
    payload_len: usize,
) {
    let total = ipv4::HEADER_LEN + payload_len;
    buf.clear();
    buf.resize(total, 0);
    let mut ip = Ipv4Packet::new_unchecked(&mut buf[..]);
    ip.init();
    ip.set_total_len(total as u16);
    ip.set_protocol(proto);
    ip.set_src(src);
    ip.set_dst(dst);
    ip.set_ident(ident);
}

fn finish_ip(buf: &mut [u8]) {
    let mut ip = Ipv4Packet::new_unchecked(buf);
    ip.fill_checksum();
}

/// A TCP SYN/ACK from `victim:victim_port` to a spoofed source — the
/// backscatter of a SYN flood against an open port.
pub fn tcp_syn_ack(
    victim: Ipv4Addr,
    victim_port: u16,
    spoofed: Ipv4Addr,
    spoofed_port: u16,
    seq: u32,
) -> Vec<u8> {
    let mut buf = Vec::new();
    tcp_syn_ack_into(&mut buf, victim, victim_port, spoofed, spoofed_port, seq);
    buf
}

/// [`tcp_syn_ack`] into a reusable scratch buffer.
pub fn tcp_syn_ack_into(
    buf: &mut Vec<u8>,
    victim: Ipv4Addr,
    victim_port: u16,
    spoofed: Ipv4Addr,
    spoofed_port: u16,
    seq: u32,
) {
    tcp_response(
        buf,
        victim,
        victim_port,
        spoofed,
        spoofed_port,
        seq,
        TcpFlags::SYN | TcpFlags::ACK,
    )
}

/// A TCP RST from `victim:victim_port` — the backscatter of a flood against
/// a closed port (or a stateless RST responder).
pub fn tcp_rst(
    victim: Ipv4Addr,
    victim_port: u16,
    spoofed: Ipv4Addr,
    spoofed_port: u16,
    seq: u32,
) -> Vec<u8> {
    let mut buf = Vec::new();
    tcp_rst_into(&mut buf, victim, victim_port, spoofed, spoofed_port, seq);
    buf
}

/// [`tcp_rst`] into a reusable scratch buffer.
pub fn tcp_rst_into(
    buf: &mut Vec<u8>,
    victim: Ipv4Addr,
    victim_port: u16,
    spoofed: Ipv4Addr,
    spoofed_port: u16,
    seq: u32,
) {
    tcp_response(
        buf,
        victim,
        victim_port,
        spoofed,
        spoofed_port,
        seq,
        TcpFlags::RST | TcpFlags::ACK,
    )
}

#[allow(clippy::too_many_arguments)]
fn tcp_response(
    buf: &mut Vec<u8>,
    victim: Ipv4Addr,
    victim_port: u16,
    spoofed: Ipv4Addr,
    spoofed_port: u16,
    seq: u32,
    flags: TcpFlags,
) {
    ipv4_shell_into(buf, victim, spoofed, IpProtocol::Tcp, seq as u16, tcp::HEADER_LEN);
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[..]);
        let mut seg = TcpSegment::new_unchecked(ip.payload_mut());
        seg.init();
        seg.set_src_port(victim_port);
        seg.set_dst_port(spoofed_port);
        seg.set_seq(seq);
        seg.set_ack(seq.wrapping_add(1));
        seg.set_flags(flags);
        seg.set_window(16_384);
        seg.fill_checksum(victim, spoofed);
    }
    finish_ip(buf)
}

/// An ICMP echo reply from the victim of a ping flood to a spoofed source.
pub fn icmp_echo_reply(victim: Ipv4Addr, spoofed: Ipv4Addr, ident: u16, seq: u16) -> Vec<u8> {
    let mut buf = Vec::new();
    icmp_echo_reply_into(&mut buf, victim, spoofed, ident, seq);
    buf
}

/// [`icmp_echo_reply`] into a reusable scratch buffer.
pub fn icmp_echo_reply_into(
    buf: &mut Vec<u8>,
    victim: Ipv4Addr,
    spoofed: Ipv4Addr,
    ident: u16,
    seq: u16,
) {
    ipv4_shell_into(buf, victim, spoofed, IpProtocol::Icmp, seq, icmp::HEADER_LEN + 8);
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[..]);
        let mut ic = Icmpv4Packet::new_unchecked(ip.payload_mut());
        ic.set_message(Icmpv4Message::EchoReply);
        ic.set_code(0);
        ic.set_ident(ident);
        ic.set_seq_no(seq);
        ic.fill_checksum();
    }
    finish_ip(buf)
}

/// An ICMP destination-unreachable from the victim of a UDP (or other
/// connectionless) flood, quoting the offending packet: inner source is the
/// spoofed address the flood claimed, inner destination is the victim.
///
/// `inner_proto`/`inner_dst_port` describe the flood packet being quoted —
/// the telescope's attribution of UDP attacks reads exactly these fields
/// back out of the quotation.
pub fn icmp_dest_unreachable(
    victim: Ipv4Addr,
    spoofed: Ipv4Addr,
    inner_proto: IpProtocol,
    inner_src_port: u16,
    inner_dst_port: u16,
    code: u8,
) -> Vec<u8> {
    let mut buf = Vec::new();
    icmp_dest_unreachable_into(
        &mut buf,
        victim,
        spoofed,
        inner_proto,
        inner_src_port,
        inner_dst_port,
        code,
    );
    buf
}

/// [`icmp_dest_unreachable`] into a reusable scratch buffer.
#[allow(clippy::too_many_arguments)]
pub fn icmp_dest_unreachable_into(
    buf: &mut Vec<u8>,
    victim: Ipv4Addr,
    spoofed: Ipv4Addr,
    inner_proto: IpProtocol,
    inner_src_port: u16,
    inner_dst_port: u16,
    code: u8,
) {
    // Quoted packet: IPv4 header + 8 bytes of transport header, per
    // RFC 792 — a fixed size, so it fits on the stack.
    const INNER_LEN: usize = ipv4::HEADER_LEN + 8;
    let mut inner = [0u8; INNER_LEN];
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut inner[..]);
        ip.init();
        ip.set_total_len(INNER_LEN as u16);
        ip.set_protocol(inner_proto);
        ip.set_src(spoofed);
        ip.set_dst(victim);
        ip.fill_checksum();
        let payload = ip.payload_mut();
        payload[0..2].copy_from_slice(&inner_src_port.to_be_bytes());
        payload[2..4].copy_from_slice(&inner_dst_port.to_be_bytes());
        if inner_proto == IpProtocol::Udp {
            payload[4..6].copy_from_slice(&(8u16).to_be_bytes());
        }
    }

    ipv4_shell_into(
        buf,
        victim,
        spoofed,
        IpProtocol::Icmp,
        0,
        icmp::HEADER_LEN + INNER_LEN,
    );
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[..]);
        let mut ic = Icmpv4Packet::new_unchecked(ip.payload_mut());
        ic.set_message(Icmpv4Message::DestUnreachable);
        ic.set_code(code);
        ic.payload_mut().copy_from_slice(&inner);
        ic.fill_checksum();
    }
    finish_ip(buf)
}

/// A spoofed reflection request: UDP datagram carrying the protocol's abuse
/// payload, with the *victim* as source (that's the point of reflection)
/// and a honeypot as destination.
pub fn reflection_request(
    victim: Ipv4Addr,
    victim_port: u16,
    honeypot: Ipv4Addr,
    protocol: ReflectionProtocol,
) -> Vec<u8> {
    let mut buf = Vec::new();
    reflection_request_into(&mut buf, victim, victim_port, honeypot, protocol);
    buf
}

/// [`reflection_request`] into a reusable scratch buffer.
pub fn reflection_request_into(
    buf: &mut Vec<u8>,
    victim: Ipv4Addr,
    victim_port: u16,
    honeypot: Ipv4Addr,
    protocol: ReflectionProtocol,
) {
    let payload = reflect::request_payload(protocol);
    let udp_len = udp::HEADER_LEN + payload.len();
    ipv4_shell_into(buf, victim, honeypot, IpProtocol::Udp, 0, udp_len);
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[..]);
        let mut u = UdpDatagram::new_unchecked(ip.payload_mut());
        u.set_src_port(victim_port);
        u.set_dst_port(protocol.port());
        u.set_len(udp_len as u16);
        u.payload_mut().copy_from_slice(payload);
        u.fill_checksum(victim, honeypot);
    }
    finish_ip(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v() -> Ipv4Addr {
        "203.0.113.10".parse().unwrap()
    }
    fn s() -> Ipv4Addr {
        "45.12.99.3".parse().unwrap()
    }

    #[test]
    fn syn_ack_parses_and_verifies() {
        let pkt = tcp_syn_ack(v(), 80, s(), 41000, 0xDEADBEEF);
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.protocol(), IpProtocol::Tcp);
        assert_eq!(ip.src(), v());
        assert_eq!(ip.dst(), s());
        let seg = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(seg.flags().is_syn_ack());
        assert_eq!(seg.src_port(), 80);
        assert_eq!(seg.dst_port(), 41000);
        assert!(seg.verify_checksum(ip.src(), ip.dst()));
    }

    #[test]
    fn rst_parses() {
        let pkt = tcp_rst(v(), 443, s(), 50000, 7);
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        let seg = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(seg.flags().is_rst());
        assert!(seg.verify_checksum(ip.src(), ip.dst()));
    }

    #[test]
    fn echo_reply_parses() {
        let pkt = icmp_echo_reply(v(), s(), 9, 11);
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::Icmp);
        let ic = Icmpv4Packet::new_checked(ip.payload()).unwrap();
        assert_eq!(ic.message(), Icmpv4Message::EchoReply);
        assert!(ic.verify_checksum());
        assert_eq!(ic.ident(), 9);
        assert_eq!(ic.seq_no(), 11);
    }

    #[test]
    fn dest_unreachable_quotes_flood_packet() {
        let pkt = icmp_dest_unreachable(v(), s(), IpProtocol::Udp, 53111, 27015, 3);
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        assert_eq!(ip.src(), v(), "outer source is the victim");
        let ic = Icmpv4Packet::new_checked(ip.payload()).unwrap();
        assert!(ic.verify_checksum());
        let quoted = ic.quoted_packet().expect("inner packet parses");
        assert_eq!(quoted.protocol(), IpProtocol::Udp);
        assert_eq!(quoted.src(), s(), "inner source is the spoofed address");
        assert_eq!(quoted.dst(), v(), "inner destination is the victim");
        let inner_udp = UdpDatagram::new_checked(quoted.payload()).unwrap();
        assert_eq!(inner_udp.dst_port(), 27015, "attacked port is recoverable");
    }

    #[test]
    fn dest_unreachable_igmp_quotation() {
        let pkt = icmp_dest_unreachable(v(), s(), IpProtocol::Igmp, 0, 0, 2);
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        let ic = Icmpv4Packet::new_checked(ip.payload()).unwrap();
        let quoted = ic.quoted_packet().unwrap();
        assert_eq!(quoted.protocol(), IpProtocol::Igmp);
    }

    #[test]
    fn reflection_requests_classify_for_all_protocols() {
        for proto in ReflectionProtocol::ALL {
            let pkt = reflection_request(v(), 4444, s(), proto);
            let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
            assert!(ip.verify_checksum());
            assert_eq!(ip.src(), v(), "spoofed source must be the victim");
            let u = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert!(u.verify_checksum(ip.src(), ip.dst()));
            assert_eq!(u.dst_port(), proto.port());
            assert_eq!(
                reflect::classify_request(u.dst_port(), u.payload()),
                Some(proto)
            );
        }
    }
}
