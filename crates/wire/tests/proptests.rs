//! Property-based tests for the wire layer: checked parsers never panic on
//! arbitrary bytes, builders and parsers are inverse, and classification
//! invariants hold for every generated packet.

use dosscope_types::ReflectionProtocol;
use dosscope_wire::{builder, reflect, Icmpv4Packet, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_protocol() -> impl Strategy<Value = ReflectionProtocol> {
    prop_oneof![
        Just(ReflectionProtocol::Ntp),
        Just(ReflectionProtocol::Dns),
        Just(ReflectionProtocol::CharGen),
        Just(ReflectionProtocol::Ssdp),
        Just(ReflectionProtocol::RipV1),
        Just(ReflectionProtocol::MsSql),
        Just(ReflectionProtocol::Tftp),
        Just(ReflectionProtocol::Qotd),
    ]
}

proptest! {
    /// Checked parsers must never panic, whatever the bytes.
    #[test]
    fn parsers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Packet::new_checked(bytes.as_slice());
        let _ = TcpSegment::new_checked(bytes.as_slice());
        let _ = UdpDatagram::new_checked(bytes.as_slice());
        let _ = Icmpv4Packet::new_checked(bytes.as_slice());
        // Reflection classification over arbitrary payloads is total.
        let _ = reflect::classify_request(53, &bytes);
        let _ = reflect::classify_request(123, &bytes);
        let _ = reflect::classify_request(0, &bytes);
    }

    /// If a checked IPv4 parse succeeds on garbage, every accessor must be
    /// in-bounds (no panics reading fields/payload).
    #[test]
    fn accessors_safe_after_checked_parse(bytes in proptest::collection::vec(any::<u8>(), 20..96)) {
        if let Ok(p) = Ipv4Packet::new_checked(bytes.as_slice()) {
            let _ = (p.version(), p.header_len(), p.total_len(), p.ttl());
            let _ = (p.src(), p.dst(), p.protocol(), p.ident());
            let _ = p.payload();
            let _ = p.verify_checksum();
        }
    }

    /// SYN/ACK builder and parser are inverse for all field values, and
    /// checksums always verify.
    #[test]
    fn syn_ack_roundtrip(
        victim in arb_addr(),
        spoofed in arb_addr(),
        vport in any::<u16>(),
        sport in any::<u16>(),
        seq in any::<u32>(),
    ) {
        let pkt = builder::tcp_syn_ack(victim, vport, spoofed, sport, seq);
        let ip = Ipv4Packet::new_checked(pkt.as_slice()).unwrap();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(ip.src(), victim);
        prop_assert_eq!(ip.dst(), spoofed);
        prop_assert_eq!(ip.protocol(), IpProtocol::Tcp);
        let seg = TcpSegment::new_checked(ip.payload()).unwrap();
        prop_assert!(seg.verify_checksum(victim, spoofed));
        prop_assert_eq!(seg.src_port(), vport);
        prop_assert_eq!(seg.dst_port(), sport);
        prop_assert_eq!(seg.seq(), seq);
        prop_assert!(seg.flags().is_syn_ack());
    }

    /// The ICMP error quotation preserves the inner flood packet's
    /// protocol and ports for all inputs.
    #[test]
    fn unreachable_quotation_roundtrip(
        victim in arb_addr(),
        spoofed in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        code in 0u8..16,
    ) {
        let pkt = builder::icmp_dest_unreachable(
            victim, spoofed, IpProtocol::Udp, sport, dport, code,
        );
        let ip = Ipv4Packet::new_checked(pkt.as_slice()).unwrap();
        let icmp = Icmpv4Packet::new_checked(ip.payload()).unwrap();
        prop_assert!(icmp.verify_checksum());
        prop_assert_eq!(icmp.code(), code);
        let quoted = icmp.quoted_packet().unwrap();
        prop_assert_eq!(quoted.protocol(), IpProtocol::Udp);
        prop_assert_eq!(quoted.src(), spoofed);
        prop_assert_eq!(quoted.dst(), victim);
        let inner = UdpDatagram::new_checked(quoted.payload()).unwrap();
        prop_assert_eq!(inner.src_port(), sport);
        prop_assert_eq!(inner.dst_port(), dport);
    }

    /// Every reflection request classifies back to its protocol, from any
    /// victim address and source port.
    #[test]
    fn reflection_request_roundtrip(
        victim in arb_addr(),
        pot in arb_addr(),
        sport in any::<u16>(),
        protocol in arb_protocol(),
    ) {
        let pkt = builder::reflection_request(victim, sport, pot, protocol);
        let ip = Ipv4Packet::new_checked(pkt.as_slice()).unwrap();
        prop_assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        prop_assert!(udp.verify_checksum(victim, pot));
        prop_assert_eq!(udp.dst_port(), protocol.port());
        prop_assert_eq!(reflect::classify_request(udp.dst_port(), udp.payload()), Some(protocol));
    }

    /// Bit flips in a built packet are caught by at least one checksum
    /// (header or transport), unless they hit a "don't care" region —
    /// which for our minimal packets doesn't exist.
    #[test]
    fn bit_flips_detected(
        victim in arb_addr(),
        spoofed in arb_addr(),
        flip_byte in 0usize..40,
        flip_bit in 0u8..8,
    ) {
        let mut pkt = builder::tcp_syn_ack(victim, 80, spoofed, 40_000, 1);
        prop_assume!(flip_byte < pkt.len());
        pkt[flip_byte] ^= 1 << flip_bit;
        // Either the packet no longer parses, or a checksum fails.
        let intact = match Ipv4Packet::new_checked(pkt.as_slice()) {
            Err(_) => false,
            Ok(ip) => {
                ip.verify_checksum()
                    && match TcpSegment::new_checked(ip.payload()) {
                        Err(_) => false,
                        Ok(seg) => seg.verify_checksum(ip.src(), ip.dst()),
                    }
            }
        };
        prop_assert!(!intact, "flip at byte {flip_byte} bit {flip_bit} undetected");
    }
}
