//! Scoped spans: RAII-timed regions with per-thread, lock-free-in-the-
//! common-case recording and a hierarchical rollup at snapshot time.
//!
//! Span names are `'static` dot-separated paths (`"stage.render"`,
//! `"fusion.join"`). Each thread keeps its own statistics map (guarded
//! by a mutex that is uncontended except during snapshots); a snapshot
//! merges all threads and aggregates *self* time under every dot-prefix
//! so `stage` reports the cumulative cost of all `stage.*` spans without
//! double-counting nested regions.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Accumulated statistics for one span name on one thread.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
struct Stat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_depth: u32,
}

#[derive(Default)]
struct ThreadSpans {
    stats: HashMap<&'static str, Stat>,
}

// Each thread owns an Arc<Mutex<ThreadSpans>> registered in a global
// list; the thread-local keeps the map alive and findable even after
// the thread exits (worker pools join before snapshots, but short-lived
// threads must not lose their spans).
fn all_threads() -> &'static Mutex<Vec<Arc<Mutex<ThreadSpans>>>> {
    static ALL: OnceLock<Mutex<Vec<Arc<Mutex<ThreadSpans>>>>> = OnceLock::new();
    ALL.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<ThreadSpans>>>> = const { RefCell::new(None) };
    // Per-frame accumulated child time for the active span stack.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn local() -> Arc<Mutex<ThreadSpans>> {
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        if let Some(arc) = slot.as_ref() {
            return arc.clone();
        }
        let arc = Arc::new(Mutex::new(ThreadSpans::default()));
        all_threads()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(arc.clone());
        *slot = Some(arc.clone());
        arc
    })
}

/// RAII guard for a span; records on drop. Created by [`enter`] or the
/// [`crate::span!`] macro.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    depth: u32,
    active: bool,
}

/// Open a span named `name`. While telemetry is disabled this is a
/// single atomic load and returns an inert guard.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            name,
            start: Instant::now(),
            depth: 0,
            active: false,
        };
    }
    let depth = CHILD_NS.with(|c| {
        let mut stack = c.borrow_mut();
        stack.push(0);
        stack.len() as u32
    });
    SpanGuard {
        name,
        start: Instant::now(),
        depth,
        active: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let total_ns = self.start.elapsed().as_nanos() as u64;
        let child_ns = CHILD_NS.with(|c| {
            let mut stack = c.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += total_ns;
            }
            child
        });
        let arc = local();
        let mut spans = arc.lock().unwrap_or_else(PoisonError::into_inner);
        let stat = spans.stats.entry(self.name).or_default();
        stat.count += 1;
        stat.total_ns += total_ns;
        stat.self_ns += total_ns.saturating_sub(child_ns);
        stat.max_depth = stat.max_depth.max(self.depth);
    }
}

/// One span's merged statistics at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Dot-separated span name.
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Wall time spent inside the span, including children.
    pub total_ns: u64,
    /// Wall time minus time spent in child spans.
    pub self_ns: u64,
    /// Deepest nesting level the span was observed at (1 = top level).
    pub max_depth: u32,
}

/// Cumulative self-time rollup for one dot-prefix of the span
/// hierarchy: `stage` aggregates every `stage.*` span (and a span named
/// exactly `stage`, if any). Summing *self* time keeps the rollup free
/// of double counting when spans nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupSnapshot {
    /// The shared name prefix (no trailing dot).
    pub prefix: String,
    /// Total enters across member spans.
    pub count: u64,
    /// Summed self time across member spans.
    pub self_ns: u64,
    /// Number of distinct member span names.
    pub spans: u32,
}

/// Merge all threads' span statistics, sorted by name.
pub fn snapshot() -> Vec<SpanSnapshot> {
    let mut merged: BTreeMap<&'static str, Stat> = BTreeMap::new();
    let threads = all_threads()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for t in threads {
        let spans = t.lock().unwrap_or_else(PoisonError::into_inner);
        for (name, stat) in spans.stats.iter() {
            let m = merged.entry(name).or_default();
            m.count += stat.count;
            m.total_ns += stat.total_ns;
            m.self_ns += stat.self_ns;
            m.max_depth = m.max_depth.max(stat.max_depth);
        }
    }
    merged
        .into_iter()
        .map(|(name, s)| SpanSnapshot {
            name: name.to_string(),
            count: s.count,
            total_ns: s.total_ns,
            self_ns: s.self_ns,
            max_depth: s.max_depth,
        })
        .collect()
}

/// Hierarchical rollup over a span snapshot: one entry per dot-prefix
/// that has at least one member span, sorted by prefix.
pub fn rollup(spans: &[SpanSnapshot]) -> Vec<RollupSnapshot> {
    let mut agg: BTreeMap<String, RollupSnapshot> = BTreeMap::new();
    for s in spans {
        for (i, b) in s.name.as_bytes().iter().enumerate() {
            if *b == b'.' {
                let prefix = &s.name[..i];
                let e = agg
                    .entry(prefix.to_string())
                    .or_insert_with(|| RollupSnapshot {
                        prefix: prefix.to_string(),
                        count: 0,
                        self_ns: 0,
                        spans: 0,
                    });
                e.count += s.count;
                e.self_ns += s.self_ns;
                e.spans += 1;
            }
        }
    }
    agg.into_values().collect()
}

/// Drop all recorded span statistics (active spans keep running and
/// will record into the fresh epoch when they close).
pub(crate) fn reset() {
    let threads = all_threads()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for t in threads {
        t.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
            .clear();
    }
}

/// Open a scoped span: `let _s = span!("stage.render");`. The span
/// closes (and records) when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_split_self_time_and_depth() {
        let _t = crate::testing::scoped_enable();
        {
            let _outer = crate::span!("test.span.outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = crate::span!("test.span.inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let snap = snapshot();
        let find = |n: &str| snap.iter().find(|s| s.name == n).cloned().unwrap();
        let outer = find("test.span.outer");
        let inner = find("test.span.inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(outer.max_depth, 1);
        assert_eq!(inner.max_depth, 2);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000,
            "outer self time excludes the inner span"
        );
    }

    #[test]
    fn spans_merge_across_threads() {
        let _t = crate::testing::scoped_enable();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = crate::span!("test.span.worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = snapshot();
        let s = snap.iter().find(|s| s.name == "test.span.worker").unwrap();
        assert_eq!(s.count, 3);
    }

    #[test]
    fn rollup_aggregates_by_prefix() {
        let spans = vec![
            SpanSnapshot {
                name: "stage.render".into(),
                count: 2,
                total_ns: 100,
                self_ns: 80,
                max_depth: 1,
            },
            SpanSnapshot {
                name: "stage.detect".into(),
                count: 1,
                total_ns: 50,
                self_ns: 50,
                max_depth: 1,
            },
            SpanSnapshot {
                name: "report.render".into(),
                count: 1,
                total_ns: 10,
                self_ns: 10,
                max_depth: 1,
            },
        ];
        let r = rollup(&spans);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].prefix, "report");
        assert_eq!(r[1].prefix, "stage");
        assert_eq!(r[1].count, 3);
        assert_eq!(r[1].self_ns, 130);
        assert_eq!(r[1].spans, 2);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _t = crate::testing::scoped_enable();
        crate::set_enabled(false);
        {
            let _s = crate::span!("test.span.off");
        }
        crate::set_enabled(true);
        assert!(snapshot().iter().all(|s| s.name != "test.span.off"));
    }
}
