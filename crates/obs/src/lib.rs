//! # dosscope-obs
//!
//! A zero-dependency (std-only) telemetry layer for the `dosscope`
//! workspace: a metrics registry (sharded counters, gauges, log-binned
//! histograms), a scoped-span tracing layer with hierarchical rollup, a
//! tiny leveled logger, and a [`Telemetry`] snapshot rendered either as
//! versioned JSON (`TELEMETRY.json`) or as an ASCII dashboard.
//!
//! ## Design constraints
//!
//! * **Cheap when off.** Telemetry is disabled by default; every
//!   instrumentation point is gated on a single relaxed atomic load
//!   ([`enabled`]) and performs no allocation and no clock read while
//!   disabled. The hot-path perf wins of earlier PRs are preserved.
//! * **Deterministic snapshots.** Counter values depend only on the
//!   instrumented work performed, never on thread interleaving, so for a
//!   fixed seed they are byte-identical across thread counts. Snapshots
//!   are emitted in sorted name order.
//! * **No dependencies.** This crate sits *below* `dosscope-types` so
//!   every other crate can be instrumented without pulling anything in.
//!
//! ## Metric naming scheme
//!
//! Dot-separated, lowercase, coarse-to-fine: `<subsystem>.<noun>` for
//! engine counters (`telescope.events`, `fleet.requests`,
//! `fusion.events`), `pool.<name>.w<k>.<field>` for per-worker pool
//! gauges, and `stage.<stage>` / `report.<step>` for spans. Span names
//! form a hierarchy on `.` boundaries used by the snapshot rollup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod registry;
pub mod span;
pub mod telemetry;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

pub use registry::{counter, gauge, histogram, Counter, Gauge, Histogram};
pub use telemetry::Telemetry;

/// Global on/off switch. All instrumentation points check this first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection currently enabled?
///
/// This is the only cost instrumentation pays when telemetry is off: a
/// single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enable telemetry if the `DOSSCOPE_TELEMETRY` environment variable is
/// set to `1` or `true`. Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("DOSSCOPE_TELEMETRY") {
        if v == "1" || v.eq_ignore_ascii_case("true") {
            set_enabled(true);
        }
    }
    enabled()
}

/// Zero every metric value and drop all recorded span statistics.
///
/// Registered metric handles stay valid (they are shared `Arc`s); only
/// their values reset. Intended for tests and for multi-run binaries
/// (e.g. the bench) that want per-run snapshots.
pub fn reset() {
    registry::reset();
    span::reset();
}

/// Test support: serialized, scoped enablement of the global telemetry
/// state so concurrently running tests cannot pollute each other.
pub mod testing {
    use super::*;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Guard returned by [`scoped_enable`]; restores the previous
    /// enabled state and clears all metrics on drop.
    pub struct ScopedTelemetry {
        _lock: MutexGuard<'static, ()>,
        prior: bool,
    }

    impl Drop for ScopedTelemetry {
        fn drop(&mut self) {
            set_enabled(self.prior);
            reset();
        }
    }

    /// Take the global telemetry test lock, enable collection and reset
    /// all metrics. Every test that enables telemetry (or asserts on
    /// global metric values) must go through this so such tests are
    /// serialized within a test binary.
    pub fn scoped_enable() -> ScopedTelemetry {
        let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let prior = enabled();
        set_enabled(true);
        reset();
        ScopedTelemetry { _lock: lock, prior }
    }
}
