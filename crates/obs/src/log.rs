//! A tiny leveled logger for the workspace binaries.
//!
//! Library crates must not print; binaries route their progress output
//! through these macros so `--quiet` / `-v` work uniformly. Messages go
//! to stderr (stdout is reserved for reports and machine-readable
//! output). The level check is a single relaxed atomic load, so debug
//! logging costs nothing when not enabled.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems; always shown (even with `--quiet`).
    Error = 0,
    /// Suspicious conditions worth surfacing by default.
    Warn = 1,
    /// Normal progress output (the default level).
    Info = 2,
    /// Verbose diagnostics, enabled with `-v`.
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the maximum level that will be emitted.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum emitted level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Resolve the level implied by CLI verbosity knobs: `--quiet` wins,
/// then any `-v` raises to debug, otherwise info.
pub fn level_from_flags(quiet: bool, verbose: bool) -> Level {
    if quiet {
        Level::Error
    } else if verbose {
        Level::Debug
    } else {
        Level::Info
    }
}

/// Emit one record at `level` (no-op if above the current level).
/// Prefer the [`crate::obs_info!`]-family macros.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if level as u8 > LEVEL.load(Ordering::Relaxed) {
        return;
    }
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    // A failed write to stderr leaves nowhere to report; ignore it.
    let _ = writeln!(out, "[{}] {}", level.tag(), args);
}

/// Log at error level.
#[macro_export]
macro_rules! obs_error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, format_args!($($arg)*))
    };
}

/// Log at warn level.
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// Log at info level.
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Log at debug level.
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_resolution() {
        assert_eq!(level_from_flags(false, false), Level::Info);
        assert_eq!(level_from_flags(false, true), Level::Debug);
        assert_eq!(level_from_flags(true, true), Level::Error);
    }

    #[test]
    fn level_roundtrip() {
        let prior = level();
        set_level(Level::Warn);
        assert_eq!(level(), Level::Warn);
        set_level(prior);
    }
}
