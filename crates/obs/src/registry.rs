//! The metrics registry: named counters, gauges and log-binned
//! histograms with cheap concurrent updates and deterministic sorted
//! snapshots.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are shared `Arc`s:
//! registration takes a lock once per name, after which updates touch
//! only atomics. The [`crate::counter!`] / [`crate::gauge!`] /
//! [`crate::histogram!`] macros cache a handle in a per-call-site
//! `OnceLock` so hot paths never re-enter the registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of independent slots a counter is striped over. Threads pick
/// a slot once (round-robin) so concurrent increments rarely contend on
/// the same cache line.
const COUNTER_STRIPES: usize = 8;

/// One cache line per stripe so counters on different stripes never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Stable per-thread stripe index.
fn stripe() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            v = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
            s.set(v);
        }
        v
    })
}

#[derive(Default)]
struct CounterInner {
    stripes: [PaddedU64; COUNTER_STRIPES],
}

/// A monotonically increasing counter, striped over cache lines.
///
/// Increments are dropped while telemetry is disabled, so a counter's
/// value reflects exactly the instrumented work performed while
/// collection was on.
#[derive(Clone, Default)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    /// Add `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value: the sum over all stripes.
    pub fn value(&self) -> u64 {
        self.0
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.0.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A last-value / high-water-mark gauge.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v` (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (no-op while disabled).
    #[inline]
    pub fn raise(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

/// Power-of-two bins: bin 0 holds exact zeros, bin k (1..=64) holds
/// values in `[2^(k-1), 2^k)`.
const HIST_BINS: usize = 65;

struct HistogramInner {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-binned histogram for latency / size style distributions —
/// the `LogHistogram` idiom from `dosscope-types`, rebuilt on atomics
/// so concurrent recording needs no lock.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        let counts: Vec<AtomicU64> = (0..HIST_BINS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Record one observation (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let bin = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.0.counts[bin].fetch_add(1, Ordering::Relaxed);
        self.0.total.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Non-empty bins as `(bin_floor, count)`, ascending. Bin floor 0
    /// holds exact zeros; floor `2^k` holds values in `[2^k, 2^(k+1))`.
    pub fn bins(&self) -> Vec<(u64, u64)> {
        self.0
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let floor = if i == 0 { 0 } else { 1u64 << (i - 1) };
                Some((floor, n))
            })
            .collect()
    }

    fn reset(&self) {
        for c in self.0.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.0.total.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        self.0.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(n={}, sum={})", self.count(), self.sum())
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Get or register the counter named `name`.
pub fn counter(name: &str) -> Counter {
    lock(&registry().counters)
        .entry(name.to_string())
        .or_default()
        .clone()
}

/// Get or register the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    lock(&registry().gauges)
        .entry(name.to_string())
        .or_default()
        .clone()
}

/// Get or register the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    lock(&registry().histograms)
        .entry(name.to_string())
        .or_default()
        .clone()
}

/// Zero every registered metric, keeping all handles valid.
pub(crate) fn reset() {
    for c in lock(&registry().counters).values() {
        c.reset();
    }
    for g in lock(&registry().gauges).values() {
        g.reset();
    }
    for h in lock(&registry().histograms).values() {
        h.reset();
    }
}

/// Sorted `(name, value)` snapshot of every registered counter.
/// Registration is authoritative: a zero reading is exported too, so a
/// consumer can tell "instrumented, nothing happened" (a counter that
/// reads 0) from "not instrumented at all" (the name is absent).
pub fn counters_snapshot() -> Vec<(String, u64)> {
    lock(&registry().counters)
        .iter()
        .map(|(k, v)| (k.clone(), v.value()))
        .collect()
}

/// Sorted `(name, value)` snapshot of every registered gauge (zero
/// readings included, same contract as [`counters_snapshot`]).
pub fn gauges_snapshot() -> Vec<(String, u64)> {
    lock(&registry().gauges)
        .iter()
        .map(|(k, v)| (k.clone(), v.value()))
        .collect()
}

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty `(bin_floor, count)` bins, ascending.
    pub bins: Vec<(u64, u64)>,
}

/// Sorted `(name, snapshot)` for all histograms with observations.
pub fn histograms_snapshot() -> Vec<(String, HistogramSnapshot)> {
    lock(&registry().histograms)
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(k, h)| {
            (
                k.clone(),
                HistogramSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    max: h.max(),
                    bins: h.bins(),
                },
            )
        })
        .collect()
}

/// A static [`Counter`] handle: registers on first use, then the cached
/// handle is a single `OnceLock` load per call.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::registry::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// A static [`Gauge`] handle (see [`crate::counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::registry::Gauge> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// A static [`Histogram`] handle (see [`crate::counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::registry::Histogram> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gated_on_enabled_and_striped() {
        let _t = crate::testing::scoped_enable();
        let c = counter("test.registry.counter");
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
        crate::set_enabled(false);
        c.add(100);
        assert_eq!(c.value(), 4, "disabled increments are dropped");
        crate::set_enabled(true);

        // Concurrent increments land on (possibly) different stripes but
        // always sum exactly.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 4 + 4000);
    }

    #[test]
    fn gauge_set_and_raise() {
        let _t = crate::testing::scoped_enable();
        let g = gauge("test.registry.gauge");
        g.set(7);
        g.raise(3);
        assert_eq!(g.value(), 7);
        g.raise(12);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn histogram_bins_are_log2() {
        let _t = crate::testing::scoped_enable();
        let h = histogram("test.registry.hist");
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1050);
        assert_eq!(h.max(), 1024);
        assert_eq!(
            h.bins(),
            vec![(0, 1), (1, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]
        );
    }

    #[test]
    fn snapshots_are_sorted_and_keep_registered_zeros() {
        let _t = crate::testing::scoped_enable();
        counter("test.snap.b").inc();
        counter("test.snap.a").inc();
        counter("test.snap.zero");
        let snap = counters_snapshot();
        let entries: Vec<(&str, u64)> = snap
            .iter()
            .filter(|(k, _)| k.starts_with("test.snap."))
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        assert_eq!(
            entries,
            vec![("test.snap.a", 1), ("test.snap.b", 1), ("test.snap.zero", 0)]
        );
    }
}
