//! The [`Telemetry`] snapshot: a deterministic, sorted capture of every
//! registered metric and span, rendered either as versioned JSON (the
//! `TELEMETRY.json` artifact) or as an ASCII dashboard appended to the
//! harness report.

use crate::registry::{self, HistogramSnapshot};
use crate::span::{self, RollupSnapshot, SpanSnapshot};

/// Version marker written into every JSON emission. Consumers (the CI
/// validator, future tooling) key on this string.
pub const SCHEMA: &str = "dosscope-telemetry-v1";

/// A point-in-time capture of the whole telemetry state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Sorted `(name, value)` counters (zero-valued ones omitted).
    pub counters: Vec<(String, u64)>,
    /// Sorted `(name, value)` gauges (zero-valued ones omitted).
    pub gauges: Vec<(String, u64)>,
    /// Sorted `(name, snapshot)` histograms with observations.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Merged per-span statistics, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// Hierarchical rollup of span self time by dot-prefix.
    pub rollups: Vec<RollupSnapshot>,
}

impl Telemetry {
    /// Capture the current global telemetry state.
    pub fn capture() -> Telemetry {
        let spans = span::snapshot();
        let rollups = span::rollup(&spans);
        Telemetry {
            counters: registry::counters_snapshot(),
            gauges: registry::gauges_snapshot(),
            histograms: registry::histograms_snapshot(),
            spans,
            rollups,
        }
    }

    /// Render as versioned JSON (`TELEMETRY.json`). One entry per line
    /// so line-oriented consumers can grep it; key order is
    /// deterministic (sorted names, fixed sections).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA)));

        out.push_str("  \"counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = trail(i, self.counters.len());
            out.push_str(&format!("    {}: {v}{sep}\n", json_str(name)));
        }
        out.push_str("  },\n");

        out.push_str("  \"gauges\": {\n");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = trail(i, self.gauges.len());
            out.push_str(&format!("    {}: {v}{sep}\n", json_str(name)));
        }
        out.push_str("  },\n");

        out.push_str("  \"histograms\": {\n");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let bins: Vec<String> = h.bins.iter().map(|(f, c)| format!("[{f},{c}]")).collect();
            let sep = trail(i, self.histograms.len());
            out.push_str(&format!(
                "    {}: {{\"count\": {}, \"sum\": {}, \"max\": {}, \"bins\": [{}]}}{sep}\n",
                json_str(name),
                h.count,
                h.sum,
                h.max,
                bins.join(", ")
            ));
        }
        out.push_str("  },\n");

        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = trail(i, self.spans.len());
            out.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"total_us\": {}, \"self_us\": {}, \"max_depth\": {}}}{sep}\n",
                json_str(&s.name),
                s.count,
                s.total_ns / 1_000,
                s.self_ns / 1_000,
                s.max_depth
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"rollups\": [\n");
        for (i, r) in self.rollups.iter().enumerate() {
            let sep = trail(i, self.rollups.len());
            out.push_str(&format!(
                "    {{\"prefix\": {}, \"count\": {}, \"self_us\": {}, \"spans\": {}}}{sep}\n",
                json_str(&r.prefix),
                r.count,
                r.self_ns / 1_000,
                r.spans
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Render the ASCII dashboard appended to harness reports.
    pub fn render_ascii(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("== telemetry ");
        out.push_str(&"=".repeat(59));
        out.push('\n');

        if !self.spans.is_empty() {
            out.push_str(&format!(
                "\n{:<40} {:>8} {:>10} {:>10} {:>5}\n",
                "span", "count", "total", "self", "depth"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<38} {:>8} {:>10} {:>10} {:>5}\n",
                    s.name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.self_ns),
                    s.max_depth
                ));
            }
            out.push_str(&format!("{:<40} {:>8} {:>10}\n", "rollup", "count", "self"));
            for r in &self.rollups {
                out.push_str(&format!(
                    "  {:<38} {:>8} {:>10}  ({} spans)\n",
                    r.prefix,
                    r.count,
                    fmt_ns(r.self_ns),
                    r.spans
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {:<46} {:>14}\n", name, v));
            }
        }

        let pools = self.pool_rows();
        if !pools.is_empty() {
            out.push_str("\npools\n");
            for row in pools {
                out.push_str(&row);
                out.push('\n');
            }
        }

        if !self.histograms.is_empty() {
            out.push_str("\nhistograms\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<38} n={} sum={} max={}\n",
                    name, h.count, h.sum, h.max
                ));
            }
        }

        out.push_str(&"=".repeat(72));
        out.push('\n');
        out
    }

    /// Group `pool.<name>.…` gauges into per-pool, per-worker dashboard
    /// lines.
    fn pool_rows(&self) -> Vec<String> {
        use std::collections::BTreeMap;
        // pool name -> (pool-level fields, worker -> fields)
        type Fields = BTreeMap<String, u64>;
        let mut pools: BTreeMap<String, (Fields, BTreeMap<u32, Fields>)> = BTreeMap::new();
        for (name, v) in &self.gauges {
            let Some(rest) = name.strip_prefix("pool.") else {
                continue;
            };
            let Some((pool, field)) = rest.split_once('.') else {
                continue;
            };
            let entry = pools.entry(pool.to_string()).or_default();
            if let Some((w, wfield)) = field.split_once('.') {
                if let Some(idx) = w.strip_prefix('w').and_then(|s| s.parse::<u32>().ok()) {
                    entry.1.entry(idx).or_default().insert(wfield.to_string(), *v);
                    continue;
                }
            }
            entry.0.insert(field.to_string(), *v);
        }
        let mut rows = Vec::new();
        for (pool, (top, workers)) in pools {
            let get = |f: &Fields, k: &str| f.get(k).copied().unwrap_or(0);
            rows.push(format!(
                "  {} ({} workers, {} shards)  dispatches {}  barriers {}  barrier-wait {}",
                pool,
                get(&top, "workers"),
                get(&top, "shards"),
                get(&top, "dispatches"),
                get(&top, "barriers"),
                fmt_ns(get(&top, "barrier_wait_us") * 1_000),
            ));
            for (idx, f) in workers {
                rows.push(format!(
                    "    w{idx}  busy {:>9}  idle {:>9}  batches {:>6}  queue-hwm {}",
                    fmt_ns(get(&f, "busy_us") * 1_000),
                    fmt_ns(get(&f, "idle_us") * 1_000),
                    get(&f, "batches"),
                    get(&f, "queue_hwm"),
                ));
            }
        }
        rows
    }
}

fn trail(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_contains_schema_and_sections() {
        let _t = crate::testing::scoped_enable();
        crate::registry::counter("test.tel.counter").add(5);
        crate::registry::gauge("test.tel.gauge").set(9);
        crate::registry::histogram("test.tel.hist").record(100);
        {
            let _s = crate::span!("test.tel.span");
        }
        let t = Telemetry::capture();
        let json = t.to_json();
        assert!(json.contains("\"schema\": \"dosscope-telemetry-v1\""));
        assert!(json.contains("\"test.tel.counter\": 5"));
        assert!(json.contains("\"test.tel.gauge\": 9"));
        assert!(json.contains("\"test.tel.hist\""));
        assert!(json.contains("\"name\": \"test.tel.span\""));
        assert!(json.contains("\"prefix\": \"test\""));
    }

    #[test]
    fn ascii_dashboard_groups_pool_gauges() {
        let _t = crate::testing::scoped_enable();
        crate::registry::gauge("pool.demo.workers").set(2);
        crate::registry::gauge("pool.demo.shards").set(4);
        crate::registry::gauge("pool.demo.dispatches").set(10);
        crate::registry::gauge("pool.demo.w0.busy_us").set(1_500);
        crate::registry::gauge("pool.demo.w1.batches").set(7);
        let t = Telemetry::capture();
        let dash = t.render_ascii();
        assert!(dash.contains("demo (2 workers, 4 shards)"));
        assert!(dash.contains("w0"));
        assert!(dash.contains("w1"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
