//! A loser-tree k-way merge primitive for sorted-run consolidation.
//!
//! Merging k sorted runs by rescanning every head costs O(k) per output
//! row — fine for a handful of shards, quadratic pain once an LSM-style
//! store accumulates runs. A *loser tree* (tournament tree that caches
//! the loser at each internal node) replays only the winner's root path
//! after each pop: O(log k) comparisons per row, one `Option<K>` slot
//! per source, no allocation after construction.
//!
//! Ties break on the **source index**: when two sources present equal
//! keys, the lower-indexed source wins. Callers that order their sources
//! oldest-first therefore get exactly the "existing rows win ties"
//! semantics of a stable merge, which is what the event store's
//! sorted-run consolidation and the sharded snapshot merge both pin
//! byte-for-byte.

/// A tournament tree over `k` sorted sources yielding the minimum
/// `(key, source)` pair in O(log k) per pop.
///
/// Sources present their current head key via `Some(key)` and
/// exhaustion via `None` (which compares greater than every key). The
/// caller drives the merge loop: read [`LoserTree::winner`], consume
/// that source's head, then [`LoserTree::replace`] it with the source's
/// next key (or `None`).
#[derive(Debug, Clone)]
pub struct LoserTree<K: Ord + Copy> {
    /// Current head key per source; `None` = exhausted.
    keys: Vec<Option<K>>,
    /// Internal tournament nodes (size `pad`): `losers[0]` holds the
    /// overall winner, `losers[1..]` the loser of each sub-match.
    losers: Vec<u32>,
    /// Leaf count padded to a power of two (padding leaves are `None`).
    pad: usize,
    /// Real source count.
    sources: usize,
}

impl<K: Ord + Copy> LoserTree<K> {
    /// Build a tree over the given head keys (one per source, in
    /// tie-break priority order). An empty source list is allowed and
    /// yields no winner.
    pub fn new(heads: Vec<Option<K>>) -> LoserTree<K> {
        let sources = heads.len();
        let pad = sources.next_power_of_two().max(1);
        let mut keys = heads;
        keys.resize(pad, None);
        let mut tree = LoserTree {
            keys,
            losers: vec![0; pad],
            pad,
            sources,
        };
        tree.rebuild();
        tree
    }

    /// Number of real sources the tree was built over.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// The source holding the smallest `(key, source)` pair, or `None`
    /// when every source is exhausted.
    pub fn winner(&self) -> Option<usize> {
        if self.pad == 0 {
            return None;
        }
        let w = self.losers[0] as usize;
        self.keys[w].is_some().then_some(w)
    }

    /// The winner's current key (convenience for peeking merges).
    pub fn winner_key(&self) -> Option<K> {
        self.winner().and_then(|w| self.keys[w])
    }

    /// Set `source`'s head to `key` (its next element, or `None` once
    /// exhausted) and replay its path to the root: O(log k).
    pub fn replace(&mut self, source: usize, key: Option<K>) {
        debug_assert!(source < self.sources, "source index out of range");
        self.keys[source] = key;
        let mut winner = source;
        // Leaf `source` sits under internal node (pad + source) / 2.
        let mut node = (self.pad + source) >> 1;
        while node >= 1 {
            let held = self.losers[node] as usize;
            if self.beats(held, winner) {
                // The stored loser beats the incoming winner: swap roles.
                self.losers[node] = winner as u32;
                winner = held;
            }
            node >>= 1;
        }
        self.losers[0] = winner as u32;
    }

    /// True when source `a`'s `(key, index)` pair orders before `b`'s.
    /// `None` keys sort after everything, so exhausted sources lose.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.keys[a], &self.keys[b]) {
            (Some(ka), Some(kb)) => (ka, a) < (kb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Recompute every match from the leaves up (used at construction).
    fn rebuild(&mut self) {
        if self.pad == 1 {
            self.losers[0] = 0;
            return;
        }
        // winners[node] for the sub-tournament rooted at each internal
        // node; leaves are implicit at indexes pad..2*pad.
        let mut winners = vec![0u32; self.pad];
        for node in (1..self.pad).rev() {
            let (l, r) = (self.child(winners.as_slice(), node << 1), self.child(winners.as_slice(), (node << 1) | 1));
            let (w, l_) = if self.beats(l, r) { (l, r) } else { (r, l) };
            winners[node] = w as u32;
            self.losers[node] = l_ as u32;
        }
        self.losers[0] = winners[1];
    }

    /// The winner at tree slot `slot`: a leaf's source index when `slot`
    /// is in the leaf range, otherwise the recorded sub-match winner.
    fn child(&self, winners: &[u32], slot: usize) -> usize {
        if slot >= self.pad {
            slot - self.pad
        } else {
            winners[slot] as usize
        }
    }
}

/// Fully merge `k` sorted slices into one vector (ties: lower slice
/// index first). The convenience wrapper the microbenches and tests
/// compare against; the store drives [`LoserTree`] directly over column
/// blocks instead of materializing key slices.
pub fn merge_sorted<K: Ord + Copy>(sources: &[&[K]]) -> Vec<K> {
    let mut cursors = vec![0usize; sources.len()];
    let heads: Vec<Option<K>> = sources.iter().map(|s| s.first().copied()).collect();
    let mut tree = LoserTree::new(heads);
    let total: usize = sources.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    while let Some(w) = tree.winner() {
        out.push(sources[w][cursors[w]]);
        cursors[w] += 1;
        tree.replace(w, sources[w].get(cursors[w]).copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the differential tests need no rand.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Reference merge: concatenate with source tags, stable sort.
    fn reference(sources: &[Vec<u64>]) -> Vec<u64> {
        let mut tagged: Vec<(u64, usize)> = sources
            .iter()
            .enumerate()
            .flat_map(|(k, s)| s.iter().map(move |&v| (v, k)))
            .collect();
        tagged.sort_by_key(|&(v, k)| (v, k));
        tagged.into_iter().map(|(v, _)| v).collect()
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let none: &[&[u64]] = &[];
        assert_eq!(merge_sorted(none), Vec::<u64>::new());
        assert_eq!(merge_sorted(&[&[] as &[u64]]), Vec::<u64>::new());
        assert_eq!(merge_sorted(&[&[1u64, 2, 3]]), vec![1, 2, 3]);
        assert_eq!(
            merge_sorted(&[&[] as &[u64], &[5u64], &[]]),
            vec![5]
        );
        let tree: LoserTree<u64> = LoserTree::new(Vec::new());
        assert_eq!(tree.winner(), None);
        assert_eq!(tree.winner_key(), None);
    }

    #[test]
    fn ties_break_toward_the_lower_source() {
        // Every source holds the same keys: the merged order must cycle
        // source 0, 1, 2 for each key value — the stable-merge contract.
        let s: &[&[u64]] = &[&[7, 9], &[7, 9], &[7, 9]];
        let mut tree = LoserTree::new(vec![Some(7u64), Some(7), Some(7)]);
        let mut order = Vec::new();
        let mut cursors = [0usize; 3];
        while let Some(w) = tree.winner() {
            order.push(w);
            cursors[w] += 1;
            tree.replace(w, s[w].get(cursors[w]).copied());
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn non_power_of_two_source_counts() {
        for k in 1..=9usize {
            let sources: Vec<Vec<u64>> = (0..k)
                .map(|i| (0..5u64).map(|j| (j * k as u64 + i as u64) % 7).collect::<Vec<_>>())
                .map(|mut v| {
                    v.sort_unstable();
                    v
                })
                .collect();
            let slices: Vec<&[u64]> = sources.iter().map(|v| v.as_slice()).collect();
            assert_eq!(merge_sorted(&slices), reference(&sources), "k = {k}");
        }
    }

    #[test]
    fn differential_vs_stable_sort_reference() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        for round in 0..50 {
            let k = 1 + (rng.next() % 12) as usize;
            let sources: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let n = (rng.next() % 40) as usize;
                    let mut v: Vec<u64> = (0..n).map(|_| rng.next() % 16).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let slices: Vec<&[u64]> = sources.iter().map(|v| v.as_slice()).collect();
            assert_eq!(
                merge_sorted(&slices),
                reference(&sources),
                "round {round}, k = {k}"
            );
        }
    }

    #[test]
    fn winner_key_tracks_the_merge_front() {
        let mut tree = LoserTree::new(vec![Some(4u64), Some(2), Some(9)]);
        assert_eq!(tree.winner(), Some(1));
        assert_eq!(tree.winner_key(), Some(2));
        tree.replace(1, Some(6));
        assert_eq!(tree.winner(), Some(0));
        tree.replace(0, None);
        assert_eq!(tree.winner(), Some(1));
        tree.replace(1, None);
        assert_eq!(tree.winner(), Some(2));
        tree.replace(2, None);
        assert_eq!(tree.winner(), None);
    }
}
