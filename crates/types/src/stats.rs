//! Statistics toolkit: empirical CDFs, running moments, log-binned
//! histograms and daily time series.
//!
//! These primitives back every figure in the reproduction: duration and
//! intensity CDFs (Figures 2-4, 9-11), the co-hosting histogram (Figure 6)
//! and the daily attack time series (Figures 1, 5, 7).

use crate::time::DayIndex;

/// An empirical cumulative distribution function over `f64` samples.
///
/// Samples are collected unsorted and sorted once on first query (interior
/// mutability is avoided: [`Ecdf::freeze`] returns a queryable view).
///
/// ```
/// use dosscope_types::Ecdf;
///
/// let durations: Ecdf = [60.0, 120.0, 454.0, 900.0].into_iter().collect();
/// let cdf = durations.freeze();
/// assert_eq!(cdf.cdf(300.0), 0.5);      // half the attacks last <= 5 min
/// assert_eq!(cdf.median(), Some(120.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    samples: Vec<f64>,
}

impl Ecdf {
    /// New empty ECDF.
    pub fn new() -> Ecdf {
        Ecdf::default()
    }

    /// Add one sample. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
        }
    }

    /// Add many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sort and freeze into a queryable [`FrozenEcdf`].
    pub fn freeze(mut self) -> FrozenEcdf {
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("non-finite filtered at push"));
        FrozenEcdf {
            sorted: self.samples,
        }
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut e = Ecdf::new();
        e.extend(iter);
        e
    }
}

/// A sorted, immutable empirical distribution supporting CDF and quantile
/// queries.
#[derive(Debug, Clone)]
pub struct FrozenEcdf {
    sorted: Vec<f64>,
}

impl FrozenEcdf {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (the CDF evaluated at `x`); 0 for an
    /// empty distribution.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of elements <= x because the
        // predicate is `v <= x` on a sorted slice.
        let n = self.sorted.partition_point(|v| *v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]` using the nearest-rank method;
    /// `None` for an empty distribution.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluate the CDF at each of the given thresholds, returning
    /// `(threshold, fraction <= threshold)` pairs — the series format used
    /// by the figure renderers.
    pub fn curve(&self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        thresholds.iter().map(|&t| (t, self.cdf(t))).collect()
    }

    /// Access the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// Streaming mean/min/max/variance tracker (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// New empty tracker.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Minimum, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A histogram with power-of-ten bins, used for the co-hosting group
/// distribution of Figure 6 (`n=1`, `1<n<=10`, `10<n<=100`, ...).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// `bins[0]` counts exact value 1; `bins[k]` (k >= 1) counts values in
    /// `(10^(k-1), 10^k]`.
    bins: Vec<u64>,
}

impl LogHistogram {
    /// A histogram with bins up to `(10^(max_decade-1), 10^max_decade]`.
    pub fn new(max_decade: u32) -> LogHistogram {
        LogHistogram {
            bins: vec![0; max_decade as usize + 1],
        }
    }

    /// Insert a positive count; zero is ignored (an IP with no associated
    /// Web sites does not appear in Figure 6).
    pub fn push(&mut self, value: u64) {
        if value == 0 {
            return;
        }
        let idx = if value == 1 {
            0
        } else {
            // Smallest k with value <= 10^k.
            let mut k = 1usize;
            let mut bound = 10u64;
            while value > bound {
                k += 1;
                bound = bound.saturating_mul(10);
            }
            k
        };
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Human-readable bin labels matching the figure's x axis.
    pub fn labels(&self) -> Vec<String> {
        (0..self.bins.len())
            .map(|k| {
                if k == 0 {
                    "n=1".to_string()
                } else if k == 1 {
                    "1<n<=10".to_string()
                } else {
                    format!("10^{}<n<=10^{}", k - 1, k)
                }
            })
            .collect()
    }

    /// Total number of inserted values.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// A value-per-day series over the study window, used for Figures 1, 5, 7.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// A zeroed series covering `days` days.
    pub fn zeros(days: u32) -> TimeSeries {
        TimeSeries {
            values: vec![0.0; days as usize],
        }
    }

    /// Number of days covered.
    pub fn days(&self) -> u32 {
        self.values.len() as u32
    }

    /// Add `v` to the bucket for `day` (out-of-window days are ignored).
    pub fn add(&mut self, day: DayIndex, v: f64) {
        if let Some(slot) = self.values.get_mut(day.0 as usize) {
            *slot += v;
        }
    }

    /// Set the bucket for `day`.
    pub fn set(&mut self, day: DayIndex, v: f64) {
        if let Some(slot) = self.values.get_mut(day.0 as usize) {
            *slot = v;
        }
    }

    /// Value at `day` (0 outside the window).
    pub fn get(&self, day: DayIndex) -> f64 {
        self.values.get(day.0 as usize).copied().unwrap_or(0.0)
    }

    /// The underlying per-day values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean over all days.
    pub fn daily_mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sum over all days.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Maximum daily value with its day, or `None` for an empty series.
    pub fn peak(&self) -> Option<(DayIndex, f64)> {
        self.values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("series values are finite"))
            .map(|(i, v)| (DayIndex(i as u32), *v))
    }

    /// Centered moving average with the given window (odd windows are
    /// symmetric). Used as the "smoothed" overlay of Figure 7.
    pub fn smoothed(&self, window: usize) -> TimeSeries {
        let window = window.max(1);
        let half = window / 2;
        let n = self.values.len();
        let out = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                let slice = &self.values[lo..hi];
                slice.iter().sum::<f64>() / slice.len() as f64
            })
            .collect();
        TimeSeries { values: out }
    }

    /// Element-wise sum of two series (panics if lengths differ).
    pub fn add_series(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.values.len(), other.values.len(), "series length mismatch");
        TimeSeries {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

/// Compute the share (%) each count represents of the total; returns
/// `(count, percent)` in the input order. Zero totals yield zero percents.
pub fn shares(counts: &[u64]) -> Vec<(u64, f64)> {
    let total: u64 = counts.iter().sum();
    counts
        .iter()
        .map(|&c| {
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * c as f64 / total as f64
            };
            (c, pct)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e: Ecdf = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        let f = e.freeze();
        assert_eq!(f.len(), 5);
        assert_eq!(f.cdf(0.0), 0.0);
        assert_eq!(f.cdf(3.0), 0.6);
        assert_eq!(f.cdf(100.0), 1.0);
        assert_eq!(f.median(), Some(3.0));
        assert_eq!(f.mean(), Some(3.0));
        assert_eq!(f.min(), Some(1.0));
        assert_eq!(f.max(), Some(5.0));
        assert_eq!(f.quantile(0.0), Some(1.0));
        assert_eq!(f.quantile(1.0), Some(5.0));
    }

    #[test]
    fn ecdf_ignores_non_finite() {
        let mut e = Ecdf::new();
        e.push(f64::NAN);
        e.push(f64::INFINITY);
        e.push(1.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn ecdf_empty() {
        let f = Ecdf::new().freeze();
        assert!(f.is_empty());
        assert_eq!(f.cdf(1.0), 0.0);
        assert_eq!(f.quantile(0.5), None);
    }

    #[test]
    fn ecdf_curve() {
        let f: FrozenEcdf = [1.0, 2.0, 3.0, 4.0].into_iter().collect::<Ecdf>().freeze();
        let c = f.curve(&[0.5, 2.0, 10.0]);
        assert_eq!(c, vec![(0.5, 0.0), (2.0, 0.5), (10.0, 1.0)]);
    }

    #[test]
    fn running_stats() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn log_histogram_binning() {
        let mut h = LogHistogram::new(7);
        h.push(1); // bin 0
        h.push(2); // bin 1 (1 < n <= 10)
        h.push(10); // bin 1
        h.push(11); // bin 2
        h.push(100); // bin 2
        h.push(3_600_000); // bin 7 (10^6 < n <= 10^7)
        h.push(0); // ignored
        assert_eq!(h.bins(), &[1, 2, 2, 0, 0, 0, 0, 1]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.labels()[0], "n=1");
        assert_eq!(h.labels()[1], "1<n<=10");
        assert_eq!(h.labels()[7], "10^6<n<=10^7");
    }

    #[test]
    fn log_histogram_clamps_overflow() {
        let mut h = LogHistogram::new(2);
        h.push(1_000_000);
        assert_eq!(h.bins(), &[0, 0, 1]);
    }

    #[test]
    fn timeseries_basics() {
        let mut ts = TimeSeries::zeros(5);
        ts.add(DayIndex(0), 2.0);
        ts.add(DayIndex(0), 1.0);
        ts.add(DayIndex(4), 10.0);
        ts.add(DayIndex(9), 99.0); // out of window, ignored
        assert_eq!(ts.get(DayIndex(0)), 3.0);
        assert_eq!(ts.total(), 13.0);
        assert_eq!(ts.peak(), Some((DayIndex(4), 10.0)));
        assert!((ts.daily_mean() - 13.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_smoothing() {
        let mut ts = TimeSeries::zeros(5);
        for (i, v) in [0.0, 10.0, 0.0, 10.0, 0.0].into_iter().enumerate() {
            ts.set(DayIndex(i as u32), v);
        }
        let s = ts.smoothed(3);
        assert!((s.get(DayIndex(1)) - 10.0 / 3.0).abs() < 1e-12);
        // Edges use a shrunken window.
        assert!((s.get(DayIndex(0)) - 5.0).abs() < 1e-12);
        // Smoothing preserves length.
        assert_eq!(s.days(), 5);
    }

    #[test]
    fn timeseries_add_series() {
        let mut a = TimeSeries::zeros(3);
        let mut b = TimeSeries::zeros(3);
        a.set(DayIndex(0), 1.0);
        b.set(DayIndex(0), 2.0);
        assert_eq!(a.add_series(&b).get(DayIndex(0)), 3.0);
    }

    #[test]
    fn shares_sum_to_100() {
        let s = shares(&[794, 159, 45, 2]);
        let total: f64 = s.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((s[0].1 - 79.4).abs() < 0.01);
    }

    #[test]
    fn shares_zero_total() {
        let s = shares(&[0, 0]);
        assert_eq!(s, vec![(0, 0.0), (0, 0.0)]);
    }
}
