//! The target-IP shard key shared by every parallel pipeline stage.
//!
//! Work is partitioned by the low bits of the target's /16 prefix. That
//! specific key is what makes the sharded aggregates *exactly* additive:
//! every address of a /16 — and therefore of every /24 inside it — lands
//! in the same shard, so per-shard distinct-target, distinct-/24 and
//! distinct-/16 counts can be summed without double counting. Anything
//! coarser than a /16 (an AS, a country) can span shards and must be
//! merged as a set union instead.

use std::net::Ipv4Addr;

/// The shard an address belongs to, out of `shards` (`shards = 0` is
/// treated as 1). Stable across runs and platforms: pure arithmetic on
/// the address bits, no hashing.
pub fn shard_of(addr: Ipv4Addr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    ((u32::from(addr) >> 16) as usize) % shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slash16_stays_whole() {
        for shards in 1..=16 {
            let a = shard_of("203.0.113.9".parse().unwrap(), shards);
            let b = shard_of("203.0.200.250".parse().unwrap(), shards);
            assert_eq!(a, b, "same /16 must map to one shard ({shards} shards)");
        }
    }

    #[test]
    fn shards_cover_range() {
        let shards = 8;
        let mut seen = vec![false; shards];
        for hi in 0..=255u32 {
            for lo in 0..32u32 {
                let addr = Ipv4Addr::from((hi << 24) | (lo << 16));
                let s = shard_of(addr, shards);
                assert!(s < shards);
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all shards receive work");
    }

    #[test]
    fn degenerate_counts() {
        let addr: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(shard_of(addr, 0), 0);
        assert_eq!(shard_of(addr, 1), 0);
    }
}
