//! The target-IP shard key shared by every parallel pipeline stage.
//!
//! Work is partitioned by the target's /16 prefix. That specific key is
//! what makes the sharded aggregates *exactly* additive: every address of
//! a /16 — and therefore of every /24 inside it — lands in the same
//! shard, so per-shard distinct-target, distinct-/24 and distinct-/16
//! counts can be summed without double counting. Anything coarser than a
//! /16 (an AS, a country) can span shards and must be merged as a set
//! union instead.
//!
//! The prefix is scrambled with a fixed odd multiplier before the modulo:
//! address space is allocated in runs (a hoster's adjacent /16s differ
//! only in the low prefix bits), so a plain `% shards` would stripe those
//! runs onto the same few shards and the busiest shard would bound the
//! whole pipeline. The multiply mixes every prefix bit into the high
//! word, is stable across runs and platforms, and keeps each /16 whole.

use std::net::Ipv4Addr;

/// Fibonacci-hashing constant (2^32 / φ, forced odd): a full-period
/// multiplicative scramble, not a quality-sensitive hash.
const MIX: u32 = 0x9E37_79B1;

/// The shard an address belongs to, out of `shards` (`shards = 0` is
/// treated as 1). Deterministic pure arithmetic on the /16 prefix bits.
pub fn shard_of(addr: Ipv4Addr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let prefix = u32::from(addr) >> 16;
    (prefix.wrapping_mul(MIX) >> 16) as usize % shards
}

/// The shard an address belongs to when full-address spreading is safe:
/// all 32 bits are mixed, so the victims inside one hot /16 (a busy
/// hosting prefix) spread across every shard instead of serialising on
/// one. Only for stages whose state is keyed by the *complete* victim
/// address and whose merge never counts prefixes per shard — the
/// detector engines qualify, the fusion aggregates (distinct /24 and /16
/// counts) do not and must keep [`shard_of`].
pub fn shard_of_addr(addr: Ipv4Addr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (u32::from(addr).wrapping_mul(MIX) >> 16) as usize % shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slash16_stays_whole() {
        for shards in 1..=16 {
            let a = shard_of("203.0.113.9".parse().unwrap(), shards);
            let b = shard_of("203.0.200.250".parse().unwrap(), shards);
            assert_eq!(a, b, "same /16 must map to one shard ({shards} shards)");
        }
    }

    #[test]
    fn shards_cover_range() {
        let shards = 8;
        let mut seen = vec![false; shards];
        for hi in 0..=255u32 {
            for lo in 0..32u32 {
                let addr = Ipv4Addr::from((hi << 24) | (lo << 16));
                let s = shard_of(addr, shards);
                assert!(s < shards);
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all shards receive work");
    }

    #[test]
    fn degenerate_counts() {
        let addr: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(shard_of(addr, 0), 0);
        assert_eq!(shard_of(addr, 1), 0);
    }
}
