//! IPv4 prefix arithmetic and lightweight network identifiers.
//!
//! The paper aggregates attack targets by /24 and /16 network blocks, origin
//! AS and geolocated country. These types make those aggregations cheap and
//! type-safe: a [`Prefix24`] cannot be confused with a [`Prefix16`], and a
//! generic [`Ipv4Cidr`] supports the longest-prefix-match structures in
//! `dosscope-geo`.

use std::net::Ipv4Addr;

/// A /24 IPv4 network block, stored as the 24 high bits of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The /24 containing `addr`.
    #[inline]
    pub fn of(addr: Ipv4Addr) -> Prefix24 {
        Prefix24(u32::from(addr) >> 8)
    }

    /// Network address of the block (host bits zero).
    #[inline]
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }

    /// The /16 containing this /24.
    #[inline]
    pub fn prefix16(self) -> Prefix16 {
        Prefix16(self.0 >> 8)
    }

    /// The raw 24-bit value (useful as a dense map key).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// A /16 IPv4 network block, stored as the 16 high bits of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix16(u32);

impl Prefix16 {
    /// The /16 containing `addr`.
    #[inline]
    pub fn of(addr: Ipv4Addr) -> Prefix16 {
        Prefix16(u32::from(addr) >> 16)
    }

    /// Network address of the block (host bits zero).
    #[inline]
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 16)
    }

    /// The raw 16-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Prefix16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/16", self.network())
    }
}

/// An arbitrary-length IPv4 CIDR prefix.
///
/// Invariant: host bits below the prefix length are zero (enforced by
/// [`Ipv4Cidr::new`], which masks them off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Cidr {
    network: u32,
    len: u8,
}

impl Ipv4Cidr {
    /// Build a prefix, masking off any host bits. `len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Cidr {
        let len = len.min(32);
        let network = u32::from(addr) & Self::mask(len);
        Ipv4Cidr { network, len }
    }

    /// The netmask for a prefix length.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Network address.
    #[inline]
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Prefix length in bits (not a container size — there is no
    /// corresponding `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length (default-route) prefix.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    #[inline]
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == self.network
    }

    /// Whether `other` is fully contained in `self` (i.e. `self` is a
    /// supernet of — or equal to — `other`).
    pub fn covers(&self, other: &Ipv4Cidr) -> bool {
        self.len <= other.len && (other.network & Self::mask(self.len)) == self.network
    }

    /// Number of addresses in the prefix (2^(32-len)), saturating for /0.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The `i`-th address inside the prefix (wraps modulo prefix size).
    pub fn addr_at(&self, i: u64) -> Ipv4Addr {
        let offset = (i % self.size()) as u32;
        Ipv4Addr::from(self.network | offset)
    }

    /// First address of the prefix.
    pub fn first(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Last address of the prefix.
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network | !Self::mask(self.len))
    }
}

impl std::fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl std::str::FromStr for Ipv4Cidr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| format!("missing '/' in CIDR {s:?}"))?;
        let addr: Ipv4Addr = addr.parse().map_err(|e| format!("bad address: {e}"))?;
        let len: u8 = len.parse().map_err(|e| format!("bad prefix length: {e}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Ipv4Cidr::new(addr, len))
    }
}

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A two-letter ISO-3166-ish country code, stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Build from a two-ASCII-letter code; letters are uppercased.
    pub fn new(code: &str) -> CountryCode {
        let bytes = code.as_bytes();
        assert!(bytes.len() == 2, "country code must be two letters: {code:?}");
        CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("country codes are ASCII by construction")
    }

    /// Sentinel for "unknown / unmapped" addresses.
    pub const UNKNOWN: CountryCode = CountryCode(*b"??");
}

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix24_roundtrip() {
        let a: Ipv4Addr = "203.0.113.77".parse().unwrap();
        let p = Prefix24::of(a);
        assert_eq!(p.network(), "203.0.113.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.to_string(), "203.0.113.0/24");
        assert_eq!(p.prefix16().network(), "203.0.0.0".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn prefix16_of() {
        let a: Ipv4Addr = "198.51.100.1".parse().unwrap();
        assert_eq!(
            Prefix16::of(a).network(),
            "198.51.0.0".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn cidr_contains_and_masking() {
        let c: Ipv4Cidr = "10.20.0.0/16".parse().unwrap();
        assert!(c.contains("10.20.255.255".parse().unwrap()));
        assert!(!c.contains("10.21.0.0".parse().unwrap()));
        // Host bits are masked off at construction.
        let c2 = Ipv4Cidr::new("10.20.30.40".parse().unwrap(), 16);
        assert_eq!(c2, c);
    }

    #[test]
    fn cidr_covers() {
        let wide: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let narrow: Ipv4Cidr = "10.20.0.0/16".parse().unwrap();
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
    }

    #[test]
    fn cidr_size_and_indexing() {
        let c: Ipv4Cidr = "192.0.2.0/24".parse().unwrap();
        assert_eq!(c.size(), 256);
        assert_eq!(c.addr_at(0), "192.0.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(c.addr_at(255), "192.0.2.255".parse::<Ipv4Addr>().unwrap());
        assert_eq!(c.addr_at(256), "192.0.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(c.first(), "192.0.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(c.last(), "192.0.2.255".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn cidr_default_route() {
        let c = Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 0);
        assert!(c.is_default());
        assert!(c.contains("255.255.255.255".parse().unwrap()));
        assert_eq!(Ipv4Cidr::mask(0), 0);
    }

    #[test]
    fn cidr_parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
        assert!("banana/8".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn country_code() {
        let us = CountryCode::new("us");
        assert_eq!(us.as_str(), "US");
        assert_eq!(us, CountryCode::new("US"));
        assert_eq!(CountryCode::UNKNOWN.as_str(), "??");
    }
}
