//! Mapping of single target ports to named services (Table 8).
//!
//! The paper maps the target port of single-port randomly spoofed attacks to
//! applications using IANA assignments plus commonly used port numbers.
//! This module encodes the subset of that mapping the analysis needs —
//! anything not in the table renders as the bare port number, exactly like
//! the gaming ports in Table 8b.

use crate::event::TransportProto;

/// Well-known TCP port for HTTP.
pub const PORT_HTTP: u16 = 80;
/// Well-known TCP port for HTTPS.
pub const PORT_HTTPS: u16 = 443;
/// Well-known port for MySQL.
pub const PORT_MYSQL: u16 = 3306;
/// Well-known port for DNS.
pub const PORT_DNS: u16 = 53;
/// Well-known TCP port for PPTP VPN control.
pub const PORT_PPTP: u16 = 1723;
/// Source-engine game server port (Steam), the top UDP target in Table 8b.
pub const PORT_STEAM_GAME: u16 = 27015;

/// A named service associated with a port, or the bare port when no common
/// assignment exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Service {
    /// Plain-text Web (80/TCP).
    Http,
    /// TLS Web (443/TCP).
    Https,
    /// MySQL (3306).
    MySql,
    /// Domain Name System (53).
    Dns,
    /// PPTP VPN (1723/TCP).
    VpnPptp,
    /// NTP (123/UDP).
    Ntp,
    /// NetBIOS datagram service (138/UDP).
    NetBios,
    /// No well-known assignment; the raw port number is reported.
    Port(u16),
}

impl Service {
    /// Classify a single target port under a transport protocol.
    ///
    /// The mapping mirrors the paper: IANA assignments for common service
    /// ports, everything else (notably the gaming ports that dominate the
    /// UDP ranking) stays numeric.
    pub fn classify(proto: TransportProto, port: u16) -> Service {
        match (proto, port) {
            (TransportProto::Tcp, PORT_HTTP) => Service::Http,
            (TransportProto::Tcp, PORT_HTTPS) => Service::Https,
            (_, PORT_MYSQL) => Service::MySql,
            (_, PORT_DNS) => Service::Dns,
            (TransportProto::Tcp, PORT_PPTP) => Service::VpnPptp,
            (TransportProto::Udp, 123) => Service::Ntp,
            (TransportProto::Udp, 138) => Service::NetBios,
            (_, p) => Service::Port(p),
        }
    }

    /// Whether this service is Web infrastructure (HTTP or HTTPS) — the
    /// paper's "attacks potentially targeting Web infrastructure".
    pub fn is_web(&self) -> bool {
        matches!(self, Service::Http | Service::Https)
    }
}

/// Whether a single TCP/UDP port is a Web infrastructure port (80 or 443).
pub fn is_web_port(port: u16) -> bool {
    port == PORT_HTTP || port == PORT_HTTPS
}

impl std::fmt::Display for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Service::Http => f.write_str("HTTP"),
            Service::Https => f.write_str("HTTPS"),
            Service::MySql => f.write_str("MySQL"),
            Service::Dns => f.write_str("DNS"),
            Service::VpnPptp => f.write_str("VPN PPTP"),
            Service::Ntp => f.write_str("NTP"),
            Service::NetBios => f.write_str("NetBIOS"),
            Service::Port(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_web_ports() {
        assert_eq!(Service::classify(TransportProto::Tcp, 80), Service::Http);
        assert_eq!(Service::classify(TransportProto::Tcp, 443), Service::Https);
        assert!(Service::Http.is_web());
        assert!(Service::Https.is_web());
        assert!(!Service::MySql.is_web());
    }

    #[test]
    fn udp_gaming_port_is_numeric() {
        let s = Service::classify(TransportProto::Udp, PORT_STEAM_GAME);
        assert_eq!(s, Service::Port(27015));
        assert_eq!(s.to_string(), "27015");
    }

    #[test]
    fn udp_80_is_not_http() {
        // HTTP is a TCP service; UDP/80 stays numeric in the table.
        assert_eq!(Service::classify(TransportProto::Udp, 80), Service::Port(80));
    }

    #[test]
    fn shared_ports() {
        assert_eq!(Service::classify(TransportProto::Udp, 3306), Service::MySql);
        assert_eq!(Service::classify(TransportProto::Tcp, 3306), Service::MySql);
        assert_eq!(Service::classify(TransportProto::Tcp, 53), Service::Dns);
        assert_eq!(Service::classify(TransportProto::Udp, 53), Service::Dns);
    }

    #[test]
    fn is_web_port_helper() {
        assert!(is_web_port(80));
        assert!(is_web_port(443));
        assert!(!is_web_port(8080));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Service::VpnPptp.to_string(), "VPN PPTP");
        assert_eq!(Service::MySql.to_string(), "MySQL");
    }
}
