//! Cheaply-cloneable immutable byte buffers for batch representatives.
//!
//! A rendered packet batch carries one representative wire packet; the
//! batch itself is cloned freely (partitioning, replayed test streams,
//! bench workloads), and deep-copying the packet bytes on every clone is
//! pure churn. [`SharedBytes`] is an `Arc<[u8]>`: a clone is a
//! reference-count bump, construction copies the bytes once into a single
//! allocation that inlines them next to the refcount, and every later
//! access — including `as_slice().as_ptr()` identity reads on the
//! honeypot's parse-memo path — is at most one pointer hop because the fat
//! pointer lives inline in the owning batch.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct SharedBytes(Arc<[u8]>);

impl SharedBytes {
    /// Copy the bytes once into a shared header+data allocation.
    pub fn new(bytes: Vec<u8>) -> SharedBytes {
        SharedBytes(bytes.into())
    }

    /// The contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(bytes: Vec<u8>) -> SharedBytes {
        SharedBytes::new(bytes)
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(bytes: &[u8]) -> SharedBytes {
        SharedBytes(Arc::from(bytes))
    }
}


impl Deref for SharedBytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for SharedBytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Equality is by contents, like `Vec<u8>`; two independently built
/// buffers with the same bytes compare equal.
impl PartialEq for SharedBytes {
    fn eq(&self, other: &SharedBytes) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for SharedBytes {}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = SharedBytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn equality_is_by_contents() {
        let a = SharedBytes::from(vec![9u8; 40]);
        let b = SharedBytes::from(vec![9u8; 40]);
        assert_eq!(a, b);
        assert_ne!(a, SharedBytes::from(vec![8u8; 40]));
    }

    #[test]
    fn derefs_like_a_slice() {
        let a = SharedBytes::from(vec![1u8, 2, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(a[1], 2);
        assert_eq!(&a[..2], &[1, 2]);
        assert!(!a.is_empty());
        fn takes_slice(s: &[u8]) -> usize {
            s.len()
        }
        assert_eq!(takes_slice(&a), 3);
    }
}
