//! The persistent worker pool every parallel pipeline stage runs on.
//!
//! The first sharded pipeline (PR 3) spawned a fresh `std::thread::scope`
//! per ingested chunk and re-partitioned every chunk into per-shard
//! `Vec` clones. Correct, but the bench showed it *negatively* scaling:
//! thread spawn/join per chunk, an allocation per (chunk × shard), and a
//! reference-count bump plus cross-thread drop per batch. This module
//! replaces that design with the architecture all three sharded layers
//! (telescope, honeypot fleet, fusion) now share:
//!
//! * **long-lived workers** — [`ShardPool::new`] spawns the worker
//!   threads once; each worker *owns* a slice of the per-shard states for
//!   its whole life (shard `k` lives on worker `k % workers`), so state
//!   never migrates and never needs locking;
//! * **bounded channels** — each worker has its own
//!   [`std::sync::mpsc::sync_channel`]; a slow worker back-pressures the
//!   dispatcher instead of letting queues grow without bound;
//! * **zero-copy batch routing** — a chunk is shared as one
//!   [`Routed`] view (`Arc`'d item vector + per-shard index lists built
//!   by the stage's `shard_of` key); dispatch hands every worker the same
//!   two pointers instead of cloning batches into per-shard vectors;
//! * **explicit barriers** — [`ShardPool::barrier`] runs a closure on
//!   every shard state after all previously dispatched batches, which is
//!   how snapshots merge per-shard accumulators *once* per query instead
//!   of once per ingested chunk; [`ShardPool::shutdown`] is the final
//!   barrier that drains, joins and returns every shard's finished
//!   output.
//!
//! A panicking shard must fail the run, not hang it: every send/receive
//! failure is treated as a dead worker, the pool tears all channels down,
//! joins every thread and re-raises the original panic payload on the
//! caller thread ([`std::panic::resume_unwind`]). Operations on a pool
//! that was already shut down return [`PoolError::ShutDown`] instead.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Error for operations on a pool whose workers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// [`ShardPool::shutdown`] already ran: the states were consumed and
    /// there is nothing left to dispatch to or snapshot.
    ShutDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ShutDown => write!(f, "shard pool is already shut down"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A chunk of items routed to shards without copying the items: the chunk
/// itself is shared (`Arc`) and each shard owns a list of indexes into it.
///
/// Building a `Routed` is the only per-item routing work the pipeline
/// does — one key evaluation and one `u32` push per item. Workers then
/// walk their own index list and read the items in place through the
/// shared vector; nothing is cloned or re-partitioned.
#[derive(Debug, Clone)]
pub struct Routed<T> {
    items: Arc<Vec<T>>,
    owners: Vec<Vec<u32>>,
}

impl<T> Routed<T> {
    /// Route a shared chunk across `shards` shards with the stage's key
    /// function (`shards = 0` is treated as 1). Relative order within a
    /// shard is the chunk order, which is what per-victim state needs.
    pub fn build(items: Arc<Vec<T>>, shards: usize, key: impl Fn(&T) -> usize) -> Routed<T> {
        let shards = shards.max(1);
        debug_assert!(items.len() <= u32::MAX as usize, "chunk too large to index");
        let mut owners: Vec<Vec<u32>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, item) in items.iter().enumerate() {
            let s = key(item);
            debug_assert!(s < shards, "shard key out of range");
            owners[s.min(shards - 1)].push(i as u32);
        }
        Routed { items, owners }
    }

    /// Number of shards this chunk was routed across.
    pub fn shards(&self) -> usize {
        self.owners.len()
    }

    /// All items of the chunk, in chunk order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The items one shard owns, in chunk order.
    pub fn owned(&self, shard: usize) -> impl Iterator<Item = &T> {
        self.owners[shard].iter().map(|&i| &self.items[i as usize])
    }

    /// How many items one shard owns.
    pub fn owned_len(&self, shard: usize) -> usize {
        self.owners[shard].len()
    }
}

/// A barrier closure run against a worker's owned `(shard, state)` slice.
type BarrierCall<S> = Box<dyn FnOnce(&mut Vec<(usize, S)>) + Send>;

/// What travels over a worker's channel: a shared batch, or a barrier
/// closure run against the worker's owned `(shard, state)` slice.
enum Job<B, S> {
    Batch(Arc<B>),
    Call(BarrierCall<S>),
}

struct Lane<B, S, O> {
    tx: Option<SyncSender<Job<B, S>>>,
    handle: Option<JoinHandle<Vec<(usize, O)>>>,
}

/// A persistent pool of worker threads, each owning a fixed slice of
/// per-shard states.
///
/// Type parameters: `B` is the dispatched batch type (shared read-only
/// across workers), `S` the per-shard state a worker owns and mutates,
/// `O` the per-shard output [`ShardPool::shutdown`] returns.
pub struct ShardPool<B, S, O> {
    shards: usize,
    lanes: Vec<Lane<B, S, O>>,
    down: bool,
}

impl<B, S, O> ShardPool<B, S, O>
where
    B: Send + Sync + 'static,
    S: Send + 'static,
    O: Send + 'static,
{
    /// Spawn the pool: `shards` states (built by `init`, in shard order,
    /// on the calling thread) distributed over `min(threads, shards)`
    /// long-lived workers (`threads > shards` simply caps at one worker
    /// per shard; 0 of either is treated as 1).
    ///
    /// For every dispatched batch a worker calls
    /// `process(state, shard, shards, &batch)` once per shard it owns, in
    /// shard order. At shutdown it calls `finish(state)` per shard and
    /// returns the outputs.
    pub fn new<I, P, F>(
        shards: usize,
        threads: usize,
        queue_depth: usize,
        mut init: I,
        process: P,
        finish: F,
    ) -> ShardPool<B, S, O>
    where
        I: FnMut(usize) -> S,
        P: Fn(&mut S, usize, usize, &B) + Send + Clone + 'static,
        F: Fn(S) -> O + Send + Clone + 'static,
    {
        let shards = shards.max(1);
        let workers = threads.max(1).min(shards);
        let depth = queue_depth.max(1);
        let mut states: Vec<Option<(usize, S)>> =
            (0..shards).map(|s| Some((s, init(s)))).collect();
        let lanes = (0..workers)
            .map(|w| {
                let owned: Vec<(usize, S)> = states
                    .iter_mut()
                    .skip(w)
                    .step_by(workers)
                    .map(|slot| slot.take().expect("each shard is owned exactly once"))
                    .collect();
                let (tx, rx) = sync_channel::<Job<B, S>>(depth);
                let process = process.clone();
                let finish = finish.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("shard-worker-{w}"))
                    .spawn(move || {
                        let mut owned = owned;
                        while let Ok(job) = rx.recv() {
                            match job {
                                Job::Batch(batch) => {
                                    for (shard, state) in owned.iter_mut() {
                                        process(state, *shard, shards, &batch);
                                    }
                                }
                                Job::Call(f) => f(&mut owned),
                            }
                        }
                        owned
                            .into_iter()
                            .map(|(shard, state)| (shard, finish(state)))
                            .collect()
                    })
                    .expect("spawn shard worker");
                Lane {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool {
            shards,
            lanes,
            down: false,
        }
    }

    /// Number of shards (== per-shard states).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of worker threads actually spawned.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// True once [`ShardPool::shutdown`] has consumed the states.
    pub fn is_shut_down(&self) -> bool {
        self.down
    }

    /// Dispatch one batch to every worker (each processes it against all
    /// of its shards). Returns [`PoolError::ShutDown`] after `shutdown`;
    /// re-raises the worker's panic if one died processing earlier work.
    pub fn dispatch(&mut self, batch: B) -> Result<(), PoolError> {
        self.dispatch_shared(Arc::new(batch))
    }

    /// [`ShardPool::dispatch`] for a batch that is already shared.
    pub fn dispatch_shared(&mut self, batch: Arc<B>) -> Result<(), PoolError> {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        let mut dead = false;
        for lane in &self.lanes {
            let tx = lane.tx.as_ref().expect("live pool lane has a sender");
            if tx.send(Job::Batch(batch.clone())).is_err() {
                dead = true;
            }
        }
        if dead {
            self.propagate_worker_panic();
        }
        Ok(())
    }

    /// Dispatch one batch to the single worker owning `shard` (the worker
    /// still processes it against every shard it owns; routing inside the
    /// batch decides what each shard sees). Cheaper than a full dispatch
    /// when the batch is known to touch one shard.
    pub fn dispatch_to(&mut self, shard: usize, batch: B) -> Result<(), PoolError> {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        assert!(shard < self.shards, "shard index out of range");
        let lane = &self.lanes[shard % self.lanes.len()];
        let tx = lane.tx.as_ref().expect("live pool lane has a sender");
        if tx.send(Job::Batch(Arc::new(batch))).is_err() {
            self.propagate_worker_panic();
        }
        Ok(())
    }

    /// Barrier: after everything dispatched so far has been processed, run
    /// `f` against every shard state and return the results in shard
    /// order. This is the snapshot primitive — per-shard accumulators are
    /// read (and merged by the caller) exactly once per barrier, never per
    /// dispatched chunk.
    pub fn barrier<R, F>(&mut self, f: F) -> Result<Vec<R>, PoolError>
    where
        R: Send + 'static,
        F: Fn(&mut S) -> R + Send + Clone + 'static,
    {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        let mut replies: Vec<Receiver<Vec<(usize, R)>>> = Vec::with_capacity(self.lanes.len());
        let mut dead = false;
        for lane in &self.lanes {
            let (otx, orx) = std::sync::mpsc::channel();
            let g = f.clone();
            let job = Job::Call(Box::new(move |owned: &mut Vec<(usize, S)>| {
                let out: Vec<(usize, R)> =
                    owned.iter_mut().map(|(shard, s)| (*shard, g(s))).collect();
                let _ = otx.send(out);
            }));
            let tx = lane.tx.as_ref().expect("live pool lane has a sender");
            if tx.send(job).is_err() {
                dead = true;
                break;
            }
            replies.push(orx);
        }
        let mut results: Vec<(usize, R)> = Vec::with_capacity(self.shards);
        if !dead {
            for orx in replies {
                match orx.recv() {
                    Ok(part) => results.extend(part),
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.propagate_worker_panic();
        }
        results.sort_by_key(|(shard, _)| *shard);
        Ok(results.into_iter().map(|(_, r)| r).collect())
    }

    /// Final barrier: close every channel, join every worker and return
    /// the finished per-shard outputs in shard order. The pool is
    /// unusable afterwards (further calls return
    /// [`PoolError::ShutDown`]); a worker that panicked re-raises here.
    pub fn shutdown(&mut self) -> Result<Vec<O>, PoolError> {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        self.down = true;
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        let mut outputs: Vec<(usize, O)> = Vec::with_capacity(self.shards);
        let mut panic_payload = None;
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                match handle.join() {
                    Ok(part) => outputs.extend(part),
                    Err(payload) => {
                        panic_payload.get_or_insert(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        outputs.sort_by_key(|(shard, _)| *shard);
        Ok(outputs.into_iter().map(|(_, o)| o).collect())
    }

    /// Tear everything down and re-raise the first worker panic. Only
    /// called when a send or receive failed, which means a worker is gone
    /// — and workers only leave by panicking.
    fn propagate_worker_panic(&mut self) -> ! {
        self.down = true;
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        let mut panic_payload = None;
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                if let Err(payload) = handle.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        match panic_payload {
            Some(payload) => std::panic::resume_unwind(payload),
            None => unreachable!("worker disconnected without panicking"),
        }
    }
}

/// Dropping a live pool joins its workers (so no thread outlives the
/// stage that owns it) and re-raises a worker panic unless the thread is
/// already unwinding.
impl<B, S, O> Drop for ShardPool<B, S, O> {
    fn drop(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        let mut panic_payload = None;
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                if let Err(payload) = handle.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::thread::ThreadId;

    /// A state that records everything its shard saw plus the thread that
    /// processed it, to pin worker reuse and ownership.
    #[derive(Default)]
    struct Probe {
        seen: Vec<u32>,
        batches: usize,
        thread: Option<ThreadId>,
    }

    /// What [`probe_pool`]'s finish returns per shard: seen values, batch
    /// count, processing thread.
    type ProbeOutput = (Vec<u32>, usize, Option<ThreadId>);

    fn probe_pool(shards: usize, threads: usize) -> ShardPool<Routed<u32>, Probe, ProbeOutput> {
        ShardPool::new(
            shards,
            threads,
            4,
            |_| Probe::default(),
            |state: &mut Probe, shard, _shards, routed: &Routed<u32>| {
                state.seen.extend(routed.owned(shard).copied());
                state.batches += 1;
                let here = std::thread::current().id();
                match state.thread {
                    None => state.thread = Some(here),
                    Some(prev) => assert_eq!(prev, here, "shard state migrated threads"),
                }
            },
            |s: Probe| (s.seen, s.batches, s.thread),
        )
    }

    fn route(items: Vec<u32>, shards: usize) -> Routed<u32> {
        Routed::build(Arc::new(items), shards, |v| *v as usize % shards.max(1))
    }

    #[test]
    fn workers_persist_across_consecutive_batches() {
        let mut pool = probe_pool(4, 4);
        for chunk in [vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11]] {
            pool.dispatch(route(chunk, 4)).unwrap();
        }
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs.len(), 4);
        for (shard, (seen, batches, thread)) in outs.iter().enumerate() {
            // Same long-lived state saw all three chunks, on one thread.
            assert_eq!(*batches, 3, "shard {shard} reused across batches");
            assert!(thread.is_some());
            assert_eq!(
                seen,
                &(0..12u32).filter(|v| *v as usize % 4 == shard).collect::<Vec<_>>(),
                "shard {shard} owns exactly its keyed items, in order"
            );
        }
    }

    #[test]
    fn more_threads_than_shards_caps_at_one_worker_per_shard() {
        let mut pool = probe_pool(2, 8);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.shards(), 2);
        pool.dispatch(route((0..10).collect(), 2)).unwrap();
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs[0].0, vec![0, 2, 4, 6, 8]);
        assert_eq!(outs[1].0, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn more_shards_than_threads_strides_ownership() {
        let mut pool = probe_pool(5, 2);
        assert_eq!(pool.workers(), 2);
        pool.dispatch(route((0..25).collect(), 5)).unwrap();
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs.len(), 5, "outputs in shard order despite striding");
        for (shard, (seen, _, _)) in outs.iter().enumerate() {
            assert!(seen.iter().all(|v| *v as usize % 5 == shard));
            assert_eq!(seen.len(), 5);
        }
        // Shards 0,2,4 share worker 0 and 1,3 share worker 1.
        assert_eq!(outs[0].2, outs[2].2);
        assert_eq!(outs[0].2, outs[4].2);
        assert_eq!(outs[1].2, outs[3].2);
        assert_ne!(outs[0].2, outs[1].2);
    }

    #[test]
    fn barrier_sees_all_prior_batches_in_shard_order() {
        let mut pool = probe_pool(3, 3);
        pool.dispatch(route((0..9).collect(), 3)).unwrap();
        let counts = pool.barrier(|s: &mut Probe| s.seen.len()).unwrap();
        assert_eq!(counts, vec![3, 3, 3]);
        pool.dispatch(route((9..12).collect(), 3)).unwrap();
        let counts = pool.barrier(|s: &mut Probe| s.seen.len()).unwrap();
        assert_eq!(counts, vec![4, 4, 4]);
    }

    #[test]
    fn snapshot_after_shutdown_is_an_error() {
        let mut pool = probe_pool(2, 2);
        pool.dispatch(route(vec![1, 2], 2)).unwrap();
        pool.shutdown().unwrap();
        assert!(pool.is_shut_down());
        assert_eq!(
            pool.barrier(|s: &mut Probe| s.batches).unwrap_err(),
            PoolError::ShutDown
        );
        assert_eq!(pool.dispatch(route(vec![3], 2)).unwrap_err(), PoolError::ShutDown);
        assert_eq!(pool.shutdown().unwrap_err(), PoolError::ShutDown);
        assert_eq!(PoolError::ShutDown.to_string(), "shard pool is already shut down");
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let mut pool: ShardPool<Routed<u32>, u32, u32> = ShardPool::new(
            4,
            4,
            2,
            |_| 0,
            |state, shard, _shards, routed: &Routed<u32>| {
                for v in routed.owned(shard) {
                    assert!(*v != 13, "poison item reached shard {shard}");
                    *state += v;
                }
            },
            |s| s,
        );
        pool.dispatch(route(vec![1, 2, 3], 4)).unwrap();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // The poisoned chunk kills one worker; either this dispatch
            // round or the shutdown must surface the panic — never hang.
            pool.dispatch(route(vec![13], 4)).unwrap();
            for i in 0..64 {
                pool.dispatch(route(vec![i], 4)).unwrap();
            }
            pool.shutdown().unwrap();
        }))
        .expect_err("worker panic must propagate to the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("poison item"), "original payload kept: {msg}");
        // The pool is down but safely reusable as a value (errors, no UB).
        assert!(pool.is_shut_down());
    }

    #[test]
    fn routed_views_share_the_chunk() {
        let items = Arc::new(vec![10u32, 21, 32, 43]);
        let routed = Routed::build(items.clone(), 2, |v| (*v % 2) as usize);
        assert_eq!(routed.shards(), 2);
        assert_eq!(routed.items().as_ptr(), items.as_ptr(), "no item copies");
        assert_eq!(routed.owned(0).copied().collect::<Vec<_>>(), vec![10, 32]);
        assert_eq!(routed.owned(1).copied().collect::<Vec<_>>(), vec![21, 43]);
        assert_eq!(routed.owned_len(0), 2);
        // Degenerate shard count routes everything to one shard.
        let one = Routed::build(items, 0, |_| 0);
        assert_eq!(one.shards(), 1);
        assert_eq!(one.owned_len(0), 4);
    }

    #[test]
    fn dispatch_to_reaches_the_owning_worker_only() {
        let mut pool = probe_pool(4, 2);
        pool.dispatch_to(2, route(vec![2, 6], 4)).unwrap();
        pool.dispatch_to(1, route(vec![5], 4)).unwrap();
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs[2].0, vec![2, 6]);
        assert_eq!(outs[1].0, vec![5]);
        // Shard 0 shares worker 0 with shard 2, so it saw that batch (and
        // owned nothing in it); shard 3 shares worker 1 with shard 1.
        assert_eq!(outs[0].0, Vec::<u32>::new());
        assert_eq!(outs[3].0, Vec::<u32>::new());
    }
}
