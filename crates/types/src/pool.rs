//! The persistent worker pool every parallel pipeline stage runs on.
//!
//! The first sharded pipeline (PR 3) spawned a fresh `std::thread::scope`
//! per ingested chunk and re-partitioned every chunk into per-shard
//! `Vec` clones. Correct, but the bench showed it *negatively* scaling:
//! thread spawn/join per chunk, an allocation per (chunk × shard), and a
//! reference-count bump plus cross-thread drop per batch. This module
//! replaces that design with the architecture all three sharded layers
//! (telescope, honeypot fleet, fusion) now share:
//!
//! * **long-lived workers** — [`ShardPool::new`] spawns the worker
//!   threads once; each worker *owns* a slice of the per-shard states for
//!   its whole life (shard `k` lives on worker `k % workers`), so state
//!   never migrates and never needs locking;
//! * **bounded channels** — each worker has its own
//!   [`std::sync::mpsc::sync_channel`]; a slow worker back-pressures the
//!   dispatcher instead of letting queues grow without bound;
//! * **zero-copy batch routing** — a chunk is shared as one
//!   [`Routed`] view (`Arc`'d item vector + per-shard index lists built
//!   by the stage's `shard_of` key); dispatch hands every worker the same
//!   two pointers instead of cloning batches into per-shard vectors;
//! * **explicit barriers** — [`ShardPool::barrier`] runs a closure on
//!   every shard state after all previously dispatched batches, which is
//!   how snapshots merge per-shard accumulators *once* per query instead
//!   of once per ingested chunk; [`ShardPool::shutdown`] is the final
//!   barrier that drains, joins and returns every shard's finished
//!   output.
//!
//! A panicking shard must fail the run, not hang it: every send/receive
//! failure is treated as a dead worker, the pool tears all channels down,
//! joins every thread and re-raises the original panic payload on the
//! caller thread ([`std::panic::resume_unwind`]). Operations on a pool
//! that was already shut down return [`PoolError::ShutDown`] instead.
//!
//! ## Profiling
//!
//! Every pool carries a name and a [`PoolMetrics`] block: per-worker
//! busy/idle wall time, processed job counts, channel queue-depth
//! high-water marks, and caller-side barrier-wait time. Queue and job
//! counts are always-on relaxed atomics (a handful per *batch*, never
//! per item); the wall-clock measurements additionally require
//! `dosscope_obs::enabled()` so the disabled pipeline never reads the
//! clock. On shutdown — including the panic-propagation path, so a
//! failed run still leaves a coherent partial snapshot — the metrics
//! are published to the global `obs` registry as `pool.<name>.*`
//! gauges; [`ShardPool::metrics`] exposes the same numbers directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Error for operations on a pool whose workers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// [`ShardPool::shutdown`] already ran: the states were consumed and
    /// there is nothing left to dispatch to or snapshot.
    ShutDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ShutDown => write!(f, "shard pool is already shut down"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A chunk of items routed to shards without copying the items: the chunk
/// itself is shared (`Arc`) and each shard owns a list of indexes into it.
///
/// Building a `Routed` is the only per-item routing work the pipeline
/// does — one key evaluation and one `u32` push per item. Workers then
/// walk their own index list and read the items in place through the
/// shared vector; nothing is cloned or re-partitioned.
#[derive(Debug, Clone)]
pub struct Routed<T> {
    items: Arc<Vec<T>>,
    owners: Vec<Vec<u32>>,
}

impl<T> Routed<T> {
    /// Route a shared chunk across `shards` shards with the stage's key
    /// function (`shards = 0` is treated as 1). Relative order within a
    /// shard is the chunk order, which is what per-victim state needs.
    pub fn build(items: Arc<Vec<T>>, shards: usize, key: impl Fn(&T) -> usize) -> Routed<T> {
        let shards = shards.max(1);
        debug_assert!(items.len() <= u32::MAX as usize, "chunk too large to index");
        let mut owners: Vec<Vec<u32>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, item) in items.iter().enumerate() {
            let s = key(item);
            debug_assert!(s < shards, "shard key out of range");
            owners[s.min(shards - 1)].push(i as u32);
        }
        Routed { items, owners }
    }

    /// Number of shards this chunk was routed across.
    pub fn shards(&self) -> usize {
        self.owners.len()
    }

    /// All items of the chunk, in chunk order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The items one shard owns, in chunk order.
    pub fn owned(&self, shard: usize) -> impl Iterator<Item = &T> {
        self.owners[shard].iter().map(|&i| &self.items[i as usize])
    }

    /// How many items one shard owns.
    pub fn owned_len(&self, shard: usize) -> usize {
        self.owners[shard].len()
    }
}

/// Per-worker instrumentation: all fields are relaxed atomics updated
/// by exactly one worker (busy/idle/jobs) or the dispatcher (queue).
#[derive(Default)]
struct WorkerMetrics {
    /// Wall time spent processing jobs (only while telemetry enabled).
    busy_ns: AtomicU64,
    /// Wall time spent blocked in `recv` (only while telemetry enabled).
    idle_ns: AtomicU64,
    /// Batches processed (always on).
    batches: AtomicU64,
    /// Jobs currently queued or in flight on this worker's channel.
    queue_len: AtomicU64,
    /// High-water mark of `queue_len` (always on).
    queue_hwm: AtomicU64,
}

/// Instrumentation block shared by a pool, its workers and (via
/// [`ShardPool::metrics`]) the caller. Lives in an `Arc`, so snapshots
/// remain readable after shutdown — including after a worker panic.
pub struct PoolMetrics {
    name: &'static str,
    shards: usize,
    workers: Vec<WorkerMetrics>,
    /// Dispatch calls routed into the pool (always on).
    dispatches: AtomicU64,
    /// Barriers executed (always on).
    barriers: AtomicU64,
    /// Caller wall time spent waiting on barrier replies (enabled only).
    barrier_wait_ns: AtomicU64,
}

/// Plain-data snapshot of one worker's [`PoolMetrics`] entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerMetricsSnapshot {
    /// Wall nanoseconds processing jobs (0 unless telemetry was on).
    pub busy_ns: u64,
    /// Wall nanoseconds blocked waiting for work (0 unless telemetry
    /// was on).
    pub idle_ns: u64,
    /// Batches this worker processed.
    pub batches: u64,
    /// Highest number of jobs simultaneously queued or in flight.
    pub queue_hwm: u64,
}

/// Plain-data snapshot of a pool's [`PoolMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolMetricsSnapshot {
    /// The pool's registry name (`pool.<name>.*`).
    pub name: &'static str,
    /// Number of shards the pool was built with.
    pub shards: usize,
    /// One entry per worker thread.
    pub workers: Vec<WorkerMetricsSnapshot>,
    /// Dispatch calls routed into the pool.
    pub dispatches: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Caller wall nanoseconds waiting on barriers (0 unless telemetry
    /// was on).
    pub barrier_wait_ns: u64,
}

impl PoolMetrics {
    fn new(name: &'static str, shards: usize, workers: usize) -> PoolMetrics {
        PoolMetrics {
            name,
            shards,
            workers: (0..workers).map(|_| WorkerMetrics::default()).collect(),
            dispatches: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            barrier_wait_ns: AtomicU64::new(0),
        }
    }

    /// Record a job entering worker `w`'s queue (dispatcher side).
    fn enqueue(&self, w: usize) {
        let m = &self.workers[w];
        let depth = m.queue_len.fetch_add(1, Ordering::Relaxed) + 1;
        m.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Copy the current values into a plain snapshot.
    pub fn snapshot(&self) -> PoolMetricsSnapshot {
        PoolMetricsSnapshot {
            name: self.name,
            shards: self.shards,
            workers: self
                .workers
                .iter()
                .map(|w| WorkerMetricsSnapshot {
                    busy_ns: w.busy_ns.load(Ordering::Relaxed),
                    idle_ns: w.idle_ns.load(Ordering::Relaxed),
                    batches: w.batches.load(Ordering::Relaxed),
                    queue_hwm: w.queue_hwm.load(Ordering::Relaxed),
                })
                .collect(),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            barrier_wait_ns: self.barrier_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Publish the current values as `pool.<name>.*` gauges in the
    /// global telemetry registry (no-op while telemetry is disabled).
    fn publish(&self) {
        if !dosscope_obs::enabled() {
            return;
        }
        let snap = self.snapshot();
        let base = format!("pool.{}", self.name);
        dosscope_obs::gauge(&format!("{base}.workers")).set(snap.workers.len() as u64);
        dosscope_obs::gauge(&format!("{base}.shards")).set(snap.shards as u64);
        dosscope_obs::gauge(&format!("{base}.dispatches")).set(snap.dispatches);
        dosscope_obs::gauge(&format!("{base}.barriers")).set(snap.barriers);
        dosscope_obs::gauge(&format!("{base}.barrier_wait_us")).set(snap.barrier_wait_ns / 1_000);
        for (k, w) in snap.workers.iter().enumerate() {
            dosscope_obs::gauge(&format!("{base}.w{k}.busy_us")).set(w.busy_ns / 1_000);
            dosscope_obs::gauge(&format!("{base}.w{k}.idle_us")).set(w.idle_ns / 1_000);
            dosscope_obs::gauge(&format!("{base}.w{k}.batches")).set(w.batches);
            dosscope_obs::gauge(&format!("{base}.w{k}.queue_hwm")).set(w.queue_hwm);
        }
    }
}

/// A barrier closure run against a worker's owned `(shard, state)` slice.
type BarrierCall<S> = Box<dyn FnOnce(&mut Vec<(usize, S)>) + Send>;

/// What travels over a worker's channel: a shared batch, or a barrier
/// closure run against the worker's owned `(shard, state)` slice.
enum Job<B, S> {
    Batch(Arc<B>),
    Call(BarrierCall<S>),
}

struct Lane<B, S, O> {
    tx: Option<SyncSender<Job<B, S>>>,
    handle: Option<JoinHandle<Vec<(usize, O)>>>,
}

/// A persistent pool of worker threads, each owning a fixed slice of
/// per-shard states.
///
/// Type parameters: `B` is the dispatched batch type (shared read-only
/// across workers), `S` the per-shard state a worker owns and mutates,
/// `O` the per-shard output [`ShardPool::shutdown`] returns.
pub struct ShardPool<B, S, O> {
    shards: usize,
    lanes: Vec<Lane<B, S, O>>,
    metrics: Arc<PoolMetrics>,
    down: bool,
}

impl<B, S, O> ShardPool<B, S, O>
where
    B: Send + Sync + 'static,
    S: Send + 'static,
    O: Send + 'static,
{
    /// Spawn the pool: `shards` states (built by `init`, in shard order,
    /// on the calling thread) distributed over `min(threads, shards)`
    /// long-lived workers (`threads > shards` simply caps at one worker
    /// per shard; 0 of either is treated as 1). `name` identifies the
    /// pool in telemetry (`pool.<name>.*`).
    ///
    /// For every dispatched batch a worker calls
    /// `process(state, shard, shards, &batch)` once per shard it owns, in
    /// shard order. At shutdown it calls `finish(state)` per shard and
    /// returns the outputs.
    pub fn new<I, P, F>(
        name: &'static str,
        shards: usize,
        threads: usize,
        queue_depth: usize,
        mut init: I,
        process: P,
        finish: F,
    ) -> ShardPool<B, S, O>
    where
        I: FnMut(usize) -> S,
        P: Fn(&mut S, usize, usize, &B) + Send + Clone + 'static,
        F: Fn(S) -> O + Send + Clone + 'static,
    {
        let shards = shards.max(1);
        let workers = threads.max(1).min(shards);
        let depth = queue_depth.max(1);
        let metrics = Arc::new(PoolMetrics::new(name, shards, workers));
        let mut states: Vec<Option<(usize, S)>> =
            (0..shards).map(|s| Some((s, init(s)))).collect();
        let lanes = (0..workers)
            .map(|w| {
                let owned: Vec<(usize, S)> = states
                    .iter_mut()
                    .skip(w)
                    .step_by(workers)
                    .map(|slot| slot.take().expect("each shard is owned exactly once"))
                    .collect();
                let (tx, rx) = sync_channel::<Job<B, S>>(depth);
                let process = process.clone();
                let finish = finish.clone();
                let metrics = metrics.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("shard-worker-{w}"))
                    .spawn(move || {
                        let mut owned = owned;
                        let wm = &metrics.workers[w];
                        loop {
                            // Clock reads only happen while telemetry is
                            // enabled; the counters below are always on.
                            let wait = dosscope_obs::enabled().then(Instant::now);
                            let Ok(job) = rx.recv() else { break };
                            wm.queue_len.fetch_sub(1, Ordering::Relaxed);
                            if let Some(t) = wait {
                                wm.idle_ns
                                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            }
                            let work = dosscope_obs::enabled().then(Instant::now);
                            match job {
                                Job::Batch(batch) => {
                                    for (shard, state) in owned.iter_mut() {
                                        process(state, *shard, shards, &batch);
                                    }
                                    wm.batches.fetch_add(1, Ordering::Relaxed);
                                }
                                Job::Call(f) => f(&mut owned),
                            }
                            if let Some(t) = work {
                                wm.busy_ns
                                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            }
                        }
                        owned
                            .into_iter()
                            .map(|(shard, state)| (shard, finish(state)))
                            .collect()
                    })
                    .expect("spawn shard worker");
                Lane {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool {
            shards,
            lanes,
            metrics,
            down: false,
        }
    }

    /// Number of shards (== per-shard states).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of worker threads actually spawned.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// True once [`ShardPool::shutdown`] has consumed the states.
    pub fn is_shut_down(&self) -> bool {
        self.down
    }

    /// Snapshot of the pool's instrumentation counters. Readable at any
    /// point in the pool's life, including after [`ShardPool::shutdown`]
    /// (where data-path calls return [`PoolError::ShutDown`]) and after
    /// a worker panic was propagated.
    pub fn metrics(&self) -> PoolMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Dispatch one batch to every worker (each processes it against all
    /// of its shards). Returns [`PoolError::ShutDown`] after `shutdown`;
    /// re-raises the worker's panic if one died processing earlier work.
    pub fn dispatch(&mut self, batch: B) -> Result<(), PoolError> {
        self.dispatch_shared(Arc::new(batch))
    }

    /// [`ShardPool::dispatch`] for a batch that is already shared.
    pub fn dispatch_shared(&mut self, batch: Arc<B>) -> Result<(), PoolError> {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        self.metrics.dispatches.fetch_add(1, Ordering::Relaxed);
        let mut dead = false;
        for (w, lane) in self.lanes.iter().enumerate() {
            let tx = lane.tx.as_ref().expect("live pool lane has a sender");
            self.metrics.enqueue(w);
            if tx.send(Job::Batch(batch.clone())).is_err() {
                dead = true;
            }
        }
        if dead {
            self.propagate_worker_panic();
        }
        Ok(())
    }

    /// Dispatch one batch to the single worker owning `shard` (the worker
    /// still processes it against every shard it owns; routing inside the
    /// batch decides what each shard sees). Cheaper than a full dispatch
    /// when the batch is known to touch one shard.
    pub fn dispatch_to(&mut self, shard: usize, batch: B) -> Result<(), PoolError> {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        assert!(shard < self.shards, "shard index out of range");
        self.metrics.dispatches.fetch_add(1, Ordering::Relaxed);
        let w = shard % self.lanes.len();
        let tx = self.lanes[w].tx.as_ref().expect("live pool lane has a sender");
        self.metrics.enqueue(w);
        if tx.send(Job::Batch(Arc::new(batch))).is_err() {
            self.propagate_worker_panic();
        }
        Ok(())
    }

    /// Barrier: after everything dispatched so far has been processed, run
    /// `f` against every shard state and return the results in shard
    /// order. This is the snapshot primitive — per-shard accumulators are
    /// read (and merged by the caller) exactly once per barrier, never per
    /// dispatched chunk.
    pub fn barrier<R, F>(&mut self, f: F) -> Result<Vec<R>, PoolError>
    where
        R: Send + 'static,
        F: Fn(&mut S) -> R + Send + Clone + 'static,
    {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        self.metrics.barriers.fetch_add(1, Ordering::Relaxed);
        let mut replies: Vec<Receiver<Vec<(usize, R)>>> = Vec::with_capacity(self.lanes.len());
        let mut dead = false;
        for (w, lane) in self.lanes.iter().enumerate() {
            let (otx, orx) = std::sync::mpsc::channel();
            let g = f.clone();
            let job = Job::Call(Box::new(move |owned: &mut Vec<(usize, S)>| {
                let out: Vec<(usize, R)> =
                    owned.iter_mut().map(|(shard, s)| (*shard, g(s))).collect();
                let _ = otx.send(out);
            }));
            let tx = lane.tx.as_ref().expect("live pool lane has a sender");
            self.metrics.enqueue(w);
            if tx.send(job).is_err() {
                dead = true;
                break;
            }
            replies.push(orx);
        }
        let mut results: Vec<(usize, R)> = Vec::with_capacity(self.shards);
        if !dead {
            let wait = dosscope_obs::enabled().then(Instant::now);
            for orx in replies {
                match orx.recv() {
                    Ok(part) => results.extend(part),
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if let Some(t) = wait {
                self.metrics
                    .barrier_wait_ns
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        if dead {
            self.propagate_worker_panic();
        }
        results.sort_by_key(|(shard, _)| *shard);
        Ok(results.into_iter().map(|(_, r)| r).collect())
    }

    /// Final barrier: close every channel, join every worker and return
    /// the finished per-shard outputs in shard order. The pool is
    /// unusable afterwards (further calls return
    /// [`PoolError::ShutDown`]); a worker that panicked re-raises here.
    pub fn shutdown(&mut self) -> Result<Vec<O>, PoolError> {
        if self.down {
            return Err(PoolError::ShutDown);
        }
        self.down = true;
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        let mut outputs: Vec<(usize, O)> = Vec::with_capacity(self.shards);
        let mut panic_payload = None;
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                match handle.join() {
                    Ok(part) => outputs.extend(part),
                    Err(payload) => {
                        panic_payload.get_or_insert(payload);
                    }
                }
            }
        }
        self.metrics.publish();
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        outputs.sort_by_key(|(shard, _)| *shard);
        Ok(outputs.into_iter().map(|(_, o)| o).collect())
    }

    /// Tear everything down and re-raise the first worker panic. Only
    /// called when a send or receive failed, which means a worker is gone
    /// — and workers only leave by panicking.
    fn propagate_worker_panic(&mut self) -> ! {
        self.down = true;
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        let mut panic_payload = None;
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                if let Err(payload) = handle.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        // Publish whatever was recorded up to the failure so a crashed
        // run still leaves a coherent (partial) telemetry snapshot.
        self.metrics.publish();
        match panic_payload {
            Some(payload) => std::panic::resume_unwind(payload),
            None => unreachable!("worker disconnected without panicking"),
        }
    }
}

/// Dropping a live pool joins its workers (so no thread outlives the
/// stage that owns it) and re-raises a worker panic unless the thread is
/// already unwinding.
impl<B, S, O> Drop for ShardPool<B, S, O> {
    fn drop(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        for lane in &mut self.lanes {
            lane.tx = None;
        }
        let mut panic_payload = None;
        for lane in &mut self.lanes {
            if let Some(handle) = lane.handle.take() {
                if let Err(payload) = handle.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        self.metrics.publish();
        if let Some(payload) = panic_payload {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::thread::ThreadId;

    /// A state that records everything its shard saw plus the thread that
    /// processed it, to pin worker reuse and ownership.
    #[derive(Default)]
    struct Probe {
        seen: Vec<u32>,
        batches: usize,
        thread: Option<ThreadId>,
    }

    /// What [`probe_pool`]'s finish returns per shard: seen values, batch
    /// count, processing thread.
    type ProbeOutput = (Vec<u32>, usize, Option<ThreadId>);

    fn probe_pool(shards: usize, threads: usize) -> ShardPool<Routed<u32>, Probe, ProbeOutput> {
        ShardPool::new(
            "probe",
            shards,
            threads,
            4,
            |_| Probe::default(),
            |state: &mut Probe, shard, _shards, routed: &Routed<u32>| {
                state.seen.extend(routed.owned(shard).copied());
                state.batches += 1;
                let here = std::thread::current().id();
                match state.thread {
                    None => state.thread = Some(here),
                    Some(prev) => assert_eq!(prev, here, "shard state migrated threads"),
                }
            },
            |s: Probe| (s.seen, s.batches, s.thread),
        )
    }

    fn route(items: Vec<u32>, shards: usize) -> Routed<u32> {
        Routed::build(Arc::new(items), shards, |v| *v as usize % shards.max(1))
    }

    #[test]
    fn workers_persist_across_consecutive_batches() {
        let mut pool = probe_pool(4, 4);
        for chunk in [vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11]] {
            pool.dispatch(route(chunk, 4)).unwrap();
        }
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs.len(), 4);
        for (shard, (seen, batches, thread)) in outs.iter().enumerate() {
            // Same long-lived state saw all three chunks, on one thread.
            assert_eq!(*batches, 3, "shard {shard} reused across batches");
            assert!(thread.is_some());
            assert_eq!(
                seen,
                &(0..12u32).filter(|v| *v as usize % 4 == shard).collect::<Vec<_>>(),
                "shard {shard} owns exactly its keyed items, in order"
            );
        }
    }

    #[test]
    fn more_threads_than_shards_caps_at_one_worker_per_shard() {
        let mut pool = probe_pool(2, 8);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.shards(), 2);
        pool.dispatch(route((0..10).collect(), 2)).unwrap();
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs[0].0, vec![0, 2, 4, 6, 8]);
        assert_eq!(outs[1].0, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn more_shards_than_threads_strides_ownership() {
        let mut pool = probe_pool(5, 2);
        assert_eq!(pool.workers(), 2);
        pool.dispatch(route((0..25).collect(), 5)).unwrap();
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs.len(), 5, "outputs in shard order despite striding");
        for (shard, (seen, _, _)) in outs.iter().enumerate() {
            assert!(seen.iter().all(|v| *v as usize % 5 == shard));
            assert_eq!(seen.len(), 5);
        }
        // Shards 0,2,4 share worker 0 and 1,3 share worker 1.
        assert_eq!(outs[0].2, outs[2].2);
        assert_eq!(outs[0].2, outs[4].2);
        assert_eq!(outs[1].2, outs[3].2);
        assert_ne!(outs[0].2, outs[1].2);
    }

    #[test]
    fn barrier_sees_all_prior_batches_in_shard_order() {
        let mut pool = probe_pool(3, 3);
        pool.dispatch(route((0..9).collect(), 3)).unwrap();
        let counts = pool.barrier(|s: &mut Probe| s.seen.len()).unwrap();
        assert_eq!(counts, vec![3, 3, 3]);
        pool.dispatch(route((9..12).collect(), 3)).unwrap();
        let counts = pool.barrier(|s: &mut Probe| s.seen.len()).unwrap();
        assert_eq!(counts, vec![4, 4, 4]);
    }

    #[test]
    fn snapshot_after_shutdown_is_an_error() {
        let mut pool = probe_pool(2, 2);
        pool.dispatch(route(vec![1, 2], 2)).unwrap();
        pool.shutdown().unwrap();
        assert!(pool.is_shut_down());
        assert_eq!(
            pool.barrier(|s: &mut Probe| s.batches).unwrap_err(),
            PoolError::ShutDown
        );
        assert_eq!(pool.dispatch(route(vec![3], 2)).unwrap_err(), PoolError::ShutDown);
        assert_eq!(pool.shutdown().unwrap_err(), PoolError::ShutDown);
        assert_eq!(PoolError::ShutDown.to_string(), "shard pool is already shut down");
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let mut pool: ShardPool<Routed<u32>, u32, u32> = ShardPool::new(
            "poison",
            4,
            4,
            2,
            |_| 0,
            |state, shard, _shards, routed: &Routed<u32>| {
                for v in routed.owned(shard) {
                    assert!(*v != 13, "poison item reached shard {shard}");
                    *state += v;
                }
            },
            |s| s,
        );
        pool.dispatch(route(vec![1, 2, 3], 4)).unwrap();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // The poisoned chunk kills one worker; either this dispatch
            // round or the shutdown must surface the panic — never hang.
            pool.dispatch(route(vec![13], 4)).unwrap();
            for i in 0..64 {
                pool.dispatch(route(vec![i], 4)).unwrap();
            }
            pool.shutdown().unwrap();
        }))
        .expect_err("worker panic must propagate to the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("poison item"), "original payload kept: {msg}");
        // The pool is down but safely reusable as a value (errors, no UB).
        assert!(pool.is_shut_down());
    }

    #[test]
    fn routed_views_share_the_chunk() {
        let items = Arc::new(vec![10u32, 21, 32, 43]);
        let routed = Routed::build(items.clone(), 2, |v| (*v % 2) as usize);
        assert_eq!(routed.shards(), 2);
        assert_eq!(routed.items().as_ptr(), items.as_ptr(), "no item copies");
        assert_eq!(routed.owned(0).copied().collect::<Vec<_>>(), vec![10, 32]);
        assert_eq!(routed.owned(1).copied().collect::<Vec<_>>(), vec![21, 43]);
        assert_eq!(routed.owned_len(0), 2);
        // Degenerate shard count routes everything to one shard.
        let one = Routed::build(items, 0, |_| 0);
        assert_eq!(one.shards(), 1);
        assert_eq!(one.owned_len(0), 4);
    }

    /// A pool whose workers sleep per batch, so queueing and barrier
    /// waits are observable in the instrumentation.
    fn slow_pool(
        shards: usize,
        threads: usize,
        delay_ms: u64,
    ) -> ShardPool<Routed<u32>, u64, u64> {
        ShardPool::new(
            "slow",
            shards,
            threads,
            4,
            |_| 0u64,
            move |state, shard, _shards, routed: &Routed<u32>| {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                *state += routed.owned_len(shard) as u64;
            },
            |s| s,
        )
    }

    #[test]
    fn metrics_track_queue_depth_and_barrier_wait_with_more_threads_than_shards() {
        let _t = dosscope_obs::testing::scoped_enable();
        // threads > shards caps at one worker per shard; instrumentation
        // must still attribute per worker, not per requested thread.
        let mut pool = slow_pool(2, 8, 3);
        assert_eq!(pool.workers(), 2);
        for _ in 0..3 {
            pool.dispatch(route(vec![0, 1], 2)).unwrap();
        }
        let sums = pool.barrier(|s: &mut u64| *s).unwrap();
        assert_eq!(sums, vec![3, 3]);
        let m = pool.metrics();
        assert_eq!(m.name, "slow");
        assert_eq!(m.shards, 2);
        assert_eq!(m.workers.len(), 2);
        assert_eq!(m.dispatches, 3);
        assert_eq!(m.barriers, 1);
        // Three quick dispatches against 3ms batches: at least two jobs
        // were simultaneously queued on each worker at some point.
        for (k, w) in m.workers.iter().enumerate() {
            assert!(w.queue_hwm >= 2, "worker {k} queue hwm {}", w.queue_hwm);
            assert_eq!(w.batches, 3);
            assert!(w.busy_ns > 0, "worker {k} recorded busy time");
        }
        // The barrier had to wait for ~9ms of queued work per worker.
        assert!(
            m.barrier_wait_ns >= 2_000_000,
            "barrier wait {}ns", m.barrier_wait_ns
        );
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs, vec![3, 3]);
    }

    #[test]
    fn metrics_survive_shutdown_and_publish_to_registry() {
        let _t = dosscope_obs::testing::scoped_enable();
        let mut pool = probe_pool(2, 2);
        pool.dispatch(route(vec![0, 1, 2, 3], 2)).unwrap();
        pool.shutdown().unwrap();
        // The data path is closed, but the snapshot is still coherent.
        assert!(pool.is_shut_down());
        let m = pool.metrics();
        assert_eq!(m.dispatches, 1);
        assert_eq!(m.workers.iter().map(|w| w.batches).sum::<u64>(), 2);
        // Shutdown published the same numbers as pool.probe.* gauges.
        let gauges = dosscope_obs::registry::gauges_snapshot();
        let get = |name: &str| {
            gauges
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("pool.probe.workers"), 2);
        assert_eq!(get("pool.probe.shards"), 2);
        assert_eq!(get("pool.probe.dispatches"), 1);
    }

    #[test]
    fn disabled_telemetry_records_no_wall_time() {
        // No scoped_enable: telemetry is off, so the pool must never
        // read the clock — but the always-on counters still work.
        let mut pool = probe_pool(2, 2);
        pool.dispatch(route(vec![0, 1], 2)).unwrap();
        pool.barrier(|s: &mut Probe| s.batches).unwrap();
        pool.shutdown().unwrap();
        let m = pool.metrics();
        assert_eq!(m.dispatches, 1);
        assert_eq!(m.barriers, 1);
        assert!(m.workers.iter().all(|w| w.busy_ns == 0 && w.idle_ns == 0));
        assert_eq!(m.barrier_wait_ns, 0);
    }

    #[test]
    fn worker_panic_leaves_a_coherent_partial_metrics_snapshot() {
        let _t = dosscope_obs::testing::scoped_enable();
        let mut pool: ShardPool<Routed<u32>, u32, u32> = ShardPool::new(
            "crashy",
            2,
            2,
            4,
            |_| 0,
            |state, shard, _shards, routed: &Routed<u32>| {
                for v in routed.owned(shard) {
                    assert!(*v != 13, "poison item reached shard {shard}");
                    *state += v;
                }
            },
            |s| s,
        );
        pool.dispatch(route(vec![1, 2], 2)).unwrap();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(route(vec![13], 2)).unwrap();
            for i in 0..64 {
                pool.dispatch(route(vec![i], 2)).unwrap();
            }
            pool.shutdown().unwrap();
        }))
        .expect_err("worker panic must propagate");
        drop(err);
        // The panic path still published a partial snapshot: the clean
        // dispatches before the poison batch are accounted for.
        let m = pool.metrics();
        assert!(m.dispatches >= 2, "pre-crash dispatches recorded");
        let gauges = dosscope_obs::registry::gauges_snapshot();
        assert!(
            gauges.iter().any(|(k, v)| k == "pool.crashy.dispatches" && *v >= 2),
            "partial snapshot published on the panic path"
        );
    }

    #[test]
    fn dispatch_to_reaches_the_owning_worker_only() {
        let mut pool = probe_pool(4, 2);
        pool.dispatch_to(2, route(vec![2, 6], 4)).unwrap();
        pool.dispatch_to(1, route(vec![5], 4)).unwrap();
        let outs = pool.shutdown().unwrap();
        assert_eq!(outs[2].0, vec![2, 6]);
        assert_eq!(outs[1].0, vec![5]);
        // Shard 0 shares worker 0 with shard 2, so it saw that batch (and
        // owned nothing in it); shard 3 shares worker 1 with shard 1.
        assert_eq!(outs[0].0, Vec::<u32>::new());
        assert_eq!(outs[3].0, Vec::<u32>::new());
    }
}
