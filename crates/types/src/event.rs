//! The unified attack-event model.
//!
//! Both measurement pipelines (the telescope RSDoS detector and the AmpPot
//! fleet) emit [`AttackEvent`]s. The fusion framework in `dosscope-core`
//! works exclusively on this representation; source-specific detail is kept
//! in [`AttackVector`].

use crate::time::TimeRange;
use std::net::Ipv4Addr;

/// Which measurement infrastructure observed an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventSource {
    /// Backscatter to the network telescope (randomly spoofed attacks).
    Telescope,
    /// Requests to the amplification honeypots (reflection attacks).
    Honeypot,
}

impl std::fmt::Display for EventSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventSource::Telescope => f.write_str("Network Telescope"),
            EventSource::Honeypot => f.write_str("Amplification Honeypot"),
        }
    }
}

/// IP protocol used by a randomly spoofed attack, as inferred from
/// backscatter (Table 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransportProto {
    /// TCP floods (SYN floods and friends; backscatter is SYN/ACK or RST).
    Tcp,
    /// UDP floods (backscatter is ICMP destination unreachable quoting UDP).
    Udp,
    /// ICMP floods (e.g. ping floods; backscatter is echo replies).
    Icmp,
    /// Anything else (e.g. IGMP).
    Other,
}

impl TransportProto {
    /// All variants, in the paper's presentation order.
    pub const ALL: [TransportProto; 4] = [
        TransportProto::Tcp,
        TransportProto::Udp,
        TransportProto::Icmp,
        TransportProto::Other,
    ];

    /// This variant's position in [`TransportProto::ALL`], as a branchless
    /// lookup for per-packet counters indexed in `ALL` order.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for TransportProto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportProto::Tcp => f.write_str("TCP"),
            TransportProto::Udp => f.write_str("UDP"),
            TransportProto::Icmp => f.write_str("ICMP"),
            TransportProto::Other => f.write_str("Other"),
        }
    }
}

/// Reflector protocol abused by a reflection/amplification attack
/// (the eight protocols AmpPot emulates; Table 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ReflectionProtocol {
    Ntp,
    Dns,
    CharGen,
    Ssdp,
    RipV1,
    MsSql,
    Tftp,
    Qotd,
}

impl ReflectionProtocol {
    /// All emulated protocols.
    pub const ALL: [ReflectionProtocol; 8] = [
        ReflectionProtocol::Ntp,
        ReflectionProtocol::Dns,
        ReflectionProtocol::CharGen,
        ReflectionProtocol::Ssdp,
        ReflectionProtocol::RipV1,
        ReflectionProtocol::MsSql,
        ReflectionProtocol::Tftp,
        ReflectionProtocol::Qotd,
    ];

    /// The top-five protocols as reported in Table 6 / Figure 4.
    pub const TOP5: [ReflectionProtocol; 5] = [
        ReflectionProtocol::Ntp,
        ReflectionProtocol::Dns,
        ReflectionProtocol::CharGen,
        ReflectionProtocol::Ssdp,
        ReflectionProtocol::RipV1,
    ];

    /// The UDP port the reflector protocol listens on.
    pub fn port(self) -> u16 {
        match self {
            ReflectionProtocol::Ntp => 123,
            ReflectionProtocol::Dns => 53,
            ReflectionProtocol::CharGen => 19,
            ReflectionProtocol::Ssdp => 1900,
            ReflectionProtocol::RipV1 => 520,
            ReflectionProtocol::MsSql => 1434,
            ReflectionProtocol::Tftp => 69,
            ReflectionProtocol::Qotd => 17,
        }
    }

    /// The protocol listening on a UDP port, if it is one AmpPot emulates.
    pub fn from_port(port: u16) -> Option<ReflectionProtocol> {
        Self::ALL.into_iter().find(|p| p.port() == port)
    }
}

impl std::fmt::Display for ReflectionProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReflectionProtocol::Ntp => f.write_str("NTP"),
            ReflectionProtocol::Dns => f.write_str("DNS"),
            ReflectionProtocol::CharGen => f.write_str("CharGen"),
            ReflectionProtocol::Ssdp => f.write_str("SSDP"),
            ReflectionProtocol::RipV1 => f.write_str("RIPv1"),
            ReflectionProtocol::MsSql => f.write_str("MSSQL"),
            ReflectionProtocol::Tftp => f.write_str("TFTP"),
            ReflectionProtocol::Qotd => f.write_str("QOTD"),
        }
    }
}

/// Target-port structure of a randomly spoofed attack (Table 7/8).
///
/// The telescope detector records how many distinct destination ports the
/// backscatter implies; attacks on exactly one port keep that port for the
/// service mapping of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortSignature {
    /// Strictly one port was targeted.
    Single(u16),
    /// Multiple ports were targeted; the count of distinct ports observed.
    Multi(u32),
    /// No port information is recoverable (ICMP and "Other" floods whose
    /// backscatter carries no transport ports). Counted with single-port
    /// attacks in Table 7 but excluded from the service mapping of Table 8.
    None,
}

impl PortSignature {
    /// True if the attack did not target multiple ports (single-port and
    /// no-port events; the grouping used by Table 7).
    pub fn is_single(&self) -> bool {
        !matches!(self, PortSignature::Multi(_))
    }

    /// The single targeted port, if known.
    pub fn single_port(&self) -> Option<u16> {
        match self {
            PortSignature::Single(p) => Some(*p),
            PortSignature::Multi(_) | PortSignature::None => None,
        }
    }

    /// Number of distinct ports observed.
    pub fn distinct_ports(&self) -> u32 {
        match self {
            PortSignature::Single(_) => 1,
            PortSignature::Multi(n) => *n,
            PortSignature::None => 0,
        }
    }
}

/// Source-specific attack characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// A randomly-and-uniformly spoofed direct attack, seen via backscatter.
    RandomlySpoofed {
        /// IP protocol of the flood.
        proto: TransportProto,
        /// Target-port structure.
        ports: PortSignature,
    },
    /// A reflection/amplification attack, seen at the honeypots.
    Reflection {
        /// Reflector protocol abused.
        protocol: ReflectionProtocol,
    },
}

impl AttackVector {
    /// The measurement source that can observe this vector.
    pub fn source(&self) -> EventSource {
        match self {
            AttackVector::RandomlySpoofed { .. } => EventSource::Telescope,
            AttackVector::Reflection { .. } => EventSource::Honeypot,
        }
    }
}

/// Audit hook for the zero-copy guarantee of the sharded ingest path:
/// every [`AttackEvent::clone`] bumps a process-global counter in debug
/// builds, so a test can pin that routing events to shards and merging
/// shard stores never copies a single event struct.
#[cfg(debug_assertions)]
pub mod clone_audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    static EVENT_CLONES: AtomicU64 = AtomicU64::new(0);

    pub(super) fn record() {
        EVENT_CLONES.fetch_add(1, Ordering::Relaxed);
    }

    /// Total [`super::AttackEvent`] clones performed by this process so
    /// far. The counter is process-global, so tests comparing before and
    /// after a code path must run in their own test binary.
    pub fn event_clones() -> u64 {
        EVENT_CLONES.load(Ordering::Relaxed)
    }
}

/// A single inferred DoS attack event, the unit of all analyses.
#[derive(Debug, PartialEq)]
pub struct AttackEvent {
    /// The victim IP address (for backscatter: the source of response
    /// packets; for honeypots: the spoofed request source).
    pub target: Ipv4Addr,
    /// Active interval of the event.
    pub when: TimeRange,
    /// Vector-specific detail; also determines [`AttackEvent::source`].
    pub vector: AttackVector,
    /// Total packets attributed to the event *as seen by the observer*
    /// (backscatter packets at the telescope / requests at the honeypots).
    pub packets: u64,
    /// Total bytes attributed to the event as seen by the observer.
    pub bytes: u64,
    /// Intensity in the source's native unit: the telescope reports the
    /// *maximum packets/second in any minute*; the honeypots report the
    /// *average requests/second*. Never compare raw intensities across
    /// sources — use the normalized intensity from `dosscope-core`.
    pub intensity_pps: f64,
    /// Number of distinct (spoofed) source addresses observed, an auxiliary
    /// statistic of the Moore et al. classifier.
    pub distinct_sources: u32,
}

// Manual so debug builds can count clones (see [`clone_audit`]): the
// sharded pipeline promises a zero-copy handoff, and a derived `Clone`
// would be invisible to that audit.
impl Clone for AttackEvent {
    fn clone(&self) -> Self {
        #[cfg(debug_assertions)]
        clone_audit::record();
        AttackEvent {
            target: self.target,
            when: self.when,
            vector: self.vector,
            packets: self.packets,
            bytes: self.bytes,
            intensity_pps: self.intensity_pps,
            distinct_sources: self.distinct_sources,
        }
    }
}

impl AttackEvent {
    /// The measurement source of this event.
    pub fn source(&self) -> EventSource {
        self.vector.source()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.when.duration_secs()
    }

    /// The reflection protocol if this is a honeypot event.
    pub fn reflection_protocol(&self) -> Option<ReflectionProtocol> {
        match self.vector {
            AttackVector::Reflection { protocol } => Some(protocol),
            AttackVector::RandomlySpoofed { .. } => None,
        }
    }

    /// The flood transport protocol if this is a telescope event.
    pub fn transport_proto(&self) -> Option<TransportProto> {
        match self.vector {
            AttackVector::RandomlySpoofed { proto, .. } => Some(proto),
            AttackVector::Reflection { .. } => None,
        }
    }

    /// The port signature if this is a telescope event.
    pub fn port_signature(&self) -> Option<PortSignature> {
        match self.vector {
            AttackVector::RandomlySpoofed { ports, .. } => Some(ports),
            AttackVector::Reflection { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn transport_proto_index_matches_all_order() {
        for (i, p) in TransportProto::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?}");
        }
    }

    fn sample_event(vector: AttackVector) -> AttackEvent {
        AttackEvent {
            target: "203.0.113.9".parse().unwrap(),
            when: TimeRange::new(SimTime(100), SimTime(400)),
            vector,
            packets: 1000,
            bytes: 40_000,
            intensity_pps: 12.0,
            distinct_sources: 800,
        }
    }

    #[test]
    fn vector_source_mapping() {
        let t = sample_event(AttackVector::RandomlySpoofed {
            proto: TransportProto::Tcp,
            ports: PortSignature::Single(80),
        });
        assert_eq!(t.source(), EventSource::Telescope);
        assert_eq!(t.transport_proto(), Some(TransportProto::Tcp));
        assert_eq!(t.port_signature().unwrap().single_port(), Some(80));
        assert_eq!(t.reflection_protocol(), None);

        let h = sample_event(AttackVector::Reflection {
            protocol: ReflectionProtocol::Ntp,
        });
        assert_eq!(h.source(), EventSource::Honeypot);
        assert_eq!(h.reflection_protocol(), Some(ReflectionProtocol::Ntp));
        assert_eq!(h.transport_proto(), None);
    }

    #[test]
    fn reflection_ports_roundtrip() {
        for p in ReflectionProtocol::ALL {
            assert_eq!(ReflectionProtocol::from_port(p.port()), Some(p));
        }
        assert_eq!(ReflectionProtocol::from_port(80), None);
    }

    #[test]
    fn port_signature() {
        assert!(PortSignature::Single(443).is_single());
        assert_eq!(PortSignature::Single(443).distinct_ports(), 1);
        assert_eq!(PortSignature::Multi(7).distinct_ports(), 7);
        assert_eq!(PortSignature::Multi(7).single_port(), None);
    }

    #[test]
    fn duration() {
        let e = sample_event(AttackVector::Reflection {
            protocol: ReflectionProtocol::Dns,
        });
        assert_eq!(e.duration_secs(), 300);
    }
}
