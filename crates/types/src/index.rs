//! Row-id indexes for the columnar event store: sorted-run postings per
//! predicate key, and dense bitsets over interned ids.
//!
//! The store keeps its rows time-sorted, so the row ids matching any
//! fixed predicate (a transport protocol, a reflection vector, a port
//! signature class) form an *ascending run*. [`RunIndex`] materializes
//! one such run per key: a predicate scan becomes a sequential walk of a
//! small posting list instead of a filter over every wide row, and a
//! time-windowed predicate query is two binary searches on the run.
//!
//! [`BitSet`] is the set half: distinct-victim and distinct-prefix
//! aggregates are bits over dense interned ids, so set size is a
//! popcount and set intersection (the telescope ∩ honeypot common-target
//! count) is a word-wise AND-popcount with no hashing.

/// Posting lists of ascending row ids, one run per `u8` predicate key.
///
/// Rows must be pushed in ascending row-id order (the store appends
/// time-sorted rows, so this is the natural order); a merge that
/// reorders rows rebuilds the index from scratch.
#[derive(Debug, Clone, Default)]
pub struct RunIndex {
    runs: Vec<Vec<u32>>,
}

impl RunIndex {
    /// An index over `keys` predicate keys (key values `0..keys`).
    pub fn new(keys: usize) -> Self {
        RunIndex {
            runs: vec![Vec::new(); keys],
        }
    }

    /// Append `row` to the run for `key`. Row ids must arrive ascending
    /// per key; debug builds assert it.
    pub fn push(&mut self, key: u8, row: u32) {
        let run = &mut self.runs[key as usize];
        debug_assert!(
            run.last().is_none_or(|&last| last < row),
            "row ids must be pushed in ascending order"
        );
        run.push(row);
    }

    /// The ascending row ids whose rows match `key`.
    pub fn rows(&self, key: u8) -> &[u32] {
        self.runs.get(key as usize).map_or(&[], |r| &r[..])
    }

    /// Number of rows matching `key`.
    pub fn count(&self, key: u8) -> u64 {
        self.rows(key).len() as u64
    }

    /// The row ids matching `key` inside the half-open row-id bucket
    /// `[lo, hi)` — two binary searches on the sorted run.
    pub fn rows_between(&self, key: u8, lo: u32, hi: u32) -> &[u32] {
        let run = self.rows(key);
        let a = run.partition_point(|&r| r < lo);
        let b = run.partition_point(|&r| r < hi);
        &run[a..b]
    }

    /// Number of predicate keys this index covers.
    pub fn keys(&self) -> usize {
        self.runs.len()
    }

    /// Total postings across all keys.
    pub fn postings(&self) -> usize {
        self.runs.iter().map(Vec::len).sum()
    }

    /// Drop all postings but keep the key space (used before a rebuild).
    pub fn clear(&mut self) {
        for run in &mut self.runs {
            run.clear();
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.capacity() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// A growable bitset over dense `u32` ids with popcount-based set
/// algebra.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    ones: usize,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Insert `bit`; returns `true` when it was not already present.
    pub fn insert(&mut self, bit: u32) -> bool {
        let word = (bit >> 6) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit & 63);
        let fresh = self.words[word] & mask == 0;
        if fresh {
            self.words[word] |= mask;
            self.ones += 1;
        }
        fresh
    }

    /// Whether `bit` is present.
    pub fn contains(&self, bit: u32) -> bool {
        let word = (bit >> 6) as usize;
        self.words.get(word).is_some_and(|w| w & (1 << (bit & 63)) != 0)
    }

    /// Number of set bits (maintained incrementally — O(1)).
    pub fn len(&self) -> usize {
        self.ones
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// `|self ∩ other|` via word-wise AND-popcount.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` via word-wise OR-popcount.
    pub fn union_count(&self, other: &BitSet) -> usize {
        let (long, short) = if self.words.len() >= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        let mut n = 0usize;
        for (i, w) in long.iter().enumerate() {
            let o = short.get(i).copied().unwrap_or(0);
            n += (w | o).count_ones() as usize;
        }
        n
    }

    /// Merge every bit of `other` into `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut ones = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        for w in &self.words {
            ones += w.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = (i as u32) << 6;
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(base + bit)
            })
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_index_predicate_queries_at_bucket_boundaries() {
        let mut idx = RunIndex::new(3);
        // Key 1 matches every even row of 0..200, key 2 every multiple of 64.
        for row in 0..200u32 {
            if row % 2 == 0 {
                idx.push(1, row);
            }
            if row % 64 == 0 {
                idx.push(2, row);
            }
        }
        assert_eq!(idx.count(0), 0);
        assert_eq!(idx.count(1), 100);
        assert_eq!(idx.count(2), 4);

        // Bucket boundaries: half-open [lo, hi) must include lo, exclude hi.
        assert_eq!(idx.rows_between(1, 0, 10), &[0, 2, 4, 6, 8]);
        assert_eq!(idx.rows_between(1, 10, 10), &[] as &[u32]);
        assert_eq!(idx.rows_between(1, 9, 13), &[10, 12]);
        assert_eq!(idx.rows_between(2, 64, 129), &[64, 128]);
        assert_eq!(idx.rows_between(2, 65, 128), &[] as &[u32]);
        // A bucket past the last row is empty, not a panic.
        assert_eq!(idx.rows_between(1, 200, 400), &[] as &[u32]);
        // Full-range query returns the whole run.
        assert_eq!(idx.rows_between(1, 0, u32::MAX), idx.rows(1));
    }

    #[test]
    fn run_index_unknown_key_is_empty() {
        let idx = RunIndex::new(2);
        assert_eq!(idx.rows(7), &[] as &[u32]);
        assert_eq!(idx.count(7), 0);
    }

    #[test]
    fn bitset_insert_contains_len() {
        let mut s = BitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert!(!s.insert(63), "duplicate insert reports not-fresh");
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(!s.contains(1_000_000), "past the last word is absent");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1000]);
    }

    #[test]
    fn bitset_intersection_and_union_counts() {
        let mut a = BitSet::new();
        let mut b = BitSet::new();
        for bit in [1u32, 2, 3, 100, 200] {
            a.insert(bit);
        }
        for bit in [2u32, 3, 4, 200, 4000] {
            b.insert(bit);
        }
        assert_eq!(a.intersection_count(&b), 3);
        assert_eq!(b.intersection_count(&a), 3, "symmetric despite length skew");
        assert_eq!(a.union_count(&b), 7);
        assert_eq!(b.union_count(&a), 7);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 7);
        assert_eq!(
            u.iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 100, 200, 4000]
        );
    }

    /// Merging per-shard sets into a snapshot must not depend on the
    /// order the shards are visited — the sharded store's snapshot merge
    /// relies on this.
    #[test]
    fn snapshot_merge_deterministic_across_shard_orders() {
        let shard_bits: [&[u32]; 4] = [
            &[1, 5, 900, 77],
            &[5, 6, 7],
            &[],
            &[900, 901, 64, 65, 1],
        ];
        let shards: Vec<BitSet> = shard_bits
            .iter()
            .map(|bits| {
                let mut s = BitSet::new();
                for &b in *bits {
                    s.insert(b);
                }
                s
            })
            .collect();
        let merge = |order: &[usize]| {
            let mut m = BitSet::new();
            for &i in order {
                m.union_with(&shards[i]);
            }
            m
        };
        let canonical = merge(&[0, 1, 2, 3]);
        for order in [[3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1]] {
            let merged = merge(&order);
            assert_eq!(merged, canonical, "order {order:?}");
            assert_eq!(
                merged.iter().collect::<Vec<_>>(),
                canonical.iter().collect::<Vec<_>>()
            );
        }
        assert_eq!(canonical.len(), 9);
    }
}
