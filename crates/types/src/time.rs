//! Simulation time, calendar conversion and time intervals.
//!
//! The measurement window of the reproduced study runs from **2015-03-01** to
//! **2017-02-28** inclusive — 731 days. All simulation timestamps are seconds
//! since 2015-03-01 00:00:00 UTC ([`SimTime`]); day-granularity analyses use
//! [`DayIndex`] (day 0 = 2015-03-01). A tiny proleptic-Gregorian converter
//! provides human-readable axis labels ("Mar '15") for the figures without a
//! calendar dependency.

/// Seconds in a minute.
pub const SECS_PER_MINUTE: u64 = 60;
/// Seconds in an hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in a day.
pub const SECS_PER_DAY: u64 = 86_400;

/// Number of days in the study window (2015-03-01 .. 2017-02-28, inclusive).
pub const STUDY_DAYS: u32 = 731;

/// A timestamp measured in seconds since the start of the study window
/// (2015-03-01 00:00:00 UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of the study window.
    pub const ZERO: SimTime = SimTime(0);

    /// Build a timestamp from a day index and a second-of-day offset.
    pub fn from_day_offset(day: DayIndex, offset_secs: u64) -> Self {
        SimTime(day.0 as u64 * SECS_PER_DAY + offset_secs)
    }

    /// Seconds since the study origin.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// The day this timestamp falls on.
    #[inline]
    pub fn day(self) -> DayIndex {
        DayIndex((self.0 / SECS_PER_DAY) as u32)
    }

    /// Second-of-day (0..86400).
    #[inline]
    pub fn second_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// Minute index since the origin (used by per-minute rate tracking).
    #[inline]
    pub fn minute(self) -> u64 {
        self.0 / SECS_PER_MINUTE
    }

    /// Saturating addition of a number of seconds.
    #[inline]
    pub fn add_secs(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_add(secs))
    }

    /// Saturating subtraction of a number of seconds.
    #[inline]
    pub fn sub_secs(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_sub(secs))
    }

    /// Absolute difference in seconds between two timestamps.
    #[inline]
    pub fn abs_diff(self, other: SimTime) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.day();
        let sod = self.second_of_day();
        write!(
            f,
            "{}T{:02}:{:02}:{:02}",
            d.calendar(),
            sod / SECS_PER_HOUR,
            (sod % SECS_PER_HOUR) / SECS_PER_MINUTE,
            sod % SECS_PER_MINUTE
        )
    }
}

/// A day within the study window; day 0 is 2015-03-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DayIndex(pub u32);

impl DayIndex {
    /// First instant of this day.
    #[inline]
    pub fn start(self) -> SimTime {
        SimTime(self.0 as u64 * SECS_PER_DAY)
    }

    /// One past the last instant of this day.
    #[inline]
    pub fn end(self) -> SimTime {
        SimTime((self.0 as u64 + 1) * SECS_PER_DAY)
    }

    /// Next day.
    #[inline]
    pub fn next(self) -> DayIndex {
        DayIndex(self.0 + 1)
    }

    /// Convert to a calendar date.
    pub fn calendar(self) -> CalendarDate {
        CalendarDate::from_day_index(self)
    }
}

impl std::fmt::Display for DayIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.calendar())
    }
}

/// A proleptic-Gregorian calendar date, used only for presentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CalendarDate {
    /// Four-digit year.
    pub year: u16,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31.
    pub day: u8,
}

const MONTH_ABBR: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u16, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month out of range"),
    }
}

impl CalendarDate {
    /// The study origin, 2015-03-01.
    pub const ORIGIN: CalendarDate = CalendarDate {
        year: 2015,
        month: 3,
        day: 1,
    };

    /// Convert a study [`DayIndex`] into a calendar date by walking forward
    /// from the origin. The window is ~731 days so the walk is cheap and
    /// avoids Julian-day arithmetic.
    pub fn from_day_index(idx: DayIndex) -> CalendarDate {
        let mut remaining = idx.0;
        let (mut year, mut month, mut day) =
            (Self::ORIGIN.year, Self::ORIGIN.month, Self::ORIGIN.day);
        while remaining > 0 {
            let dim = days_in_month(year, month);
            let left_in_month = (dim - day) as u32;
            if remaining > left_in_month {
                remaining -= left_in_month + 1;
                day = 1;
                month += 1;
                if month > 12 {
                    month = 1;
                    year += 1;
                }
            } else {
                day += remaining as u8;
                remaining = 0;
            }
        }
        CalendarDate { year, month, day }
    }

    /// Axis label in the style the paper's figures use, e.g. `Mar '15`.
    pub fn month_label(&self) -> String {
        format!("{} '{:02}", MONTH_ABBR[(self.month - 1) as usize], self.year % 100)
    }
}

impl std::fmt::Display for CalendarDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A half-open time interval `[start, end)` in simulation time.
///
/// Attack events carry their active interval as a `TimeRange`; the
/// joint-attack correlation in `dosscope-core` is defined in terms of
/// interval overlap.
///
/// ```
/// use dosscope_types::{SimTime, TimeRange};
///
/// let syn_flood = TimeRange::new(SimTime(100), SimTime(700));
/// let ntp_burst = TimeRange::with_duration(SimTime(500), 900);
/// assert!(syn_flood.overlaps(&ntp_burst)); // a joint attack
/// assert_eq!(
///     syn_flood.intersect(&ntp_burst),
///     Some(TimeRange::new(SimTime(500), SimTime(700)))
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end. `end >= start` always holds for ranges built through
    /// [`TimeRange::new`].
    pub end: SimTime,
}

impl TimeRange {
    /// Create a range; panics in debug builds if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> TimeRange {
        debug_assert!(end >= start, "TimeRange end before start");
        TimeRange {
            start,
            end: end.max(start),
        }
    }

    /// Create a range from a start time and a duration in seconds.
    pub fn with_duration(start: SimTime, secs: u64) -> TimeRange {
        TimeRange::new(start, start.add_secs(secs))
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration_secs(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the instant falls inside the range.
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two ranges overlap in time (share at least one instant).
    ///
    /// Overlap is what the paper calls a *joint attack* when the two ranges
    /// come from different measurement sources against the same target.
    #[inline]
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeRange { start, end })
        } else {
            None
        }
    }

    /// Iterator over the day indices this range touches.
    ///
    /// Multi-day events are *attributed to their start day* in the paper's
    /// daily statistics (footnote 15); use [`TimeRange::start`]`.day()` for
    /// that convention and this method when full coverage is needed.
    pub fn days(&self) -> impl Iterator<Item = DayIndex> {
        let first = self.start.day().0;
        // A range is half-open: an event ending exactly on midnight does not
        // touch the next day.
        let last = if self.end.0 == self.start.0 {
            first
        } else {
            SimTime(self.end.0 - 1).day().0
        };
        (first..=last).map(DayIndex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_and_second_of_day() {
        let t = SimTime(3 * SECS_PER_DAY + 5 * SECS_PER_HOUR + 42);
        assert_eq!(t.day(), DayIndex(3));
        assert_eq!(t.second_of_day(), 5 * SECS_PER_HOUR + 42);
    }

    #[test]
    fn calendar_origin() {
        assert_eq!(DayIndex(0).calendar().to_string(), "2015-03-01");
    }

    #[test]
    fn calendar_end_of_window() {
        // Day 730 must be 2017-02-28, the documented last day of the study.
        assert_eq!(DayIndex(STUDY_DAYS - 1).calendar().to_string(), "2017-02-28");
    }

    #[test]
    fn calendar_leap_day() {
        // 2016 is a leap year; 2016-02-29 exists. 2015-03-01 + 365 days
        // = 2016-02-29.
        assert_eq!(DayIndex(365).calendar().to_string(), "2016-02-29");
        assert_eq!(DayIndex(366).calendar().to_string(), "2016-03-01");
    }

    #[test]
    fn calendar_month_boundaries() {
        // 2015-03 has 31 days; day 31 is 2015-04-01.
        assert_eq!(DayIndex(31).calendar().to_string(), "2015-04-01");
        assert_eq!(DayIndex(30).calendar().to_string(), "2015-03-31");
    }

    #[test]
    fn month_label_style() {
        assert_eq!(DayIndex(0).calendar().month_label(), "Mar '15");
        assert_eq!(DayIndex(366).calendar().month_label(), "Mar '16");
    }

    #[test]
    fn range_overlap() {
        let a = TimeRange::new(SimTime(100), SimTime(200));
        let b = TimeRange::new(SimTime(150), SimTime(300));
        let c = TimeRange::new(SimTime(200), SimTime(250));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // Half-open: touching at a boundary is not overlap.
        assert!(!a.overlaps(&c));
        assert_eq!(
            a.intersect(&b),
            Some(TimeRange::new(SimTime(150), SimTime(200)))
        );
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn range_days_attribution() {
        let r = TimeRange::new(
            SimTime(SECS_PER_DAY - 10),
            SimTime(2 * SECS_PER_DAY + 10),
        );
        let days: Vec<_> = r.days().collect();
        assert_eq!(days, vec![DayIndex(0), DayIndex(1), DayIndex(2)]);
        // start-day attribution convention
        assert_eq!(r.start.day(), DayIndex(0));
    }

    #[test]
    fn range_days_exact_midnight_end() {
        let r = TimeRange::new(SimTime(10), SimTime(SECS_PER_DAY));
        let days: Vec<_> = r.days().collect();
        assert_eq!(days, vec![DayIndex(0)]);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_day_offset(DayIndex(1), 3 * SECS_PER_HOUR + 4 * 60 + 5);
        assert_eq!(t.to_string(), "2015-03-02T03:04:05");
    }
}
