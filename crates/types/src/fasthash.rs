//! A vendored FxHash-style hasher for the measurement hot path.
//!
//! The per-packet maps (flow tables, open honeypot events, enrichment
//! memos, DNS indexes) are keyed by small fixed-size keys — `Ipv4Addr`,
//! `u32`, short tuples — for which std's SipHash-1-3 pays a keyed,
//! DoS-resistant price the pipelines do not need: every key is derived
//! from simulated traffic, not attacker-controlled map input of a public
//! service. The multiply-xor scheme below (the rustc/Firefox "FxHash"
//! construction) hashes a word per round and is deterministic across runs,
//! which also makes perf numbers reproducible.
//!
//! Determinism caveat: iteration order of a [`FastMap`] is still
//! unspecified (it depends on capacity and insertion history), so any
//! result that leaves a map must be canonicalized by sorting — the same
//! discipline the std `RandomState` maps already forced on this codebase.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the Fx construction: a 64-bit constant derived from
/// the golden ratio (`2^64 / phi`, forced odd).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// FxHash: one rotate-xor-multiply round per 64-bit word of input.
///
/// Not cryptographic and not HashDoS-resistant — use only for maps whose
/// keys the process itself produces.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the tail length in so "\x01" and "\x01\x00" differ.
            self.add(u64::from_le_bytes(tail) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into any `HashMap`/`HashSet`.
pub type FastBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Construct with `FastMap::default()`.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FxHasher`]. Construct with `FastSet::default()`.
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};
    use std::net::Ipv4Addr;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FastBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let a: Ipv4Addr = "203.0.113.9".parse().unwrap();
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&u32::from(Ipv4Addr::new(10, 0, 0, 1)));
        let b = hash_of(&u32::from(Ipv4Addr::new(10, 0, 0, 2)));
        assert_ne!(a, b);
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
    }

    #[test]
    fn byte_streams_with_different_tails_differ() {
        assert_ne!(hash_of(&&b"\x01"[..]), hash_of(&&b"\x01\x00"[..]));
        assert_ne!(
            hash_of(&&b"0123456789"[..]),
            hash_of(&&b"0123456780"[..])
        );
    }

    #[test]
    fn map_and_set_behave_like_std() {
        let mut m: FastMap<Ipv4Addr, u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert(Ipv4Addr::from(i), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&Ipv4Addr::from(i)), Some(&i));
        }
        let mut s: FastSet<u32> = FastSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn tuple_keys_work() {
        let mut m: FastMap<(Ipv4Addr, u8), u64> = FastMap::default();
        let a: Ipv4Addr = "198.18.0.53".parse().unwrap();
        m.insert((a, 1), 10);
        m.insert((a, 2), 20);
        assert_eq!(m.get(&(a, 1)), Some(&10));
        assert_eq!(m.get(&(a, 2)), Some(&20));
    }
}
