//! # dosscope-types
//!
//! Shared domain types for the `dosscope` workspace: simulation time and
//! calendar handling, IPv4 prefix arithmetic, the unified attack-event model
//! produced by the measurement pipelines, and a small statistics toolkit
//! (empirical CDFs, percentiles, log-binned histograms, daily time series)
//! used by the analysis and reporting layers.
//!
//! The crate is std-only: its single dependency is the workspace's own
//! `dosscope-obs` telemetry layer (itself std-only), so every other
//! crate in the workspace can build on it without pulling in anything
//! external.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod event;
pub mod fasthash;
pub mod index;
pub mod intern;
pub mod kway;
pub mod net;
pub mod pool;
pub mod service;
pub mod shard;
pub mod stats;
pub mod time;

pub use bytes::SharedBytes;
pub use event::{
    AttackEvent, AttackVector, EventSource, PortSignature, ReflectionProtocol, TransportProto,
};
pub use fasthash::{FastBuildHasher, FastMap, FastSet, FxHasher};
pub use index::{BitSet, RunIndex};
pub use intern::Interner;
pub use kway::{merge_sorted, LoserTree};
pub use net::{Asn, CountryCode, Ipv4Cidr, Prefix16, Prefix24};
pub use pool::{PoolError, PoolMetricsSnapshot, Routed, ShardPool, WorkerMetricsSnapshot};
pub use shard::{shard_of, shard_of_addr};
pub use stats::{Ecdf, FrozenEcdf, LogHistogram, RunningStats, TimeSeries};
pub use time::{
    CalendarDate, DayIndex, SimTime, TimeRange, SECS_PER_DAY, SECS_PER_HOUR, SECS_PER_MINUTE,
};
