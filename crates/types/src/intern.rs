//! Compact `u32` interning for repeated column values.
//!
//! The columnar event store holds millions of rows but only tens of
//! thousands of *distinct* victims, ASNs and countries. Interning maps
//! each distinct value to a dense `u32` id: columns store 4-byte ids
//! instead of wide keys, set membership becomes a bitset over ids, and
//! equality joins (the fusion correlation keys on the victim) reduce to
//! integer comparisons.
//!
//! Ids are handed out in first-seen order, which makes them
//! deterministic for any fixed insertion sequence: two stores built from
//! the same time-sorted event stream agree on every id. Re-interning an
//! already-known value returns the original id — the table never grows
//! on duplicates.

use crate::fasthash::FastMap;
use std::hash::Hash;

/// A bidirectional value ⇄ dense-`u32` map with first-seen id order.
///
/// `T` is required to be `Copy` because the interner is used for small
/// plain keys (`Ipv4Addr`, [`crate::Asn`], [`crate::CountryCode`]); the
/// value is stored twice (hash map and reverse table) and handed back by
/// value from [`Interner::resolve`].
#[derive(Debug, Clone)]
pub struct Interner<T> {
    ids: FastMap<T, u32>,
    values: Vec<T>,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            ids: FastMap::default(),
            values: Vec::new(),
        }
    }
}

impl<T: Copy + Eq + Hash> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id for `value`, allocating the next dense id on first sight.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = self.values.len() as u32;
        self.ids.insert(value, id);
        self.values.push(value);
        id
    }

    /// The id already assigned to `value`, if any — never allocates.
    pub fn get(&self, value: T) -> Option<u32> {
        self.ids.get(&value).copied()
    }

    /// The value behind `id`.
    ///
    /// # Panics
    /// If `id` was never handed out by this interner.
    pub fn resolve(&self, id: u32) -> T {
        self.values[id as usize]
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in id order (`values()[id] == resolve(id)`).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Approximate heap footprint in bytes (reverse table + hash map).
    pub fn memory_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<T>()
            + self.ids.capacity() * (std::mem::size_of::<T>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn intern_resolve_roundtrip() {
        let mut it = Interner::new();
        let addrs: Vec<Ipv4Addr> = (0..100u32)
            .map(|i| Ipv4Addr::from(0x0A00_0000 | (i * 7919)))
            .collect();
        let ids: Vec<u32> = addrs.iter().map(|&a| it.intern(a)).collect();
        assert_eq!(it.len(), addrs.len());
        for (addr, id) in addrs.iter().zip(&ids) {
            assert_eq!(it.resolve(*id), *addr, "resolve inverts intern");
            assert_eq!(it.get(*addr), Some(*id), "get finds the same id");
        }
        assert_eq!(it.values(), &addrs[..], "values are in first-seen order");
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut it = Interner::new();
        assert_eq!(it.intern("b"), 0);
        assert_eq!(it.intern("a"), 1);
        assert_eq!(it.intern("c"), 2);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn id_stable_under_reinsertion() {
        let mut it = Interner::new();
        let a = it.intern(0x7F00_0001u32);
        let b = it.intern(0x7F00_0002u32);
        for _ in 0..10 {
            assert_eq!(it.intern(0x7F00_0001u32), a);
            assert_eq!(it.intern(0x7F00_0002u32), b);
        }
        assert_eq!(it.len(), 2, "duplicates never grow the table");
        assert_eq!(it.get(0x7F00_0003u32), None, "get never allocates");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn empty_interner() {
        let it: Interner<u32> = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
        assert_eq!(it.get(5), None);
    }
}
