//! Property-based tests for the shared types: interval algebra, calendar
//! arithmetic, ECDF/quantile laws, histogram totals and time-series
//! invariants.

use dosscope_types::{
    CalendarDate, DayIndex, Ecdf, LogHistogram, RunningStats, SimTime, TimeRange, TimeSeries,
};
use proptest::prelude::*;

fn arb_range() -> impl Strategy<Value = TimeRange> {
    (0u64..10_000_000, 0u64..500_000)
        .prop_map(|(s, d)| TimeRange::new(SimTime(s), SimTime(s + d)))
}

proptest! {
    /// Overlap is symmetric, irreflexive on disjoint ranges, and agrees
    /// with the intersection's non-emptiness.
    #[test]
    fn overlap_laws(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlaps(&b), a.intersect(&b).is_some());
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.duration_secs() <= a.duration_secs());
            prop_assert!(i.duration_secs() <= b.duration_secs());
            prop_assert!(a.contains(i.start) || i.start == a.start);
            prop_assert!(b.contains(i.start) || i.start == b.start);
        }
    }

    /// A non-empty range overlaps itself; contains() agrees with bounds.
    #[test]
    fn overlap_reflexive(a in arb_range(), probe in 0u64..11_000_000) {
        if a.duration_secs() > 0 {
            prop_assert!(a.overlaps(&a));
        }
        let t = SimTime(probe);
        prop_assert_eq!(a.contains(t), t >= a.start && t < a.end);
    }

    /// The days() iterator covers exactly the days the range touches.
    #[test]
    fn days_iterator_is_exact(a in arb_range()) {
        let days: Vec<DayIndex> = a.days().collect();
        prop_assert!(!days.is_empty());
        // Consecutive and sorted.
        prop_assert!(days.windows(2).all(|w| w[1].0 == w[0].0 + 1));
        // First/last agree with the boundary arithmetic.
        prop_assert_eq!(days[0], a.start.day());
        let last_instant = SimTime(a.end.secs().max(a.start.secs() + 1) - 1);
        prop_assert_eq!(*days.last().unwrap(), last_instant.day());
    }

    /// Calendar conversion is monotone and steps one day at a time.
    #[test]
    fn calendar_monotone(day in 0u32..1500) {
        let a = CalendarDate::from_day_index(DayIndex(day));
        let b = CalendarDate::from_day_index(DayIndex(day + 1));
        prop_assert!(b > a, "{a} !< {b}");
        // A date differs from its successor in exactly one rollover-valid way.
        if a.month == b.month {
            prop_assert_eq!(b.day, a.day + 1);
        } else {
            prop_assert_eq!(b.day, 1);
        }
    }

    /// ECDF: cdf is monotone, quantile is a right-inverse within sample
    /// resolution, and cdf(max) == 1.
    #[test]
    fn ecdf_laws(mut xs in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let f: dosscope_types::FrozenEcdf = xs.iter().copied().collect::<Ecdf>().freeze();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(f.cdf(*xs.last().unwrap()), 1.0);
        prop_assert_eq!(f.cdf(xs[0] - 1.0), 0.0);
        // Monotone over a probe grid.
        let mut prev = -1.0;
        for i in 0..20 {
            let x = i as f64 * 5e4;
            let c = f.cdf(x);
            prop_assert!(c >= prev);
            prev = c;
        }
        // quantile(q) is an element, and cdf(quantile(q)) >= q.
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = f.quantile(q).unwrap();
            prop_assert!(xs.contains(&v));
            prop_assert!(f.cdf(v) + 1e-12 >= q);
        }
    }

    /// RunningStats matches the naive computation.
    #[test]
    fn running_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance().unwrap() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert_eq!(s.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// LogHistogram never loses a positive value and bins by decade.
    #[test]
    fn log_histogram_total(values in proptest::collection::vec(0u64..20_000_000, 0..200)) {
        let mut h = LogHistogram::new(7);
        for &v in &values {
            h.push(v);
        }
        let positive = values.iter().filter(|&&v| v > 0).count() as u64;
        prop_assert_eq!(h.total(), positive);
    }

    /// Smoothing preserves the series mean (up to edge effects bounded by
    /// the window) and never exceeds the original extremes.
    #[test]
    fn smoothing_bounded(values in proptest::collection::vec(0.0f64..1e4, 3..60)) {
        let mut ts = TimeSeries::zeros(values.len() as u32);
        for (i, &v) in values.iter().enumerate() {
            ts.set(DayIndex(i as u32), v);
        }
        let sm = ts.smoothed(5);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..values.len() {
            let v = sm.get(DayIndex(i as u32));
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
