//! Property-based tests for the honeypot fleet: request conservation, the
//! scan filter, and the 24-hour event-duration invariant.

use dosscope_amppot::{AmpPotFleet, HoneypotId, RequestBatch};
use dosscope_types::{ReflectionProtocol, SimTime};
use dosscope_wire::builder;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// (victim octet, protocol index, start, duration secs, rate, pots)
fn arb_attack() -> impl Strategy<Value = (u8, usize, u64, u64, u32, u8)> {
    (1u8..30, 0usize..8, 0u64..100_000, 10u64..3_000, 1u32..6, 1u8..8)
}

fn render(attacks: &[(u8, usize, u64, u64, u32, u8)], fleet: &AmpPotFleet) -> Vec<RequestBatch> {
    let mut batches = Vec::new();
    for &(v, pi, start, dur, rate, pots) in attacks {
        let victim = Ipv4Addr::new(198, 51, 100, v);
        let protocol = ReflectionProtocol::ALL[pi];
        for s in (0..dur).step_by(10) {
            for p in 0..pots {
                let addr = fleet.honeypots()[p as usize].addr;
                let pkt = builder::reflection_request(victim, 40_000, addr, protocol);
                batches.push(RequestBatch::repeated(
                    HoneypotId(p),
                    SimTime(start + s),
                    rate,
                    pkt,
                ));
            }
        }
    }
    batches.sort_by_key(|b| (b.ts, b.honeypot));
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and filter invariants: every request is either part of
    /// an event or was scan-filtered; events always exceed 100 requests;
    /// no event lasts more than 24 h.
    #[test]
    fn conservation_and_thresholds(attacks in proptest::collection::vec(arb_attack(), 1..5)) {
        let mut fleet = AmpPotFleet::standard();
        let batches = render(&attacks, &fleet);
        let total: u64 = batches.iter().map(|b| b.count as u64).sum();
        for b in &batches {
            fleet.ingest(b);
        }
        let (events, stats) = fleet.finish();
        prop_assert_eq!(stats.requests, total);
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(stats.unrecognised, 0);
        let event_requests: u64 = events.iter().map(|e| e.packets).sum();
        prop_assert!(event_requests <= total);
        for e in &events {
            prop_assert!(e.packets > 100, "scan filter violated: {}", e.packets);
            prop_assert!(e.duration_secs() <= 86_400, "24h cap violated");
            prop_assert!(e.intensity_pps > 0.0);
            prop_assert!(e.reflection_protocol().is_some());
        }
    }

    /// Per (victim, protocol) grouping: the fleet never reports more
    /// events for a pair than the number of generated attack episodes for
    /// it (merging may reduce, never inflate beyond splits from the cap).
    #[test]
    fn no_spurious_events(attacks in proptest::collection::vec(arb_attack(), 1..5)) {
        let mut fleet = AmpPotFleet::standard();
        let batches = render(&attacks, &fleet);
        for b in &batches {
            fleet.ingest(b);
        }
        let (events, _) = fleet.finish();
        for e in &events {
            // Every event's (victim, protocol) pair must come from some
            // generated attack.
            let matched = attacks.iter().any(|&(v, pi, ..)| {
                e.target == Ipv4Addr::new(198, 51, 100, v)
                    && e.reflection_protocol() == Some(ReflectionProtocol::ALL[pi])
            });
            prop_assert!(matched, "event for unknown (victim, protocol)");
        }
    }
}
