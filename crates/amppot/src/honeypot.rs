//! A single honeypot instance: identity, placement and the per-source
//! reply rate limiter.

use dosscope_types::FastMap;
use std::net::Ipv4Addr;

/// Index of a honeypot within the fleet (0..24 for the standard fleet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HoneypotId(pub u8);

/// Coarse geographic placement, matching the paper's fleet layout
/// (11 America, 8 Europe, 4 Asia, 1 Australia).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The Americas.
    America,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Australia/Oceania.
    Australia,
}

/// How a honeypot is hosted — the paper distributes instances across cloud
/// providers and volunteer-operated machines to avoid skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hosting {
    /// Rented at a cloud provider.
    Cloud,
    /// Operated by a volunteer.
    Volunteer,
}

/// One honeypot instance.
#[derive(Debug, Clone)]
pub struct Honeypot {
    /// Fleet index.
    pub id: HoneypotId,
    /// Public address attackers discovered it under.
    pub addr: Ipv4Addr,
    /// Geographic placement.
    pub region: Region,
    /// Hosting flavour.
    pub hosting: Hosting,
    /// Per-source reply rate limiter state.
    limiter: RateLimiter,
}

impl Honeypot {
    /// Create an instance.
    pub fn new(id: HoneypotId, addr: Ipv4Addr, region: Region, hosting: Hosting) -> Honeypot {
        Honeypot {
            id,
            addr,
            region,
            hosting,
            limiter: RateLimiter::new(3),
        }
    }

    /// Record one request from `source` during `minute`; returns whether
    /// the honeypot would reply (AmpPot replies only to sources sending
    /// fewer than three packets per minute, so scanners get answers but
    /// victims are never flooded).
    pub fn would_reply(&mut self, source: Ipv4Addr, minute: u64) -> bool {
        self.limiter.allow(source, minute)
    }
}

/// Sliding per-minute counter per source address. State for old minutes is
/// discarded lazily on access, keeping the map bounded by the number of
/// sources active in the current minute.
#[derive(Debug, Clone)]
struct RateLimiter {
    max_per_minute: u32,
    current_minute: u64,
    counts: FastMap<u32, u32>,
}

impl RateLimiter {
    fn new(max_per_minute: u32) -> RateLimiter {
        RateLimiter {
            max_per_minute,
            current_minute: 0,
            counts: FastMap::default(),
        }
    }

    fn allow(&mut self, source: Ipv4Addr, minute: u64) -> bool {
        if minute != self.current_minute {
            self.counts.clear();
            self.current_minute = minute;
        }
        let c = self.counts.entry(u32::from(source)).or_insert(0);
        *c += 1;
        *c < self.max_per_minute
    }
}

/// Build the standard 24-instance fleet of the paper: 11 honeypots in
/// America, 8 in Europe, 4 in Asia and 1 in Australia, alternating cloud
/// and volunteer hosting, each on its own /24.
pub fn standard_fleet() -> Vec<Honeypot> {
    let mut pots = Vec::with_capacity(24);
    let regions: Vec<Region> = std::iter::repeat_n(Region::America, 11)
        .chain(std::iter::repeat_n(Region::Europe, 8))
        .chain(std::iter::repeat_n(Region::Asia, 4))
        .chain(std::iter::once(Region::Australia))
        .collect();
    for (i, region) in regions.into_iter().enumerate() {
        // Spread the pots across distinct documentation-ish /24s well away
        // from the registry's allocations (198.18.0.0/15 is RFC 2544 bench
        // space, unused by the synthetic plan).
        let addr = Ipv4Addr::new(198, 18, i as u8, 53);
        let hosting = if i % 3 == 0 {
            Hosting::Volunteer
        } else {
            Hosting::Cloud
        };
        pots.push(Honeypot::new(HoneypotId(i as u8), addr, region, hosting));
    }
    pots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fleet_layout() {
        let fleet = standard_fleet();
        assert_eq!(fleet.len(), 24);
        let count = |r: Region| fleet.iter().filter(|p| p.region == r).count();
        assert_eq!(count(Region::America), 11);
        assert_eq!(count(Region::Europe), 8);
        assert_eq!(count(Region::Asia), 4);
        assert_eq!(count(Region::Australia), 1);
        // Distinct addresses.
        let mut addrs: Vec<_> = fleet.iter().map(|p| p.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 24);
    }

    #[test]
    fn rate_limiter_allows_scanners() {
        let mut pot = standard_fleet().remove(0);
        let scanner: Ipv4Addr = "192.0.2.1".parse().unwrap();
        // First two requests in a minute get replies, the third does not.
        assert!(pot.would_reply(scanner, 0));
        assert!(pot.would_reply(scanner, 0));
        assert!(!pot.would_reply(scanner, 0));
        assert!(!pot.would_reply(scanner, 0));
        // A new minute resets the budget.
        assert!(pot.would_reply(scanner, 1));
    }

    #[test]
    fn rate_limiter_is_per_source() {
        let mut pot = standard_fleet().remove(0);
        let a: Ipv4Addr = "192.0.2.1".parse().unwrap();
        let b: Ipv4Addr = "192.0.2.2".parse().unwrap();
        assert!(pot.would_reply(a, 0));
        assert!(pot.would_reply(a, 0));
        assert!(!pot.would_reply(a, 0));
        assert!(pot.would_reply(b, 0), "other sources unaffected");
    }
}
