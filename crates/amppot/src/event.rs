//! The capture record the honeypots consume and the per-honeypot event
//! state.

use crate::honeypot::HoneypotId;
use dosscope_types::{ReflectionProtocol, SharedBytes, SimTime};
use std::net::Ipv4Addr;

/// A batch of `count` identical spoofed requests received by one honeypot
/// at `ts` (same compression scheme as the telescope's
/// `PacketBatch`; see DESIGN.md). The representative bytes are
/// [`SharedBytes`], so cloning a batch never copies the packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBatch {
    /// Receiving honeypot.
    pub honeypot: HoneypotId,
    /// Arrival timestamp (second granularity).
    pub ts: SimTime,
    /// Number of identical requests this batch stands for (≥ 1).
    pub count: u32,
    /// One representative request packet, starting at the IPv4 header.
    pub bytes: SharedBytes,
}

impl RequestBatch {
    /// A batch of `count` identical requests.
    pub fn repeated(
        honeypot: HoneypotId,
        ts: SimTime,
        count: u32,
        bytes: impl Into<SharedBytes>,
    ) -> RequestBatch {
        RequestBatch {
            honeypot,
            ts,
            count: count.max(1),
            bytes: bytes.into(),
        }
    }

    /// Total wire bytes this batch stands for.
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.bytes.len() as u64
    }
}

/// An event under construction at a single honeypot: requests from one
/// victim over one protocol.
#[derive(Debug, Clone)]
pub(crate) struct PotEvent {
    pub victim: Ipv4Addr,
    pub protocol: ReflectionProtocol,
    pub honeypot: HoneypotId,
    pub first: SimTime,
    pub last: SimTime,
    pub requests: u64,
    pub bytes: u64,
    /// Last-activity wheel bucket this event is registered under
    /// (`u64::MAX` = not registered yet); owned by the fleet's idle sweep.
    pub bucket: u64,
}

impl PotEvent {
    /// The honeypot that recorded this event (used by diagnostics and the
    /// per-region tests).
    #[allow(dead_code)]
    pub(crate) fn honeypot(&self) -> HoneypotId {
        self.honeypot
    }

    pub(crate) fn new(
        victim: Ipv4Addr,
        protocol: ReflectionProtocol,
        honeypot: HoneypotId,
        ts: SimTime,
    ) -> PotEvent {
        PotEvent {
            victim,
            protocol,
            honeypot,
            first: ts,
            last: ts,
            requests: 0,
            bytes: 0,
            bucket: u64::MAX,
        }
    }

    #[allow(dead_code)]
    pub(crate) fn duration_secs(&self) -> u64 {
        self.last.secs() - self.first.secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_totals() {
        let b = RequestBatch::repeated(HoneypotId(3), SimTime(10), 50, vec![0u8; 60]);
        assert_eq!(b.total_bytes(), 3000);
        let one = RequestBatch::repeated(HoneypotId(3), SimTime(10), 0, vec![0u8; 60]);
        assert_eq!(one.count, 1, "count is clamped to at least 1");
    }
}
