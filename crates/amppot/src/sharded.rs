//! Sharded parallel variant of the honeypot-fleet event inference, on the
//! persistent worker pool.
//!
//! Request batches are routed by the *victim's* address (the spoofed
//! source of an abuse request IS the victim) and each shard's
//! [`AmpPotFleet`] lives on a long-lived [`ShardPool`] worker for the
//! whole run — no thread spawn per chunk, no per-chunk re-partitioning.
//! A chunk is shared with every worker as one [`Routed`] view. Every
//! piece of fleet state is victim-local — open events are keyed by
//! (victim, protocol, honeypot), the reply rate limiter counts per
//! (victim, minute), and the fleet merge groups per (victim, protocol) —
//! so a shard sees every request of every event it owns, in order, and
//! the single merge at [`ShardedFleet::finish`] is byte-identical to a
//! serial run. The final ordering is the serial fleet's own canonical
//! `(start, target, protocol)` sort, and every [`FleetStats`] counter is
//! a per-batch or per-event sum.

use crate::event::RequestBatch;
use crate::fleet::{AmpPotFleet, FleetStats};
use dosscope_types::{shard_of_addr, AttackEvent, Routed, ShardPool};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Bounded per-worker queue depth (see `dosscope_types::pool`).
const QUEUE_DEPTH: usize = 4;

/// The shard owning a raw request, by victim (= spoofed source) address.
/// Like `dosscope_telescope::victim_shard`, this reads the source address
/// straight from the fixed header offset — routing needs a deterministic,
/// victim-local assignment, not a validated packet; the shard's fleet
/// re-validates and counts malformed batches exactly as the serial fleet
/// would. Fleet state is keyed by the complete victim address and the
/// merge only sums counters, so the full-address key
/// ([`shard_of_addr`]) is safe here and spreads a hot hosting /16 across
/// all shards. Batches too short to carry an IPv4 source go to shard 0.
pub fn request_shard(bytes: &[u8], shards: usize) -> usize {
    match bytes.get(12..16) {
        Some(src) if bytes[0] >> 4 == 4 => {
            shard_of_addr(Ipv4Addr::new(src[0], src[1], src[2], src[3]), shards)
        }
        _ => 0,
    }
}

/// Route a time-ordered chunk of the request stream by victim shard,
/// without copying any batch. Relative order within each shard is
/// preserved.
pub fn route_requests(batches: Arc<Vec<RequestBatch>>, shards: usize) -> Routed<RequestBatch> {
    let shards = shards.max(1);
    Routed::build(batches, shards, |b| request_shard(&b.bytes, shards))
}

/// One shard: its own fleet replica plus a peak open-event sample. Each
/// shard holding its own copy of the honeypot instances is faithful
/// because the only per-honeypot state, the reply rate limiter, counts
/// per (victim, minute) and a victim's requests all live in one shard.
struct FleetLane {
    fleet: AmpPotFleet,
    peak_open_events: usize,
}

/// Per-shard result: events, statistics, peak open events.
type LaneOutput = (Vec<AttackEvent>, FleetStats, u64);

/// The parallel fleet engine: N independent fleets over victim shards,
/// each living on a persistent pool worker.
pub struct ShardedFleet {
    pool: ShardPool<Routed<RequestBatch>, FleetLane, LaneOutput>,
    shards: usize,
}

impl ShardedFleet {
    /// `shards` standard 24-instance fleets (0 is treated as 1), one pool
    /// worker per shard.
    pub fn standard(shards: usize) -> ShardedFleet {
        let shards = shards.max(1);
        let pool = ShardPool::new(
            "fleet",
            shards,
            shards,
            QUEUE_DEPTH,
            |_| FleetLane {
                fleet: AmpPotFleet::standard(),
                peak_open_events: 0,
            },
            |lane: &mut FleetLane, shard, _shards, routed: &Routed<RequestBatch>| {
                for b in routed.owned(shard) {
                    lane.fleet.ingest(b);
                }
                lane.peak_open_events = lane.peak_open_events.max(lane.fleet.open_events());
            },
            |lane: FleetLane| {
                let (events, stats) = lane.fleet.finish();
                (events, stats, lane.peak_open_events as u64)
            },
        );
        ShardedFleet { pool, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingest one pre-routed chunk of the stream (as produced by
    /// [`route_requests`] for this engine's shard count). Chunks must
    /// arrive in time order, like the serial stream.
    pub fn ingest_routed(&mut self, routed: Routed<RequestBatch>) {
        assert_eq!(
            routed.shards(),
            self.shards,
            "chunk routed for a different shard count"
        );
        self.pool
            .dispatch(routed)
            .expect("ingest on a finished engine");
    }

    /// Route and ingest one time-ordered chunk of the stream.
    pub fn ingest(&mut self, batches: Vec<RequestBatch>) {
        self.ingest_routed(route_requests(Arc::new(batches), self.shards));
    }

    /// End of trace: drain and finish every shard on its own worker, then
    /// merge once — events into the canonical `(start, target, protocol)`
    /// order, statistics summed, and the peak open-event working set
    /// summed over shards (the shards run concurrently, so the sum bounds
    /// the process-wide peak).
    pub fn finish(mut self) -> (Vec<AttackEvent>, FleetStats, u64) {
        let results = self
            .pool
            .shutdown()
            .expect("finish on a finished engine");
        let mut events = Vec::new();
        let mut stats = FleetStats::default();
        let mut peak = 0u64;
        for (ev, st, pk) in results {
            events.extend(ev);
            stats.malformed += st.malformed;
            stats.unrecognised += st.unrecognised;
            stats.requests += st.requests;
            stats.replies_sent += st.replies_sent;
            stats.pot_events += st.pot_events;
            stats.scan_filtered += st.scan_filtered;
            stats.events += st.events;
            peak += pk;
        }
        events.sort_by_key(|e| (e.when.start, e.target, e.reflection_protocol()));
        // Peak working set: summed per-shard maxima of open pot events.
        dosscope_obs::gauge!("fleet.peak_open_events").raise(peak);
        (events, stats, peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::honeypot::HoneypotId;
    use dosscope_types::{ReflectionProtocol, SimTime};
    use dosscope_wire::builder;
    use std::net::Ipv4Addr;

    /// Interleaved reflection floods from victims across many /16s, a
    /// scanner, and a malformed batch.
    fn mixed_stream() -> Vec<RequestBatch> {
        let pots = crate::honeypot::standard_fleet();
        let victims: Vec<Ipv4Addr> = (0..10u32)
            .map(|i| Ipv4Addr::from(0xC0A8_0000u32.wrapping_add(i << 16) | 0x21))
            .collect();
        let protos = [
            ReflectionProtocol::Ntp,
            ReflectionProtocol::Dns,
            ReflectionProtocol::CharGen,
        ];
        let mut batches = Vec::new();
        for s in 0..900u64 {
            for (vi, v) in victims.iter().enumerate() {
                if (s + vi as u64).is_multiple_of(4) {
                    let p = (vi + s as usize) % 3;
                    let pot = (vi + s as usize) % pots.len();
                    let pkt = builder::reflection_request(
                        *v,
                        40_000 + vi as u16,
                        pots[pot].addr,
                        protos[p],
                    );
                    batches.push(RequestBatch::repeated(
                        HoneypotId(pot as u8),
                        SimTime(s),
                        2,
                        pkt,
                    ));
                }
            }
        }
        // A scanner probing each pot twice: stays under the scan filter.
        let scanner: Ipv4Addr = "198.51.100.200".parse().unwrap();
        for (i, pot) in pots.iter().enumerate() {
            let pkt = builder::reflection_request(scanner, 3333, pot.addr, ReflectionProtocol::Ssdp);
            batches.push(RequestBatch::repeated(
                HoneypotId(i as u8),
                SimTime(i as u64),
                2,
                pkt,
            ));
        }
        batches.push(RequestBatch::repeated(HoneypotId(0), SimTime(5), 1, vec![0xC2; 9]));
        batches.sort_by_key(|b| b.ts);
        batches
    }

    #[test]
    fn sharded_matches_serial() {
        let mut serial = AmpPotFleet::standard();
        for b in &mixed_stream() {
            serial.ingest(b);
        }
        let (serial_events, serial_stats) = serial.finish();
        assert!(!serial_events.is_empty());
        for shards in [1, 2, 5, 8] {
            let mut engine = ShardedFleet::standard(shards);
            engine.ingest(mixed_stream());
            let (events, stats, peak) = engine.finish();
            assert_eq!(events, serial_events, "{shards} shards: events differ");
            assert_eq!(stats.malformed, serial_stats.malformed);
            assert_eq!(stats.unrecognised, serial_stats.unrecognised);
            assert_eq!(stats.requests, serial_stats.requests);
            assert_eq!(stats.replies_sent, serial_stats.replies_sent);
            assert_eq!(stats.scan_filtered, serial_stats.scan_filtered);
            assert_eq!(stats.events, serial_stats.events);
            assert!(peak > 0, "{shards} shards: peak working set sampled");
        }
    }

    #[test]
    fn chunked_ingestion_matches_single_shot() {
        let stream = mixed_stream();
        let mut whole = ShardedFleet::standard(4);
        whole.ingest(stream.clone());
        let (a, _, _) = whole.finish();

        let mut chunked = ShardedFleet::standard(4);
        for chunk in stream.chunks(131) {
            chunked.ingest(chunk.to_vec());
        }
        let (b, _, _) = chunked.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_requests_route_to_shard_zero() {
        assert_eq!(request_shard(&[0x01; 4], 6), 0);
        let routed = route_requests(
            Arc::new(vec![RequestBatch::repeated(HoneypotId(0), SimTime(0), 1, vec![0x01; 4])]),
            6,
        );
        assert_eq!(routed.owned_len(0), 1);
        assert_eq!((0..6).map(|s| routed.owned_len(s)).sum::<usize>(), 1);
    }
}
