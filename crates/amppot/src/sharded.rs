//! Sharded parallel variant of the honeypot-fleet event inference.
//!
//! Request batches are partitioned by the *victim's* /16 shard (the
//! spoofed source of an abuse request IS the victim) and each shard runs
//! an independent [`AmpPotFleet`] on its own thread. Every piece of fleet
//! state is victim-local — open events are keyed by (victim, protocol,
//! honeypot), the reply rate limiter counts per (victim, minute), and the
//! fleet merge groups per (victim, protocol) — so a shard sees every
//! request of every event it owns, in order, and the merged result is
//! byte-identical to a serial run. The final ordering is the serial
//! fleet's own canonical `(start, target, protocol)` sort, and every
//! [`FleetStats`] counter is a per-batch or per-event sum.

use crate::event::RequestBatch;
use crate::fleet::{AmpPotFleet, FleetStats};
use dosscope_types::{shard_of, AttackEvent};
use dosscope_wire::Ipv4Packet;

/// The shard owning a raw request, by victim (= spoofed source) address.
/// Unparseable batches go to shard 0, whose fleet counts them as
/// malformed exactly as the serial fleet would.
pub fn request_shard(bytes: &[u8], shards: usize) -> usize {
    match Ipv4Packet::new_checked(bytes) {
        Ok(ip) => shard_of(ip.src(), shards),
        Err(_) => 0,
    }
}

/// Split a time-ordered request stream into per-shard streams, preserving
/// relative order within each shard.
pub fn partition_requests(batches: Vec<RequestBatch>, shards: usize) -> Vec<Vec<RequestBatch>> {
    let shards = shards.max(1);
    let mut parts: Vec<Vec<RequestBatch>> = (0..shards).map(|_| Vec::new()).collect();
    for b in batches {
        let s = request_shard(&b.bytes, shards);
        parts[s].push(b);
    }
    parts
}

/// The parallel fleet engine: N independent fleets over victim shards.
///
/// Each shard holds its own copy of the honeypot instances; that is
/// faithful because the only per-honeypot state, the reply rate limiter,
/// counts per (victim, minute) and a victim's requests all live in one
/// shard.
pub struct ShardedFleet {
    shards: Vec<AmpPotFleet>,
}

impl ShardedFleet {
    /// `shards` standard 24-instance fleets (0 is treated as 1).
    pub fn standard(shards: usize) -> ShardedFleet {
        ShardedFleet {
            shards: (0..shards.max(1)).map(|_| AmpPotFleet::standard()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Ingest one pre-partitioned chunk of the stream (one entry per
    /// shard, as produced by [`partition_requests`]), one worker thread
    /// per shard. Chunks must arrive in time order, like the serial
    /// stream.
    pub fn ingest_partitioned(&mut self, parts: &[Vec<RequestBatch>]) {
        assert_eq!(
            parts.len(),
            self.shards.len(),
            "partition count must match shard count"
        );
        if self.shards.len() == 1 {
            for b in &parts[0] {
                self.shards[0].ingest(b);
            }
            return;
        }
        std::thread::scope(|s| {
            for (fleet, batches) in self.shards.iter_mut().zip(parts) {
                s.spawn(move || {
                    for b in batches {
                        fleet.ingest(b);
                    }
                });
            }
        });
    }

    /// Partition and ingest one time-ordered chunk of the stream.
    pub fn ingest(&mut self, batches: Vec<RequestBatch>) {
        let parts = partition_requests(batches, self.shards.len());
        self.ingest_partitioned(&parts);
    }

    /// End of trace: finish every shard (in parallel), merge events into
    /// the canonical `(start, target, protocol)` order and sum the
    /// statistics.
    pub fn finish(self) -> (Vec<AttackEvent>, FleetStats) {
        let parallel = self.shards.len() > 1;
        let results: Vec<(Vec<AttackEvent>, FleetStats)> = if parallel {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .into_iter()
                    .map(|fleet| s.spawn(move || fleet.finish()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet shard worker panicked"))
                    .collect()
            })
        } else {
            self.shards.into_iter().map(|f| f.finish()).collect()
        };

        let mut events = Vec::new();
        let mut stats = FleetStats::default();
        for (ev, st) in results {
            events.extend(ev);
            stats.malformed += st.malformed;
            stats.unrecognised += st.unrecognised;
            stats.requests += st.requests;
            stats.replies_sent += st.replies_sent;
            stats.pot_events += st.pot_events;
            stats.scan_filtered += st.scan_filtered;
            stats.events += st.events;
        }
        events.sort_by_key(|e| (e.when.start, e.target, e.reflection_protocol()));
        (events, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::honeypot::HoneypotId;
    use dosscope_types::{ReflectionProtocol, SimTime};
    use dosscope_wire::builder;
    use std::net::Ipv4Addr;

    /// Interleaved reflection floods from victims across many /16s, a
    /// scanner, and a malformed batch.
    fn mixed_stream() -> Vec<RequestBatch> {
        let pots = crate::honeypot::standard_fleet();
        let victims: Vec<Ipv4Addr> = (0..10u32)
            .map(|i| Ipv4Addr::from(0xC0A8_0000u32.wrapping_add(i << 16) | 0x21))
            .collect();
        let protos = [
            ReflectionProtocol::Ntp,
            ReflectionProtocol::Dns,
            ReflectionProtocol::CharGen,
        ];
        let mut batches = Vec::new();
        for s in 0..900u64 {
            for (vi, v) in victims.iter().enumerate() {
                if (s + vi as u64).is_multiple_of(4) {
                    let p = (vi + s as usize) % 3;
                    let pot = (vi + s as usize) % pots.len();
                    let pkt = builder::reflection_request(
                        *v,
                        40_000 + vi as u16,
                        pots[pot].addr,
                        protos[p],
                    );
                    batches.push(RequestBatch::repeated(
                        HoneypotId(pot as u8),
                        SimTime(s),
                        2,
                        pkt,
                    ));
                }
            }
        }
        // A scanner probing each pot twice: stays under the scan filter.
        let scanner: Ipv4Addr = "198.51.100.200".parse().unwrap();
        for (i, pot) in pots.iter().enumerate() {
            let pkt = builder::reflection_request(scanner, 3333, pot.addr, ReflectionProtocol::Ssdp);
            batches.push(RequestBatch::repeated(
                HoneypotId(i as u8),
                SimTime(i as u64),
                2,
                pkt,
            ));
        }
        batches.push(RequestBatch::repeated(HoneypotId(0), SimTime(5), 1, vec![0xC2; 9]));
        batches.sort_by_key(|b| b.ts);
        batches
    }

    #[test]
    fn sharded_matches_serial() {
        let mut serial = AmpPotFleet::standard();
        for b in &mixed_stream() {
            serial.ingest(b);
        }
        let (serial_events, serial_stats) = serial.finish();
        assert!(!serial_events.is_empty());
        for shards in [1, 2, 5, 8] {
            let mut engine = ShardedFleet::standard(shards);
            engine.ingest(mixed_stream());
            let (events, stats) = engine.finish();
            assert_eq!(events, serial_events, "{shards} shards: events differ");
            assert_eq!(stats.malformed, serial_stats.malformed);
            assert_eq!(stats.unrecognised, serial_stats.unrecognised);
            assert_eq!(stats.requests, serial_stats.requests);
            assert_eq!(stats.replies_sent, serial_stats.replies_sent);
            assert_eq!(stats.scan_filtered, serial_stats.scan_filtered);
            assert_eq!(stats.events, serial_stats.events);
        }
    }

    #[test]
    fn chunked_ingestion_matches_single_shot() {
        let stream = mixed_stream();
        let mut whole = ShardedFleet::standard(4);
        whole.ingest(stream.clone());
        let (a, _) = whole.finish();

        let mut chunked = ShardedFleet::standard(4);
        for chunk in stream.chunks(131) {
            chunked.ingest(chunk.to_vec());
        }
        let (b, _) = chunked.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_requests_go_to_shard_zero() {
        assert_eq!(request_shard(&[0x01; 4], 6), 0);
        let parts = partition_requests(
            vec![RequestBatch::repeated(HoneypotId(0), SimTime(0), 1, vec![0x01; 4])],
            6,
        );
        assert_eq!(parts[0].len(), 1);
    }
}
