//! # dosscope-amppot
//!
//! The AmpPot side of the reproduction (Krämer et al., RAID 2015; Section
//! 3.1.2 of the paper): a fleet of amplification honeypots that mimic
//! reflectors for eight UDP protocols, log the spoofed requests attackers
//! send "in the name of the victim", and infer reflection/amplification
//! attack events from them.
//!
//! Faithfully modelled behaviours:
//!
//! * **protocol emulation** — requests are parsed from real packet bytes
//!   and classified per protocol ([`dosscope_wire::reflect`]);
//! * **harmlessness rate limit** — a honeypot only *replies* to sources
//!   sending fewer than three packets per minute, so it is discoverable by
//!   scanners but useless as an actual amplifier;
//! * **event inference** — per-victim aggregation with an idle timeout,
//!   a 24-hour cap on event durations (the paper notes ~0.02 % of events
//!   hit the cap), and a 100-request minimum that separates attacks from
//!   scans;
//! * **fleet merge** — per-honeypot views of the same attack are merged
//!   into one event per (victim, protocol, time window), since one attack
//!   abuses many reflectors at once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fleet;
pub mod honeypot;
pub mod sharded;

pub use event::RequestBatch;
pub use fleet::{AmpPotFleet, FleetConfig, FleetStats};
pub use honeypot::{Honeypot, HoneypotId, Region};
pub use sharded::{request_shard, route_requests, ShardedFleet};
