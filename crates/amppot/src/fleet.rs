//! The honeypot fleet: request ingestion, per-honeypot event inference and
//! the fleet-level merge that produces one attack event per victim,
//! protocol and time window.

use crate::event::{PotEvent, RequestBatch};
use crate::honeypot::{standard_fleet, Honeypot, HoneypotId};
use dosscope_types::{
    AttackEvent, AttackVector, FastMap, ReflectionProtocol, SharedBytes, SimTime, TimeRange,
    SECS_PER_HOUR,
};
use dosscope_wire::{reflect, IpProtocol, Ipv4Packet, UdpDatagram};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Key of an open per-honeypot event.
type OpenKey = (Ipv4Addr, ReflectionProtocol, HoneypotId);

/// Upper bound on the parse-memo size; reached only when more distinct
/// representative packets than this are in flight at once, in which case
/// the memo is simply rebuilt (correctness never depends on a hit).
const PARSE_MEMO_CAP: usize = 4_096;

/// The outcome of parsing and classifying one representative packet.
/// Identical bytes always produce the identical outcome, which is what
/// makes memoizing by allocation sound.
#[derive(Debug, Clone, Copy)]
enum Classified {
    /// Failed IPv4/UDP parsing.
    Malformed,
    /// Parsed but not a recognisable abuse request.
    Unrecognised,
    /// An abuse request: spoofed victim source and emulated protocol.
    Request(Ipv4Addr, ReflectionProtocol),
}

/// Parse and classify one representative packet (the uncached path).
fn classify_bytes(bytes: &[u8]) -> Classified {
    let Ok(ip) = Ipv4Packet::new_checked(bytes) else {
        return Classified::Malformed;
    };
    if ip.protocol() != IpProtocol::Udp {
        return Classified::Unrecognised;
    }
    let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
        return Classified::Malformed;
    };
    let Some(protocol) = reflect::classify_request(udp.dst_port(), udp.payload()) else {
        return Classified::Unrecognised;
    };
    Classified::Request(ip.src(), protocol)
}

/// Fleet parameters; defaults follow the paper and the AmpPot design.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Idle gap that closes a per-honeypot event (one hour).
    pub idle_timeout_secs: u64,
    /// Hard cap on a single event's duration (24 h; the paper notes only
    /// ~0.02 % of events hit it).
    pub max_event_secs: u64,
    /// Minimum requests for an event to count as an attack rather than a
    /// scan (the paper: "we only consider events exceeding 100 requests").
    pub min_requests: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            idle_timeout_secs: 3_600,
            max_event_secs: 86_400,
            min_requests: 100,
        }
    }
}

/// Ingestion statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetStats {
    /// Batches that failed packet parsing.
    pub malformed: u64,
    /// Batches that were valid packets but not recognisable abuse requests.
    pub unrecognised: u64,
    /// Total requests accepted (batch counts expanded).
    pub requests: u64,
    /// Replies the fleet would have sent (rate-limited; see
    /// [`Honeypot::would_reply`]).
    pub replies_sent: u64,
    /// Per-honeypot events closed.
    pub pot_events: u64,
    /// Events dropped by the scan filter (≤ min_requests).
    pub scan_filtered: u64,
    /// Fleet-level attack events emitted.
    pub events: u64,
}

/// The fleet: 24 honeypots plus event-inference state.
pub struct AmpPotFleet {
    config: FleetConfig,
    honeypots: Vec<Honeypot>,
    /// Open per-(victim, protocol, honeypot) events.
    open: FastMap<OpenKey, PotEvent>,
    /// Coarse last-activity wheel over `open`: bucket index
    /// (`last.secs() / granularity`) → keys active in that bucket. Stale
    /// entries (the event moved on or was replaced) are dropped lazily by
    /// comparing against the event's authoritative `bucket` field.
    buckets: BTreeMap<u64, Vec<OpenKey>>,
    /// Wheel bucket width in seconds (≤ idle timeout).
    granularity: u64,
    /// Hour of the last idle sweep; ingestion is time-ordered, so crossing
    /// an hour boundary is the trigger to expire idle open events.
    swept_hour: u64,
    /// Parse memo keyed by the representative's allocation address. The
    /// renderer builds one [`SharedBytes`] packet per (attack, honeypot)
    /// and shares it across every batch, so each representative is parsed
    /// and classified once instead of once per batch. The stored clone
    /// pins the allocation, so an address can never be reused by different
    /// bytes while its entry lives.
    parse_memo: FastMap<usize, (SharedBytes, Classified)>,
    closed: Vec<PotEvent>,
    stats: FleetStats,
}

impl AmpPotFleet {
    /// The standard 24-instance fleet with default parameters.
    pub fn standard() -> AmpPotFleet {
        AmpPotFleet::new(standard_fleet(), FleetConfig::default())
    }

    /// A fleet from explicit instances and parameters.
    pub fn new(honeypots: Vec<Honeypot>, config: FleetConfig) -> AmpPotFleet {
        AmpPotFleet {
            config,
            honeypots,
            open: FastMap::default(),
            buckets: BTreeMap::new(),
            granularity: config.idle_timeout_secs.clamp(1, SECS_PER_HOUR),
            swept_hour: 0,
            parse_memo: FastMap::default(),
            closed: Vec::new(),
            stats: FleetStats::default(),
        }
    }

    /// The fleet's instances.
    pub fn honeypots(&self) -> &[Honeypot] {
        &self.honeypots
    }

    /// Ingestion statistics so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Ingest one request batch (time-ordered).
    pub fn ingest(&mut self, batch: &RequestBatch) {
        // Expire idle open events once per simulated hour. Because the
        // stream is time-ordered, anything idle *now* stays idle for every
        // later batch, so sweeping early closes exactly the events the
        // per-key idle check below would close anyway — but bounds the
        // open map by the set of victims active in the last hour instead
        // of the whole trace.
        let hour = batch.ts.secs() / SECS_PER_HOUR;
        if hour > self.swept_hour {
            self.swept_hour = hour;
            self.sweep_idle(batch.ts);
        }
        let key = batch.bytes.as_slice().as_ptr() as usize;
        let classified = match self.parse_memo.get(&key) {
            Some((_pinned, c)) => *c,
            None => {
                let c = classify_bytes(batch.bytes.as_slice());
                if self.parse_memo.len() >= PARSE_MEMO_CAP {
                    self.parse_memo.clear();
                }
                self.parse_memo.insert(key, (batch.bytes.clone(), c));
                c
            }
        };
        let (victim, protocol) = match classified {
            Classified::Malformed => {
                self.stats.malformed += 1;
                return;
            }
            Classified::Unrecognised => {
                self.stats.unrecognised += 1;
                return;
            }
            // The spoofed source IS the victim.
            Classified::Request(victim, protocol) => (victim, protocol),
        };
        self.stats.requests += batch.count as u64;
        // Telemetry mirror; same site on the serial and sharded paths,
        // so totals are thread-count invariant for a fixed seed.
        dosscope_obs::counter!("fleet.requests").add(batch.count as u64);

        // Reply rate limiting: at most the first few requests per source
        // and minute would be answered; everything is logged either way.
        if let Some(pot) = self.honeypots.get_mut(batch.honeypot.0 as usize) {
            if pot.would_reply(victim, batch.ts.minute()) {
                self.stats.replies_sent += 1;
                dosscope_obs::counter!("fleet.replies").inc();
            }
        }

        let key = (victim, protocol, batch.honeypot);
        let config = self.config;
        let entry = self
            .open
            .entry(key)
            .or_insert_with(|| PotEvent::new(victim, protocol, batch.honeypot, batch.ts));
        // Close on idle gap or on the 24 h duration cap.
        let idle = batch.ts.secs() > entry.last.secs() + config.idle_timeout_secs;
        let capped = batch.ts.secs() - entry.first.secs() >= config.max_event_secs;
        if idle || capped {
            let finished = std::mem::replace(
                entry,
                PotEvent::new(victim, protocol, batch.honeypot, batch.ts),
            );
            self.stats.pot_events += 1;
            self.closed.push(finished);
        }
        let entry = self.open.get_mut(&key).expect("inserted above");
        entry.last = entry.last.max(batch.ts);
        entry.requests += batch.count as u64;
        entry.bytes += batch.total_bytes();
        // Keep the wheel current: (re-)register the key when the event's
        // last activity moved to a new bucket.
        let bucket = entry.last.secs() / self.granularity;
        if bucket != entry.bucket {
            entry.bucket = bucket;
            self.buckets.entry(bucket).or_default().push(key);
        }
    }

    /// Close every open event whose idle gap has elapsed as of `now`.
    /// Visits only wheel buckets old enough to possibly hold idle events
    /// (O(expired), not O(open)); the newest such bucket is checked
    /// entry-by-entry and re-inserted if anything in it is still live.
    fn sweep_idle(&mut self, now: SimTime) {
        while let Some((&bucket, _)) = self.buckets.first_key_value() {
            if now.secs() <= bucket.saturating_mul(self.granularity) + self.config.idle_timeout_secs
            {
                break;
            }
            let (_, keys) = self.buckets.pop_first().expect("checked non-empty");
            let mut keep = Vec::new();
            for key in keys {
                let Some(e) = self.open.get(&key) else {
                    continue; // stale: event closed and not re-opened
                };
                if e.bucket != bucket {
                    continue; // stale: event saw newer activity
                }
                if now.secs() > e.last.secs() + self.config.idle_timeout_secs {
                    let finished = self.open.remove(&key).expect("present above");
                    self.stats.pot_events += 1;
                    self.closed.push(finished);
                } else {
                    keep.push(key);
                }
            }
            if !keep.is_empty() {
                // Later buckets hold strictly newer activity: done.
                self.buckets.insert(bucket, keep);
                break;
            }
        }
    }

    /// Number of currently open per-honeypot events (bench telemetry).
    pub fn open_events(&self) -> usize {
        self.open.len()
    }

    /// End of trace: close all open events, merge per-honeypot views into
    /// fleet events, filter scans and return attack events sorted by start
    /// time.
    pub fn finish(mut self) -> (Vec<AttackEvent>, FleetStats) {
        let open: Vec<PotEvent> = self.open.drain().map(|(_, e)| e).collect();
        self.stats.pot_events += open.len() as u64;
        self.closed.extend(open);

        // Group per (victim, protocol).
        let mut groups: FastMap<(Ipv4Addr, ReflectionProtocol), Vec<PotEvent>> =
            FastMap::default();
        for e in self.closed.drain(..) {
            groups.entry((e.victim, e.protocol)).or_default().push(e);
        }

        let mut events = Vec::new();
        for ((victim, protocol), mut pots) in groups {
            // (first, honeypot) is a total order within a group — one
            // honeypot's events for a key never share a start second — so
            // the merge below is independent of close order (ingest's
            // inline close, the hourly idle sweep, or the final drain).
            pots.sort_by_key(|e| (e.first, e.honeypot));
            // Merge per-honeypot intervals whose gaps are within the idle
            // timeout: they are views of the same attack from different
            // reflectors.
            let mut iter = pots.into_iter();
            let first = iter.next().expect("group non-empty");
            let mut cur = MergedEvent::from(first);
            for e in iter {
                let within_gap =
                    e.first.secs() <= cur.last.secs() + self.config.idle_timeout_secs;
                // Absorbing must not stretch the merged event past the
                // 24 h cap, otherwise the per-honeypot cap would be undone
                // here.
                let within_cap =
                    e.last.secs().max(cur.last.secs()) - cur.first.secs()
                        < self.config.max_event_secs;
                if within_gap && within_cap {
                    cur.absorb(e);
                } else {
                    self.emit(&mut events, victim, protocol, cur);
                    cur = MergedEvent::from(e);
                }
            }
            self.emit(&mut events, victim, protocol, cur);
        }
        // Include the protocol in the key: two same-victim events can
        // share a start second, and the groups were drained from a
        // HashMap whose order is not deterministic.
        events.sort_by_key(|e| (e.when.start, e.target, e.reflection_protocol()));
        (events, self.stats)
    }

    fn emit(
        &mut self,
        out: &mut Vec<AttackEvent>,
        victim: Ipv4Addr,
        protocol: ReflectionProtocol,
        merged: MergedEvent,
    ) {
        if merged.requests <= self.config.min_requests {
            self.stats.scan_filtered += 1;
            return;
        }
        let duration = (merged.last.secs() - merged.first.secs()).max(1);
        out.push(AttackEvent {
            target: victim,
            when: TimeRange::new(merged.first, merged.last),
            vector: AttackVector::Reflection { protocol },
            packets: merged.requests,
            bytes: merged.bytes,
            // The paper's honeypot intensity metric: average requests per
            // second over the event.
            intensity_pps: merged.requests as f64 / duration as f64,
            distinct_sources: merged.honeypots,
        });
        self.stats.events += 1;
        dosscope_obs::counter!("fleet.events").inc();
    }
}

/// Accumulator for the fleet-level merge.
struct MergedEvent {
    first: SimTime,
    last: SimTime,
    requests: u64,
    bytes: u64,
    honeypots: u32,
}

impl From<PotEvent> for MergedEvent {
    fn from(e: PotEvent) -> MergedEvent {
        MergedEvent {
            first: e.first,
            last: e.last,
            requests: e.requests,
            bytes: e.bytes,
            honeypots: 1,
        }
    }
}

impl MergedEvent {
    fn absorb(&mut self, e: PotEvent) {
        self.first = self.first.min(e.first);
        self.last = self.last.max(e.last);
        self.requests += e.requests;
        self.bytes += e.bytes;
        self.honeypots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_wire::builder;

    fn victim() -> Ipv4Addr {
        "203.0.113.9".parse().unwrap()
    }

    fn fleet() -> AmpPotFleet {
        AmpPotFleet::standard()
    }

    /// Send `rate` requests/second for `secs` seconds to `n_pots` honeypots.
    fn feed(
        f: &mut AmpPotFleet,
        victim: Ipv4Addr,
        protocol: ReflectionProtocol,
        start: u64,
        secs: u64,
        rate: u32,
        n_pots: u8,
    ) {
        for s in 0..secs {
            for p in 0..n_pots {
                let pot_addr = f.honeypots()[p as usize].addr;
                let pkt = builder::reflection_request(victim, 40000 + p as u16, pot_addr, protocol);
                f.ingest(&RequestBatch::repeated(
                    HoneypotId(p),
                    SimTime(start + s),
                    rate,
                    pkt,
                ));
            }
        }
    }

    #[test]
    fn detects_ntp_attack() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::Ntp, 100, 300, 2, 6);
        let (events, stats) = f.finish();
        assert_eq!(events.len(), 1, "six per-pot views merge into one event");
        let e = &events[0];
        assert_eq!(e.target, victim());
        assert_eq!(e.reflection_protocol(), Some(ReflectionProtocol::Ntp));
        assert_eq!(e.packets, 300 * 2 * 6);
        assert_eq!(e.duration_secs(), 299);
        assert_eq!(e.distinct_sources, 6, "honeypots involved");
        assert!((e.intensity_pps - 3600.0 / 299.0).abs() < 1e-9);
        assert_eq!(stats.events, 1);
    }

    #[test]
    fn scan_filtered_out() {
        let mut f = fleet();
        // A scanner probing each honeypot a few times: well under 100
        // requests per (victim, protocol).
        let scanner: Ipv4Addr = "198.51.100.77".parse().unwrap();
        for p in 0..24u8 {
            let pot_addr = f.honeypots()[p as usize].addr;
            let pkt =
                builder::reflection_request(scanner, 9999, pot_addr, ReflectionProtocol::Dns);
            f.ingest(&RequestBatch::repeated(HoneypotId(p), SimTime(p as u64), 2, pkt));
        }
        let (events, stats) = f.finish();
        assert!(events.is_empty());
        assert!(stats.scan_filtered >= 1);
    }

    #[test]
    fn exactly_100_requests_is_still_a_scan() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::Dns, 0, 100, 1, 1);
        let (events, _) = f.finish();
        assert!(events.is_empty(), "paper requires events *exceeding* 100");
    }

    #[test]
    fn just_over_100_requests_is_an_attack() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::Dns, 0, 101, 1, 1);
        let (events, _) = f.finish();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn idle_gap_splits_events() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::CharGen, 0, 200, 1, 2);
        // Resume 2 h later: a separate attack.
        feed(&mut f, victim(), ReflectionProtocol::CharGen, 200 + 7200, 200, 1, 2);
        let (events, _) = f.finish();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn duration_cap_splits_events() {
        let mut f = fleet();
        let cfg = FleetConfig {
            min_requests: 10,
            ..FleetConfig::default()
        };
        let mut f2 = AmpPotFleet::new(std::mem::take(&mut f.honeypots), cfg);
        // One request every 30 minutes for 30 hours: never idle-gapped,
        // but the 24 h cap must split it.
        let mut ts = 0u64;
        while ts < 30 * 3600 {
            let pot_addr = f2.honeypots()[0].addr;
            let pkt =
                builder::reflection_request(victim(), 40000, pot_addr, ReflectionProtocol::Ssdp);
            f2.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(ts), 1, pkt));
            ts += 1800;
        }
        let (events, _) = f2.finish();
        assert_eq!(events.len(), 2, "24 h cap splits the marathon event");
        assert!(events.iter().all(|e| e.duration_secs() <= 86_400));
    }

    #[test]
    fn protocols_tracked_separately() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::Ntp, 0, 150, 1, 2);
        feed(&mut f, victim(), ReflectionProtocol::Dns, 0, 150, 1, 2);
        let (events, _) = f.finish();
        assert_eq!(events.len(), 2, "joint NTP+DNS yields two protocol events");
        let protos: Vec<_> = events
            .iter()
            .filter_map(|e| e.reflection_protocol())
            .collect();
        assert!(protos.contains(&ReflectionProtocol::Ntp));
        assert!(protos.contains(&ReflectionProtocol::Dns));
    }

    #[test]
    fn victims_tracked_separately() {
        let mut f = fleet();
        let v2: Ipv4Addr = "198.51.100.200".parse().unwrap();
        feed(&mut f, victim(), ReflectionProtocol::Ntp, 0, 150, 1, 2);
        feed(&mut f, v2, ReflectionProtocol::Ntp, 0, 150, 1, 2);
        let (events, _) = f.finish();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn malformed_and_unrecognised_counted() {
        let mut f = fleet();
        f.ingest(&RequestBatch::repeated(
            HoneypotId(0),
            SimTime(0),
            1,
            vec![0xAB; 6],
        ));
        // A TCP packet is not a reflection request.
        let tcp = builder::tcp_syn_ack(victim(), 80, f.honeypots()[0].addr, 1, 1);
        f.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(1), 1, tcp));
        // A UDP packet to a non-emulated port.
        let odd = {
            let mut pkt =
                builder::reflection_request(victim(), 1, f.honeypots()[0].addr, ReflectionProtocol::Dns);
            // Rewrite destination port to something unemulated and fix
            // checksums so only the classification fails.
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[..]);
            let (src, dst) = (ip.src(), ip.dst());
            let mut udp = UdpDatagram::new_unchecked(ip.payload_mut());
            udp.set_dst_port(4444);
            udp.fill_checksum(src, dst);
            ip.fill_checksum();
            pkt
        };
        f.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(2), 1, odd));
        let stats = f.stats();
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.unrecognised, 2);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn reply_rate_limit_counted() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::Ntp, 0, 120, 5, 1);
        let stats = f.stats();
        // 120 ingest calls in 2 minutes to one pot from one source: at
        // most 2 replies per minute may be sent.
        assert!(stats.replies_sent <= 4, "rate limiter caps replies, got {}", stats.replies_sent);
        assert_eq!(stats.requests, 600);
    }

    /// The parse memo must be invisible: batches sharing one allocation
    /// and batches with freshly-allocated identical bytes produce the
    /// same events and statistics.
    #[test]
    fn shared_representative_parsed_once_same_results() {
        let mut shared = fleet();
        let mut fresh = fleet();
        let pot_addr = shared.honeypots()[0].addr;
        let pkt =
            builder::reflection_request(victim(), 40_000, pot_addr, ReflectionProtocol::Ntp);
        let rep = SharedBytes::from(pkt.clone());
        for s in 0..200u64 {
            shared.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(s), 2, rep.clone()));
            fresh.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(s), 2, pkt.clone()));
        }
        // Malformed bytes are memoized with their outcome too.
        let junk = SharedBytes::from(vec![0xAB_u8; 6]);
        for s in 200..203u64 {
            shared.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(s), 1, junk.clone()));
            fresh.ingest(&RequestBatch::repeated(HoneypotId(0), SimTime(s), 1, vec![0xAB_u8; 6]));
        }
        let ss = shared.stats();
        let sf = fresh.stats();
        assert_eq!(ss.requests, sf.requests);
        assert_eq!(ss.replies_sent, sf.replies_sent);
        assert_eq!(ss.malformed, sf.malformed);
        let (es, _) = shared.finish();
        let (ef, _) = fresh.finish();
        assert_eq!(es, ef);
    }

    #[test]
    fn hourly_sweep_bounds_open_events() {
        let mut f = fleet();
        // 40 victims attack in hour 0, then go quiet.
        for v in 0..40u8 {
            let victim = Ipv4Addr::new(203, 0, 113, v);
            feed(&mut f, victim, ReflectionProtocol::Ntp, v as u64, 120, 2, 1);
        }
        assert_eq!(f.open_events(), 40);
        // One fresh victim two hours later: crossing the hour boundary
        // sweeps every idle event out of the open map.
        feed(&mut f, victim(), ReflectionProtocol::Dns, 3 * 3600, 150, 2, 1);
        assert_eq!(f.open_events(), 1, "idle events were swept, fresh one kept");
        let (events, _) = f.finish();
        assert_eq!(events.len(), 41, "sweeping changes nothing observable");
    }

    #[test]
    fn sweep_keeps_recently_active_events() {
        let mut f = fleet();
        let busy: Ipv4Addr = "203.0.113.50".parse().unwrap();
        // `busy` stays active across the boundary; a second victim goes
        // idle early in hour 0.
        feed(&mut f, victim(), ReflectionProtocol::Ntp, 0, 120, 2, 1);
        feed(&mut f, busy, ReflectionProtocol::Ntp, 3500, 400, 2, 1);
        // Hour-2 traffic triggers a sweep: only the idle event may close.
        feed(&mut f, busy, ReflectionProtocol::Ntp, 2 * 3600 + 100, 120, 2, 1);
        assert_eq!(f.open_events(), 1, "active event survives the sweep");
        let (events, _) = f.finish();
        // `busy`'s two bursts sit within the idle gap of each other, so
        // they merge into one event; `victim()`'s burst is separate.
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn intensity_is_average_rate() {
        let mut f = fleet();
        feed(&mut f, victim(), ReflectionProtocol::RipV1, 0, 201, 3, 1);
        let (events, _) = f.finish();
        let e = &events[0];
        assert!((e.intensity_pps - (201.0 * 3.0) / 200.0).abs() < 1e-9);
    }
}
