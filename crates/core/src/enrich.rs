//! Target enrichment: geolocation and BGP origin metadata, the joins the
//! paper applies to every attack target (Section 3.1.3).

use dosscope_geo::{AsDb, GeoDb};
use dosscope_types::{Asn, AttackEvent, CountryCode, FastMap, Prefix16, Prefix24};
use parking_lot::Mutex;
use std::net::Ipv4Addr;

/// An event with its target metadata attached.
#[derive(Debug, Clone)]
pub struct EnrichedEvent<'a> {
    /// The underlying event.
    pub event: &'a AttackEvent,
    /// Geolocated country of the target (`??` when unmapped).
    pub country: CountryCode,
    /// BGP origin AS of the target, if routed.
    pub asn: Option<Asn>,
    /// The target's /24 block.
    pub block24: Prefix24,
    /// The target's /16 block.
    pub block16: Prefix16,
}

/// Enrichment service with a per-address memo (targets repeat heavily, so
/// the two LPM lookups per address are paid once).
pub struct Enricher<'a> {
    geo: &'a GeoDb,
    asdb: &'a AsDb,
    cache: Mutex<FastMap<Ipv4Addr, (CountryCode, Option<Asn>)>>,
}

impl<'a> Enricher<'a> {
    /// New enricher over the two metadata databases.
    pub fn new(geo: &'a GeoDb, asdb: &'a AsDb) -> Enricher<'a> {
        Enricher {
            geo,
            asdb,
            cache: Mutex::new(FastMap::default()),
        }
    }

    /// Metadata for one address.
    pub fn lookup(&self, addr: Ipv4Addr) -> (CountryCode, Option<Asn>) {
        if let Some(hit) = self.cache.lock().get(&addr) {
            return *hit;
        }
        let country = self.geo.country_of(addr).unwrap_or(CountryCode::UNKNOWN);
        let asn = self.asdb.asn_of(addr);
        self.cache.lock().insert(addr, (country, asn));
        (country, asn)
    }

    /// Enrich one event.
    pub fn enrich<'e>(&self, event: &'e AttackEvent) -> EnrichedEvent<'e> {
        let (country, asn) = self.lookup(event.target);
        EnrichedEvent {
            event,
            country,
            asn,
            block24: Prefix24::of(event.target),
            block16: Prefix16::of(event.target),
        }
    }

    /// Enrich a whole slice.
    pub fn enrich_all<'e>(&self, events: &'e [AttackEvent]) -> Vec<EnrichedEvent<'e>> {
        events.iter().map(|e| self.enrich(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_types::{AttackVector, PortSignature, SimTime, TimeRange, TransportProto};

    fn event(ip: &str) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(0), SimTime(100)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn dbs() -> (GeoDb, AsDb) {
        let mut geo = GeoDb::new();
        let mut asdb = AsDb::new();
        geo.insert("203.0.113.0/24".parse().unwrap(), CountryCode::new("NL"));
        asdb.insert("203.0.113.0/24".parse().unwrap(), Asn(64496));
        (geo, asdb)
    }

    #[test]
    fn enrich_known_target() {
        let (geo, asdb) = dbs();
        let enricher = Enricher::new(&geo, &asdb);
        let e = event("203.0.113.9");
        let en = enricher.enrich(&e);
        assert_eq!(en.country, CountryCode::new("NL"));
        assert_eq!(en.asn, Some(Asn(64496)));
        assert_eq!(en.block24.network().to_string(), "203.0.113.0");
        assert_eq!(en.block16.network().to_string(), "203.0.0.0");
    }

    #[test]
    fn enrich_unknown_target() {
        let (geo, asdb) = dbs();
        let enricher = Enricher::new(&geo, &asdb);
        let e = event("8.8.8.8");
        let en = enricher.enrich(&e);
        assert_eq!(en.country, CountryCode::UNKNOWN);
        assert_eq!(en.asn, None);
    }

    #[test]
    fn cache_consistency() {
        let (geo, asdb) = dbs();
        let enricher = Enricher::new(&geo, &asdb);
        let a = enricher.lookup("203.0.113.9".parse().unwrap());
        let b = enricher.lookup("203.0.113.9".parse().unwrap());
        assert_eq!(a, b);
    }
}
