//! The effect of attacks on the Web (Section 5): joining attack events
//! with the active DNS measurement.
//!
//! A Web site is *involved* in an attack when its `www` A record resolved
//! to the attacked IP address on the day the attack started. The analysis
//! produces Figure 6 (co-hosting groups of attacked IPs), Figure 7 (Web
//! sites on attacked IPs per day), the "isolating Web targets" protocol
//! shifts, and the per-site attack records that Section 6's migration
//! analyses consume.

use crate::Framework;
use dosscope_dns::DomainId;
use dosscope_types::{
    AttackEvent, DayIndex, EventSource, FastMap, FastSet, LogHistogram, PortSignature,
    ReflectionProtocol, TimeSeries, TransportProto,
};

use std::net::Ipv4Addr;

/// Per-site attack history, the input to the migration analyses.
#[derive(Debug, Clone, Copy)]
pub struct SiteAttackRecord {
    /// Number of attacks associated with the site.
    pub count: u32,
    /// Day of the first associated attack.
    pub first_attack_day: DayIndex,
    /// Highest normalized intensity over associated attacks (see
    /// [`IntensityNormalizer`]).
    pub best_norm_intensity: f64,
    /// Day of that most intense attack.
    pub best_intensity_day: DayIndex,
    /// Day of an associated honeypot attack lasting ≥ 4 h, if any
    /// (Figure 11's duration class; telescope durations are excluded
    /// because successful attacks suppress backscatter).
    pub long4h_day: Option<DayIndex>,
}

/// Per-source min-max normalization of log intensity.
///
/// The paper normalizes attack intensity per data set before comparing
/// across sets (Table 9); we normalize the logarithm, since both published
/// intensity distributions are log-scaled and span 5-6 decades.
#[derive(Debug, Clone, Copy)]
pub struct IntensityNormalizer {
    tele_min_ln: f64,
    tele_span_ln: f64,
    hp_min_ln: f64,
    hp_span_ln: f64,
}

impl IntensityNormalizer {
    /// Fit over the ingested events.
    pub fn fit(store: &crate::EventStore) -> IntensityNormalizer {
        // Fit straight off each source's intensity column.
        let fit_one = |intensities: &[f64]| -> (f64, f64) {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &pps in intensities {
                let l = pps.max(1e-9).ln();
                min = min.min(l);
                max = max.max(l);
            }
            if !min.is_finite() || max <= min {
                (0.0, 1.0)
            } else {
                (min, max - min)
            }
        };
        let (tmin, tspan) = fit_one(&store.block(EventSource::Telescope).intensity);
        let (hmin, hspan) = fit_one(&store.block(EventSource::Honeypot).intensity);
        IntensityNormalizer {
            tele_min_ln: tmin,
            tele_span_ln: tspan,
            hp_min_ln: hmin,
            hp_span_ln: hspan,
        }
    }

    /// The normalized intensity of an event in [0, 1].
    pub fn normalize(&self, e: &AttackEvent) -> f64 {
        let l = e.intensity_pps.max(1e-9).ln();
        let v = match e.source() {
            EventSource::Telescope => (l - self.tele_min_ln) / self.tele_span_ln,
            EventSource::Honeypot => (l - self.hp_min_ln) / self.hp_span_ln,
        };
        v.clamp(0.0, 1.0)
    }
}

/// The Section 5 results.
pub struct WebImpact {
    /// Distinct Web sites ever on an attacked IP (the paper: 134 M, 64 %).
    pub affected_total: u64,
    /// Total sites in the namespace (210 M scaled).
    pub total_sites: u64,
    /// Sites on attacked IPs per day — Figure 7 top.
    pub daily_sites: TimeSeries,
    /// Same, for medium+ intensity attacks — Figure 7 bottom.
    pub daily_sites_medium: TimeSeries,
    /// Unique target IPs hosting at least one site (572 k, ≥ 9 %).
    pub web_ip_count: u64,
    /// All unique target IPs.
    pub target_ip_count: u64,
    /// Co-hosting histogram over attacked IPs — Figure 6.
    pub cohosting: LogHistogram,
    /// The same histogram split per TLD — the paper verifies the three
    /// individual distributions share Figure 6's shape.
    pub cohosting_by_tld: [(dosscope_dns::Tld, LogHistogram); 3],
    /// The attacked IP with the largest co-hosting group and that group's
    /// size (the paper traces its maximum to an IP routed by DOSarrest).
    pub biggest_cohost: Option<(Ipv4Addr, u64)>,
    /// Per-site attack records for the migration analyses.
    pub site_records: FastMap<DomainId, SiteAttackRecord>,
    /// TCP share among telescope events on Web-hosting IPs (93.4 %).
    pub web_tcp_share: f64,
    /// Web-port share among single-port TCP telescope events on
    /// Web-hosting IPs (87.6 %).
    pub web_port_share: f64,
    /// NTP share among honeypot events on Web-hosting IPs (54.69 %).
    pub web_ntp_share: f64,
    /// The fitted intensity normalizer (reused by Section 6).
    pub normalizer: IntensityNormalizer,
}

impl WebImpact {
    /// Run the Web-association join. Returns `None` when the framework has
    /// no DNS data attached.
    pub fn analyze(fw: &Framework<'_>) -> Option<WebImpact> {
        let zone = fw.zone?;
        let days = fw.days;
        let normalizer = IntensityNormalizer::fit(fw.store);
        let tele_cutoff = crate::timeseries::mean_intensity(fw.store.telescope().iter());
        let hp_cutoff = crate::timeseries::mean_intensity(fw.store.honeypot().iter());

        let mut daily: Vec<FastSet<u32>> = vec![FastSet::default(); days as usize];
        let mut daily_medium: Vec<FastSet<u32>> = vec![FastSet::default(); days as usize];
        let mut affected: FastSet<u32> = FastSet::default();
        let mut records: FastMap<DomainId, SiteAttackRecord> = FastMap::default();
        let mut target_ips: FastSet<Ipv4Addr> = FastSet::default();
        let mut web_ips: FastSet<Ipv4Addr> = FastSet::default();
        let mut first_seen_ip: FastMap<Ipv4Addr, usize> = FastMap::default();
        let mut cohosting = LogHistogram::new(7);
        let mut cohosting_by_tld = [
            (dosscope_dns::Tld::Com, LogHistogram::new(7)),
            (dosscope_dns::Tld::Net, LogHistogram::new(7)),
            (dosscope_dns::Tld::Org, LogHistogram::new(7)),
        ];
        let mut biggest_cohost: Option<(Ipv4Addr, u64)> = None;

        // Protocol-shift counters over events on Web-hosting IPs.
        let mut tele_web_events = 0u64;
        let mut tele_web_tcp = 0u64;
        let mut tele_web_tcp_single = 0u64;
        let mut tele_web_tcp_single_webport = 0u64;
        let mut hp_web_events = 0u64;
        let mut hp_web_ntp = 0u64;

        for e in fw.store.all() {
            let day = e.when.start.day();
            if day.0 >= days {
                continue;
            }
            target_ips.insert(e.target);
            let sites = zone.domains_on_ip(e.target, day);

            // Figure 6: each target IP contributes once, with its site
            // count at the time of its first observed attack.
            if let std::collections::hash_map::Entry::Vacant(slot) = first_seen_ip.entry(e.target) {
                slot.insert(sites.len());
                cohosting.push(sites.len() as u64);
                for (tld, hist) in cohosting_by_tld.iter_mut() {
                    let n = sites.iter().filter(|d| zone.tld_of(**d) == *tld).count();
                    hist.push(n as u64);
                }
                if sites.len() as u64 > biggest_cohost.map_or(0, |(_, n)| n) {
                    biggest_cohost = Some((e.target, sites.len() as u64));
                }
            }
            if sites.is_empty() {
                continue;
            }
            web_ips.insert(e.target);

            // Protocol shifts for Web targets.
            match e.source() {
                EventSource::Telescope => {
                    tele_web_events += 1;
                    if e.transport_proto() == Some(TransportProto::Tcp) {
                        tele_web_tcp += 1;
                        if let Some(PortSignature::Single(p)) = e.port_signature() {
                            tele_web_tcp_single += 1;
                            if dosscope_types::service::is_web_port(p) {
                                tele_web_tcp_single_webport += 1;
                            }
                        }
                    }
                }
                EventSource::Honeypot => {
                    hp_web_events += 1;
                    if e.reflection_protocol() == Some(ReflectionProtocol::Ntp) {
                        hp_web_ntp += 1;
                    }
                }
            }

            let medium = match e.source() {
                EventSource::Telescope => e.intensity_pps >= tele_cutoff,
                EventSource::Honeypot => e.intensity_pps >= hp_cutoff,
            };
            let norm = normalizer.normalize(&e);
            let long4h = e.source() == EventSource::Honeypot
                && e.duration_secs() >= 4 * dosscope_types::SECS_PER_HOUR;

            for site in sites {
                daily[day.0 as usize].insert(site.0);
                if medium {
                    daily_medium[day.0 as usize].insert(site.0);
                }
                affected.insert(site.0);
                let rec = records.entry(site).or_insert(SiteAttackRecord {
                    count: 0,
                    first_attack_day: day,
                    best_norm_intensity: -1.0,
                    best_intensity_day: day,
                    long4h_day: None,
                });
                rec.count += 1;
                rec.first_attack_day = rec.first_attack_day.min(day);
                if norm > rec.best_norm_intensity {
                    rec.best_norm_intensity = norm;
                    rec.best_intensity_day = day;
                }
                if long4h && rec.long4h_day.is_none() {
                    rec.long4h_day = Some(day);
                }
            }
        }

        let to_series = |sets: Vec<FastSet<u32>>| {
            let mut ts = TimeSeries::zeros(days);
            for (i, s) in sets.into_iter().enumerate() {
                ts.set(DayIndex(i as u32), s.len() as f64);
            }
            ts
        };
        let share = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };

        Some(WebImpact {
            affected_total: affected.len() as u64,
            total_sites: zone.domain_count() as u64,
            daily_sites: to_series(daily),
            daily_sites_medium: to_series(daily_medium),
            web_ip_count: web_ips.len() as u64,
            target_ip_count: target_ips.len() as u64,
            cohosting,
            cohosting_by_tld,
            biggest_cohost,
            site_records: records,
            web_tcp_share: share(tele_web_tcp, tele_web_events),
            web_port_share: share(tele_web_tcp_single_webport, tele_web_tcp_single),
            web_ntp_share: share(hp_web_ntp, hp_web_events),
            normalizer,
        })
    }

    /// Fraction of the namespace ever involved with attacks (64 % in the
    /// paper).
    pub fn affected_fraction(&self) -> f64 {
        if self.total_sites == 0 {
            0.0
        } else {
            self.affected_total as f64 / self.total_sites as f64
        }
    }

    /// Mean number of sites involved per day, and as a fraction of the
    /// namespace (≈ 4 M, ≈ 3 % in the paper).
    pub fn mean_daily_sites(&self) -> (f64, f64) {
        let mean = self.daily_sites.daily_mean();
        let frac = if self.total_sites == 0 {
            0.0
        } else {
            mean / self.total_sites as f64
        };
        (mean, frac)
    }

    /// The biggest daily peak as a fraction of the namespace (11.82 % in
    /// the paper).
    pub fn peak_fraction(&self) -> (DayIndex, f64) {
        match self.daily_sites.peak() {
            Some((day, v)) if self.total_sites > 0 => (day, v / self.total_sites as f64),
            _ => (DayIndex(0), 0.0),
        }
    }
}

/// Identify the parties behind the Web sites affected on one day: counts
/// of affected sites per hosting organisation (by CNAME, then NS), the way
/// Section 5 names GoDaddy/WordPress/Wix behind the peaks.
pub fn parties_on_day(fw: &Framework<'_>, day: DayIndex) -> Vec<(String, u64)> {
    let (Some(zone), Some(catalog)) = (fw.zone, fw.catalog) else {
        return Vec::new();
    };
    let mut counts: FastMap<String, u64> = FastMap::default();
    let mut seen_ip: FastSet<Ipv4Addr> = FastSet::default();
    for e in fw.store.all() {
        if e.when.start.day() != day || !seen_ip.insert(e.target) {
            continue;
        }
        for p in zone.placements_on_ip(e.target, day) {
            let org = p.cname.unwrap_or(p.ns);
            *counts.entry(catalog.get(org).name.clone()).or_default() += 1;
        }
    }
    let mut out: Vec<(String, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventStore;
    use dosscope_dns::{DayRange, OrgCatalog, OrgId, OrgRole, Placement, Tld, ZoneStore};
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{AttackVector, SimTime, TimeRange, SECS_PER_DAY};

    fn tele(ip: &str, day: u64, intensity: f64, port: u16) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(
                SimTime(day * SECS_PER_DAY + 100),
                SimTime(day * SECS_PER_DAY + 400),
            ),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(port),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: intensity,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, day: u64, dur: u64, protocol: ReflectionProtocol) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(
                SimTime(day * SECS_PER_DAY + 100),
                SimTime(day * SECS_PER_DAY + 100 + dur),
            ),
            vector: AttackVector::Reflection { protocol },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    struct World {
        zone: ZoneStore,
        catalog: OrgCatalog,
        geo: GeoDb,
        asdb: AsDb,
    }

    fn world() -> (World, OrgId) {
        let mut catalog = OrgCatalog::new();
        let hoster = catalog.add("BigHost", None, OrgRole::Hoster, false);
        let mut zone = ZoneStore::new();
        // Three sites co-hosted on one IP, one site alone on another.
        for _ in 0..3 {
            let d = zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(30)));
            zone.place(Placement {
                domain: d,
                ip: "10.0.0.1".parse().unwrap(),
                days: DayRange::new(DayIndex(0), DayIndex(30)),
                ns: hoster,
                cname: None,
            });
        }
        let d = zone.add_domain(Tld::Org, DayRange::new(DayIndex(0), DayIndex(30)));
        zone.place(Placement {
            domain: d,
            ip: "10.0.0.2".parse().unwrap(),
            days: DayRange::new(DayIndex(0), DayIndex(30)),
            ns: hoster,
            cname: None,
        });
        (
            World {
                zone,
                catalog,
                geo: GeoDb::new(),
                asdb: AsDb::new(),
            },
            hoster,
        )
    }

    fn framework<'a>(w: &'a World, store: &'a EventStore) -> Framework<'a> {
        Framework::new(store, &w.geo, &w.asdb, 30).with_dns(&w.zone, &w.catalog)
    }

    #[test]
    fn web_association_join() {
        let (w, _) = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![
            tele("10.0.0.1", 3, 5.0, 80), // hits 3 sites
            tele("10.0.0.9", 4, 1.0, 80), // hits nothing
        ]);
        store.ingest_honeypot(vec![hp("10.0.0.2", 5, 5 * 3600, ReflectionProtocol::Ntp)]);
        let fw = framework(&w, &store);
        let wi = WebImpact::analyze(&fw).expect("zone attached");
        assert_eq!(wi.affected_total, 4);
        assert_eq!(wi.total_sites, 4);
        assert!((wi.affected_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(wi.daily_sites.get(DayIndex(3)), 3.0);
        assert_eq!(wi.daily_sites.get(DayIndex(5)), 1.0);
        assert_eq!(wi.web_ip_count, 2);
        assert_eq!(wi.target_ip_count, 3);
        // Figure 6: one IP with 3 sites (bin 1), one with 1 (bin 0);
        // 10.0.0.9 hosts nothing and is excluded.
        assert_eq!(wi.cohosting.bins()[0], 1);
        assert_eq!(wi.cohosting.bins()[1], 1);
        assert_eq!(wi.cohosting.total(), 2);
    }

    #[test]
    fn site_records_track_history() {
        let (w, _) = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![
            tele("10.0.0.1", 3, 2.0, 80),
            tele("10.0.0.1", 7, 50.0, 80),
        ]);
        store.ingest_honeypot(vec![hp("10.0.0.1", 9, 5 * 3600, ReflectionProtocol::Ntp)]);
        let fw = framework(&w, &store);
        let wi = WebImpact::analyze(&fw).unwrap();
        let rec = wi.site_records.values().next().unwrap();
        assert_eq!(rec.count, 3);
        assert_eq!(rec.first_attack_day, DayIndex(3));
        assert_eq!(rec.long4h_day, Some(DayIndex(9)));
        // The day-7 attack is the most intense telescope event.
        assert!(rec.best_intensity_day == DayIndex(7) || rec.best_norm_intensity >= 0.99);
    }

    #[test]
    fn web_protocol_shares() {
        let (w, _) = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![
            tele("10.0.0.1", 1, 1.0, 80),
            tele("10.0.0.1", 2, 1.0, 443),
            tele("10.0.0.1", 3, 1.0, 3306),
        ]);
        store.ingest_honeypot(vec![
            hp("10.0.0.2", 1, 600, ReflectionProtocol::Ntp),
            hp("10.0.0.2", 2, 600, ReflectionProtocol::Dns),
        ]);
        let fw = framework(&w, &store);
        let wi = WebImpact::analyze(&fw).unwrap();
        assert_eq!(wi.web_tcp_share, 1.0);
        assert!((wi.web_port_share - 2.0 / 3.0).abs() < 1e-9);
        assert!((wi.web_ntp_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn parties_identified() {
        let (w, _) = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![tele("10.0.0.1", 3, 5.0, 80)]);
        let fw = framework(&w, &store);
        let parties = parties_on_day(&fw, DayIndex(3));
        assert_eq!(parties.len(), 1);
        assert_eq!(parties[0].0, "BigHost");
        assert_eq!(parties[0].1, 3);
        assert!(parties_on_day(&fw, DayIndex(9)).is_empty());
    }

    #[test]
    fn no_zone_returns_none() {
        let (w, _) = world();
        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 30);
        assert!(WebImpact::analyze(&fw).is_none());
    }

    #[test]
    fn normalizer_bounds() {
        let mut store = EventStore::new();
        store.ingest_telescope(vec![
            tele("10.0.0.1", 1, 0.5, 80),
            tele("10.0.0.2", 1, 5000.0, 80),
        ]);
        let n = IntensityNormalizer::fit(&store);
        let lo = n.normalize(&tele("10.0.0.1", 1, 0.5, 80));
        let hi = n.normalize(&tele("10.0.0.1", 1, 5000.0, 80));
        assert!((lo - 0.0).abs() < 1e-9);
        assert!((hi - 1.0).abs() < 1e-9);
        let mid = n.normalize(&tele("10.0.0.1", 1, 50.0, 80));
        assert!(mid > 0.0 && mid < 1.0);
    }
}
