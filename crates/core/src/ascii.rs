//! Terminal rendering of the paper's figures: compact ASCII plots for
//! CDFs (Figures 2-4, 9-11), daily time series (Figures 1, 5, 7) and bar
//! histograms (Figure 6), so the reproduction report shows the *shapes*
//! being compared, not just summary statistics.

use dosscope_types::{FrozenEcdf, LogHistogram, TimeSeries};
use std::fmt::Write as _;

/// Plot a CDF as rows of `(threshold, bar, percent)` with a log-spaced x
/// axis from `min` to `max` — the layout of the paper's log-x CDF figures.
pub fn cdf(ecdf: &FrozenEcdf, min: f64, max: f64, rows: u32, width: usize) -> String {
    let mut out = String::new();
    if ecdf.is_empty() || min <= 0.0 || max <= min {
        return "  (no data)\n".into();
    }
    let lmin = min.ln();
    let lmax = max.ln();
    for i in 0..=rows {
        let x = (lmin + (lmax - lmin) * i as f64 / rows as f64).exp();
        let f = ecdf.cdf(x);
        let filled = (f * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "  {:>10} |{}{}| {:>5.1}%",
            si(x),
            "#".repeat(filled.min(width)),
            " ".repeat(width.saturating_sub(filled)),
            100.0 * f
        );
    }
    out
}

/// Plot a daily time series as a fixed number of column buckets, each the
/// mean of its day range, with a log-scaled bar height rendered as rows of
/// characters (top to bottom) — a terminal rendition of Figure 1's panels.
pub fn series(ts: &TimeSeries, columns: usize, height: usize) -> String {
    let n = ts.days() as usize;
    if n == 0 {
        return "  (no data)\n".into();
    }
    let columns = columns.min(n).max(1);
    let per = n.div_ceil(columns);
    // Recompute so the frame has no empty trailing columns.
    let columns = n.div_ceil(per);
    let buckets: Vec<f64> = (0..columns)
        .map(|c| {
            let lo = c * per;
            let hi = ((c + 1) * per).min(n);
            if lo >= hi {
                return 0.0;
            }
            (lo..hi)
                .map(|d| ts.get(dosscope_types::DayIndex(d as u32)))
                .sum::<f64>()
                / (hi - lo) as f64
        })
        .collect();
    let max = buckets.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "  (all zero)\n".into();
    }
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max * row as f64 / height as f64;
        let line: String = buckets
            .iter()
            .map(|&v| if v + 1e-12 >= threshold { '█' } else { ' ' })
            .collect();
        let label = if row == height {
            format!("{:>8}", si(max))
        } else {
            " ".repeat(8)
        };
        let _ = writeln!(out, "  {label} |{line}|");
    }
    let _ = writeln!(
        out,
        "  {:>8} +{}+ ({} days per column)",
        "0",
        "-".repeat(columns),
        per
    );
    out
}

/// Plot a log histogram as labelled bars (Figure 6's layout).
pub fn histogram(hist: &LogHistogram, width: usize) -> String {
    let max = hist.bins().iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "  (no data)\n".into();
    }
    let mut out = String::new();
    for (label, &count) in hist.labels().iter().zip(hist.bins()) {
        let filled = ((count as f64 / max as f64) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "  {:<14} |{}{}| {}",
            label,
            "#".repeat(filled),
            " ".repeat(width.saturating_sub(filled)),
            count
        );
    }
    out
}

/// Format a value with an SI-ish suffix for axis labels.
fn si(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else if x >= 10.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_types::{DayIndex, Ecdf};

    #[test]
    fn cdf_plot_shape() {
        let e: FrozenEcdf = (1..=100)
            .map(|i| i as f64)
            .collect::<Ecdf>()
            .freeze();
        let plot = cdf(&e, 1.0, 100.0, 6, 20);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 7);
        assert!(lines[0].contains("1.0"));
        assert!(lines[6].ends_with("100.0%"));
        // Monotone bar growth.
        let hashes: Vec<usize> = lines
            .iter()
            .map(|l| l.matches('#').count())
            .collect();
        assert!(hashes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cdf_plot_empty() {
        let e: FrozenEcdf = Ecdf::new().freeze();
        assert!(cdf(&e, 1.0, 10.0, 4, 10).contains("no data"));
    }

    #[test]
    fn series_plot_shape() {
        let mut ts = TimeSeries::zeros(100);
        for d in 0..100u32 {
            ts.set(DayIndex(d), (d % 10) as f64);
        }
        let plot = series(&ts, 20, 5);
        assert_eq!(plot.lines().count(), 6);
        assert!(plot.contains('█'));
        assert!(plot.contains("days per column"));
    }

    #[test]
    fn series_plot_zero() {
        let ts = TimeSeries::zeros(10);
        assert!(series(&ts, 5, 3).contains("all zero"));
    }

    #[test]
    fn histogram_plot() {
        let mut h = LogHistogram::new(3);
        h.push(1);
        h.push(1);
        h.push(5);
        h.push(500);
        let plot = histogram(&h, 10);
        assert!(plot.contains("n=1"));
        assert!(plot.lines().count() == 4);
        // The fullest bar belongs to the n=1 bin.
        let first_hashes = plot.lines().next().unwrap().matches('#').count();
        assert_eq!(first_hashes, 10);
    }

    #[test]
    fn si_labels() {
        assert_eq!(si(0.5), "0.5");
        assert_eq!(si(42.0), "42");
        assert_eq!(si(1_500.0), "1.5k");
        assert_eq!(si(2_500_000.0), "2.5M");
    }
}
